// Quickstart: tune one application end-to-end through the public API.
//
// api::Session owns the whole paper workflow -- simulated node, training
// data acquisition, the neural-network energy model, and the design-time
// analysis -- so tuning a benchmark is three calls.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "api/report.hpp"
#include "api/session.hpp"

int main() {
  ecotune::api::Session session(ecotune::api::SessionConfig{}.seed(42));

  std::cout << "Training the energy model...\n";
  session.train_model();

  const ecotune::api::DtaReport report = session.run_dta("Lulesh");

  ecotune::api::TextReportSink sink(std::cout);
  sink.dta(report);
  sink.close();
  return 0;
}
