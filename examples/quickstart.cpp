// Quickstart: tune one application end-to-end in ~40 lines.
//
//   1. create a simulated Haswell-EP node,
//   2. train the neural-network energy model on the training benchmarks,
//   3. run the DVFS/UFS/OpenMP tuning plugin's design-time analysis,
//   4. inspect the tuning model it produced.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

int main() {
  // A node of the simulated cluster (node 0, deterministic seed).
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(42));

  // Acquire training data and train the energy model. A coarse grid is
  // plenty for the quickstart; bench/fig5_loocv_mape uses the full grid.
  model::AcquisitionOptions acq_opts;
  acq_opts.thread_counts = {12, 16, 20, 24};
  model::DataAcquisition acquisition(node, acq_opts);
  std::cout << "Acquiring training data..." << std::endl;
  const auto dataset =
      acquisition.acquire(workload::BenchmarkSuite::training_set());
  model::EnergyModel energy_model;
  energy_model.train(dataset, 10);
  std::cout << "Trained on " << dataset.samples.size() << " samples.\n";

  // Tune Lulesh: pre-processing, thread search, model-guided frequency
  // selection, neighborhood verification, tuning-model generation.
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");
  core::DvfsUfsPlugin plugin(energy_model);
  const core::DtaResult result = plugin.run_dta(app, node);

  std::cout << "\nSignificant regions (> "
            << result.dyn_report.threshold.value() * 1e3 << " ms):\n";
  for (const auto& r : result.dyn_report.significant)
    std::cout << "  " << r.name << "  (mean "
              << r.mean_time.value() * 1e3 << " ms)\n";

  std::cout << "\nPhase optimum: " << to_string(result.phase_best)
            << "\nModel recommendation was " << to_string(result.recommendation.cf)
            << "|" << to_string(result.recommendation.ucf) << "\n\nTuning model ("
            << result.tuning_model.scenarios().size() << " scenarios):\n";
  for (const auto& s : result.tuning_model.scenarios()) {
    std::cout << "  scenario " << s.id << ": " << to_string(s.config)
              << "  <-";
    for (const auto& r : s.regions) std::cout << ' ' << r;
    std::cout << '\n';
  }
  std::cout << "\nTuning cost: " << result.thread_scenarios << " + "
            << result.analysis_runs << " + " << result.frequency_scenarios
            << " experiments in " << result.app_runs
            << " application runs ("
            << result.tuning_time.value() << " s simulated).\n";
  return 0;
}
