// Tuning a memory-bound application (the paper's Mcbenchmark scenario).
//
// Memory-bound codes invert the usual DVFS intuition: the core clock can
// drop far below nominal (saving core power) while the uncore clock must
// stay high (bandwidth feeds the cores). This example shows
//  - the measured energy surface along both frequency axes,
//  - what the plugin selects and what it saves,
//  - how the picture changes under the EDP objective, which penalizes the
//    slowdown that pure energy tuning accepts.
#include <iostream>

#include "core/evaluation.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

int main() {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(11));

  std::cout << "Training the energy model...\n";
  model::AcquisitionOptions acq_opts;
  acq_opts.thread_counts = {12, 16, 20, 24};
  model::DataAcquisition acquisition(node, acq_opts);
  model::EnergyModel energy_model;
  energy_model.train(
      acquisition.acquire(workload::BenchmarkSuite::training_set()), 10);

  const auto app = workload::BenchmarkSuite::by_name("Mcb").with_iterations(10);

  // Show the two 1-D slices through the energy surface at 20 threads.
  std::cout << "\nnode energy vs core frequency (UCF = 2.5 GHz, 20 thr):\n";
  for (int mhz = 1200; mhz <= 2500; mhz += 300) {
    const auto e = instr::run_uninstrumented(
                       app.with_iterations(2), node,
                       SystemConfig{20, CoreFreq::mhz(mhz),
                                    UncoreFreq::mhz(2500)})
                       .node_energy.value();
    std::cout << "  " << mhz / 1000.0 << " GHz : " << e << " J\n";
  }
  std::cout << "node energy vs uncore frequency (CF = 1.8 GHz, 20 thr):\n";
  for (int mhz = 1300; mhz <= 3000; mhz += 400) {
    const auto e = instr::run_uninstrumented(
                       app.with_iterations(2), node,
                       SystemConfig{20, CoreFreq::mhz(1800),
                                    UncoreFreq::mhz(mhz)})
                       .node_energy.value();
    std::cout << "  " << mhz / 1000.0 << " GHz : " << e << " J\n";
  }

  // Full pipeline under the energy objective.
  core::SavingsOptions opts;
  opts.repeats = 3;
  opts.static_search.cf_stride = 2;
  opts.static_search.ucf_stride = 2;
  core::SavingsEvaluator evaluator(node, energy_model, opts);
  const auto row = evaluator.evaluate(app);

  std::cout << "\n--- energy objective ---\n"
            << "static optimum : " << to_string(row.static_config)
            << "  (job " << row.static_job_energy_pct << "%, CPU "
            << row.static_cpu_energy_pct << "%)\n"
            << "dynamic tuning : job " << row.dynamic_job_energy_pct
            << "%, CPU " << row.dynamic_cpu_energy_pct << "%, time "
            << row.dynamic_time_pct << "%\n"
            << "  (config effect " << row.perf_reduction_config_pct
            << "%, overhead " << row.overhead_pct << "%)\n";

  // The same pipeline under EDP: less slowdown, less savings.
  core::SavingsOptions edp_opts = opts;
  edp_opts.plugin.config.objective = "edp";
  core::SavingsEvaluator edp_evaluator(node, energy_model, edp_opts);
  const auto edp_row = edp_evaluator.evaluate(app);
  std::cout << "\n--- EDP objective ---\n"
            << "dynamic tuning : job " << edp_row.dynamic_job_energy_pct
            << "%, CPU " << edp_row.dynamic_cpu_energy_pct << "%, time "
            << edp_row.dynamic_time_pct << "%\n";

  std::cout << "\nPhase best under energy: " << to_string(row.dta.phase_best)
            << " vs under EDP: " << to_string(edp_row.dta.phase_best)
            << "\n(EDP keeps the core clock higher to protect run time.)\n";
  return 0;
}
