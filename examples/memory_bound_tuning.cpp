// Tuning a memory-bound application (the paper's Mcbenchmark scenario).
//
// Memory-bound codes invert the usual DVFS intuition: the core clock can
// drop far below nominal (saving core power) while the uncore clock must
// stay high (bandwidth feeds the cores). This example shows
//  - the measured energy surface along both frequency axes,
//  - what the plugin selects and what it saves,
//  - how the picture changes under the EDP objective, which penalizes the
//    slowdown that pure energy tuning accepts -- demonstrating model reuse:
//    the second Session borrows the first one's trained model instead of
//    re-acquiring and re-training.
#include <iostream>

#include "api/session.hpp"
#include "instr/scorep_runtime.hpp"

using namespace ecotune;

int main() {
  baseline::StaticTunerOptions coarse_search;
  coarse_search.cf_stride = 2;
  coarse_search.ucf_stride = 2;

  api::Session session(api::SessionConfig{}
                           .seed(11)
                           .repeats(3)
                           .static_search(coarse_search));

  std::cout << "Training the energy model...\n";
  session.train_model();

  const auto app = workload::BenchmarkSuite::by_name("Mcb").with_iterations(10);

  // Show the two 1-D slices through the energy surface at 20 threads.
  auto& node = session.tuning_node();
  std::cout << "\nnode energy vs core frequency (UCF = 2.5 GHz, 20 thr):\n";
  for (int mhz = 1200; mhz <= 2500; mhz += 300) {
    const auto e = instr::run_uninstrumented(
                       app.with_iterations(2), node,
                       SystemConfig{20, CoreFreq::mhz(mhz),
                                    UncoreFreq::mhz(2500)})
                       .node_energy.value();
    std::cout << "  " << mhz / 1000.0 << " GHz : " << e << " J\n";
  }
  std::cout << "node energy vs uncore frequency (CF = 1.8 GHz, 20 thr):\n";
  for (int mhz = 1300; mhz <= 3000; mhz += 400) {
    const auto e = instr::run_uninstrumented(
                       app.with_iterations(2), node,
                       SystemConfig{20, CoreFreq::mhz(1800),
                                    UncoreFreq::mhz(mhz)})
                       .node_energy.value();
    std::cout << "  " << mhz / 1000.0 << " GHz : " << e << " J\n";
  }

  // Full pipeline under the energy objective.
  const core::SavingsRow row = session.evaluate_savings(app);

  std::cout << "\n--- energy objective ---\n"
            << "static optimum : " << to_string(row.static_config)
            << "  (job " << row.static_job_energy_pct << "%, CPU "
            << row.static_cpu_energy_pct << "%)\n"
            << "dynamic tuning : job " << row.dynamic_job_energy_pct
            << "%, CPU " << row.dynamic_cpu_energy_pct << "%, time "
            << row.dynamic_time_pct << "%\n"
            << "  (config effect " << row.perf_reduction_config_pct
            << "%, overhead " << row.overhead_pct << "%)\n";

  // The same pipeline under EDP: less slowdown, less savings. The EDP
  // session reuses the already-trained model -- no second acquisition.
  api::Session edp_session(api::SessionConfig{}
                               .seed(11)
                               .repeats(3)
                               .static_search(coarse_search)
                               .objective("edp"));
  edp_session.use_model(session.model());
  const core::SavingsRow edp_row = edp_session.evaluate_savings(app);
  std::cout << "\n--- EDP objective ---\n"
            << "dynamic tuning : job " << edp_row.dynamic_job_energy_pct
            << "%, CPU " << edp_row.dynamic_cpu_energy_pct << "%, time "
            << edp_row.dynamic_time_pct << "%\n";

  std::cout << "\nPhase best under energy: " << to_string(row.dta.phase_best)
            << " vs under EDP: " << to_string(edp_row.dta.phase_best)
            << "\n(EDP keeps the core clock higher to protect run time.)\n";
  return 0;
}
