// Defining and tuning your own application.
//
// Downstream users describe their code as a phase loop over regions with
// kernel characteristics (instruction mix, memory traffic, scaling); the
// Session then tunes it exactly like the built-in suite. This example
// builds a small CFD-flavoured solver with one bandwidth-bound and two
// compute-bound regions, tunes it, and validates the result against the
// ground-truth optimum.
#include <iostream>

#include "api/session.hpp"
#include "instr/scorep_runtime.hpp"

using namespace ecotune;

namespace {

workload::Benchmark make_cfd_solver() {
  using hwsim::KernelTraits;

  // Flux computation: vectorized FP, cache friendly -> compute bound.
  KernelTraits flux;
  flux.total_instructions = 20e9;
  flux.ipc_peak = 2.4;
  flux.fp_fraction = 0.45;
  flux.vector_fraction = 0.5;
  flux.dram_bytes = 0.2 * flux.total_instructions;
  flux.uncore_cycles = 0.15 * flux.total_instructions;
  flux.parallel_fraction = 0.996;
  flux.contention = 0.003;
  flux.overlap = 0.8;
  flux.activity = 1.05;

  // Residual/update sweep: streaming -> bandwidth bound.
  KernelTraits sweep;
  sweep.total_instructions = 8e9;
  sweep.ipc_peak = 1.4;
  sweep.load_fraction = 0.4;
  sweep.store_fraction = 0.2;
  sweep.l1d_miss_rate = 0.12;
  sweep.l2_miss_rate = 0.6;
  sweep.dram_bytes = 2.6 * sweep.total_instructions;
  sweep.uncore_cycles = 0.5 * sweep.total_instructions;
  sweep.parallel_fraction = 0.99;
  sweep.contention = 0.008;
  sweep.overlap = 0.88;
  sweep.activity = 0.7;

  // Boundary conditions: small, branchy, serial-ish -> insignificant.
  KernelTraits bc;
  bc.total_instructions = 0.02e9;
  bc.branch_fraction = 0.2;
  bc.parallel_fraction = 0.85;
  bc.sync_seconds_per_thread = 2e-6;

  return workload::Benchmark(
      "my-cfd-solver", "user", workload::ProgrammingModel::kHybrid,
      {
          workload::Region{"compute_fluxes", flux, 1},
          workload::Region{"residual_sweep", sweep, 1},
          workload::Region{"apply_boundary_conditions", bc, 1},
      },
      /*phase_iterations=*/15,
      /*instr_overhead_fraction=*/0.015);
}

}  // namespace

int main() {
  api::Session session(api::SessionConfig{}.seed(7));

  std::cout << "Training the energy model on the standard suite...\n";
  session.train_model();

  // Tune the user-defined application. The model has never seen it; its
  // counter signature alone drives the frequency recommendation.
  const auto app = make_cfd_solver();
  const auto result = session.run_dta(app).result;

  std::cout << "\n" << app.name() << ": "
            << result.dyn_report.significant.size()
            << " significant regions, phase optimum "
            << to_string(result.phase_best) << "\n";
  for (const auto& [region, config] : result.region_best)
    std::cout << "  " << region << " -> " << to_string(config) << '\n';

  // Validate against the ground-truth static optimum (exhaustive search on
  // the same session node).
  const auto truth = session.tune_static(app);
  std::cout << "\nground-truth static optimum: " << to_string(truth.best)
            << "\nplugin phase selection     : "
            << to_string(result.phase_best) << '\n';

  // How much energy does the plugin's choice leave on the table?
  const auto at = [&](const SystemConfig& c) {
    return instr::run_uninstrumented(app.with_iterations(3),
                                     session.tuning_node(), c)
        .node_energy.value();
  };
  const double regret =
      at(result.phase_best) / at(truth.best) - 1.0;
  std::cout << "energy regret vs ground truth: " << regret * 100.0
            << " %  (model-guided search used "
            << result.thread_scenarios + result.analysis_runs +
                   result.frequency_scenarios
            << " experiments instead of " << truth.runs << ")\n";
  return 0;
}
