// Defining and tuning your own application.
//
// Downstream users describe their code as a phase loop over regions with
// kernel characteristics (instruction mix, memory traffic, scaling); the
// plugin then tunes it exactly like the built-in suite. This example builds
// a small CFD-flavoured solver with one bandwidth-bound and two
// compute-bound regions, tunes it, and validates the result against the
// ground-truth optimum.
#include <iostream>

#include "baseline/static_tuner.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

workload::Benchmark make_cfd_solver() {
  using hwsim::KernelTraits;

  // Flux computation: vectorized FP, cache friendly -> compute bound.
  KernelTraits flux;
  flux.total_instructions = 20e9;
  flux.ipc_peak = 2.4;
  flux.fp_fraction = 0.45;
  flux.vector_fraction = 0.5;
  flux.dram_bytes = 0.2 * flux.total_instructions;
  flux.uncore_cycles = 0.15 * flux.total_instructions;
  flux.parallel_fraction = 0.996;
  flux.contention = 0.003;
  flux.overlap = 0.8;
  flux.activity = 1.05;

  // Residual/update sweep: streaming -> bandwidth bound.
  KernelTraits sweep;
  sweep.total_instructions = 8e9;
  sweep.ipc_peak = 1.4;
  sweep.load_fraction = 0.4;
  sweep.store_fraction = 0.2;
  sweep.l1d_miss_rate = 0.12;
  sweep.l2_miss_rate = 0.6;
  sweep.dram_bytes = 2.6 * sweep.total_instructions;
  sweep.uncore_cycles = 0.5 * sweep.total_instructions;
  sweep.parallel_fraction = 0.99;
  sweep.contention = 0.008;
  sweep.overlap = 0.88;
  sweep.activity = 0.7;

  // Boundary conditions: small, branchy, serial-ish -> insignificant.
  KernelTraits bc;
  bc.total_instructions = 0.02e9;
  bc.branch_fraction = 0.2;
  bc.parallel_fraction = 0.85;
  bc.sync_seconds_per_thread = 2e-6;

  return workload::Benchmark(
      "my-cfd-solver", "user", workload::ProgrammingModel::kHybrid,
      {
          workload::Region{"compute_fluxes", flux, 1},
          workload::Region{"residual_sweep", sweep, 1},
          workload::Region{"apply_boundary_conditions", bc, 1},
      },
      /*phase_iterations=*/15,
      /*instr_overhead_fraction=*/0.015);
}

}  // namespace

int main() {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(7));

  std::cout << "Training the energy model on the standard suite...\n";
  model::AcquisitionOptions acq_opts;
  acq_opts.thread_counts = {12, 16, 20, 24};
  model::DataAcquisition acquisition(node, acq_opts);
  model::EnergyModel energy_model;
  energy_model.train(
      acquisition.acquire(workload::BenchmarkSuite::training_set()), 10);

  // Tune the user-defined application. The model has never seen it; its
  // counter signature alone drives the frequency recommendation.
  const auto app = make_cfd_solver();
  core::DvfsUfsPlugin plugin(energy_model);
  const auto result = plugin.run_dta(app, node);

  std::cout << "\n" << app.name() << ": "
            << result.dyn_report.significant.size()
            << " significant regions, phase optimum "
            << to_string(result.phase_best) << "\n";
  for (const auto& [region, config] : result.region_best)
    std::cout << "  " << region << " -> " << to_string(config) << '\n';

  // Validate against the ground-truth static optimum.
  baseline::StaticTunerOptions st;
  st.cf_stride = 1;
  st.ucf_stride = 1;
  baseline::StaticTuner tuner(node, st);
  const auto truth = tuner.tune(app);
  std::cout << "\nground-truth static optimum: " << to_string(truth.best)
            << "\nplugin phase selection     : "
            << to_string(result.phase_best) << '\n';

  // How much energy does the plugin's choice leave on the table?
  const auto at = [&](const SystemConfig& c) {
    return instr::run_uninstrumented(app.with_iterations(3), node, c)
        .node_energy.value();
  };
  const double regret =
      at(result.phase_best) / at(truth.best) - 1.0;
  std::cout << "energy regret vs ground truth: " << regret * 100.0
            << " %  (model-guided search used "
            << result.thread_scenarios + result.analysis_runs +
                   result.frequency_scenarios
            << " experiments instead of " << truth.runs << ")\n";
  return 0;
}
