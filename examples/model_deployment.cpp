// Deployment workflow: train once, ship artifacts, tune in production.
//
// The design-time analysis is expensive relative to a production run, so a
// site trains the energy model once, stores it on disk, and reuses it for
// every new application; the per-application tuning model is likewise
// serialized and handed to the runtime (RRL) via a file -- exactly the
// SCOREP_RRL_TMM_PATH mechanism of the paper. This example exercises that
// full save/load cycle: Session::use_model() is the "load" half, so the
// application owner's Session never acquires training data at all.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/session.hpp"
#include "readex/rrl.hpp"

using namespace ecotune;

int main() {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string model_path = (tmp / "ecotune_energy_model.json").string();
  const std::string tm_path = (tmp / "ecotune_tuning_model.json").string();

  // ---- Site admin: train and persist the energy model -------------------
  {
    model::AcquisitionOptions coarse;
    coarse.thread_counts = {16, 24};
    coarse.cf_stride = 2;
    coarse.ucf_stride = 2;
    api::Session session(api::SessionConfig{}.seed(21).acquisition(coarse));
    session.train_model();
    std::ofstream os(model_path);
    os << session.model().to_json().dump(2);
    std::cout << "energy model saved to " << model_path << '\n';
  }

  // ---- Application owner: load the model, tune the app, save the tuning
  //      model ------------------------------------------------------------
  {
    std::ifstream is(model_path);
    std::ostringstream buf;
    buf << is.rdbuf();

    api::Session session(
        api::SessionConfig{}.tuning_seed(21).tuning_node_id(3));
    session.use_model(model::EnergyModel::from_json(Json::parse(buf.str())));

    const auto app =
        workload::BenchmarkSuite::by_name("BEM4I").with_iterations(10);
    const auto dta = session.run_dta(app).result;
    dta.tuning_model.save(tm_path);
    std::cout << "tuning model for " << app.name() << " saved to " << tm_path
              << " (" << dta.tuning_model.scenarios().size()
              << " scenarios)\n";
  }

  // ---- Production: RRL loads the tuning model (SCOREP_RRL_TMM_PATH) -----
  {
    const auto tuning_model = readex::TuningModel::load(tm_path);
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 5, Rng(21));
    const auto app =
        workload::BenchmarkSuite::by_name("BEM4I").with_iterations(10);

    // Instrument only the regions the tuning model knows about.
    auto filter = instr::InstrumentationFilter::instrument_all();
    for (const auto& r : app.regions())
      if (!tuning_model.lookup(r.name)) filter.exclude(r.name);

    const SystemConfig default_config{24, CoreFreq::mhz(2500),
                                      UncoreFreq::mhz(3000)};
    const auto reference =
        instr::run_uninstrumented(app, node, default_config);
    const auto rat = readex::run_with_rrl(app, node, tuning_model, filter,
                                          default_config);

    const double savings =
        100.0 * (1.0 - rat.run.node_energy / reference.node_energy);
    const double slowdown =
        100.0 * (rat.run.wall_time / reference.wall_time - 1.0);
    std::cout << "\nproduction run on node " << node.node_id() << ":\n"
              << "  " << rat.switches << " configuration switches, "
              << rat.switch_overhead.value() * 1e3 << " ms switching\n"
              << "  node energy savings : " << savings << " %\n"
              << "  run-time cost       : " << slowdown << " %\n";
  }

  std::remove(model_path.c_str());
  std::remove(tm_path.c_str());
  return 0;
}
