// Reproduces paper Table VI: static vs dynamic tuning savings for the five
// evaluation benchmarks -- job energy (sacct), CPU energy (measure-rapl)
// and time, relative to the default configuration (24 threads, 2.5|3.0
// GHz), plus the decomposition of the dynamic slowdown into the
// configuration effect and the DVFS/UFS/Score-P overhead.
#include <iostream>
#include <numeric>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"

using namespace ecotune;

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .train_seed(0x7AB6)
          .tuning_seed(0x7AB7)
          .tuning_node_id(0)
          .jobs(driver_opts.jobs)
          .cache(driver_opts.cache_dir, driver_opts.cache_mode)
          .scope("table6")
          .repeats(5)
          // Average two phase iterations per scenario during DTA
          // verification so the per-region selection is not driven by
          // single-measurement noise.
          .iterations_per_scenario(2));
  bench::banner("Table VI -- Static and dynamic tuning results",
                "savings relative to the 24 thr / 2.5|3.0 GHz default, "
                "averaged over 5 runs (Sec. V-D/E)");

  std::cout << "Training the final energy model...\n";
  session->train_model();

  TextTable table("Table VI: static and dynamic tuning savings (%)");
  table.header({"Benchmark", "static job E", "static CPU E", "static time",
                "dyn job E", "dyn CPU E", "dyn time", "perf red. (cfg)",
                "overhead"});

  std::vector<workload::Benchmark> apps;
  for (const auto& name : workload::BenchmarkSuite::evaluation_names())
    apps.push_back(workload::BenchmarkSuite::by_name(name).with_iterations(12));
  const std::vector<core::SavingsRow> rows =
      session->evaluate_savings(apps).rows;

  double s_job = 0, s_cpu = 0, d_job = 0, d_cpu = 0;
  for (const auto& row : rows) {
    table.row({row.benchmark, TextTable::pct(row.static_job_energy_pct),
               TextTable::pct(row.static_cpu_energy_pct),
               TextTable::pct(row.static_time_pct),
               TextTable::pct(row.dynamic_job_energy_pct),
               TextTable::pct(row.dynamic_cpu_energy_pct),
               TextTable::pct(row.dynamic_time_pct),
               TextTable::pct(row.perf_reduction_config_pct),
               TextTable::pct(row.overhead_pct)});
    s_job += row.static_job_energy_pct;
    s_cpu += row.static_cpu_energy_pct;
    d_job += row.dynamic_job_energy_pct;
    d_cpu += row.dynamic_cpu_energy_pct;
  }
  const double n = static_cast<double>(rows.size());
  table.separator();
  table.row({"average", TextTable::pct(s_job / n), TextTable::pct(s_cpu / n),
             "", TextTable::pct(d_job / n), TextTable::pct(d_cpu / n), "",
             "", ""});
  table.print(std::cout);

  std::cout << "\nPaper Table VI averages: static 3.5% job / 7.8% CPU; "
               "dynamic 7.53% job / 16.1% CPU.\n"
            << "Reproduced shape requirements:\n"
            // Parity band: 2 pp per benchmark. The dynamic-vs-static CPU
            // margin swings by ~±1.3 pp across noise realizations (the
            // model recommendation shifts the verified neighborhood), so a
            // 1 pp band flags ordinary realization noise as failure.
            << "  dynamic CPU savings at parity or better    : "
            << (d_cpu >= s_cpu - 2.0 * n ? "yes" : "NO") << '\n'
            << "  CPU savings > job savings (node baseline)  : "
            << (d_cpu / n > d_job / n && s_cpu / n > s_job / n ? "yes" : "NO")
            << '\n';
  bool dyn_slower = true, overhead_negative = true;
  for (const auto& r : rows) {
    dyn_slower &= r.dynamic_time_pct < 0.0;  // slower than the default run
    overhead_negative &= r.overhead_pct < 0.0;
  }
  std::cout << "  dynamic tuning costs run time              : "
            << (dyn_slower ? "yes" : "NO") << '\n'
            << "  switching+Score-P overhead is negative     : "
            << (overhead_negative ? "yes" : "NO") << '\n';

  std::cout << "\nReproduction note: the paper reports dynamic tuning saving ~2x the CPU energy\n"
               "of static tuning even where its own Table III assigns nearly all regions one\n"
               "shared configuration (so per-region gains are structurally small). Under this\n"
               "simulator's controlled protocol -- same node, an oracle exhaustive static\n"
               "baseline, and instrumentation overhead charged to the dynamic run -- dynamic\n"
               "tuning reaches parity on homogeneous applications and wins where regions\n"
               "genuinely differ (thread-scaling heterogeneity). The paper's larger margin is\n"
               "consistent with run-to-run / session variability in its bare-metal protocol.\n";

  std::cout << "\nPer-benchmark tuning-model statistics:\n";
  for (const auto& r : rows) {
    std::cout << "  " << r.benchmark << ": "
              << r.dta.tuning_model.region_count() << " regions in "
              << r.dta.tuning_model.scenarios().size()
              << " scenarios, " << r.dynamic_switches
              << " switches per production run, static config "
              << to_string(r.static_config) << '\n';
  }
  session->print_store_summary();
  return 0;
}
