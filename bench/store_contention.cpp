// Measurement-store contention microbenchmark: concurrent hit-path lookup
// throughput of the sharded in-memory index (PR 10) versus the same index
// forced onto a single shard -- i.e. the pre-sharding one-big-mutex
// design. This is the workload the tuning service (src/serve) puts on the
// store: many worker threads answering tenant requests from one shared
// cache, where every request is a scoped-task lookup that bumps the
// per-shard hit counters under the shard lock.
//
//   store_contention [--repeats N] [--quick] [--json]
//
// Each (shards, threads) cell reports ns per lookup, minimum over
// --repeats runs (the standard robust microbenchmark estimator; all
// figures lower-is-better). Thread counts follow the ISSUE acceptance
// grid: 1 (uncontended baseline), 4 (typical service --workers), 16 (the
// stress-test fan-in, one thread per default shard). Lookups all hit --
// the miss path never takes a second lock, so hits are the contended
// case -- and every thread starts its key walk at a different offset so
// concurrent threads touch different shards when shards are available.
//
// Correctness note, proved by ServeShardedStore.* in tests/test_serve.cpp:
// the shard count is purely a concurrency knob. Both configurations give
// byte-identical lookup results and identical stats totals; only the wall
// time differs.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "store/measurement_store.hpp"

using namespace ecotune;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  int repeats = 3;
  bool quick = false;
  bool json = false;
};

[[noreturn]] void usage(int code) {
  std::cout << "usage: store_contention [--repeats N] [--quick] [--json]\n"
               "  --repeats N  repetitions per cell; the minimum is "
               "reported (default 3)\n"
               "  --quick      smaller workload (CI smoke test)\n"
               "  --json       emit a machine-readable report instead of "
               "the table\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "error: --repeats needs a value\n";
        std::exit(2);
      }
      o.repeats = cli::parse_strict_int_or_exit("--repeats", argv[++i], 1);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else {
      std::cerr << "error: unknown argument '" << argv[i] << "'\n";
      usage(2);
    }
  }
  return o;
}

/// Fixed key population shared by every cell. Payloads are tiny (one
/// number) so the measurement isolates index locking, not Json copying.
constexpr std::size_t kQuickKeys = 256;
constexpr std::size_t kFullKeys = 2048;

std::vector<store::MeasurementKey> make_keys(std::size_t count) {
  std::vector<store::MeasurementKey> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    store::MeasurementKey key;
    key.task = "contention/task-";
    key.task += std::to_string(i);
    key.fingerprint = 0x9e3779b97f4a7c15ull ^ (i * 0x100000001b3ull);
    keys.push_back(std::move(key));
  }
  return keys;
}

/// One timed cell: `threads` pool tasks each walk the whole key set
/// `rounds` times (offset start per task so concurrent tasks land on
/// different shards). Returns ns per lookup.
double time_lookups(store::MeasurementStore& store,
                    const std::vector<store::MeasurementKey>& keys,
                    int threads, std::size_t rounds) {
  ThreadPool pool(threads);
  const std::size_t n = keys.size();
  const auto t0 = Clock::now();
  pool.run(static_cast<std::size_t>(threads), [&](std::size_t task) {
    const std::size_t offset = task * (n / static_cast<std::size_t>(threads));
    std::size_t alive = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto& key = keys[(offset + i) % n];
        if (store.lookup(key).has_value()) ++alive;
      }
    }
    if (alive != rounds * n) {
      std::cerr << "error: lookup missed on the hit path\n";
      std::exit(1);
    }
  });
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double ops =
      static_cast<double>(threads) * static_cast<double>(rounds * n);
  return seconds / ops * 1e9;
}

double bench_cell(const std::string& dir, std::size_t shards, int threads,
                  const std::vector<store::MeasurementKey>& keys,
                  const Options& o) {
  // Reopen per cell so each configuration loads the same on-disk entries
  // into a fresh index with the shard count under test. ro mode keeps the
  // appender (and its mutex) idle: pure index contention.
  const std::size_t rounds = o.quick ? 8 : 64;
  double best = 0.0;
  for (int r = 0; r < o.repeats; ++r) {
    store::MeasurementStore store;
    store.open(dir, store::StoreMode::kReadOnly, "bench", shards);
    const double ns = time_lookups(store, keys, threads, rounds);
    best = r == 0 ? ns : std::min(best, ns);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  namespace fs = std::filesystem;

  const fs::path dir =
      fs::temp_directory_path() / "ecotune_store_contention_bench";
  std::error_code ec;
  fs::remove_all(dir, ec);

  // Populate once in rw mode; every timed cell replays this directory.
  const std::vector<store::MeasurementKey> keys =
      make_keys(o.quick ? kQuickKeys : kFullKeys);
  {
    store::MeasurementStore writer;
    writer.open(dir.string(), store::StoreMode::kReadWrite, "bench");
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Json payload = Json::object();
      payload["value"] = static_cast<double>(i) * 0.5;
      writer.insert(keys[i], payload);
    }
  }

  const std::vector<int> thread_counts = {1, 4, 16};
  const std::vector<std::size_t> shard_counts = {
      1, store::MeasurementStore::kDefaultShardCount};

  // cell[t][s] = ns per lookup at thread_counts[t], shard_counts[s].
  std::vector<std::vector<double>> cell(
      thread_counts.size(), std::vector<double>(shard_counts.size(), 0.0));
  for (std::size_t t = 0; t < thread_counts.size(); ++t)
    for (std::size_t s = 0; s < shard_counts.size(); ++s)
      cell[t][s] =
          bench_cell(dir.string(), shard_counts[s], thread_counts[t], keys, o);

  fs::remove_all(dir, ec);

  if (o.json) {
    Json results = Json::object();
    for (std::size_t t = 0; t < thread_counts.size(); ++t)
      for (std::size_t s = 0; s < shard_counts.size(); ++s) {
        std::string name = "store_lookup_shard";
        name += std::to_string(shard_counts[s]);
        name += "_t";
        name += std::to_string(thread_counts[t]);
        name += "_ns_per_op";
        results[name] = cell[t][s];
      }
    Json report = Json::object();
    report["schema"] = std::string("ecotune-store-contention/1");
    report["keys"] = static_cast<double>(keys.size());
    report["estimator"] =
        std::string("min over " + std::to_string(o.repeats) + " repeats");
    report["results"] = std::move(results);
    std::cout << report.dump(2) << '\n';
    return 0;
  }

  std::cout << "Measurement-store lookup contention ("
            << keys.size() << " keys, hit path, ns per lookup, min over "
            << o.repeats << " repeats)\n\n";
  std::cout << std::left << std::setw(8) << "threads" << std::right
            << std::setw(16) << "1 shard" << std::setw(16) << "16 shards"
            << std::setw(10) << "speedup" << '\n';
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    std::cout << std::left << std::setw(8) << thread_counts[t] << std::right
              << std::fixed << std::setprecision(1) << std::setw(16)
              << cell[t][0] << std::setw(16) << cell[t][1]
              << std::setprecision(2) << std::setw(9)
              << cell[t][0] / cell[t][1] << 'x' << '\n';
  }
  std::cout << "\nspeedup = single-mutex / sharded (lower ns is better); "
               "shard count never\nchanges lookup results, only how many "
               "threads can hold an index lock at once.\n";
  return 0;
}
