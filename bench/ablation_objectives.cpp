// Extension (paper Sec. VI future work): tuning under the alternative
// energy-based objectives EDP, ED2P and TCO. For each objective the static
// optimum of every evaluation benchmark is computed, showing how the
// optimum shifts toward higher frequencies as the objective weights time
// more heavily.
#include <iostream>

#include "bench_common.hpp"
#include "baseline/static_tuner.hpp"
#include "common/table.hpp"
#include "ptf/objectives.hpp"

using namespace ecotune;

int main() {
  bench::banner("Ablation -- tuning objectives (energy / EDP / ED2P / TCO)",
                "Sec. VI outlook: support for other energy-based tuning "
                "objectives");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xAB10));
  node.set_jitter(0.0);

  const std::vector<std::string> objectives{"energy", "edp", "ed2p", "tco",
                                            "time"};
  baseline::StaticTunerOptions opts;
  opts.cf_stride = 1;
  opts.ucf_stride = 1;
  baseline::StaticTuner tuner(node, opts);

  for (const auto& name : workload::BenchmarkSuite::evaluation_names()) {
    TextTable table("Optimal static configuration of " + name +
                    " per objective");
    table.header({"objective", "thr", "CF", "UCF", "E vs energy-best",
                  "T vs energy-best"});
    const auto& app = workload::BenchmarkSuite::by_name(name);

    // Reference: the energy-optimal point.
    const auto energy_best = tuner.tune(app, ptf::EnergyObjective{});
    for (const auto& obj_name : objectives) {
      const auto obj = ptf::make_objective(obj_name);
      const auto result = tuner.tune(app, *obj);
      table.row(
          {std::string(obj_name), std::to_string(result.best.threads),
           TextTable::num(result.best.core.as_ghz(), 2),
           TextTable::num(result.best.uncore.as_ghz(), 2),
           TextTable::pct(100.0 * (result.best_point.node_energy /
                                       energy_best.best_point.node_energy -
                                   1.0)),
           TextTable::pct(100.0 * (result.best_point.time /
                                       energy_best.best_point.time -
                                   1.0))});
    }
    table.print(std::cout);
  }
  std::cout << "Expected monotonicity: energy -> EDP -> ED2P -> time "
               "raises core frequency\n(and for memory-bound codes the "
               "uncore frequency) toward the performance corner.\n";
  return 0;
}
