// Reproduces paper Table V: the optimal static configuration (OpenMP
// threads, core frequency, uncore frequency) of the five evaluation
// benchmarks, found by exhaustively running each at every configuration and
// keeping the minimum-energy one.
#include <iostream>

#include "bench_common.hpp"
#include "baseline/static_tuner.hpp"
#include "common/table.hpp"

using namespace ecotune;

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  store::MeasurementStore cache;
  bench::open_store(cache, driver_opts, "table5");
  bench::banner("Table V -- Optimal static configuration",
                "exhaustive (threads x CF x UCF) search per benchmark "
                "(Sec. V-D)");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0x7AB5));
  node.set_jitter(0.002);

  struct PaperRow {
    const char* name;
    int threads;
    double cf, ucf;
  };
  const PaperRow paper[] = {{"Lulesh", 24, 2.40, 1.70},
                            {"Amg2013", 16, 2.50, 2.30},
                            {"miniMD", 24, 2.50, 1.50},
                            {"BEM4I", 24, 2.30, 1.90},
                            {"Mcbenchmark", 20, 1.60, 2.50}};

  TextTable table("Table V: obtained optimal static configuration");
  table.header({"Benchmark", "thr", "CF", "UCF", "paper thr", "paper CF",
                "paper UCF", "runs"});
  baseline::StaticTunerOptions opts;  // full grid
  opts.jobs = driver_opts.jobs;
  opts.store = &cache;
  baseline::StaticTuner tuner(node, opts);
  std::size_t i = 0;
  for (const auto& name : workload::BenchmarkSuite::evaluation_names()) {
    const auto result =
        tuner.tune(workload::BenchmarkSuite::by_name(name));
    table.row({name, std::to_string(result.best.threads),
               TextTable::num(result.best.core.as_ghz(), 2),
               TextTable::num(result.best.uncore.as_ghz(), 2),
               std::to_string(paper[i].threads),
               TextTable::num(paper[i].cf, 2),
               TextTable::num(paper[i].ucf, 2),
               std::to_string(result.runs)});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\nShape check vs paper: compute-bound (Lulesh, miniMD, "
               "BEM4I) at high CF / low UCF,\nmemory-bound (Mcb) at low CF "
               "/ high UCF, Amg2013 thread-limited at 16.\n";
  bench::print_store_summary(cache);
  return 0;
}
