// Reproduces paper Table V: the optimal static configuration (OpenMP
// threads, core frequency, uncore frequency) of the five evaluation
// benchmarks, found by exhaustively running each at every configuration and
// keeping the minimum-energy one. Thin shim over api::Session, which owns
// the node, the measurement store, and the jobs policy.
#include <iostream>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace ecotune;

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .tuning_seed(0x7AB5)
          .tuning_node_id(0)
          .jobs(driver_opts.jobs)
          .cache(driver_opts.cache_dir, driver_opts.cache_mode)
          .scope("table5"));
  bench::banner("Table V -- Optimal static configuration",
                "exhaustive (threads x CF x UCF) search per benchmark "
                "(Sec. V-D)");

  struct PaperRow {
    const char* name;
    int threads;
    double cf, ucf;
  };
  const PaperRow paper[] = {{"Lulesh", 24, 2.40, 1.70},
                            {"Amg2013", 16, 2.50, 2.30},
                            {"miniMD", 24, 2.50, 1.50},
                            {"BEM4I", 24, 2.30, 1.90},
                            {"Mcbenchmark", 20, 1.60, 2.50}};

  TextTable table("Table V: obtained optimal static configuration");
  table.header({"Benchmark", "thr", "CF", "UCF", "paper thr", "paper CF",
                "paper UCF", "runs"});
  std::size_t i = 0;
  for (const auto& name : workload::BenchmarkSuite::evaluation_names()) {
    const auto result =
        session->tune_static(workload::BenchmarkSuite::by_name(name));
    table.row({name, std::to_string(result.best.threads),
               TextTable::num(result.best.core.as_ghz(), 2),
               TextTable::num(result.best.uncore.as_ghz(), 2),
               std::to_string(paper[i].threads),
               TextTable::num(paper[i].cf, 2),
               TextTable::num(paper[i].ucf, 2),
               std::to_string(result.runs)});
    ++i;
  }
  table.print(std::cout);
  std::cout << "\nShape check vs paper: compute-bound (Lulesh, miniMD, "
               "BEM4I) at high CF / low UCF,\nmemory-bound (Mcb) at low CF "
               "/ high UCF, Amg2013 thread-limited at 16.\n";
  session->print_store_summary();
  return 0;
}
