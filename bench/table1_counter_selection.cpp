// Reproduces paper Table I: the PAPI counters selected by the stepwise
// regression algorithm (Chadha et al., IPDPSW'17) with the VIF
// multicollinearity guard, over all 19 benchmarks at the calibration
// configuration.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/dataset.hpp"
#include "pmc/counter_sampler.hpp"
#include "stats/feature_selection.hpp"

using namespace ecotune;

int main() {
  bench::banner("Table I -- Selected performance counters",
                "counter-selection algorithm of Sec. IV-B over all "
                "workloads");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xBEEF));
  node.set_jitter(0.002);

  model::AcquisitionOptions opts = bench::paper_acquisition_options();
  model::DataAcquisition acq(node, opts);
  std::cout << "Collecting all 56 preset counters for 19 benchmarks x 4 "
               "thread counts\n(4 hardware counters per run -> "
            << pmc::CounterSampler::runs_required(56)
            << " multiplexed runs per configuration)...\n";
  const auto survey = acq.survey_counters(workload::BenchmarkSuite::all());
  std::cout << "  " << acq.runs_performed() << " application runs, "
            << survey.rates.rows() << " samples x " << survey.rates.cols()
            << " counters\n\n";

  stats::SelectionOptions sel;
  sel.max_features = 7;  // the paper selects seven counters
  sel.vif_limit = 10.0;
  sel.min_improvement = 1e-4;
  const auto result =
      stats::select_features(survey.rates, survey.mean_node_power, sel);

  TextTable table(
      "Table I: Selected performance counters based on all workloads");
  table.header({"Counter", "mean VIF"});
  for (std::size_t i = 0; i < result.selected.size(); ++i) {
    const auto event = hwsim::all_pmu_events()[result.selected[i]];
    std::string name(hwsim::pmu_event_name(event));
    // The paper lists counters without the PAPI_ prefix.
    if (name.rfind("PAPI_", 0) == 0) name = name.substr(5);
    table.row({name, i == 0 ? "n/a" : TextTable::num(result.vifs[i], 3)});
  }
  table.print(std::cout);

  std::cout << "\nmean VIF of the selected set : "
            << TextTable::num(result.mean_vif, 3)
            << "  (paper: low, well below the harmful threshold of 10)\n"
            << "adjusted R^2 of power fit    : "
            << TextTable::num(result.adjusted_r_squared, 4) << '\n'
            << "\nPaper Table I selects: BR_NTK, LD_INS, L2_ICR, BR_MSP, "
               "RES_STL, SR_INS, L2_DCR\n"
            << "(exact membership depends on the counter noise realization; "
               "the reproduced\nproperty is: ~7 counters, mutually "
               "independent (VIF << 10), spanning branch,\nload/store, "
               "cache and stall behaviour).\n";
  return 0;
}
