// Reproduces paper Tables III and IV: the optimal configuration the tuning
// plugin finds for every significant region of Lulesh and Mcbenchmark --
// the full design-time analysis (pre-processing, exhaustive OpenMP-thread
// step, model-based frequency prediction, 3x3 neighborhood verification).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/dvfs_ufs_plugin.hpp"

using namespace ecotune;

namespace {

void tune_and_print(hwsim::NodeSimulator& node,
                    const model::EnergyModel& trained, int jobs,
                    store::MeasurementStore& cache,
                    const std::string& bench_name, const std::string& title,
                    const std::string& paper_note) {
  const auto app = workload::BenchmarkSuite::by_name(bench_name)
                       .with_iterations(12);
  core::DvfsUfsPlugin::Options plugin_opts;
  plugin_opts.engine.jobs = jobs;
  plugin_opts.engine.store = &cache;
  core::DvfsUfsPlugin plugin(trained, plugin_opts);
  const auto result = plugin.run_dta(app, node);

  std::cout << "--- " << title << ": " << bench_name << " ---\n"
            << "significant regions      : "
            << result.dyn_report.significant.size() << " (threshold "
            << result.dyn_report.threshold.value() * 1e3 << " ms)\n"
            << "autofiltered regions     : "
            << result.autofilter.excluded.size() << '\n'
            << "phase thread optimum     : " << result.phase_threads << '\n'
            << "model recommendation     : " << to_string(result.recommendation.cf)
            << '|' << to_string(result.recommendation.ucf)
            << "  (predicted Enorm "
            << TextTable::num(result.recommendation.predicted_normalized_energy, 3)
            << ")\n"
            << "phase best (verified)    : " << to_string(result.phase_best)
            << "\n\n";

  TextTable table(title + ": best found configuration per significant region");
  table.header({"Region", "OpenMP threads", "CF (GHz)", "UCF (GHz)"});
  for (const auto& sig : result.dyn_report.significant) {
    const auto it = result.region_best.find(sig.name);
    if (it == result.region_best.end()) continue;
    table.row({sig.name, std::to_string(it->second.threads),
               TextTable::num(it->second.core.as_ghz(), 2),
               TextTable::num(it->second.uncore.as_ghz(), 2)});
  }
  table.print(std::cout);
  std::cout << paper_note << '\n'
            << "tuning model scenarios   : "
            << result.tuning_model.scenarios().size() << " (regions with "
            << "equal configurations share a scenario)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  store::MeasurementStore cache;
  bench::open_store(cache, driver_opts, "table3_table4");
  const int jobs = driver_opts.jobs;
  bench::banner("Tables III and IV -- Region-level tuning results",
                "full DTA of the DVFS/UFS/OpenMP plugin on Lulesh and "
                "Mcbenchmark (Sec. V-C)");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0x7AB3));
  node.set_jitter(0.002);

  std::cout << "Training the final energy model...\n";
  hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0, Rng(0x7AB4));
  train_node.set_jitter(0.002);
  const auto trained = bench::train_final_model(train_node, jobs, &cache);

  tune_and_print(node, trained, jobs, cache, "Lulesh", "Table III",
                 "(paper Table III: 5 regions, threads 20-24, CF 2.40-2.50, "
                 "UCF 2.00 --\nregion configs are clamped to the verified "
                 "neighborhood of the phase optimum)");
  tune_and_print(node, trained, jobs, cache, "Mcb", "Table IV",
                 "(paper Table IV: 5 regions, threads 20-24, CF 1.60-1.70, "
                 "UCF 2.20-2.30 --\nmemory-bound: low core frequency, high "
                 "uncore frequency)");
  bench::print_store_summary(cache);
  return 0;
}
