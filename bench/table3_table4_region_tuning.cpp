// Reproduces paper Tables III and IV: the optimal configuration the tuning
// plugin finds for every significant region of Lulesh and Mcbenchmark --
// the full design-time analysis (pre-processing, exhaustive OpenMP-thread
// step, model-based frequency prediction, 3x3 neighborhood verification).
// Thin shim over api::Session: one trained model, sequential DTAs on the
// session's persistent tuning node.
#include <iostream>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace ecotune;

namespace {

void tune_and_print(api::Session& session, const std::string& bench_name,
                    const std::string& title, const std::string& paper_note) {
  const auto app = workload::BenchmarkSuite::by_name(bench_name)
                       .with_iterations(12);
  const api::DtaReport report = session.run_dta(app);
  const core::DtaResult& result = report.result;

  std::cout << "--- " << title << ": " << bench_name << " ---\n"
            << "significant regions      : "
            << result.dyn_report.significant.size() << " (threshold "
            << result.dyn_report.threshold.value() * 1e3 << " ms)\n"
            << "autofiltered regions     : "
            << result.autofilter.excluded.size() << '\n'
            << "phase thread optimum     : " << result.phase_threads << '\n'
            << "model recommendation     : " << to_string(result.recommendation.cf)
            << '|' << to_string(result.recommendation.ucf)
            << "  (predicted Enorm "
            << TextTable::num(result.recommendation.predicted_normalized_energy, 3)
            << ")\n"
            << "phase best (verified)    : " << to_string(result.phase_best)
            << "\n\n";

  TextTable table(title + ": best found configuration per significant region");
  table.header({"Region", "OpenMP threads", "CF (GHz)", "UCF (GHz)"});
  for (const auto& sig : result.dyn_report.significant) {
    const auto it = result.region_best.find(sig.name);
    if (it == result.region_best.end()) continue;
    table.row({sig.name, std::to_string(it->second.threads),
               TextTable::num(it->second.core.as_ghz(), 2),
               TextTable::num(it->second.uncore.as_ghz(), 2)});
  }
  table.print(std::cout);
  std::cout << paper_note << '\n'
            << "tuning model scenarios   : "
            << result.tuning_model.scenarios().size() << " (regions with "
            << "equal configurations share a scenario)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .train_seed(0x7AB4)
          .tuning_seed(0x7AB3)
          .tuning_node_id(0)
          .jobs(driver_opts.jobs)
          .cache(driver_opts.cache_dir, driver_opts.cache_mode)
          .scope("table3_table4"));
  bench::banner("Tables III and IV -- Region-level tuning results",
                "full DTA of the DVFS/UFS/OpenMP plugin on Lulesh and "
                "Mcbenchmark (Sec. V-C)");

  std::cout << "Training the final energy model...\n";
  session->train_model();

  tune_and_print(*session, "Lulesh", "Table III",
                 "(paper Table III: 5 regions, threads 20-24, CF 2.40-2.50, "
                 "UCF 2.00 --\nregion configs are clamped to the verified "
                 "neighborhood of the phase optimum)");
  tune_and_print(*session, "Mcb", "Table IV",
                 "(paper Table IV: 5 regions, threads 20-24, CF 1.60-1.70, "
                 "UCF 2.20-2.30 --\nmemory-bound: low core frequency, high "
                 "uncore frequency)");
  session->print_store_summary();
  return 0;
}
