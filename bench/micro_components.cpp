// Google-benchmark microbenchmarks of the building blocks: simulator kernel
// evaluation, counter derivation, NN inference/training, trace writing and
// post-processing, and a full RRL production run. These quantify the cost
// of the reproduction substrate itself.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/simd.hpp"
#include "hwsim/node.hpp"
#include "instr/scorep_runtime.hpp"
#include "model/energy_model.hpp"
#include "nn/kernels.hpp"
#include "nn/mlp.hpp"
#include "pmc/counter_sampler.hpp"
#include "readex/rrl.hpp"
#include "trace/post_processor.hpp"
#include "trace/trace_listener.hpp"
#include "workload/suite.hpp"

using namespace ecotune;

namespace {

hwsim::KernelTraits bench_kernel() {
  return workload::BenchmarkSuite::by_name("Lulesh").regions()[0].traits;
}

void BM_PerfModelEvaluate(benchmark::State& state) {
  const hwsim::PerfModel model;
  const auto k = bench_kernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.evaluate(k, 24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700)));
  }
}
BENCHMARK(BM_PerfModelEvaluate);

void BM_CounterModelEvaluate(benchmark::State& state) {
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  const hwsim::PerfModel model;
  const auto k = bench_kernel();
  const auto perf =
      model.evaluate(k, 24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hwsim::CounterModel::evaluate(
        spec, k, 24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700), perf));
  }
}
BENCHMARK(BM_CounterModelEvaluate);

void BM_NodeRunKernel(benchmark::State& state) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  const auto k = bench_kernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.run_kernel(k, 24));
  }
}
BENCHMARK(BM_NodeRunKernel);

void BM_MlpInference(benchmark::State& state) {
  Rng rng(2);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  const std::vector<double> x(9, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(x));
  }
}
BENCHMARK(BM_MlpInference);

void BM_MlpTrainSample(benchmark::State& state) {
  Rng rng(3);
  nn::Mlp net(nn::MlpConfig{}, rng);
  const std::vector<double> x(9, 0.3);
  const std::vector<double> y{1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_sample(x, y));
  }
}
BENCHMARK(BM_MlpTrainSample);

void BM_MlpTrainEpoch(benchmark::State& state) {
  // One epoch of per-sample ADAM over a fig5-fold-sized standardized
  // dataset; the dominant cost of EnergyModel::train.
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Matrix x;
  std::vector<double> y;
  bench::synthetic_training_data(n, x, y);
  Rng rng(42);
  nn::Mlp net(nn::MlpConfig{}, rng);
  Rng shuffle(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_epoch(x, y, shuffle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MlpTrainEpoch)->Arg(2048)->Arg(19152);

void BM_MlpForwardBatch(benchmark::State& state) {
  // Batched inference over one 14x18 frequency grid (252 rows); on the
  // scalar reference path bitwise identical to 252 scalar predict()
  // calls, on the AVX2 engine equal within last-ulp FMA contraction.
  Rng rng(2);
  const nn::Mlp net(nn::MlpConfig{}, rng);
  const stats::Matrix x = bench::synthetic_grid_batch();
  const std::size_t grid = x.rows();
  nn::Workspace ws;
  std::vector<double> out(grid);
  for (auto _ : state) {
    net.forward_batch(x, std::span<double>(out), ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_MlpForwardBatch);

void BM_DotKernelScalar(benchmark::State& state) {
  // The width-agnostic dot kernel at the scalar reference level; the
  // pairwise accumulation order makes this directly comparable (and
  // bit-identical) to BM_DotKernelSimd.
  const simd::ScopedLevel level(simd::Level::kScalar);
  const auto& ks = nn::kernels::active();
  std::vector<double> a(256), b(256);
  Rng rng(5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal(0.0, 1.0);
    b[i] = rng.normal(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.dot(a.data(), b.data(), a.size()));
  }
}
BENCHMARK(BM_DotKernelScalar);

void BM_DotKernelSimd(benchmark::State& state) {
  // Same workload on the best vector level the CPU offers.
  const auto& ks = nn::kernels::set_for(simd::detect_best());
  std::vector<double> a(256), b(256);
  Rng rng(5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal(0.0, 1.0);
    b[i] = rng.normal(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.dot(a.data(), b.data(), a.size()));
  }
}
BENCHMARK(BM_DotKernelSimd);

void BM_EnsembleFusedVsSequential(benchmark::State& state) {
  // Five-member ensemble prediction over the 252-row grid: Arg(0) runs
  // member-sequential scalar forwards (the reference path), Arg(1) the
  // fused engine, which sweeps all members over one cache-resident
  // four-sample lane group at a time.
  const simd::ScopedLevel level(state.range(0) == 0 ? simd::Level::kScalar
                                                    : simd::detect_best());
  const auto model = bench::untrained_ensemble_model(5);
  Rng rng(6);
  stats::Matrix raw(252, 9);
  for (std::size_t r = 0; r < raw.rows(); ++r)
    for (std::size_t c = 0; c < raw.cols(); ++c)
      raw(r, c) = rng.uniform(0.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(raw).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(raw.rows()));
}
BENCHMARK(BM_EnsembleFusedVsSequential)->Arg(0)->Arg(1);

void BM_TrainEpochSimd(benchmark::State& state) {
  // BM_MlpTrainEpoch/19152 pinned to a dispatch level: Arg(0) scalar
  // reference, Arg(1) the fused AVX2 engine (the perf_report
  // mlp_train_epoch metric runs whatever level is active).
  const simd::ScopedLevel level(state.range(0) == 0 ? simd::Level::kScalar
                                                    : simd::detect_best());
  const std::size_t n = 19152;
  stats::Matrix x;
  std::vector<double> y;
  bench::synthetic_training_data(n, x, y);
  Rng rng(42);
  nn::Mlp net(nn::MlpConfig{}, rng);
  Rng shuffle(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_epoch(x, y, shuffle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrainEpochSimd)->Arg(0)->Arg(1);

void BM_GridArgminSweep(benchmark::State& state) {
  // Cost of predicting the full 14x18 frequency grid (the plugin's
  // search-space reduction step).
  Rng rng(4);
  nn::Mlp net(nn::MlpConfig{}, rng);
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  for (auto _ : state) {
    double best = 1e300;
    std::vector<double> x(9, 0.3);
    for (auto cf : spec.core_grid.values()) {
      for (auto ucf : spec.uncore_grid.values()) {
        x[7] = cf.as_ghz();
        x[8] = ucf.as_ghz();
        best = std::min(best, net.predict(x));
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_GridArgminSweep);

void BM_GridRecommendBatched(benchmark::State& state) {
  // EnergyModel::recommend on the batched path: one scaled 252-row sweep
  // per ensemble member instead of 252 per-point forwards per member.
  const auto model = bench::untrained_ensemble_model(5);
  const hwsim::CpuSpec spec = hwsim::haswell_ep_spec();
  const std::map<std::string, double> rates = bench::synthetic_counter_rates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.recommend(rates, spec).predicted_normalized_energy);
  }
}
BENCHMARK(BM_GridRecommendBatched);

void BM_TracedApplicationRun(benchmark::State& state) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(5));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(2);
  for (auto _ : state) {
    trace::Otf2Archive archive;
    trace::TraceListener listener(archive, pmc::EventSet{},
                                  pmc::CounterSampler(Rng(6), 0.0));
    instr::ExecutionContext ctx(node);
    instr::ScorepRuntime runtime(
        app, instr::InstrumentationFilter::instrument_all());
    runtime.add_listener(&listener);
    benchmark::DoNotOptimize(runtime.execute(ctx));
    benchmark::DoNotOptimize(archive.records().size());
  }
}
BENCHMARK(BM_TracedApplicationRun);

void BM_TracePostProcess(benchmark::State& state) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(7));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(10);
  trace::Otf2Archive archive;
  trace::TraceListener listener(
      archive,
      pmc::EventSet({hwsim::PmuEvent::kTOT_INS, hwsim::PmuEvent::kLD_INS}),
      pmc::CounterSampler(Rng(8), 0.0));
  instr::ExecutionContext ctx(node);
  instr::ScorepRuntime runtime(
      app, instr::InstrumentationFilter::instrument_all());
  runtime.add_listener(&listener);
  runtime.execute(ctx);
  for (auto _ : state) {
    trace::Otf2PostProcessor post(archive,
                                  std::string(instr::kPhaseRegionName));
    benchmark::DoNotOptimize(post.phase_instances().size());
  }
}
BENCHMARK(BM_TracePostProcess);

void BM_RrlProductionRun(benchmark::State& state) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(9));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(5);
  readex::TuningModel model;
  for (const auto& r : app.regions()) {
    if (r.traits.total_instructions > 1e9)
      model.add_region(r.name,
                       {24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700)});
  }
  auto filter = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app.regions())
    if (!model.lookup(r.name)) filter.exclude(r.name);
  const SystemConfig default_config{24, CoreFreq::mhz(2500),
                                    UncoreFreq::mhz(3000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        readex::run_with_rrl(app, node, model, filter, default_config));
  }
}
BENCHMARK(BM_RrlProductionRun);

}  // namespace

BENCHMARK_MAIN();
