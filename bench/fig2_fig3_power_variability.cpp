// Reproduces paper Figs. 2 and 3: node energy for Lulesh across several
// compute nodes while sweeping core frequency (uncore fixed at 1.5 GHz) and
// uncore frequency (core fixed at 2.0 GHz), raw and normalized at the
// calibration point. Demonstrates the power-variability pitfall and why the
// model is trained on normalized energy.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "instr/scorep_runtime.hpp"

using namespace ecotune;

namespace {

constexpr int kNodes = 4;

double run_energy(hwsim::NodeSimulator& node, const workload::Benchmark& app,
                  int cf_mhz, int ucf_mhz) {
  return instr::run_uninstrumented(
             app, node,
             SystemConfig{24, CoreFreq::mhz(cf_mhz),
                          UncoreFreq::mhz(ucf_mhz)})
      .node_energy.value();
}

void sweep(hwsim::Cluster& cluster, const workload::Benchmark& app,
           bool sweep_core) {
  const auto& spec = cluster.spec();
  const char* what = sweep_core ? "core frequency (UCF = 1.5 GHz)"
                                : "uncore frequency (CF = 2.0 GHz)";
  std::cout << (sweep_core ? "--- Fig. 2: " : "--- Fig. 3: ")
            << "node energy vs " << what << " ---\n";

  std::vector<int> freqs;
  if (sweep_core) {
    for (auto f : spec.core_grid.values()) freqs.push_back(f.as_mhz());
  } else {
    for (auto f : spec.uncore_grid.values()) freqs.push_back(f.as_mhz());
  }

  // Raw energies per node (Figs. 2a / 3a).
  std::vector<std::vector<double>> raw(kNodes);
  for (int n = 0; n < kNodes; ++n) {
    auto& node = cluster.node(n);
    for (int f : freqs) {
      raw[n].push_back(sweep_core ? run_energy(node, app, f, 1500)
                                  : run_energy(node, app, 2000, f));
    }
  }
  // Normalization reference: E at 2.0|1.5 GHz per node (Sec. IV-B).
  std::vector<double> reference(kNodes);
  for (int n = 0; n < kNodes; ++n)
    reference[n] = run_energy(cluster.node(n), app, 2000, 1500);

  TextTable ta(sweep_core ? "Fig. 2a: node energy (J), per compute node"
                          : "Fig. 3a: node energy (J), per compute node");
  TextTable tb(sweep_core
                   ? "Fig. 2b: normalized node energy, per compute node"
                   : "Fig. 3b: normalized node energy, per compute node");
  std::vector<std::string> header{"freq"};
  for (int n = 0; n < kNodes; ++n) header.push_back("run " + std::to_string(n + 1));
  ta.header(header);
  tb.header(header);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    std::vector<std::string> ra{TextTable::num(freqs[i] / 1000.0, 1) + "GHz"};
    std::vector<std::string> rb = ra;
    for (int n = 0; n < kNodes; ++n) {
      ra.push_back(TextTable::num(raw[n][i], 1));
      rb.push_back(TextTable::num(raw[n][i] / reference[n], 4));
    }
    ta.row(ra);
    tb.row(rb);
  }
  ta.print(std::cout);
  tb.print(std::cout);

  // Spread statistics: normalization must shrink the node-to-node spread.
  double raw_spread = 0.0, norm_spread = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    double rlo = 1e300, rhi = 0, nlo = 1e300, nhi = 0;
    for (int n = 0; n < kNodes; ++n) {
      rlo = std::min(rlo, raw[n][i]);
      rhi = std::max(rhi, raw[n][i]);
      const double nv = raw[n][i] / reference[n];
      nlo = std::min(nlo, nv);
      nhi = std::max(nhi, nv);
    }
    raw_spread = std::max(raw_spread, (rhi - rlo) / rlo);
    norm_spread = std::max(norm_spread, (nhi - nlo) / nlo);
  }
  std::cout << "max node-to-node spread: raw "
            << TextTable::pct(100 * raw_spread, 2) << "  ->  normalized "
            << TextTable::pct(100 * norm_spread, 2)
            << "   (normalization cancels per-node power variability)\n\n";
}

}  // namespace

int main() {
  bench::banner("Figs. 2 and 3 -- Power variability across compute nodes",
                "Lulesh, 1 MPI process x 24 OpenMP threads, 4 distinct "
                "nodes (Sec. IV-B)");

  hwsim::Cluster cluster(hwsim::haswell_ep_spec(), 0x7A07);
  for (int n = 0; n < kNodes; ++n) cluster.node(n).set_jitter(0.002);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3);

  sweep(cluster, app, /*sweep_core=*/true);
  sweep(cluster, app, /*sweep_core=*/false);
  return 0;
}
