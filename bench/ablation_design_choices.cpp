// Ablation of the design choices called out in DESIGN.md:
//  1. neighborhood radius of the reduced frequency search (0 / 1 / 2) --
//     tuning cost vs attained energy,
//  2. significance threshold (25 / 100 / 400 ms) -- instrumented regions vs
//     switching overhead,
//  3. scenario grouping on/off -- tuning-model size and switch counts.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"

using namespace ecotune;

namespace {

model::EnergyModel train_once() {
  hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0, Rng(0xAB20));
  train_node.set_jitter(0.002);
  return bench::train_final_model(train_node);
}

}  // namespace

int main() {
  bench::banner("Ablation -- plugin design choices",
                "neighborhood radius, significance threshold, scenario "
                "grouping");

  const auto trained = train_once();
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(12);

  // --- 1. Neighborhood radius -------------------------------------------
  {
    TextTable table("Neighborhood radius vs tuning cost and outcome (Lulesh)");
    table.header({"radius", "freq scenarios", "tuning time (s)",
                  "dyn CPU savings", "dyn time"});
    for (int radius : {0, 1, 2}) {
      hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xAB21));
      node.set_jitter(0.002);
      core::SavingsOptions opts;
      opts.repeats = 3;
      opts.plugin.config.neighborhood_radius = radius;
      opts.static_search.cf_stride = 2;
      opts.static_search.ucf_stride = 2;
      core::SavingsEvaluator evaluator(node, trained, opts);
      const auto row = evaluator.evaluate(app);
      table.row({std::to_string(radius),
                 std::to_string(row.dta.frequency_scenarios),
                 TextTable::num(row.dta.tuning_time.value(), 2),
                 TextTable::pct(row.dynamic_cpu_energy_pct),
                 TextTable::pct(row.dynamic_time_pct)});
    }
    table.print(std::cout);
    std::cout << "Radius 1 (the paper's 3x3) buys region-level verification "
                 "at 9 scenarios; radius 0\ntrusts the model blindly; "
                 "radius 2 spends ~2.8x more scenarios for marginal gains.\n\n";
  }

  // --- 2. Significance threshold ----------------------------------------
  {
    TextTable table("Significance threshold vs regions and overhead (Lulesh)");
    table.header({"threshold (ms)", "significant regions", "switches/run",
                  "overhead", "dyn CPU savings"});
    for (double threshold_ms : {25.0, 100.0, 150.0, 400.0}) {
      hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xAB22));
      node.set_jitter(0.002);
      core::SavingsOptions opts;
      opts.repeats = 3;
      opts.plugin.config.significance_threshold =
          Seconds(threshold_ms / 1e3);
      opts.static_search.cf_stride = 2;
      opts.static_search.ucf_stride = 2;
      core::SavingsEvaluator evaluator(node, trained, opts);
      try {
        const auto row = evaluator.evaluate(app);
        table.row({TextTable::num(threshold_ms, 0),
                   std::to_string(row.dta.dyn_report.significant.size()),
                   std::to_string(row.dynamic_switches),
                   TextTable::pct(row.overhead_pct),
                   TextTable::pct(row.dynamic_cpu_energy_pct)});
      } catch (const Error& e) {
        // Thresholds above every region's mean time leave nothing to tune.
        table.row({TextTable::num(threshold_ms, 0), "0", "-", "-",
                   "DTA infeasible"});
      }
    }
    table.print(std::cout);
    std::cout << "The 100 ms paper threshold keeps the five main regions; "
                 "raising it collapses regions\n(losing per-region "
                 "opportunity), lowering it admits more switch points.\n\n";
  }

  // --- 3. Scenario grouping ---------------------------------------------
  {
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xAB23));
    node.set_jitter(0.002);
    core::DvfsUfsPlugin plugin(trained);
    const auto dta = plugin.run_dta(app, node);
    std::size_t grouped = dta.tuning_model.scenarios().size();
    std::size_t ungrouped = dta.tuning_model.region_count();
    std::cout << "Scenario grouping (System-Scenario methodology, Sec. "
                 "III-D):\n  regions in tuning model : "
              << ungrouped << "\n  scenarios after grouping: " << grouped
              << "\n  lookup table shrinkage  : "
              << TextTable::num(
                     100.0 * (1.0 - static_cast<double>(grouped) /
                                        static_cast<double>(ungrouped)),
                     0)
              << "%\nRegions sharing a configuration never trigger "
                 "back-to-back switches, which is\nexactly why grouping "
                 "reduces the dynamic-switching overhead.\n";
  }
  return 0;
}
