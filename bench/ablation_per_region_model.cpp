// Extension (paper Sec. VI future work): "investigate the application of
// the model based approach to individual significant regions. By that
// regions with a very different best configuration could be identified,
// e.g., IO regions."
//
// Compares phase-level prediction (the published plugin) against per-region
// prediction on an application with strongly heterogeneous regions,
// including an I/O-like checkpoint region whose optimum sits in a corner of
// the frequency space that no phase-level compromise can reach.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"

using namespace ecotune;

namespace {

workload::Benchmark make_heterogeneous_app() {
  using hwsim::KernelTraits;

  KernelTraits solver;  // dense compute: wants high CF, low UCF
  solver.total_instructions = 22e9;
  solver.ipc_peak = 2.4;
  solver.fp_fraction = 0.45;
  solver.vector_fraction = 0.5;
  solver.dram_bytes = 0.1 * solver.total_instructions;
  solver.uncore_cycles = 0.08 * solver.total_instructions;
  solver.parallel_fraction = 0.997;
  solver.contention = 0.002;
  solver.activity = 1.0;

  KernelTraits exchange;  // halo exchange: wants high UCF, low CF
  exchange.total_instructions = 8e9;
  exchange.ipc_peak = 1.3;
  exchange.load_fraction = 0.4;
  exchange.l1d_miss_rate = 0.13;
  exchange.dram_bytes = 3.2 * exchange.total_instructions;
  exchange.uncore_cycles = 0.6 * exchange.total_instructions;
  exchange.parallel_fraction = 0.99;
  exchange.contention = 0.008;
  exchange.overlap = 0.9;
  exchange.activity = 0.62;

  KernelTraits checkpoint;  // I/O-like: stalled, low activity; the paper's
                            // motivating example for per-region prediction
  checkpoint.total_instructions = 3e9;
  checkpoint.ipc_peak = 0.5;
  checkpoint.branch_fraction = 0.2;
  checkpoint.dram_bytes = 0.8 * checkpoint.total_instructions;
  checkpoint.uncore_cycles = 0.3 * checkpoint.total_instructions;
  checkpoint.parallel_fraction = 0.75;
  checkpoint.contention = 0.015;
  checkpoint.overlap = 0.5;
  checkpoint.activity = 0.3;

  return workload::Benchmark(
      "het-app", "user", workload::ProgrammingModel::kHybrid,
      {workload::Region{"implicit_solver", solver, 1},
       workload::Region{"halo_exchange", exchange, 1},
       workload::Region{"checkpoint_io", checkpoint, 1}},
      12, 0.015);
}

}  // namespace

int main() {
  bench::banner("Ablation -- per-region model-based prediction (Sec. VI)",
                "phase-level vs per-region frequency prediction on a "
                "heterogeneous application");

  std::cout << "Training the final energy model...\n";
  hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0, Rng(0xAB30));
  train_node.set_jitter(0.002);
  const auto trained = bench::train_final_model(train_node);

  const auto app = make_heterogeneous_app();

  TextTable table("Phase-level vs per-region prediction (het-app)");
  table.header({"mode", "analysis runs", "freq scenarios", "dyn CPU savings",
                "dyn job savings", "dyn time"});

  core::DtaResult dta_results[2];
  for (int per_region = 0; per_region <= 1; ++per_region) {
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xAB31));
    node.set_jitter(0.002);
    core::SavingsOptions opts;
    opts.repeats = 3;
    opts.plugin.config.per_region_prediction = per_region == 1;
    opts.static_search.cf_stride = 2;
    opts.static_search.ucf_stride = 2;
    core::SavingsEvaluator evaluator(node, trained, opts);
    const auto row = evaluator.evaluate(app);
    dta_results[per_region] = row.dta;
    table.row({per_region ? "per-region" : "phase-level",
               std::to_string(row.dta.analysis_runs),
               std::to_string(row.dta.frequency_scenarios),
               TextTable::pct(row.dynamic_cpu_energy_pct),
               TextTable::pct(row.dynamic_job_energy_pct),
               TextTable::pct(row.dynamic_time_pct)});
  }
  table.print(std::cout);

  std::cout << "\nPer-region recommendations (mode 2):\n";
  for (const auto& [region, rec] : dta_results[1].region_recommendations) {
    std::cout << "  " << region << " -> " << to_string(rec.cf) << '|'
              << to_string(rec.ucf) << "  (predicted Enorm "
              << TextTable::num(rec.predicted_normalized_energy, 3) << ")\n";
  }
  std::cout << "phase-level recommendation: "
            << to_string(dta_results[0].recommendation.cf) << '|'
            << to_string(dta_results[0].recommendation.ucf) << '\n';

  std::cout << "\nRegion configurations in the tuning models:\n";
  for (int m = 0; m <= 1; ++m) {
    std::cout << (m ? "  per-region : " : "  phase-level: ");
    for (const auto& s : dta_results[m].tuning_model.scenarios())
      std::cout << '[' << to_string(s.config) << " x" << s.regions.size()
                << "] ";
    std::cout << '\n';
  }
  std::cout << "\nThe per-region mode spends extra analysis runs and a "
               "larger verification space to\nreach region optima a single "
               "phase-level neighborhood cannot cover.\n";
  return 0;
}
