// Reproduces paper Figs. 6 and 7: the measured normalized-node-energy
// surface over all (CF, UCF) combinations for Lulesh (24 threads,
// compute-bound) and Mcbenchmark (20 threads, memory-bound), annotated with
// the measured optimum (paper: red), the configuration the tuning plugin's
// neural network selects (paper: yellow = '#') and all configurations
// within 2% of the optimum (paper: pink = '+').
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "instr/scorep_runtime.hpp"
#include "model/dataset.hpp"
#include "model/features.hpp"

using namespace ecotune;

namespace {

void heatmap(hwsim::NodeSimulator& node, const model::EnergyModel& trained,
             const std::string& bench_name, int threads,
             const std::string& figure) {
  const auto& spec = node.spec();
  const auto app = workload::BenchmarkSuite::by_name(bench_name)
                       .with_iterations(2);

  // Measured surface (ground truth through the uninstrumented run path).
  const auto cal = instr::run_uninstrumented(
      app, node,
      SystemConfig{threads, spec.calibration_core, spec.calibration_uncore});
  const double e_cal = cal.node_energy.value();

  const auto cfs = spec.core_grid.values();
  const auto ucfs = spec.uncore_grid.values();
  std::vector<std::vector<double>> surface(cfs.size());
  double best = 1e300;
  std::size_t best_ci = 0, best_ui = 0;
  for (std::size_t ci = 0; ci < cfs.size(); ++ci) {
    for (std::size_t ui = 0; ui < ucfs.size(); ++ui) {
      const auto run = instr::run_uninstrumented(
          app, node, SystemConfig{threads, cfs[ci], ucfs[ui]});
      const double e = run.node_energy.value() / e_cal;
      surface[ci].push_back(e);
      if (e < best) {
        best = e;
        best_ci = ci;
        best_ui = ui;
      }
    }
  }

  // Plugin (model) selection from the counter rates at calibration.
  model::AcquisitionOptions acq_opts;
  acq_opts.phase_iterations = 2;
  model::DataAcquisition acq(node, acq_opts);
  const auto rates =
      acq.collect_counter_rates(app, threads, model::paper_feature_events());
  const auto rec = trained.recommend(rates, spec);

  std::cout << "--- " << figure << ": " << bench_name << ", " << threads
            << " OpenMP threads ---\n"
            << "cells: normalized node energy E(cf,ucf)/E(2.0|1.5); "
               "markers: *=optimum, #=model pick, +=within 2%\n\n";

  TextTable table;
  std::vector<std::string> header{"CF\\UCF"};
  for (auto u : ucfs) header.push_back(TextTable::num(u.as_ghz(), 1));
  table.header(header);
  for (std::size_t ci = cfs.size(); ci-- > 0;) {  // high CF on top
    std::vector<std::string> row{TextTable::num(cfs[ci].as_ghz(), 1)};
    for (std::size_t ui = 0; ui < ucfs.size(); ++ui) {
      std::string cell = TextTable::num(surface[ci][ui], 3);
      if (ci == best_ci && ui == best_ui) {
        cell += "*";
      } else if (cfs[ci] == rec.cf && ucfs[ui] == rec.ucf) {
        cell += "#";
      } else if (surface[ci][ui] <= best * 1.02) {
        cell += "+";
      }
      row.push_back(cell);
    }
    table.row(row);
  }
  table.print(std::cout);

  std::cout << "measured optimum  : " << to_string(cfs[best_ci]) << '|'
            << to_string(ucfs[best_ui]) << "  (Enorm "
            << TextTable::num(best, 3) << ")\n"
            << "model selection   : " << to_string(rec.cf) << '|'
            << to_string(rec.ucf) << "  (measured Enorm "
            << TextTable::num(
                   surface[spec.core_grid.index_of(rec.cf)]
                          [spec.uncore_grid.index_of(rec.ucf)],
                   3)
            << ", predicted "
            << TextTable::num(rec.predicted_normalized_energy, 3) << ")\n";
  const double regret =
      surface[spec.core_grid.index_of(rec.cf)]
             [spec.uncore_grid.index_of(rec.ucf)] /
          best -
      1.0;
  std::cout << "selection regret  : " << TextTable::pct(100 * regret, 2)
            << " above the optimum (paper: selections within a few % are "
               "still energy-saving)\n\n";
}

}  // namespace

int main() {
  bench::banner(
      "Figs. 6 and 7 -- Normalized-energy heatmaps and model selection",
      "Lulesh @ 24 threads (Fig. 6, compute-bound: paper best 2.4|1.7, "
      "plugin 2.5|2.1)\nand Mcbenchmark @ 20 threads (Fig. 7, memory-bound: "
      "paper best 1.6|2.5, plugin 1.6|2.3)");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0x6F16));
  node.set_jitter(0.0);  // surfaces are plotted noise-free, as in Fig. 6

  std::cout << "Training the final energy model (14 training benchmarks, 10 "
               "epochs)...\n\n";
  hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0, Rng(0x6F17));
  train_node.set_jitter(0.002);
  const auto trained = bench::train_final_model(train_node);

  heatmap(node, trained, "Lulesh", 24, "Fig. 6");
  heatmap(node, trained, "Mcb", 20, "Fig. 7");
  return 0;
}
