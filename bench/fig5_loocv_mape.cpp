// Reproduces paper Fig. 5 and the Sec. V-B accuracy numbers:
//  - leave-one-benchmark-out cross-validation of the neural-network energy
//    model over all 19 benchmarks (5 epochs per fold),
//  - the average MAPE vs the 10-fold-CV regression baseline of Chadha et
//    al. (paper: NN 5.20 vs regression 7.54),
//  - the final train/test split (5 hybrid benchmarks held out, 10 epochs;
//    paper: MAPE 7.80).
#include <algorithm>
#include <iostream>
#include <numeric>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "model/energy_model.hpp"
#include "model/regression_model.hpp"
#include "stats/crossval.hpp"
#include "stats/metrics.hpp"

using namespace ecotune;

int main(int argc, char** argv) {
  const auto driver_opts = bench::parse_driver_options(argc, argv);
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .train_seed(0xF165)
          .jobs(driver_opts.jobs)
          .cache(driver_opts.cache_dir, driver_opts.cache_mode)
          .scope("fig5"));
  bench::banner("Fig. 5 -- LOOCV MAPE of the energy model",
                "19 benchmarks, all DVFS and UFS states (Sec. V-B)");

  std::cout << "Table II benchmark suite:\n";
  for (const auto& b : workload::BenchmarkSuite::all())
    std::cout << "  " << b.suite() << " / " << b.name() << " ("
              << workload::to_string(b.model()) << ", "
              << b.regions().size() << " regions)\n";

  std::cout << "\nAcquiring training data (full CF x UCF grid, threads "
               "12..24 step 4)...\n";
  const auto dataset =
      session->acquire_dataset(workload::BenchmarkSuite::all());
  std::cout << "  " << dataset.samples.size() << " samples acquired\n\n";

  // --- Fig. 5: LOOCV, 5 epochs per fold ---------------------------------
  const auto groups = dataset.groups();
  const auto splits = stats::leave_one_group_out(groups);
  const auto labels = stats::distinct_groups(groups);

  TextTable table("Fig. 5: MAPE (%) per held-out benchmark (LOOCV, 5 epochs)");
  table.header({"benchmark", "MAPE (%)"});
  // The folds are independent (each trains its own model from fixed seeds),
  // so they spread over the thread pool; the ordered reduction prints rows
  // in fold order, keeping stdout byte-identical for any --jobs.
  const std::vector<double> mapes = parallel_map_ordered(
      splits.size(),
      [&](std::size_t f) {
        model::EnergyModelConfig cfg;
        cfg.epochs = 5;
        model::EnergyModel fold(cfg);
        fold.train(dataset.subset(splits[f].train));
        const auto test = dataset.subset(splits[f].test);
        return stats::mape(test.labels(), fold.predict_all(test));
      },
      driver_opts.jobs);
  for (std::size_t f = 0; f < splits.size(); ++f)
    table.row({labels[f], TextTable::num(mapes[f], 2)});
  table.print(std::cout);

  const double avg =
      std::accumulate(mapes.begin(), mapes.end(), 0.0) / mapes.size();
  const auto [mn, mx] = std::minmax_element(mapes.begin(), mapes.end());
  std::cout << "average MAPE : " << TextTable::num(avg, 2)
            << "   (paper: 5.20)\n"
            << "min / max    : " << TextTable::num(*mn, 2) << " ("
            << labels[static_cast<std::size_t>(mn - mapes.begin())] << ") / "
            << TextTable::num(*mx, 2) << " ("
            << labels[static_cast<std::size_t>(mx - mapes.begin())]
            << ")   (paper: 2.81 Lulesh / 9.35 miniMD)\n\n";

  // --- Regression baseline: 10-fold CV with random indexing -------------
  Rng cv_rng(0xCF01);
  const auto folds = stats::kfold(dataset.samples.size(), 10, cv_rng);
  const std::vector<double> reg_mapes = parallel_map_ordered(
      folds.size(),
      [&](std::size_t f) {
        const auto train = dataset.subset(folds[f].train);
        const auto test = dataset.subset(folds[f].test);
        model::RegressionEnergyModel reg;
        reg.train(train);
        return stats::mape(test.labels(), reg.predict_all(test));
      },
      driver_opts.jobs);
  const double reg_avg =
      std::accumulate(reg_mapes.begin(), reg_mapes.end(), 0.0) /
      reg_mapes.size();
  std::cout << "Regression baseline (two linear models, 10-fold CV with "
               "random indexing):\n  average MAPE "
            << TextTable::num(reg_avg, 2)
            << "   vs network LOOCV " << TextTable::num(avg, 2)
            << "   (paper: 7.54 vs 5.20; the network wins)\n\n";

  // --- Final model: 5 hybrid benchmarks held out, 10 epochs -------------
  const auto& eval_names = workload::BenchmarkSuite::evaluation_names();
  model::EnergyDataset train, test;
  train.feature_names = dataset.feature_names;
  test.feature_names = dataset.feature_names;
  for (const auto& s : dataset.samples) {
    const bool held_out = std::find(eval_names.begin(), eval_names.end(),
                                    s.benchmark) != eval_names.end();
    (held_out ? test : train).samples.push_back(s);
  }
  model::EnergyModelConfig final_cfg;
  final_cfg.epochs = 10;
  final_cfg.jobs = session->jobs();
  model::EnergyModel final_model(final_cfg);
  final_model.train(train);
  const double final_mape =
      stats::mape(test.labels(), final_model.predict_all(test));
  std::cout << "Final split (train 14, test Lulesh/Amg2013/miniMD/BEM4I/Mcb,"
               " 10 epochs):\n  test MAPE "
            << TextTable::num(final_mape, 2) << "   (paper: 7.80)\n";
  session->print_store_summary();
  return 0;
}
