#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "model/features.hpp"
#include "ptf/objectives.hpp"
#include "tuners/registry.hpp"

namespace ecotune::bench {

void banner(const std::string& title, const std::string& paper_reference) {
  std::cout << "\n================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_reference << '\n'
            << "Paper: Chadha & Gerndt, \"Modelling DVFS and UFS for "
               "Region-Based\n       Energy Aware Tuning of HPC "
               "Applications\", IPDPS(W) 2019\n"
            << "================================================================\n\n";
}

namespace {

[[noreturn]] void print_driver_usage(const char* argv0, int exit_code,
                                     bool with_tuner_flags) {
  std::cout
      << "usage: " << argv0
      << " [--jobs N] [--cache-dir DIR] [--cache-mode rw|ro|off]";
  if (with_tuner_flags) std::cout << " [--tuner NAME]... [--objective NAME]";
  std::cout
      << "\n  --jobs N         parallel sweep workers (default: hardware "
         "concurrency;\n                   output is identical for any N)\n"
      << "  --cache-dir DIR  persistent measurement store; a warm rerun "
         "answers seen\n                   measurements from the store and "
         "prints byte-identical\n                   stdout\n"
      << "  --cache-mode M   rw|ro|off (default: rw with --cache-dir, off "
         "otherwise)\n";
  if (with_tuner_flags) {
    std::cout
        << "  --tuner NAME     compare a registered strategy instead of the "
           "default\n                   tables; repeat the flag to compare "
           "several\n                   (registered: "
        << tuners::default_registry().names_joined() << ")\n"
        << "  --objective NAME objective for --tuner mode (default energy;\n"
           "                   registered: "
        << ptf::objective_names_joined()
        << ";\n                   power_cap:<W> / energy_budget:<J> "
           "parameterize the cap)\n";
  }
  std::exit(exit_code);
}

// Unknown strategy/objective names are CLI errors: exit 2 with the full
// registered vocabulary, exactly like ecotune_dta's flag validation.
std::string validated_tuner(const char* value) {
  const auto& registry = tuners::default_registry();
  if (!registry.contains(value)) {
    std::cerr << "error: unknown tuner '" << value
              << "' (registered: " << registry.names_joined() << ")\n";
    std::exit(2);
  }
  return value;
}

std::string validated_objective(const char* value) {
  try {
    (void)ptf::make_objective(value);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what()
              << " (registered: " << ptf::objective_names_joined() << ")\n";
    std::exit(2);
  }
  return value;
}

DriverOptions parse_driver_options_impl(int argc, char** argv,
                                        TunerSelection* selection) {
  DriverOptions opts;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      const char* value = cli::next_arg_value(argc, argv, i, flag);
      if (value == nullptr) std::exit(2);
      return value;
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = cli::parse_strict_int_or_exit("--jobs", next("--jobs"), 0);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      opts.cache_dir = next("--cache-dir");
    } else if (std::strcmp(argv[i], "--cache-mode") == 0) {
      opts.cache_mode = next("--cache-mode");
    } else if (selection != nullptr &&
               std::strcmp(argv[i], "--tuner") == 0) {
      selection->tuners.push_back(validated_tuner(next("--tuner")));
    } else if (selection != nullptr &&
               std::strcmp(argv[i], "--objective") == 0) {
      selection->objective = validated_objective(next("--objective"));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_driver_usage(argv[0], 0, selection != nullptr);
    } else {
      std::cerr << "error: unknown argument '" << argv[i]
                << "' (try --help)\n";
      std::exit(2);
    }
  }
  opts.jobs = resolve_jobs(jobs);
  return opts;
}

}  // namespace

DriverOptions parse_driver_options(int argc, char** argv) {
  return parse_driver_options_impl(argc, argv, nullptr);
}

DriverOptions parse_driver_options(int argc, char** argv,
                                   TunerSelection& selection) {
  return parse_driver_options_impl(argc, argv, &selection);
}

model::AcquisitionOptions paper_acquisition_options(
    int jobs, store::MeasurementStore* store) {
  model::AcquisitionOptions opts;
  opts.thread_counts = {12, 16, 20, 24};
  opts.cf_stride = 1;
  opts.ucf_stride = 1;
  opts.phase_iterations = 2;
  opts.jobs = jobs;
  opts.store = store;
  return opts;
}

model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options) {
  model::DataAcquisition acq(node, options);
  return acq.acquire(benchmarks);
}

model::EnergyModel train_final_model(hwsim::NodeSimulator& node, int jobs,
                                     store::MeasurementStore* store) {
  const auto dataset = acquire_dataset(
      node, workload::BenchmarkSuite::training_set(),
      paper_acquisition_options(jobs, store));
  model::EnergyModelConfig cfg;
  cfg.jobs = jobs;  // candidate pool trains concurrently; result is
                    // bitwise identical for any job count
  model::EnergyModel model(cfg);
  model.train(dataset, 10);
  return model;
}

void synthetic_training_data(std::size_t samples, stats::Matrix& x,
                             std::vector<double>& y) {
  Rng data_rng(0xDA7A);
  x = stats::Matrix(samples, 9);
  y.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t j = 0; j < 9; ++j) x(i, j) = data_rng.normal(0.0, 1.0);
    y[i] = data_rng.uniform(0.5, 1.5);
  }
}

model::EnergyModel untrained_ensemble_model(int members) {
  Json j = Json::object();
  Json scaler = Json::object();
  Json mean = Json::array();
  Json scale = Json::array();
  for (int k = 0; k < 9; ++k) {
    mean.push_back(0.0);
    scale.push_back(1.0);
  }
  scaler["mean"] = std::move(mean);
  scaler["scale"] = std::move(scale);
  j["scaler"] = std::move(scaler);
  Json nets = Json::array();
  for (int m = 0; m < members; ++m) {
    Rng rng(0x9EED + static_cast<std::uint64_t>(m));
    nets.push_back(nn::Mlp(nn::MlpConfig{}, rng).to_json());
  }
  j["networks"] = std::move(nets);
  j["epochs"] = 10;
  return model::EnergyModel::from_json(j);
}

stats::Matrix synthetic_grid_batch() {
  const std::size_t grid = 14 * 18;
  stats::Matrix x(grid, 9);
  Rng fill(8);
  for (std::size_t r = 0; r < grid; ++r)
    for (std::size_t c = 0; c < 9; ++c) x(r, c) = fill.uniform(0.0, 1.0);
  return x;
}

std::map<std::string, double> synthetic_counter_rates() {
  std::map<std::string, double> rates;
  for (auto e : model::paper_feature_events())
    rates[std::string(hwsim::pmu_event_name(e))] = 1e8;
  return rates;
}

}  // namespace ecotune::bench
