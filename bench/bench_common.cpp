#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "common/parallel.hpp"

namespace ecotune::bench {

void banner(const std::string& title, const std::string& paper_reference) {
  std::cout << "\n================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_reference << '\n'
            << "Paper: Chadha & Gerndt, \"Modelling DVFS and UFS for "
               "Region-Based\n       Energy Aware Tuning of HPC "
               "Applications\", IPDPS(W) 2019\n"
            << "================================================================\n\n";
}

int parse_jobs(int argc, char** argv) {
  int jobs = 0;  // hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "error: --jobs needs a value\n";
        std::exit(2);
      }
      char* end = nullptr;
      jobs = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') {
        std::cerr << "error: --jobs expects an integer, got '" << argv[i]
                  << "'\n";
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::cout << "usage: " << argv[0] << " [--jobs N]\n"
                << "  --jobs N   parallel sweep workers (default: hardware "
                   "concurrency;\n             output is identical for any "
                   "N)\n";
      std::exit(0);
    } else {
      std::cerr << "error: unknown argument '" << argv[i]
                << "' (try --help)\n";
      std::exit(2);
    }
  }
  return resolve_jobs(jobs);
}

model::AcquisitionOptions paper_acquisition_options(int jobs) {
  model::AcquisitionOptions opts;
  opts.thread_counts = {12, 16, 20, 24};
  opts.cf_stride = 1;
  opts.ucf_stride = 1;
  opts.phase_iterations = 2;
  opts.jobs = jobs;
  return opts;
}

model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options) {
  model::DataAcquisition acq(node, options);
  return acq.acquire(benchmarks);
}

model::EnergyModel train_final_model(hwsim::NodeSimulator& node, int jobs) {
  const auto dataset = acquire_dataset(
      node, workload::BenchmarkSuite::training_set(),
      paper_acquisition_options(jobs));
  model::EnergyModel model;
  model.train(dataset, 10);
  return model;
}

}  // namespace ecotune::bench
