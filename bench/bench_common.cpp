#include "bench_common.hpp"

namespace ecotune::bench {

void banner(const std::string& title, const std::string& paper_reference) {
  std::cout << "\n================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_reference << '\n'
            << "Paper: Chadha & Gerndt, \"Modelling DVFS and UFS for "
               "Region-Based\n       Energy Aware Tuning of HPC "
               "Applications\", IPDPS(W) 2019\n"
            << "================================================================\n\n";
}

model::AcquisitionOptions paper_acquisition_options() {
  model::AcquisitionOptions opts;
  opts.thread_counts = {12, 16, 20, 24};
  opts.cf_stride = 1;
  opts.ucf_stride = 1;
  opts.phase_iterations = 2;
  return opts;
}

model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options) {
  model::DataAcquisition acq(node, options);
  return acq.acquire(benchmarks);
}

model::EnergyModel train_final_model(hwsim::NodeSimulator& node) {
  const auto dataset = acquire_dataset(
      node, workload::BenchmarkSuite::training_set(),
      paper_acquisition_options());
  model::EnergyModel model;
  model.train(dataset, 10);
  return model;
}

}  // namespace ecotune::bench
