#pragma once

#include <iostream>
#include <string>

#include "hwsim/cluster.hpp"
#include "model/dataset.hpp"
#include "model/energy_model.hpp"
#include "store/measurement_store.hpp"
#include "workload/suite.hpp"

namespace ecotune::bench {

/// Prints a banner identifying the reproduced paper artifact.
void banner(const std::string& title, const std::string& paper_reference);

/// Shared CLI of the cache-aware drivers: `--jobs N` plus the measurement
/// store flags `--cache-dir DIR` and `--cache-mode rw|ro|off` (default: rw
/// when --cache-dir is given, off otherwise).
struct DriverOptions {
  int jobs = 1;  ///< already resolved (never 0)
  std::string cache_dir;
  store::StoreMode cache_mode = store::StoreMode::kOff;
};

/// Parses DriverOptions; exits with usage on unknown arguments or a bad
/// value, so every table/fig driver gets a uniform CLI for free.
[[nodiscard]] DriverOptions parse_driver_options(int argc, char** argv);

/// Opens `store` as the options request (no-op when the cache is off).
/// `scope` is the driver's name: it namespaces the store's task keys so
/// several drivers can share one --cache-dir without their identical task
/// ids invalidating each other. Exits 2 with a clean message on failure
/// (unwritable directory, ...), like every other CLI error.
void open_store(store::MeasurementStore& store, const DriverOptions& opts,
                const std::string& scope);

/// Prints the store's hit/miss summary to stderr when it is enabled.
/// Stderr, not stdout: driver stdout must stay byte-identical between cold
/// and warm runs; the counters are the warm-restart diagnostics.
void print_store_summary(const store::MeasurementStore& store);

/// Paper-faithful acquisition options: threads 12..24 step 4, full CF x UCF
/// grid, two phase iterations per acquisition run. `jobs` controls how many
/// benchmarks acquire concurrently (output is jobs-invariant); `store`
/// optionally answers whole per-benchmark sweeps from a previous session.
[[nodiscard]] model::AcquisitionOptions paper_acquisition_options(
    int jobs = 1, store::MeasurementStore* store = nullptr);

/// Acquires the full training dataset over `benchmarks` on `node`.
[[nodiscard]] model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options);

/// Trains the paper's final energy model: fit on the 14 training benchmarks
/// for 10 epochs (Sec. V-B). Acquisition parallelizes over `jobs` workers
/// and consults `store` when given.
[[nodiscard]] model::EnergyModel train_final_model(
    hwsim::NodeSimulator& node, int jobs = 1,
    store::MeasurementStore* store = nullptr);

/// Synthetic standardized dataset shaped like the acquired training set
/// (9 N(0,1) features, labels in [0.5, 1.5), fixed seed). Shared by the
/// perf tools (tools/perf_report, bench/micro_components) so their
/// train-epoch workloads stay comparable across the BENCH_*.json
/// trajectory.
void synthetic_training_data(std::size_t samples, stats::Matrix& x,
                             std::vector<double>& y);

/// EnergyModel assembled from `members` untrained (He-initialized,
/// fixed-seed) ensemble members behind an identity scaler. Inference cost
/// does not depend on the weight values, so the perf tools use this to
/// benchmark the grid-recommendation path without paying for training.
[[nodiscard]] model::EnergyModel untrained_ensemble_model(int members);

/// 252-row (14x18 grid) random 9-feature batch, fixed seed — the
/// forward-batch microbench input of both perf tools.
[[nodiscard]] stats::Matrix synthetic_grid_batch();

/// Paper-counter rate map (1e8 counts/s each) — the grid-recommend
/// microbench input of both perf tools.
[[nodiscard]] std::map<std::string, double> synthetic_counter_rates();

}  // namespace ecotune::bench
