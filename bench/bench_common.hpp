#pragma once

#include <iostream>
#include <string>

#include "hwsim/cluster.hpp"
#include "model/dataset.hpp"
#include "model/energy_model.hpp"
#include "workload/suite.hpp"

namespace ecotune::bench {

/// Prints a banner identifying the reproduced paper artifact.
void banner(const std::string& title, const std::string& paper_reference);

/// Parses the drivers' shared `--jobs N` flag (0/omitted = hardware
/// concurrency). Exits with usage on unknown arguments, so every table/fig
/// driver gets a uniform CLI for free.
[[nodiscard]] int parse_jobs(int argc, char** argv);

/// Paper-faithful acquisition options: threads 12..24 step 4, full CF x UCF
/// grid, two phase iterations per acquisition run. `jobs` controls how many
/// benchmarks acquire concurrently (output is jobs-invariant).
[[nodiscard]] model::AcquisitionOptions paper_acquisition_options(
    int jobs = 1);

/// Acquires the full training dataset over `benchmarks` on `node`.
[[nodiscard]] model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options);

/// Trains the paper's final energy model: fit on the 14 training benchmarks
/// for 10 epochs (Sec. V-B). Acquisition parallelizes over `jobs` workers.
[[nodiscard]] model::EnergyModel train_final_model(hwsim::NodeSimulator& node,
                                                   int jobs = 1);

}  // namespace ecotune::bench
