#pragma once

#include <iostream>
#include <string>

#include "hwsim/cluster.hpp"
#include "model/dataset.hpp"
#include "model/energy_model.hpp"
#include "store/measurement_store.hpp"
#include "workload/suite.hpp"

namespace ecotune::bench {

/// Prints a banner identifying the reproduced paper artifact.
void banner(const std::string& title, const std::string& paper_reference);

/// Shared CLI of the cache-aware drivers: `--jobs N` plus the measurement
/// store flags `--cache-dir DIR` and `--cache-mode rw|ro|off`. The cache
/// mode is kept as raw text; resolution (and the exit-2 error path) happens
/// once, inside api::open_session_or_exit, when the driver opens its
/// Session.
struct DriverOptions {
  int jobs = 1;  ///< already resolved (never 0)
  std::string cache_dir;
  std::string cache_mode;  ///< raw --cache-mode text (empty = default)
};

/// Parses DriverOptions; exits with usage on unknown arguments or a bad
/// value, so every table/fig driver gets a uniform CLI for free. Numeric
/// flags go through cli::parse_strict_int: "--jobs ten" fails loudly here
/// exactly as it does in ecotune_dta.
[[nodiscard]] DriverOptions parse_driver_options(int argc, char** argv);

/// --tuner mode of the strategy-aware drivers: one or more registered
/// strategy names (user order, repeatable) plus the objective they
/// optimize. An empty `tuners` list means the driver's classic default
/// mode, whose stdout stays byte-identical.
struct TunerSelection {
  std::vector<std::string> tuners;
  std::string objective = "energy";
};

/// parse_driver_options plus the strategy flags `--tuner NAME`
/// (repeatable) and `--objective NAME`. Unknown names exit 2 and list the
/// registered vocabulary (tuners::default_registry / ptf::objective_names).
[[nodiscard]] DriverOptions parse_driver_options(int argc, char** argv,
                                                 TunerSelection& selection);

/// Paper-faithful acquisition options: threads 12..24 step 4, full CF x UCF
/// grid, two phase iterations per acquisition run. `jobs` controls how many
/// benchmarks acquire concurrently (output is jobs-invariant); `store`
/// optionally answers whole per-benchmark sweeps from a previous session.
[[nodiscard]] model::AcquisitionOptions paper_acquisition_options(
    int jobs = 1, store::MeasurementStore* store = nullptr);

/// Acquires the full training dataset over `benchmarks` on `node`.
[[nodiscard]] model::EnergyDataset acquire_dataset(
    hwsim::NodeSimulator& node,
    const std::vector<workload::Benchmark>& benchmarks,
    model::AcquisitionOptions options);

/// Trains the paper's final energy model: fit on the 14 training benchmarks
/// for 10 epochs (Sec. V-B). Acquisition parallelizes over `jobs` workers
/// and consults `store` when given.
[[nodiscard]] model::EnergyModel train_final_model(
    hwsim::NodeSimulator& node, int jobs = 1,
    store::MeasurementStore* store = nullptr);

/// Synthetic standardized dataset shaped like the acquired training set
/// (9 N(0,1) features, labels in [0.5, 1.5), fixed seed). Shared by the
/// perf tools (tools/perf_report, bench/micro_components) so their
/// train-epoch workloads stay comparable across the BENCH_*.json
/// trajectory.
void synthetic_training_data(std::size_t samples, stats::Matrix& x,
                             std::vector<double>& y);

/// EnergyModel assembled from `members` untrained (He-initialized,
/// fixed-seed) ensemble members behind an identity scaler. Inference cost
/// does not depend on the weight values, so the perf tools use this to
/// benchmark the grid-recommendation path without paying for training.
[[nodiscard]] model::EnergyModel untrained_ensemble_model(int members);

/// 252-row (14x18 grid) random 9-feature batch, fixed seed — the
/// forward-batch microbench input of both perf tools.
[[nodiscard]] stats::Matrix synthetic_grid_batch();

/// Paper-counter rate map (1e8 counts/s each) — the grid-recommend
/// microbench input of both perf tools.
[[nodiscard]] std::map<std::string, double> synthetic_counter_rates();

}  // namespace ecotune::bench
