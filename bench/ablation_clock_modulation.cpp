// Extension: DVFS vs software clock modulation (both listed as
// user-controllable power switches in the paper's introduction). For a
// range of target slowdowns, compares the node energy of reaching that
// slowdown via core-frequency scaling against duty-cycle modulation at the
// nominal frequency -- reproducing the canonical result that DVFS
// dominates because it lowers the voltage as well as the clock.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "hwsim/clock_modulation.hpp"

using namespace ecotune;

int main() {
  bench::banner("Ablation -- DVFS vs software clock modulation",
                "energy at iso-slowdown for the two throttling switches of "
                "the paper's introduction");

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(0xC10C));
  node.set_jitter(0.0);
  const auto& lulesh = workload::BenchmarkSuite::by_name("Lulesh");
  const auto k = lulesh.regions()[0].traits;  // IntegrateStressForElems

  // Reference: nominal 2.5 GHz, no modulation.
  node.set_all_core_freqs(CoreFreq::mhz(2500));
  node.set_all_uncore_freqs(UncoreFreq::mhz(2000));
  const auto reference = node.run_kernel(k, 24);

  TextTable table(
      "Reaching a slowdown via DVFS vs via clock modulation (Lulesh kernel)");
  table.header({"mechanism", "setting", "slowdown", "node power (W)",
                "node energy vs ref"});

  auto row = [&](const std::string& mech, const std::string& setting,
                 const hwsim::KernelRunResult& r) {
    table.row({mech, setting,
               TextTable::num(r.time / reference.time, 2) + "x",
               TextTable::num(r.power.node().value(), 1),
               TextTable::pct(100.0 * (r.node_energy / reference.node_energy -
                                       1.0))});
  };
  row("(reference)", "2.5 GHz, duty 16/16", reference);

  // DVFS points.
  for (int mhz : {2000, 1600, 1300}) {
    node.set_all_core_freqs(CoreFreq::mhz(mhz));
    row("DVFS", TextTable::num(mhz / 1000.0, 1) + " GHz",
        node.run_kernel(k, 24));
  }
  node.set_all_core_freqs(CoreFreq::mhz(2500));

  // Clock-modulation points with comparable slowdowns.
  hwsim::ClockModulation mod(node);
  for (int level : {13, 10, 8}) {
    mod.set_duty_level(level);
    row("clock modulation",
        "duty " + std::to_string(level) + "/16", mod.run_kernel(k, 24));
  }
  table.print(std::cout);

  std::cout << "\nDVFS lowers voltage with frequency (P ~ V^2 f), so at "
               "equal slowdown it always\nconsumes less energy than "
               "duty-cycling at nominal voltage -- the reason the paper's\n"
               "plugin tunes frequencies rather than T-states.\n";
  return 0;
}
