// Reproduces the paper's Sec. V-C tuning-time analysis: the model-based
// plugin needs (k + analysis + 9) experiments -- evaluable within single
// application runs by exploiting progressive phase iterations -- while the
// exhaustive approach of Sourouri et al. [7] needs n x k x l x m full
// application runs. Both are measured on the simulator, alongside the
// paper's closed-form accounting.
#include <iostream>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "baseline/exhaustive_tuner.hpp"
#include "common/table.hpp"
#include "instr/scorep_runtime.hpp"

using namespace ecotune;

int main(int argc, char** argv) {
  bench::TunerSelection selection;
  const auto driver_opts = bench::parse_driver_options(argc, argv, selection);
  auto session = api::open_session_or_exit(
      api::SessionConfig{}
          .train_seed(0x77C0)
          .tuning_seed(0x77C1)
          .tuning_node_id(0)
          .jobs(driver_opts.jobs)
          .cache(driver_opts.cache_dir, driver_opts.cache_mode)
          .scope("tuning_time"));
  const int jobs = session->jobs();
  bench::banner("Sec. V-C -- Tuning-time comparison",
                "model-based plugin (k+1+9 experiments) vs exhaustive "
                "search (n x k x l x m runs)");

  // --tuner mode: run each requested strategy through the common Tuner
  // seam and tabulate its acquisition cost side by side. The classic
  // paper tables below are untouched (and byte-identical) without the
  // flag. Strategies that need the energy model train it lazily inside
  // Session::tune, so governor/qlearn rows never pay for training.
  if (!selection.tuners.empty()) {
    const auto app =
        workload::BenchmarkSuite::by_name("Mcb").with_iterations(14);
    TextTable table("Strategy comparison (Mcbenchmark workload, " +
                    selection.objective + " objective)");
    table.header({"strategy", "scenarios", "app runs",
                  "simulated tuning time", "best configuration"});
    for (const auto& name : selection.tuners) {
      const TuningOutcome outcome =
          session->tune(name, app, selection.objective);
      table.row({outcome.tuner, std::to_string(outcome.scenarios_evaluated),
                 std::to_string(outcome.app_runs),
                 TextTable::num(outcome.tuning_time.value(), 2) + " s",
                 to_string(outcome.best)});
    }
    table.print(std::cout);
    session->print_store_summary();
    return 0;
  }

  std::cout << "Training the final energy model...\n";
  session->train_model();

  hwsim::NodeSimulator& node = session->tuning_node();
  const auto& spec = node.spec();

  TextTable table("Tuning time: ours vs exhaustive (Mcbenchmark workload)");
  table.header({"approach", "experiments", "app runs", "simulated tuning time",
                "speedup"});

  const auto app = workload::BenchmarkSuite::by_name("Mcb").with_iterations(14);

  // One full application run at the default configuration = t.
  {
    hwsim::NodeSimulator probe(hwsim::haswell_ep_spec(), 0, Rng(0x77C2));
    probe.set_jitter(0.0);
    const auto run = instr::run_uninstrumented(
        app, probe,
        SystemConfig{24, spec.default_core, spec.default_uncore});
    std::cout << "one application run t = "
              << TextTable::num(run.wall_time.value(), 2) << " s ("
              << app.phase_iterations() << " phase iterations)\n\n";
  }

  // --- Our plugin -------------------------------------------------------
  const core::DtaResult dta = session->run_dta(app).result;
  const int ours_experiments =
      dta.thread_scenarios + dta.analysis_runs + dta.frequency_scenarios;
  const double ours_time = dta.tuning_time.value();
  table.row({"model-based plugin (ours)",
             std::to_string(dta.thread_scenarios) + " + " +
                 std::to_string(dta.analysis_runs) + " + " +
                 std::to_string(dta.frequency_scenarios) + " = " +
                 std::to_string(ours_experiments),
             std::to_string(dta.app_runs),
             TextTable::num(ours_time, 2) + " s", "1.0x"});

  // --- Exhaustive baseline (coarsened grid, extrapolated to full) -------
  baseline::ExhaustiveTunerOptions ex_opts;
  ex_opts.cf_stride = 2;   // run a quarter of the grid, extrapolate cost
  ex_opts.ucf_stride = 2;
  ex_opts.jobs = jobs;
  ex_opts.store = &session->store();
  baseline::ExhaustiveTuner exhaustive(node, ex_opts);
  const auto ex = exhaustive.tune(app);
  const double grid_scale =
      static_cast<double>(spec.core_grid.size() * spec.uncore_grid.size()) /
      static_cast<double>(ex.runs / 4);  // 4 thread settings ran
  const double ex_measured_full = ex.search_time.value() * grid_scale;
  table.row({"exhaustive sweep (1 run per config)",
             std::to_string(4 * spec.core_grid.size() *
                            spec.uncore_grid.size()),
             std::to_string(static_cast<long>(
                 4 * spec.core_grid.size() * spec.uncore_grid.size())),
             TextTable::num(ex_measured_full, 1) + " s (extrapolated)",
             TextTable::num(ex_measured_full / ours_time, 1) + "x slower"});

  // --- Paper's formula for Sourouri et al. [7] --------------------------
  const double n = 5, k = 4, l = spec.core_grid.size(),
               m = spec.uncore_grid.size();
  const double formula_runs = n * k * l * m;
  const double t_run = ex.formula_time.value() / ex.formula_runs;
  table.row({"Sourouri et al. [7]: n*k*l*m*t",
             TextTable::num(formula_runs, 0),
             TextTable::num(formula_runs, 0),
             TextTable::num(formula_runs * t_run, 1) + " s (formula)",
             TextTable::num(formula_runs * t_run / ours_time, 1) +
                 "x slower"});
  table.print(std::cout);

  std::cout << "\nPaper accounting for Mcbenchmark: exhaustive n*k*l*m*t = 5"
            << "*" << k << "*" << l << "*" << m << "*t = "
            << TextTable::num(formula_runs, 0)
            << "t vs ours (k+1+9)t = 14t; exploiting phase iterations, our "
               "experiments\nshare application runs (here "
            << dta.app_runs << " runs in total, incl. profiling and "
            << dta.analysis_runs << " counter-collection runs).\n";

  // Quality check: the plugin's reduced search still lands near the
  // exhaustive optimum.
  std::cout << "\nexhaustive app-level optimum (coarse grid): "
            << to_string(ex.app_best) << '\n'
            << "plugin phase best                        : "
            << to_string(dta.phase_best) << '\n';
  session->print_store_summary();
  return 0;
}
