#include "api/session.hpp"

#include <cstdlib>
#include <iostream>
#include <utility>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace ecotune::api {

Session::Session(SessionConfig config)
    : config_(std::move(config)), jobs_(resolve_jobs(config_.jobs())) {
  // Process-wide by design: the kernel dispatch level must be uniform or
  // the jobs-invariance guarantee (identical bits at any worker count)
  // would depend on which session touched the model last.
  if (!config_.simd()) simd::set_level(simd::Level::kScalar);
  // Store-mode resolution and the directory open both throw ecotune::Error
  // with a user-facing message; open_session_or_exit maps that to the
  // uniform CLI behavior (exit 2).
  store_.open(
      config_.cache_dir(),
      store::resolve_store_mode(config_.cache_mode(), config_.cache_dir()),
      config_.scope(), config_.store_shards());
}

hwsim::NodeSimulator& Session::training_node() {
  if (!training_node_) {
    training_node_.emplace(config_.spec(), config_.train_node_id(),
                           Rng(config_.train_seed()));
    training_node_->set_jitter(config_.jitter());
  }
  return *training_node_;
}

hwsim::NodeSimulator& Session::tuning_node() {
  if (!tuning_node_) {
    tuning_node_.emplace(config_.spec(), config_.tuning_node_id(),
                         Rng(config_.tuning_seed()));
    tuning_node_->set_jitter(config_.jitter());
  }
  return *tuning_node_;
}

model::EnergyDataset Session::acquire_dataset() {
  return acquire_dataset(workload::BenchmarkSuite::training_set());
}

model::EnergyDataset Session::acquire_dataset(
    const std::vector<workload::Benchmark>& benchmarks) {
  model::AcquisitionOptions opts = config_.acquisition();
  opts.jobs = jobs_;
  opts.store = &store_;
  model::DataAcquisition acquisition(training_node(), opts);
  return acquisition.acquire(benchmarks);
}

const model::EnergyModel& Session::train_model() {
  if (model_) return *model_;
  const auto dataset = acquire_dataset();
  model::EnergyModelConfig model_cfg;
  model_cfg.jobs = jobs_;  // candidate pool trains concurrently, bitwise
                           // identical for any value
  model_.emplace(model_cfg);
  model_->train(dataset, config_.epochs());
  return *model_;
}

void Session::use_model(model::EnergyModel model) {
  ensure(model.trained(),
         "Session::use_model: the injected energy model is untrained");
  model_ = std::move(model);
}

const model::EnergyModel& Session::model() const {
  ensure(model_.has_value(),
         "Session::model: no model yet; call train_model() or use_model()");
  return *model_;
}

core::DvfsUfsPlugin::Options Session::plugin_options() {
  core::DvfsUfsPlugin::Options po;
  po.config.objective = config_.objective();
  po.config.neighborhood_radius = config_.radius();
  po.config.per_region_prediction = config_.per_region();
  po.engine.iterations_per_scenario = config_.iterations_per_scenario();
  po.engine.jobs = jobs_;
  po.engine.store = &store_;
  return po;
}

tuners::TunerContext Session::tuner_context() {
  tuners::TunerContext ctx;
  ctx.node = &tuning_node();
  ctx.model = [this]() -> const model::EnergyModel& { return train_model(); };
  ctx.jobs = jobs_;
  ctx.store = &store_;
  ctx.static_search = config_.static_search();
  ctx.exhaustive_search = config_.exhaustive_search();
  ctx.plugin = plugin_options();
  ctx.qlearn = config_.qlearn();
  ctx.governor = config_.governor();
  return ctx;
}

Tuner& Session::tuner(const std::string& tuner_name) {
  const MutexLock lock(tuners_mutex_);
  auto it = tuners_.find(tuner_name);
  if (it == tuners_.end()) {
    it = tuners_
             .emplace(tuner_name, tuners::default_registry().make(
                                      tuner_name, tuner_context()))
             .first;
  }
  return *it->second;
}

TuningOutcome Session::tune(const std::string& tuner_name,
                            const workload::Benchmark& app) {
  return tune(tuner_name, app, config_.objective());
}

TuningOutcome Session::tune(const std::string& tuner_name,
                            const std::string& benchmark_name) {
  return tune(tuner_name, workload::BenchmarkSuite::by_name(benchmark_name));
}

TuningOutcome Session::tune(const std::string& tuner_name,
                            const workload::Benchmark& app,
                            const std::string& objective) {
  const TuningRequest request{app, objective};
  return tuner(tuner_name).tune(request);
}

DtaReport Session::run_dta(const workload::Benchmark& app) {
  auto& dta = dynamic_cast<tuners::DtaTuner&>(tuner("dta"));
  DtaReport report;
  report.benchmark = app.name();
  report.objective = config_.objective();
  report.result = dta.run(app);
  return report;
}

DtaReport Session::run_dta(const std::string& benchmark_name) {
  return run_dta(workload::BenchmarkSuite::by_name(benchmark_name));
}

CampaignReport Session::run_dta_campaign(
    const std::vector<workload::Benchmark>& apps) {
  const auto& trained = train_model();
  const long call_tag = campaign_calls_++;
  auto& base = tuning_node();
  const core::DvfsUfsPlugin::Options po = plugin_options();

  // Whole-DTA row caching, deliberately mirroring
  // SavingsEvaluator::evaluate_all (core/evaluation.cpp): base fingerprint
  // over node state + plugin/engine options + full model dump, per-row
  // noise-keyed lookup with decode-fallback, clone + elapsed accounting,
  // ordered reduce, base.idle(total). A change to either copy's cache
  // invariants (new fingerprint field, fallback policy) belongs in both.
  store::MeasurementStore* cache = store_.enabled() ? &store_ : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", base.state_fingerprint())
        .add("plugin_config", po.config.to_json().dump(-1))
        .add("engine.iterations_per_scenario",
             po.engine.iterations_per_scenario)
        .add("engine.measurement_noise", po.engine.measurement_noise)
        .add("engine.seed", po.engine.seed)
        // The trained model determines every frequency recommendation, so
        // its full weight state is part of each campaign row's identity.
        .add("model", trained.to_json().dump(-1));
  }

  struct Outcome {
    core::DtaResult result;
    Seconds elapsed{0};
  };
  auto outcomes = parallel_map_ordered(
      apps.size(),
      [&](std::size_t i) {
        const std::string noise_key = "campaign-" + std::to_string(call_tag) +
                                      "-" + std::to_string(i) + "-" +
                                      apps[i].name();
        store::MeasurementKey key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("noise_key", noise_key)
              .add_digest("app", apps[i].fingerprint_digest());
          key.task = "dta/" + noise_key;
          key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(key)) {
            try {
              Outcome out;
              out.result = core::DtaResult::from_json(hit->at("dta"));
              out.elapsed = Seconds(hit->at("elapsed").as_number());
              return out;
            } catch (const std::exception& e) {
              log::error("api")
                  << "undecodable cache payload for '" << key.task << "' ("
                  << e.what() << "); re-running the DTA";
            }
          }
        }

        hwsim::NodeSimulator node = base.clone(noise_key);
        const Seconds t0 = node.now();
        core::DvfsUfsPlugin::Options row_po = po;
        // Campaign rows already parallelize across benchmarks; keep each
        // row's engine serial so a campaign never multiplies worker counts.
        row_po.engine.jobs = 1;
        // Engine-level store entries of concurrent rows must not collide on
        // identical task ids (same benchmark, run counters from zero).
        row_po.engine.key_scope = noise_key;
        core::DvfsUfsPlugin plugin(trained, row_po);
        Outcome out;
        out.result = plugin.run_dta(apps[i], node);
        out.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json payload = Json::object();
          payload["dta"] = out.result.to_json();
          payload["elapsed"] = out.elapsed.value();
          cache->insert(key, payload);
        }
        return out;
      },
      jobs_);

  CampaignReport campaign;
  campaign.reports.reserve(outcomes.size());
  Seconds total{0};
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    DtaReport report;
    report.benchmark = apps[i].name();
    report.objective = config_.objective();
    report.result = std::move(outcomes[i].result);
    campaign.reports.push_back(std::move(report));
    total += outcomes[i].elapsed;
  }
  // The campaign consumed simulated time on the clones; advance the base
  // node by the same amount (mirrors SavingsEvaluator::evaluate_all).
  base.idle(total);
  return campaign;
}

CampaignReport Session::run_dta_campaign(
    const std::vector<std::string>& names) {
  std::vector<workload::Benchmark> apps;
  apps.reserve(names.size());
  for (const auto& name : names)
    apps.push_back(workload::BenchmarkSuite::by_name(name));
  return run_dta_campaign(apps);
}

baseline::StaticTuningResult Session::tune_static(
    const workload::Benchmark& app) {
  return tune_static(app, *ptf::make_objective(config_.objective()));
}

baseline::StaticTuningResult Session::tune_static(
    const workload::Benchmark& app, const ptf::TuningObjective& objective) {
  auto& tuner = dynamic_cast<baseline::StaticTuner&>(this->tuner("static"));
  return tuner.tune(app, objective);
}

SavingsReport Session::evaluate_savings(
    const std::vector<workload::Benchmark>& apps) {
  if (!savings_evaluator_) {
    const auto& trained = train_model();
    core::SavingsOptions opts;
    opts.repeats = config_.repeats();
    opts.static_search = config_.static_search();
    opts.plugin = plugin_options();
    // Rows parallelize across benchmarks; keep the per-row engine serial so
    // the evaluation never multiplies worker counts (exactly the hand-wired
    // drivers' layout). Output is jobs-invariant either way.
    opts.plugin.engine.jobs = 1;
    opts.jobs = jobs_;
    opts.store = &store_;
    savings_evaluator_.emplace(tuning_node(), trained, opts);
  }
  SavingsReport report;
  report.rows = savings_evaluator_->evaluate_all(apps);
  return report;
}

core::SavingsRow Session::evaluate_savings(const workload::Benchmark& app) {
  auto report = evaluate_savings(std::vector<workload::Benchmark>{app});
  return std::move(report.rows.front());
}

void Session::warmup() {
  training_node();
  tuning_node();
  train_model();
}

DtaReport Session::run_dta_shared(const workload::Benchmark& app,
                                  const std::string& request_key) {
  ensure(!request_key.empty(), "Session::run_dta_shared: empty request key");
  ensure(warmed_up(),
         "Session::run_dta_shared: call warmup() before shared entry points");
  const auto& trained = *model_;
  const auto& base = *tuning_node_;  // read-only: shared calls are pure
  const core::DvfsUfsPlugin::Options po = plugin_options();
  const std::string noise_key = "serve-" + request_key;

  // Whole-DTA caching mirroring run_dta_campaign's rows (same fingerprint
  // recipe, same payload shape), but keyed by the request instead of a
  // campaign slot and without advancing the base node: a warm restart of
  // the daemon replays whole reports with zero engine misses.
  store::MeasurementStore* cache = store_.enabled() ? &store_ : nullptr;
  store::MeasurementKey key;
  if (cache != nullptr) {
    Fingerprint fp;
    fp.add_digest("node", base.state_fingerprint())
        .add("plugin_config", po.config.to_json().dump(-1))
        .add("engine.iterations_per_scenario",
             po.engine.iterations_per_scenario)
        .add("engine.measurement_noise", po.engine.measurement_noise)
        .add("engine.seed", po.engine.seed)
        .add("model", trained.to_json().dump(-1))
        .add("noise_key", noise_key)
        .add_digest("app", app.fingerprint_digest());
    key.task = "dta/" + noise_key;
    key.fingerprint = fp.digest();
    if (const auto hit = cache->lookup(key)) {
      try {
        DtaReport report;
        report.benchmark = app.name();
        report.objective = config_.objective();
        report.result = core::DtaResult::from_json(hit->at("dta"));
        return report;
      } catch (const std::exception& e) {
        log::error("api") << "undecodable cache payload for '" << key.task
                          << "' (" << e.what() << "); re-running the DTA";
      }
    }
  }

  hwsim::NodeSimulator node = base.clone(noise_key);
  const Seconds t0 = node.now();
  core::DvfsUfsPlugin::Options row_po = po;
  // The daemon already parallelizes across requests; keep each request's
  // engine serial so concurrent traffic never multiplies worker counts.
  row_po.engine.jobs = 1;
  // Engine-level store entries of concurrent requests must not collide on
  // identical task ids (same benchmark, step counters from zero).
  row_po.engine.key_scope = noise_key;
  core::DvfsUfsPlugin plugin(trained, row_po);
  DtaReport report;
  report.benchmark = app.name();
  report.objective = config_.objective();
  report.result = plugin.run_dta(app, node);

  if (cache != nullptr) {
    Json payload = Json::object();
    payload["dta"] = report.result.to_json();
    payload["elapsed"] = (node.now() - t0).value();
    cache->insert(key, payload);
  }
  return report;
}

DtaReport Session::run_dta_shared(const std::string& benchmark_name,
                                  const std::string& request_key) {
  return run_dta_shared(workload::BenchmarkSuite::by_name(benchmark_name),
                        request_key);
}

TuningOutcome Session::tune_shared(const std::string& tuner_name,
                                   const workload::Benchmark& app,
                                   const std::string& objective,
                                   const std::string& request_key) {
  ensure(!request_key.empty(), "Session::tune_shared: empty request key");
  ensure(tuning_node_.has_value(),
         "Session::tune_shared: call warmup() before shared entry points");
  const std::string noise_key = "serve-" + request_key;
  hwsim::NodeSimulator node = tuning_node_->clone(noise_key);

  tuners::TunerContext ctx;
  ctx.node = &node;
  // model(), not train_model(): training inside a concurrent request would
  // race; warmup() trained the model up front.
  ctx.model = [this]() -> const model::EnergyModel& { return model(); };
  // One request, one worker: the daemon parallelizes across requests.
  ctx.jobs = 1;
  ctx.store = &store_;
  ctx.key_scope = noise_key;
  ctx.static_search = config_.static_search();
  ctx.exhaustive_search = config_.exhaustive_search();
  ctx.plugin = plugin_options();
  ctx.qlearn = config_.qlearn();
  ctx.governor = config_.governor();
  const auto strategy = tuners::default_registry().make(tuner_name, ctx);
  const TuningRequest request{
      app, objective.empty() ? config_.objective() : objective};
  return strategy->tune(request);
}

core::SavingsRow Session::evaluate_savings_shared(
    const workload::Benchmark& app, const std::string& request_key) {
  ensure(!request_key.empty(),
         "Session::evaluate_savings_shared: empty request key");
  ensure(warmed_up(),
         "Session::evaluate_savings_shared: call warmup() before shared "
         "entry points");
  const auto& trained = *model_;
  const auto& base = *tuning_node_;
  const std::string noise_key = "serve-" + request_key;

  core::SavingsOptions opts;
  opts.repeats = config_.repeats();
  opts.static_search = config_.static_search();
  opts.plugin = plugin_options();
  opts.plugin.engine.jobs = 1;
  opts.jobs = 1;
  opts.store = &store_;
  // Namespace the inner static-search and DTA-engine entries by request.
  opts.static_search.key_scope = noise_key;
  opts.plugin.engine.key_scope = noise_key;

  // Whole-row caching mirroring SavingsEvaluator::evaluate_all (same
  // fingerprint recipe, same payload shape), keyed by the request.
  store::MeasurementStore* cache = store_.enabled() ? &store_ : nullptr;
  store::MeasurementKey key;
  if (cache != nullptr) {
    Fingerprint fp;
    fp.add_digest("node", base.state_fingerprint())
        .add("repeats", opts.repeats)
        .add("plugin_config", opts.plugin.config.to_json().dump(-1))
        .add("engine.iterations_per_scenario",
             opts.plugin.engine.iterations_per_scenario)
        .add("engine.measurement_noise", opts.plugin.engine.measurement_noise)
        .add("engine.seed", opts.plugin.engine.seed)
        .add("static.cf_stride", opts.static_search.cf_stride)
        .add("static.ucf_stride", opts.static_search.ucf_stride)
        .add("static.phase_iterations", opts.static_search.phase_iterations)
        .add("model", trained.to_json().dump(-1));
    for (int t : opts.static_search.thread_counts)
      fp.add("static.thread_count", t);
    fp.add("noise_key", noise_key).add_digest("app", app.fingerprint_digest());
    key.task = "savings/" + noise_key;
    key.fingerprint = fp.digest();
    if (const auto hit = cache->lookup(key)) {
      try {
        return core::SavingsRow::from_json(hit->at("row"));
      } catch (const std::exception& e) {
        log::error("api") << "undecodable cache payload for '" << key.task
                          << "' (" << e.what() << "); re-evaluating";
      }
    }
  }

  hwsim::NodeSimulator node = base.clone(noise_key);
  const Seconds t0 = node.now();
  core::SavingsEvaluator evaluator(node, trained, opts);
  core::SavingsRow row = evaluator.evaluate(app);

  if (cache != nullptr) {
    Json payload = Json::object();
    payload["row"] = row.to_json();
    payload["elapsed"] = (node.now() - t0).value();
    cache->insert(key, payload);
  }
  return row;
}

void Session::print_store_summary() const {
  if (store_.enabled()) std::cerr << store_.summary() << '\n';
}

std::unique_ptr<Session> open_session_or_exit(SessionConfig config) {
  try {
    return std::make_unique<Session>(std::move(config));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    std::exit(2);
  }
}

}  // namespace ecotune::api
