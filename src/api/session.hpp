#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/exhaustive_tuner.hpp"
#include "baseline/static_tuner.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "core/evaluation.hpp"
#include "hwsim/node.hpp"
#include "model/dataset.hpp"
#include "model/energy_model.hpp"
#include "ptf/tuner.hpp"
#include "store/measurement_store.hpp"
#include "tuners/registry.hpp"
#include "workload/suite.hpp"

namespace ecotune::api {

/// Builder-style configuration of a Session. Every knob has the canonical
/// default the drivers shipped with (paper-faithful acquisition grid,
/// jitter 0.002, 10 training epochs, energy objective, radius-1
/// verification), so `Session(SessionConfig{})` reproduces the quickstart
/// stack; chained setters override individual knobs:
///
///   api::Session session(api::SessionConfig{}
///       .seed(42).jobs(8).cache(dir, "rw").objective("energy"));
///
/// Seeding convention: `seed(s)` derives the training node from Rng(s) and
/// the tuning node from Rng(s + 1) -- the ecotune_dta convention. Drivers
/// with historical fixed seeds pin them individually via train_seed() /
/// tuning_seed() instead.
class SessionConfig {
 public:
  /// Canonical seed: training node Rng(s), tuning node Rng(s + 1).
  SessionConfig& seed(std::uint64_t s) {
    train_seed_ = s;
    tuning_seed_ = s + 1;
    return *this;
  }
  /// Pins the training-node RNG seed independently of seed().
  SessionConfig& train_seed(std::uint64_t s) {
    train_seed_ = s;
    return *this;
  }
  /// Pins the tuning-node RNG seed independently of seed().
  SessionConfig& tuning_seed(std::uint64_t s) {
    tuning_seed_ = s;
    return *this;
  }
  /// Cluster node ids (default: train on node 0, tune on node 1).
  SessionConfig& train_node_id(int id) {
    train_node_id_ = id;
    return *this;
  }
  SessionConfig& tuning_node_id(int id) {
    tuning_node_id_ = id;
    return *this;
  }
  /// Relative run-to-run jitter of both simulated nodes (default 0.002).
  SessionConfig& jitter(double relative_stddev) {
    jitter_ = relative_stddev;
    return *this;
  }
  /// Parallel workers for sweeps, training, and campaigns (0 = hardware
  /// concurrency). All outputs are bitwise identical for any value.
  SessionConfig& jobs(int n) {
    jobs_ = n;
    return *this;
  }
  /// Persistent measurement store. `mode_text` is the CLI's "rw|ro|off"
  /// (empty = rw when `dir` is non-empty, off otherwise); resolution errors
  /// surface when the Session opens the store.
  SessionConfig& cache(std::string dir, std::string mode_text = {}) {
    cache_dir_ = std::move(dir);
    cache_mode_ = std::move(mode_text);
    return *this;
  }
  /// Store task-key namespace (the driver's name), so several drivers can
  /// share one cache directory without cross-invalidating entries.
  SessionConfig& scope(std::string driver_scope) {
    scope_ = std::move(driver_scope);
    return *this;
  }
  /// Tuning objective: energy|cpu_energy|time|edp|ed2p|tco.
  SessionConfig& objective(std::string name) {
    objective_ = std::move(name);
    return *this;
  }
  /// Energy-model training epochs (paper: 10 for the final model).
  SessionConfig& epochs(int n) {
    epochs_ = n;
    return *this;
  }
  /// Neighborhood radius of the verified frequency search (paper: 1).
  SessionConfig& radius(int n) {
    radius_ = n;
    return *this;
  }
  /// Per-region model-based prediction (paper Sec. VI outlook).
  SessionConfig& per_region(bool on) {
    per_region_ = on;
    return *this;
  }
  /// Phase iterations averaged per DTA verification scenario.
  SessionConfig& iterations_per_scenario(int n) {
    iterations_per_scenario_ = n;
    return *this;
  }
  /// Runs averaged per savings measurement (paper: 5).
  SessionConfig& repeats(int n) {
    repeats_ = n;
    return *this;
  }
  /// Base acquisition options (thread grid, strides, ...); the session
  /// overrides jobs and store.
  SessionConfig& acquisition(model::AcquisitionOptions opts) {
    acquisition_ = std::move(opts);
    return *this;
  }
  /// Base static-search options; the session overrides jobs and store.
  SessionConfig& static_search(baseline::StaticTunerOptions opts) {
    static_search_ = std::move(opts);
    return *this;
  }
  /// Base exhaustive-search options; the session overrides jobs and store.
  SessionConfig& exhaustive_search(baseline::ExhaustiveTunerOptions opts) {
    exhaustive_search_ = std::move(opts);
    return *this;
  }
  /// Q-learning hyperparameters; the session overrides the store.
  SessionConfig& qlearn(tuners::QLearningOptions opts) {
    qlearn_ = std::move(opts);
    return *this;
  }
  /// Governor-baseline tunables; the session overrides the store.
  SessionConfig& governor(tuners::GovernorOptions opts) {
    governor_ = opts;
    return *this;
  }
  /// Simulated CPU (default: the paper's Haswell-EP).
  SessionConfig& spec(hwsim::CpuSpec cpu_spec) {
    spec_ = std::move(cpu_spec);
    return *this;
  }
  /// simd(false) forces the scalar reference kernels (the historical
  /// bit-exact path) process-wide, exactly like ECOTUNE_SIMD=off; true
  /// (the default) keeps whatever dispatch level is already active.
  SessionConfig& simd(bool on) {
    simd_ = on;
    return *this;
  }
  /// In-memory shard count of the measurement store's index (0 = the
  /// store's kDefaultShardCount). Purely a concurrency knob: lookup
  /// results, stats totals, and the on-disk format are identical for every
  /// value.
  SessionConfig& store_shards(std::size_t n) {
    store_shards_ = n;
    return *this;
  }

  // Read accessors (used by Session; public so shims can introspect).
  [[nodiscard]] std::uint64_t train_seed() const { return train_seed_; }
  [[nodiscard]] std::uint64_t tuning_seed() const { return tuning_seed_; }
  [[nodiscard]] int train_node_id() const { return train_node_id_; }
  [[nodiscard]] int tuning_node_id() const { return tuning_node_id_; }
  [[nodiscard]] double jitter() const { return jitter_; }
  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] const std::string& cache_dir() const { return cache_dir_; }
  [[nodiscard]] const std::string& cache_mode() const { return cache_mode_; }
  [[nodiscard]] const std::string& scope() const { return scope_; }
  [[nodiscard]] const std::string& objective() const { return objective_; }
  [[nodiscard]] int epochs() const { return epochs_; }
  [[nodiscard]] int radius() const { return radius_; }
  [[nodiscard]] bool per_region() const { return per_region_; }
  [[nodiscard]] int iterations_per_scenario() const {
    return iterations_per_scenario_;
  }
  [[nodiscard]] int repeats() const { return repeats_; }
  [[nodiscard]] const model::AcquisitionOptions& acquisition() const {
    return acquisition_;
  }
  [[nodiscard]] const baseline::StaticTunerOptions& static_search() const {
    return static_search_;
  }
  [[nodiscard]] const baseline::ExhaustiveTunerOptions& exhaustive_search()
      const {
    return exhaustive_search_;
  }
  [[nodiscard]] const tuners::QLearningOptions& qlearn() const {
    return qlearn_;
  }
  [[nodiscard]] const tuners::GovernorOptions& governor() const {
    return governor_;
  }
  [[nodiscard]] const hwsim::CpuSpec& spec() const { return spec_; }
  [[nodiscard]] bool simd() const { return simd_; }
  [[nodiscard]] std::size_t store_shards() const { return store_shards_; }

 private:
  std::uint64_t train_seed_ = 42;
  std::uint64_t tuning_seed_ = 43;
  int train_node_id_ = 0;
  int tuning_node_id_ = 1;
  double jitter_ = 0.002;
  int jobs_ = 0;
  std::string cache_dir_;
  std::string cache_mode_;
  std::string scope_;
  std::string objective_ = "energy";
  int epochs_ = 10;
  int radius_ = 1;
  bool per_region_ = false;
  int iterations_per_scenario_ = 1;
  int repeats_ = 5;
  model::AcquisitionOptions acquisition_;
  baseline::StaticTunerOptions static_search_;
  baseline::ExhaustiveTunerOptions exhaustive_search_;
  tuners::QLearningOptions qlearn_;
  tuners::GovernorOptions governor_;
  hwsim::CpuSpec spec_ = hwsim::haswell_ep_spec();
  bool simd_ = true;
  std::size_t store_shards_ = 0;
};

/// One design-time analysis outcome: everything the plugin produced plus
/// the request context a report renderer needs.
struct DtaReport {
  std::string benchmark;
  std::string objective;
  core::DtaResult result;

  /// Structured document: human-oriented summary fields plus the exact
  /// (bitwise double round-trip) DtaResult under "result".
  [[nodiscard]] Json to_json() const;
};

/// A multi-benchmark campaign: one trained model amortized over all DTAs,
/// which run concurrently on per-benchmark node clones (jobs-invariant).
struct CampaignReport {
  std::vector<DtaReport> reports;

  [[nodiscard]] Json to_json() const;
};

/// Savings evaluation over one or more benchmarks (paper Table VI rows).
struct SavingsReport {
  std::vector<core::SavingsRow> rows;
};

/// The unified entry point to the paper's Fig. 1 workflow. A Session owns
/// the full stack every driver used to hand-wire -- simulated training and
/// tuning nodes with the canonical jitter/seed conventions, data
/// acquisition, the neural-network energy model, the measurement store,
/// and the jobs policy -- and exposes the workflow as typed calls:
///
///   api::Session session(api::SessionConfig{}.seed(42));
///   session.train_model();                       // acquire + fit, once
///   auto report = session.run_dta("Lulesh");     // full DTA
///   api::TextReportSink(std::cout).dta(report);  // render
///
/// All entry points share the session's trained model (train_model() is
/// idempotent; use_model() injects a deserialized one), its persistent
/// nodes (sequential run_dta calls see a continuously advancing simulated
/// clock, exactly like the hand-wired drivers), and its store.
class Session {
 public:
  /// Opens the measurement store eagerly; throws ecotune::Error on an
  /// unresolvable cache mode or an unopenable cache directory (drivers map
  /// this to exit code 2 via open_session_or_exit).
  explicit Session(SessionConfig config = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // -- Model (paper Sec. IV): train once, reuse everywhere. ---------------

  /// Acquires the training dataset and fits the energy model. Idempotent:
  /// subsequent calls (and every entry point below) reuse the first result.
  const model::EnergyModel& train_model();
  /// Injects an already-trained model (e.g. deserialized from disk),
  /// skipping acquisition and training entirely.
  void use_model(model::EnergyModel model);
  [[nodiscard]] bool has_model() const { return model_.has_value(); }
  /// The session's trained model; throws PreconditionError if none yet.
  [[nodiscard]] const model::EnergyModel& model() const;

  /// Acquires a dataset on the training node: the final training split by
  /// default, or any explicit benchmark list (e.g. the full Table II suite
  /// for cross-validation).
  [[nodiscard]] model::EnergyDataset acquire_dataset();
  [[nodiscard]] model::EnergyDataset acquire_dataset(
      const std::vector<workload::Benchmark>& benchmarks);

  // -- Design-time analysis (paper Fig. 1 / Sec. III). --------------------

  /// Runs the full DTA for one benchmark on the session's tuning node,
  /// training the model first if needed.
  DtaReport run_dta(const workload::Benchmark& app);
  DtaReport run_dta(const std::string& benchmark_name);

  /// Runs the DTA for several benchmarks as one campaign: the model is
  /// trained once and every benchmark is analyzed concurrently on its own
  /// node clone (noise keyed by campaign slot, so the report is bitwise
  /// identical for any jobs value). Warm campaigns replay whole DTAs from
  /// the measurement store.
  CampaignReport run_dta_campaign(const std::vector<workload::Benchmark>& apps);
  CampaignReport run_dta_campaign(const std::vector<std::string>& names);

  // -- Tuning strategies behind the common Tuner seam. --------------------

  /// Runs the named strategy (any default_registry() name: exhaustive,
  /// static, dta, qlearn, ondemand, conservative) on the session's tuning
  /// node under the session's objective. Strategy instances persist for
  /// the session, so sequential calls decorrelate exactly like the
  /// hand-wired stacks; "dta" trains the model on first use.
  /// Throws ConfigError (with the registered-name list) on unknown names.
  TuningOutcome tune(const std::string& tuner_name,
                     const workload::Benchmark& app);
  TuningOutcome tune(const std::string& tuner_name,
                     const std::string& benchmark_name);
  /// tune() under an explicit objective name (overrides the session's).
  TuningOutcome tune(const std::string& tuner_name,
                     const workload::Benchmark& app,
                     const std::string& objective);

  /// The session's persistent instance of the named strategy (created on
  /// first use from tuners::default_registry()). The cache map itself is
  /// mutex-guarded so concurrent lookups cannot race the lazy emplace;
  /// the returned Tuner is NOT internally synchronized -- drive one
  /// strategy instance from one thread at a time.
  [[nodiscard]] Tuner& tuner(const std::string& tuner_name)
      ECOTUNE_EXCLUDES(tuners_mutex_);

  // -- Evaluation baselines (paper Sec. V-D). -----------------------------

  /// Exhaustive static search on the tuning node under the session's
  /// configured objective. Thin delegate over tuner("static"): one
  /// persistent tuner backs all calls, so sequential searches decorrelate
  /// exactly like the hand-wired drivers'.
  baseline::StaticTuningResult tune_static(const workload::Benchmark& app);
  /// tune_static under an explicit objective (overrides the session's).
  baseline::StaticTuningResult tune_static(
      const workload::Benchmark& app, const ptf::TuningObjective& objective);

  /// Static-vs-dynamic savings (Table VI protocol); trains first if needed.
  SavingsReport evaluate_savings(const std::vector<workload::Benchmark>& apps);
  core::SavingsRow evaluate_savings(const workload::Benchmark& app);

  // -- Multi-tenant service entry points (tools/ecotune_serve). -----------
  //
  // The _shared calls below are pure functions of (session config,
  // request_key, request): they never advance the session's base node or
  // any per-session counter, so many threads may call them concurrently on
  // one Session and every response is bitwise identical to the same request
  // served serially, in any order. Each request runs on a private clone of
  // the tuning node whose noise stream is keyed by the request key
  // (NodeSimulator::clone / Rng::fork), and all measurement-store task keys
  // are namespaced by the request key so concurrent requests against the
  // same benchmark cannot collide.

  /// Eagerly constructs both simulated nodes and trains the energy model so
  /// the shared entry points never race lazy initialization. Idempotent;
  /// call it once, single-threaded, before serving concurrent traffic.
  void warmup();
  /// True once warmup() (or equivalent eager use) has completed.
  [[nodiscard]] bool warmed_up() const {
    return tuning_node_.has_value() && model_.has_value();
  }

  /// Full DTA for `app` on a request-keyed clone. Whole reports replay
  /// from the measurement store on a warm restart (zero engine misses).
  /// Requires warmup(); throws PreconditionError otherwise.
  DtaReport run_dta_shared(const workload::Benchmark& app,
                           const std::string& request_key);
  DtaReport run_dta_shared(const std::string& benchmark_name,
                           const std::string& request_key);

  /// Runs the named strategy (any default_registry() name) on a
  /// request-keyed clone with a fresh strategy instance, so call
  /// decorrelation counters start at zero and the outcome depends only on
  /// the request. Empty `objective` means the session's. Requires warmup()
  /// for model-backed strategies ("dta").
  TuningOutcome tune_shared(const std::string& tuner_name,
                            const workload::Benchmark& app,
                            const std::string& objective,
                            const std::string& request_key);

  /// Table VI savings row for `app` on a request-keyed clone; whole rows
  /// replay from the store on a warm restart. Requires warmup().
  core::SavingsRow evaluate_savings_shared(const workload::Benchmark& app,
                                           const std::string& request_key);

  // -- Owned infrastructure. ----------------------------------------------

  /// Resolved parallel worker count (never 0).
  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] store::MeasurementStore& store() { return store_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  /// The persistent simulated nodes (constructed lazily on first use).
  [[nodiscard]] hwsim::NodeSimulator& training_node();
  [[nodiscard]] hwsim::NodeSimulator& tuning_node();

  /// Prints the store's hit/miss summary to stderr when it is enabled.
  /// Stderr, not stdout: driver stdout must stay byte-identical between
  /// cold and warm runs.
  void print_store_summary() const;

 private:
  [[nodiscard]] core::DvfsUfsPlugin::Options plugin_options();
  [[nodiscard]] tuners::TunerContext tuner_context();

  SessionConfig config_;
  int jobs_;
  store::MeasurementStore store_;
  std::optional<hwsim::NodeSimulator> training_node_;
  std::optional<hwsim::NodeSimulator> tuning_node_;
  std::optional<model::EnergyModel> model_;
  /// Persistent per-strategy instances (tune-call decorrelation counters
  /// live on the tuner objects, so caching them preserves the hand-wired
  /// drivers' noise schedule across repeated calls). Guarded: tuner() is
  /// reachable from parallel campaign tasks, and a racing find/emplace on
  /// the map would be undefined behavior.
  Mutex tuners_mutex_;
  std::map<std::string, std::unique_ptr<Tuner>> tuners_
      ECOTUNE_GUARDED_BY(tuners_mutex_);
  std::optional<core::SavingsEvaluator> savings_evaluator_;
  long campaign_calls_ = 0;  ///< decorrelates campaigns on one session
};

/// The one shared CLI store-open error path: constructs the Session and
/// maps any configuration/open failure to the uniform driver behavior --
/// "error: <what>" on stderr and exit code 2 (a CLI error, exactly like
/// every other flag-validation failure).
[[nodiscard]] std::unique_ptr<Session> open_session_or_exit(
    SessionConfig config);

}  // namespace ecotune::api
