#include "api/report.hpp"

#include "common/table.hpp"

namespace ecotune::api {

namespace {

Json config_to_json(const SystemConfig& c) {
  Json j = Json::object();
  j["threads"] = c.threads;
  j["cf_mhz"] = c.core.as_mhz();
  j["ucf_mhz"] = c.uncore.as_mhz();
  return j;
}

// The one place the document shape (and its schema tag) is defined;
// CampaignReport::to_json and JsonReportSink::close both emit through it.
// The "tuners" key appears only when --tuner mode produced strategy
// outcomes, so default-mode documents stay byte-identical.
Json report_document(Json::Array reports, Json::Array tuner_reports = {}) {
  Json j = Json::object();
  j["schema"] = "ecotune.dta.v1";
  j["reports"] = Json(std::move(reports));
  if (!tuner_reports.empty()) j["tuners"] = Json(std::move(tuner_reports));
  return j;
}

}  // namespace

Json TunerReport::to_json() const {
  Json j = Json::object();
  j["benchmark"] = benchmark;
  j["outcome"] = outcome.to_json();
  return j;
}

Json DtaReport::to_json() const {
  Json j = Json::object();
  j["benchmark"] = benchmark;
  j["objective"] = objective;
  j["phase_threads"] = result.phase_threads;

  Json significant = Json::array();
  for (const auto& sig : result.dyn_report.significant)
    significant.push_back(sig.name);
  j["significant_regions"] = std::move(significant);

  Json rec = Json::object();
  rec["cf_mhz"] = result.recommendation.cf.as_mhz();
  rec["ucf_mhz"] = result.recommendation.ucf.as_mhz();
  rec["predicted_normalized_energy"] =
      result.recommendation.predicted_normalized_energy;
  j["recommendation"] = std::move(rec);
  j["phase_best"] = config_to_json(result.phase_best);

  Json regions = Json::array();
  for (const auto& sig : result.dyn_report.significant) {
    const auto it = result.region_best.find(sig.name);
    if (it == result.region_best.end()) continue;
    Json row = Json::object();
    row["region"] = sig.name;
    row["threads"] = it->second.threads;
    row["cf_mhz"] = it->second.core.as_mhz();
    row["ucf_mhz"] = it->second.uncore.as_mhz();
    row["scenario"] = result.tuning_model.scenario_id(sig.name);
    regions.push_back(std::move(row));
  }
  j["regions"] = std::move(regions);

  Json experiments = Json::object();
  experiments["thread_scenarios"] = result.thread_scenarios;
  experiments["analysis_runs"] = result.analysis_runs;
  experiments["frequency_scenarios"] = result.frequency_scenarios;
  experiments["app_runs"] = result.app_runs;
  experiments["tuning_time_s"] = result.tuning_time.value();
  j["experiments"] = std::move(experiments);

  // The exact (bitwise double round-trip) analysis result, so machine
  // consumers can rehydrate a full core::DtaResult from the report.
  j["result"] = result.to_json();
  return j;
}

Json CampaignReport::to_json() const {
  Json::Array array;
  array.reserve(reports.size());
  for (const auto& report : reports) array.push_back(report.to_json());
  return report_document(std::move(array));
}

// -- TextReportSink ---------------------------------------------------------

void TextReportSink::training_started(int epochs) {
  os_ << "training energy model (" << epochs << " epochs)...\n";
}

void TextReportSink::dta(const DtaReport& report) {
  const core::DtaResult& r = report.result;
  os_ << "\n=== " << report.benchmark << " (" << report.objective
      << " objective) ===\n"
      << "significant regions : " << r.dyn_report.significant.size() << '\n'
      << "phase threads       : " << r.phase_threads << '\n'
      << "model recommendation: " << to_string(r.recommendation.cf) << '|'
      << to_string(r.recommendation.ucf) << '\n'
      << "phase best          : " << to_string(r.phase_best) << '\n'
      << "experiments         : " << r.thread_scenarios << " + "
      << r.analysis_runs << " + " << r.frequency_scenarios << " in "
      << r.app_runs << " app runs ("
      << TextTable::num(r.tuning_time.value(), 1) << " s simulated)\n\n";

  TextTable table("per-region configuration");
  table.header({"region", "threads", "CF", "UCF", "scenario"});
  for (const auto& sig : r.dyn_report.significant) {
    const auto it = r.region_best.find(sig.name);
    if (it == r.region_best.end()) continue;
    table.row({sig.name, std::to_string(it->second.threads),
               to_string(it->second.core), to_string(it->second.uncore),
               std::to_string(r.tuning_model.scenario_id(sig.name))});
  }
  table.print(os_);
}

void TextReportSink::tuner(const TunerReport& report) {
  const TuningOutcome& o = report.outcome;
  os_ << "\n=== " << report.benchmark << " (" << o.tuner << " tuner, "
      << o.objective << " objective) ===\n"
      << "best configuration  : " << to_string(o.best) << '\n'
      << "scenarios evaluated : " << o.scenarios_evaluated << '\n'
      << "app runs            : " << o.app_runs << '\n'
      << "tuning time         : " << TextTable::num(o.tuning_time.value(), 1)
      << " s simulated\n";
  if (o.best_measurement.count > 0) {
    os_ << "best measurement    : "
        << TextTable::num(o.best_measurement.node_energy.value(), 1) << " J, "
        << TextTable::num(o.best_measurement.time.value(), 3) << " s\n";
  }
  if (!o.region_best.empty()) {
    os_ << '\n';
    TextTable table("per-region configuration");
    table.header({"region", "threads", "CF", "UCF"});
    for (const auto& [region, config] : o.region_best) {
      table.row({region, std::to_string(config.threads),
                 to_string(config.core), to_string(config.uncore)});
    }
    table.print(os_);
  }
}

void TextReportSink::model_written(const std::string& /*benchmark*/,
                                   const std::string& path) {
  os_ << "\ntuning model written to " << path << '\n';
}

// -- JsonReportSink ---------------------------------------------------------

void JsonReportSink::dta(const DtaReport& report) {
  reports_.push_back(report.to_json());
}

void JsonReportSink::tuner(const TunerReport& report) {
  tuner_reports_.push_back(report.to_json());
}

void JsonReportSink::model_written(const std::string& benchmark,
                                   const std::string& path) {
  for (auto& buffered : reports_)
    if (buffered.at("benchmark").as_string() == benchmark)
      buffered["tuning_model_path"] = path;
}

void JsonReportSink::close() {
  if (closed_) return;
  closed_ = true;
  os_ << report_document(std::move(reports_), std::move(tuner_reports_))
             .dump(indent_)
      << '\n';
}

}  // namespace ecotune::api
