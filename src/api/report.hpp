#pragma once

#include <ostream>
#include <string>

#include "api/session.hpp"
#include "common/json.hpp"

namespace ecotune::api {

/// One strategy outcome as rendered by the drivers' --tuner mode: the
/// strategy-agnostic TuningOutcome plus the benchmark it tuned.
struct TunerReport {
  std::string benchmark;
  TuningOutcome outcome;

  [[nodiscard]] Json to_json() const;
};

/// Renders Session results. One sink instance accompanies one driver run;
/// the same DtaReport renders as the classic text tables (byte-identical
/// to the pre-Session drivers) or as one machine-readable JSON document,
/// selected by the driver's --format flag.
class ReportSink {
 public:
  virtual ~ReportSink() = default;

  /// Announces that energy-model training is starting.
  virtual void training_started(int epochs) = 0;
  /// Renders one design-time-analysis outcome.
  virtual void dta(const DtaReport& report) = 0;
  /// Renders one Tuner-strategy outcome (drivers' --tuner mode).
  virtual void tuner(const TunerReport& report) = 0;
  /// Notes that `benchmark`'s tuning model was persisted to `path`.
  virtual void model_written(const std::string& benchmark,
                             const std::string& path) = 0;
  /// Finishes the document (the JSON sink emits everything here).
  virtual void close() = 0;
};

/// The classic human-readable rendering; byte-identical to the output the
/// hand-wired ecotune_dta produced before the Session refactor.
class TextReportSink final : public ReportSink {
 public:
  explicit TextReportSink(std::ostream& os) : os_(os) {}

  void training_started(int epochs) override;
  void dta(const DtaReport& report) override;
  void tuner(const TunerReport& report) override;
  void model_written(const std::string& benchmark,
                     const std::string& path) override;
  void close() override {}

 private:
  std::ostream& os_;
};

/// Machine-readable rendering: buffers every report and emits one JSON
/// document at close() --
///   {"schema": "ecotune.dta.v1", "reports": [<DtaReport::to_json()>...]}
/// -- parseable by common/json (Json::parse round-trips it). Progress
/// chatter (training_started) is deliberately dropped so stdout is exactly
/// one document.
class JsonReportSink final : public ReportSink {
 public:
  /// `indent` < 0 emits the compact single-line form.
  explicit JsonReportSink(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  void training_started(int /*epochs*/) override {}
  void dta(const DtaReport& report) override;
  void tuner(const TunerReport& report) override;
  void model_written(const std::string& benchmark,
                     const std::string& path) override;
  void close() override;

 private:
  std::ostream& os_;
  int indent_;
  Json::Array reports_;
  Json::Array tuner_reports_;
  bool closed_ = false;
};

}  // namespace ecotune::api
