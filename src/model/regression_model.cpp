#include "model/regression_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::model {

void RegressionEnergyModel::train(const EnergyDataset& train) {
  ensure(!train.samples.empty(),
         "RegressionEnergyModel::train: empty training set");
  const stats::Matrix x = train.feature_matrix();
  std::vector<double> power, time;
  power.reserve(train.samples.size());
  time.reserve(train.samples.size());
  for (const auto& s : train.samples) {
    power.push_back(s.normalized_power);
    time.push_back(s.normalized_time);
  }
  power_ = stats::ols_fit(x, power);
  time_ = stats::ols_fit(x, time);
  trained_ = true;
}

double RegressionEnergyModel::predict(
    const std::vector<double>& features) const {
  ensure(trained_, "RegressionEnergyModel::predict: not trained");
  const double p = std::max(0.0, power_.predict(features));
  const double t = std::max(0.0, time_.predict(features));
  return p * t;
}

std::vector<double> RegressionEnergyModel::predict_all(
    const EnergyDataset& ds) const {
  std::vector<double> out;
  out.reserve(ds.samples.size());
  for (const auto& s : ds.samples) out.push_back(predict(s.features));
  return out;
}

}  // namespace ecotune::model
