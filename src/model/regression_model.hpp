#pragma once

#include <vector>

#include "model/dataset.hpp"
#include "stats/regression.hpp"

namespace ecotune::model {

/// The regression baseline of Chadha et al. (IPDPSW'17), which the paper
/// compares its neural network against: two separate linear models (power
/// and time) over the same nine features; normalized energy is predicted as
/// their product. Trained with 10-fold CV with random indexing in the
/// paper's comparison (avg MAPE 7.54 vs the network's 5.20).
class RegressionEnergyModel {
 public:
  /// Fits both linear models on `train`.
  void train(const EnergyDataset& train);

  [[nodiscard]] bool trained() const { return trained_; }

  /// Predicted normalized energy = predicted power x predicted time.
  [[nodiscard]] double predict(const std::vector<double>& features) const;
  [[nodiscard]] std::vector<double> predict_all(
      const EnergyDataset& ds) const;

  [[nodiscard]] const stats::OlsResult& power_model() const {
    return power_;
  }
  [[nodiscard]] const stats::OlsResult& time_model() const { return time_; }

 private:
  stats::OlsResult power_;
  stats::OlsResult time_;
  bool trained_ = false;
};

}  // namespace ecotune::model
