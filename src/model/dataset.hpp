#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/units.hpp"
#include "hwsim/cluster.hpp"
#include "stats/linalg.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::model {

/// One training/validation sample: features at one (CF, UCF) operating point
/// of one benchmark run, labelled with normalized energy (and normalized
/// power/time for the regression baseline).
struct EnergySample {
  std::string benchmark;
  int threads = 24;
  CoreFreq cf;
  UncoreFreq ucf;
  std::vector<double> features;   ///< counter rates + cf_ghz + ucf_ghz
  double normalized_energy = 1.0; ///< E(cf,ucf) / E(calibration)
  double normalized_power = 1.0;  ///< P(cf,ucf) / P(calibration)
  double normalized_time = 1.0;   ///< T(cf,ucf) / T(calibration)
};

/// The acquired dataset (paper Sec. IV-A pipeline output).
struct EnergyDataset {
  std::vector<std::string> feature_names;
  std::vector<EnergySample> samples;

  [[nodiscard]] stats::Matrix feature_matrix() const;
  [[nodiscard]] std::vector<double> labels() const;
  [[nodiscard]] std::vector<std::string> groups() const;
  /// Subset by sample indices.
  [[nodiscard]] EnergyDataset subset(
      const std::vector<std::size_t>& idx) const;
  /// Subset of all samples belonging to `benchmark`.
  [[nodiscard]] EnergyDataset subset_benchmark(
      const std::string& benchmark) const;
};

/// All-preset counter survey used for the counter-selection experiment
/// (Table I): one row per (benchmark, thread-count) run at the calibration
/// frequencies; 56 counter-rate columns; node power as dependent variable.
struct CounterSurvey {
  std::vector<std::string> benchmark;       ///< row labels
  stats::Matrix rates;                      ///< rows x 56
  std::vector<double> mean_node_power;      ///< dependent variable (W)
};

/// Knobs of the acquisition pipeline. Defaults match the paper: thread
/// counts 12..24 step 4, the full CF x UCF grid, counters measured at the
/// calibration frequencies with 4-counter multiplexed runs.
struct AcquisitionOptions {
  std::vector<int> thread_counts{12, 16, 20, 24};
  /// Stride over the frequency grids (1 = every supported frequency).
  int cf_stride = 1;
  int ucf_stride = 1;
  /// Acquisition runs use shortened phase loops (the paper exploits
  /// progressive phase iterations the same way).
  int phase_iterations = 2;
  /// Counter-read noise level.
  double counter_noise = 0.005;
  std::uint64_t seed = 0xACC5EEDULL;
  /// Concurrent per-benchmark sweeps in acquire(), each on its own node
  /// clone (1 = serial, 0 = hardware concurrency). The dataset is identical
  /// for any value: noise streams are keyed by benchmark, samples merged in
  /// benchmark order.
  int jobs = 1;
  /// Optional persistent measurement store (not owned): acquire() answers a
  /// whole per-benchmark sweep from a previous session when benchmark,
  /// acquisition options, and node-state fingerprint match. Jobs-invariant.
  store::MeasurementStore* store = nullptr;
};

/// Executes the Sec. IV-A data-acquisition pipeline on a simulated node:
/// Score-P-instrumented runs produce OTF2 traces; the post-processor
/// extracts whole-run energies and per-phase-instance counter rates; labels
/// are normalized at the calibration operating point.
class DataAcquisition {
 public:
  DataAcquisition(hwsim::NodeSimulator& node, AcquisitionOptions options = {});

  /// Full dataset over all benchmarks (model features only: paper's 7
  /// counters + frequencies).
  [[nodiscard]] EnergyDataset acquire(
      const std::vector<workload::Benchmark>& benchmarks);

  /// Counter rates for one benchmark at the calibration point, collected
  /// with multiplexed event sets over repeated runs.
  [[nodiscard]] std::map<std::string, double> collect_counter_rates(
      const workload::Benchmark& benchmark, int threads,
      const std::vector<hwsim::PmuEvent>& events);

  /// Per-region counter rates (counts per second of region time) at the
  /// calibration point, for the per-region model-based tuning extension
  /// (paper Sec. VI outlook). Keys: region name -> counter name -> rate.
  [[nodiscard]] std::map<std::string, std::map<std::string, double>>
  collect_region_counter_rates(const workload::Benchmark& benchmark,
                               int threads,
                               const std::vector<hwsim::PmuEvent>& events);

  /// All-56-counter survey for the selection experiment (Table I).
  [[nodiscard]] CounterSurvey survey_counters(
      const std::vector<workload::Benchmark>& benchmarks);

  /// Number of simulated application runs performed so far.
  [[nodiscard]] long runs_performed() const { return runs_; }

 private:
  struct SweepPoint {
    Joules energy{0};
    Seconds time{0};
  };
  /// One traced run at a fixed configuration; returns whole-run energy/time
  /// extracted from the trace.
  SweepPoint traced_run(const workload::Benchmark& benchmark,
                        const SystemConfig& config);
  /// The full (threads x CF x UCF) sweep of one benchmark on this
  /// acquisition's node (the per-task body of the parallel acquire()).
  [[nodiscard]] std::vector<EnergySample> acquire_benchmark(
      const workload::Benchmark& benchmark);

  hwsim::NodeSimulator& node_;
  AcquisitionOptions options_;
  Rng rng_;
  long runs_ = 0;
  long acquire_calls_ = 0;  ///< decorrelates sweeps across acquire() calls
};

}  // namespace ecotune::model
