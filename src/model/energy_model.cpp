#include "model/energy_model.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "model/features.hpp"

namespace ecotune::model {

EnergyModel::EnergyModel(EnergyModelConfig config) : config_(config) {
  ensure(config_.ensemble >= 1, "EnergyModel: ensemble must be >= 1");
}

void EnergyModel::train(const EnergyDataset& train) {
  this->train(train, config_.epochs);
}

void EnergyModel::train(const EnergyDataset& train, int epochs) {
  ensure(!train.samples.empty(), "EnergyModel::train: empty training set");
  const stats::Matrix raw = train.feature_matrix();
  ensure(raw.cols() == config_.mlp.layer_sizes.front(),
         "EnergyModel::train: feature width does not match network input");
  scaler_.fit(raw);
  const stats::Matrix x = scaler_.transform(raw);
  const std::vector<double> y = train.labels();

  // Train a pool of candidates from distinct seeds and keep the best
  // `ensemble` of them by training loss. This serves two purposes: a small
  // ReLU-output network can die on an unlucky initialization (all-zero
  // output, zero gradient), and averaging a few healthy members stabilizes
  // the argmin over the nearly flat energy surface.
  const int pool_size = config_.ensemble + 3;
  std::vector<std::pair<double, nn::Mlp>> pool;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (int attempt = 0; attempt < pool_size; ++attempt) {
    Rng init_rng(config_.seed + 0x9E3779B9ULL * attempt);
    nn::Mlp candidate(config_.mlp, init_rng);
    Rng shuffle_rng((config_.seed ^ 0x5A5A5A5AULL) + attempt);
    double loss = 0.0;
    for (int e = 0; e < epochs; ++e)
      loss = candidate.train_epoch(x, y, shuffle_rng);
    pool.emplace_back(loss, std::move(candidate));
  }
  std::sort(pool.begin(), pool.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Reject members that failed to fit (dead networks, divergence): anything
  // clearly worse than the best candidate.
  const double best_loss = pool.front().first;
  const double cutoff = std::max(2.0 * best_loss, best_loss + 0.005);
  nets_.clear();
  for (auto& [loss, net] : pool) {
    if (static_cast<int>(nets_.size()) >= config_.ensemble) break;
    if (loss > cutoff && !nets_.empty()) break;
    nets_.push_back(std::move(net));
  }
  ensure(!nets_.empty(), "EnergyModel::train: no candidate converged");
  trained_ = true;
}

double EnergyModel::predict(const std::vector<double>& features) const {
  ensure(trained_, "EnergyModel::predict: model not trained");
  std::vector<double> scaled = features;
  scaler_.transform_row(scaled);
  double sum = 0.0;
  for (const auto& net : nets_) sum += net.predict(scaled);
  return sum / static_cast<double>(nets_.size());
}

std::vector<double> EnergyModel::predict_all(const EnergyDataset& ds) const {
  std::vector<double> out;
  out.reserve(ds.samples.size());
  for (const auto& s : ds.samples) out.push_back(predict(s.features));
  return out;
}

FrequencyRecommendation EnergyModel::recommend(
    const std::map<std::string, double>& counter_rates,
    const hwsim::CpuSpec& spec) const {
  ensure(trained_, "EnergyModel::recommend: model not trained");
  FrequencyRecommendation best;
  best.predicted_normalized_energy = std::numeric_limits<double>::max();
  for (auto cf : spec.core_grid.values()) {
    for (auto ucf : spec.uncore_grid.values()) {
      const auto f =
          build_features(counter_rates, paper_feature_events(), cf, ucf);
      const double e = predict(f);
      if (e < best.predicted_normalized_energy) {
        best = {cf, ucf, e};
      }
    }
  }
  return best;
}

std::vector<std::vector<double>> EnergyModel::predict_surface(
    const std::map<std::string, double>& counter_rates,
    const hwsim::CpuSpec& spec) const {
  ensure(trained_, "EnergyModel::predict_surface: model not trained");
  std::vector<std::vector<double>> surface;
  surface.reserve(spec.core_grid.size());
  for (auto cf : spec.core_grid.values()) {
    std::vector<double> row;
    row.reserve(spec.uncore_grid.size());
    for (auto ucf : spec.uncore_grid.values()) {
      row.push_back(
          predict(build_features(counter_rates, paper_feature_events(), cf,
                                 ucf)));
    }
    surface.push_back(std::move(row));
  }
  return surface;
}

Json EnergyModel::to_json() const {
  ensure(trained_, "EnergyModel::to_json: model not trained");
  Json j = Json::object();
  j["scaler"] = scaler_.to_json();
  Json networks = Json::array();
  for (const auto& net : nets_) networks.push_back(net.to_json());
  j["networks"] = std::move(networks);
  j["epochs"] = config_.epochs;
  return j;
}

EnergyModel EnergyModel::from_json(const Json& j) {
  EnergyModel m;
  m.scaler_ = stats::StandardScaler::from_json(j.at("scaler"));
  if (j.contains("networks")) {
    for (const auto& nj : j.at("networks").as_array())
      m.nets_.push_back(nn::Mlp::from_json(nj));
  } else {
    // Backwards compatibility with single-network files.
    m.nets_.push_back(nn::Mlp::from_json(j.at("network")));
  }
  ensure(!m.nets_.empty(), "EnergyModel::from_json: no networks");
  m.config_.epochs = j.at("epochs").as_int();
  m.config_.ensemble = static_cast<int>(m.nets_.size());
  m.trained_ = true;
  return m;
}

}  // namespace ecotune::model
