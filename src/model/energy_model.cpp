#include "model/energy_model.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "model/features.hpp"

namespace ecotune::model {

namespace {

/// Per-thread scratch of the batched prediction path: scaled feature matrix
/// and the NN workspace. Thread-local so a shared trained model can serve
/// concurrent sweep tasks allocation-free.
struct PredictScratch {
  stats::Matrix scaled;
  nn::Workspace ws;
};

PredictScratch& predict_scratch() {
  thread_local PredictScratch scratch;
  return scratch;
}

}  // namespace

EnergyModel::EnergyModel(EnergyModelConfig config) : config_(config) {
  ensure(config_.ensemble >= 1, "EnergyModel: ensemble must be >= 1");
}

void EnergyModel::train(const EnergyDataset& train) {
  this->train(train, config_.epochs);
}

void EnergyModel::train(const EnergyDataset& train, int epochs) {
  ensure(!train.samples.empty(), "EnergyModel::train: empty training set");
  const stats::Matrix raw = train.feature_matrix();
  ensure(raw.cols() == config_.mlp.layer_sizes.front(),
         "EnergyModel::train: feature width does not match network input");
  scaler_.fit(raw);
  const stats::Matrix x = scaler_.transform(raw);
  const std::vector<double> y = train.labels();

  // Train a pool of candidates from distinct seeds and keep the best
  // `ensemble` of them by training loss. This serves two purposes: a small
  // ReLU-output network can die on an unlucky initialization (all-zero
  // output, zero gradient), and averaging a few healthy members stabilizes
  // the argmin over the nearly flat energy surface.
  //
  // The candidates are embarrassingly independent (per-attempt init and
  // shuffle seeds), so they train concurrently over config_.jobs workers;
  // the ordered reduction keeps the pool in attempt order, which makes the
  // result bitwise identical for any job count.
  const int pool_size = config_.ensemble + 3;
  auto candidates = parallel_map_ordered(
      static_cast<std::size_t>(pool_size),
      [&](std::size_t attempt) {
        Rng init_rng(config_.seed + 0x9E3779B9ULL * attempt);
        nn::Mlp candidate(config_.mlp, init_rng);
        Rng shuffle_rng((config_.seed ^ 0x5A5A5A5AULL) + attempt);
        double loss = 0.0;
        for (int e = 0; e < epochs; ++e)
          loss = candidate.train_epoch(x, y, shuffle_rng);
        return std::optional<std::pair<double, nn::Mlp>>(
            std::in_place, loss, std::move(candidate));
      },
      config_.jobs);
  std::vector<std::pair<double, nn::Mlp>> pool;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (auto& c : candidates) pool.push_back(std::move(*c));
  std::sort(pool.begin(), pool.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Reject members that failed to fit (dead networks, divergence): anything
  // clearly worse than the best candidate.
  const double best_loss = pool.front().first;
  const double cutoff = std::max(2.0 * best_loss, best_loss + 0.005);
  nets_.clear();
  for (auto& [loss, net] : pool) {
    if (static_cast<int>(nets_.size()) >= config_.ensemble) break;
    if (loss > cutoff && !nets_.empty()) break;
    nets_.push_back(std::move(net));
  }
  ensure(!nets_.empty(), "EnergyModel::train: no candidate converged");
  trained_ = true;
}

void EnergyModel::predict_rows(const stats::Matrix& raw,
                               std::span<double> out) const {
  ensure(trained_, "EnergyModel::predict: model not trained");
  ensure(out.size() == raw.rows(),
         "EnergyModel::predict_rows: output size mismatch");
  const std::size_t n = raw.rows();
  if (n == 0) return;
  PredictScratch& s = predict_scratch();
  scaler_.transform_into(raw, s.scaled);
  // Fused ensemble sweep: one pass over the shared scaled matrix, members
  // accumulated in net order per row — bitwise identical to the historical
  // per-net forward_batch loop (and literally that loop when the scalar
  // kernel set is active).
  nn::forward_batch_ensemble(
      std::span<const nn::Mlp>(nets_.data(), nets_.size()), s.scaled, out,
      s.ws, /*mean=*/true);
}

double EnergyModel::predict(const std::vector<double>& features) const {
  ensure(trained_, "EnergyModel::predict: model not trained");
  thread_local stats::Matrix one;
  if (one.rows() != 1 || one.cols() != features.size())
    one = stats::Matrix(1, features.size());
  std::copy(features.begin(), features.end(), one.row_span(0).begin());
  double out = 0.0;
  predict_rows(one, std::span<double>(&out, 1));
  return out;
}

std::vector<double> EnergyModel::predict_batch(
    const stats::Matrix& raw) const {
  std::vector<double> out(raw.rows());
  predict_rows(raw, std::span<double>(out));
  return out;
}

std::vector<double> EnergyModel::predict_all(const EnergyDataset& ds) const {
  if (ds.samples.empty()) return {};
  return predict_batch(ds.feature_matrix());
}

void EnergyModel::fill_grid_features(
    const std::map<std::string, double>& counter_rates,
    const hwsim::CpuSpec& spec, stats::Matrix& rows,
    std::size_t first_row) const {
  // Resolve the counter rates once instead of one map walk per grid cell.
  const auto base =
      build_features(counter_rates, paper_feature_events(),
                     spec.core_grid.values().front(),
                     spec.uncore_grid.values().front());
  const std::size_t k = base.size();
  ensure(rows.cols() == k, "EnergyModel: grid feature width mismatch");
  std::size_t r = first_row;
  for (auto cf : spec.core_grid.values()) {
    for (auto ucf : spec.uncore_grid.values()) {
      auto row = rows.row_span(r++);
      std::copy(base.begin(), base.end(), row.begin());
      row[k - 2] = cf.as_ghz();
      row[k - 1] = ucf.as_ghz();
    }
  }
}

FrequencyRecommendation EnergyModel::recommend(
    const std::map<std::string, double>& counter_rates,
    const hwsim::CpuSpec& spec) const {
  ensure(trained_, "EnergyModel::recommend: model not trained");
  return recommend_many({counter_rates}, spec).front();
}

std::vector<FrequencyRecommendation> EnergyModel::recommend_many(
    const std::vector<std::map<std::string, double>>& rate_sets,
    const hwsim::CpuSpec& spec) const {
  ensure(trained_, "EnergyModel::recommend: model not trained");
  if (rate_sets.empty()) return {};
  const auto& cfs = spec.core_grid.values();
  const auto& ucfs = spec.uncore_grid.values();
  const std::size_t grid = cfs.size() * ucfs.size();
  const std::size_t width = paper_feature_events().size() + 2;
  stats::Matrix rows(rate_sets.size() * grid, width);
  for (std::size_t s = 0; s < rate_sets.size(); ++s)
    fill_grid_features(rate_sets[s], spec, rows, s * grid);
  const std::vector<double> energy = predict_batch(rows);

  // Per-signature argmin over its grid slice, scanned in the same CF-major
  // order (and with the same strict '<') as the historical per-point sweep.
  std::vector<FrequencyRecommendation> recs;
  recs.reserve(rate_sets.size());
  for (std::size_t s = 0; s < rate_sets.size(); ++s) {
    FrequencyRecommendation best;
    best.predicted_normalized_energy = std::numeric_limits<double>::max();
    std::size_t r = s * grid;
    for (auto cf : cfs) {
      for (auto ucf : ucfs) {
        const double e = energy[r++];
        if (e < best.predicted_normalized_energy) {
          best = {cf, ucf, e};
        }
      }
    }
    recs.push_back(best);
  }
  return recs;
}

std::vector<std::vector<double>> EnergyModel::predict_surface(
    const std::map<std::string, double>& counter_rates,
    const hwsim::CpuSpec& spec) const {
  ensure(trained_, "EnergyModel::predict_surface: model not trained");
  const auto& cfs = spec.core_grid.values();
  const auto& ucfs = spec.uncore_grid.values();
  const std::size_t width = paper_feature_events().size() + 2;
  stats::Matrix rows(cfs.size() * ucfs.size(), width);
  fill_grid_features(counter_rates, spec, rows, 0);
  const std::vector<double> energy = predict_batch(rows);
  std::vector<std::vector<double>> surface;
  surface.reserve(cfs.size());
  std::size_t r = 0;
  for (std::size_t ci = 0; ci < cfs.size(); ++ci) {
    std::vector<double> row(energy.begin() + static_cast<std::ptrdiff_t>(r),
                            energy.begin() +
                                static_cast<std::ptrdiff_t>(r + ucfs.size()));
    r += ucfs.size();
    surface.push_back(std::move(row));
  }
  return surface;
}

Json EnergyModel::to_json() const {
  ensure(trained_, "EnergyModel::to_json: model not trained");
  Json j = Json::object();
  j["scaler"] = scaler_.to_json();
  Json networks = Json::array();
  for (const auto& net : nets_) networks.push_back(net.to_json());
  j["networks"] = std::move(networks);
  j["epochs"] = config_.epochs;
  return j;
}

EnergyModel EnergyModel::from_json(const Json& j) {
  EnergyModel m;
  m.scaler_ = stats::StandardScaler::from_json(j.at("scaler"));
  if (j.contains("networks")) {
    for (const auto& nj : j.at("networks").as_array())
      m.nets_.push_back(nn::Mlp::from_json(nj));
  } else {
    // Backwards compatibility with single-network files.
    m.nets_.push_back(nn::Mlp::from_json(j.at("network")));
  }
  ensure(!m.nets_.empty(), "EnergyModel::from_json: no networks");
  m.config_.epochs = j.at("epochs").as_int();
  m.config_.ensemble = static_cast<int>(m.nets_.size());
  m.trained_ = true;
  return m;
}

}  // namespace ecotune::model
