#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hwsim/pmu_events.hpp"

namespace ecotune::model {

/// The seven PAPI counters the paper selects for the energy model (Table I):
/// BR_NTK, LD_INS, L2_ICR, BR_MSP, RES_STL, SR_INS, L2_DCR.
[[nodiscard]] const std::vector<hwsim::PmuEvent>& paper_feature_events();

/// Feature names: the counter names followed by "core_freq_ghz" and
/// "uncore_freq_ghz" (the paper's nine model inputs, Fig. 4).
[[nodiscard]] std::vector<std::string> feature_names(
    const std::vector<hwsim::PmuEvent>& events);

/// Builds the model input vector: counter *rates* (counts per second of
/// phase time, paper Sec. IV-C) for `events` in order, then the two
/// frequencies in GHz. Throws if a rate is missing from the map.
[[nodiscard]] std::vector<double> build_features(
    const std::map<std::string, double>& counter_rates,
    const std::vector<hwsim::PmuEvent>& events, CoreFreq cf, UncoreFreq ucf);

}  // namespace ecotune::model
