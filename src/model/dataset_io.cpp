#include "model/dataset_io.hpp"

#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace ecotune::model {

void save_dataset_csv(const EnergyDataset& dataset, const std::string& path) {
  std::ofstream os(path);
  ensure(os.good(), "save_dataset_csv: cannot open '" + path + "'");
  CsvWriter csv(os);

  std::vector<std::string> header{"benchmark", "threads", "cf_mhz",
                                  "ucf_mhz"};
  for (const auto& f : dataset.feature_names) header.push_back(f);
  header.insert(header.end(), {"normalized_energy", "normalized_power",
                               "normalized_time"});
  csv.row(header);

  std::ostringstream num;
  num.precision(17);
  for (const auto& s : dataset.samples) {
    std::vector<std::string> row{s.benchmark, std::to_string(s.threads),
                                 std::to_string(s.cf.as_mhz()),
                                 std::to_string(s.ucf.as_mhz())};
    auto fmt = [&](double v) {
      num.str("");
      num << v;
      return num.str();
    };
    for (double v : s.features) row.push_back(fmt(v));
    row.push_back(fmt(s.normalized_energy));
    row.push_back(fmt(s.normalized_power));
    row.push_back(fmt(s.normalized_time));
    csv.row(row);
  }
  ensure(os.good(), "save_dataset_csv: write failed");
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  // The dataset writer never emits quoted cells (names are alphanumeric),
  // so a plain comma split suffices; reject quotes defensively.
  ensure(line.find('"') == std::string::npos,
         "load_dataset_csv: quoted cells are not supported");
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

EnergyDataset load_dataset_csv(const std::string& path) {
  std::ifstream is(path);
  ensure(is.good(), "load_dataset_csv: cannot open '" + path + "'");
  std::string line;
  ensure(static_cast<bool>(std::getline(is, line)),
         "load_dataset_csv: empty file");
  const auto header = split_csv_line(line);
  ensure(header.size() > 7, "load_dataset_csv: malformed header");
  ensure(header[0] == "benchmark" &&
             header[header.size() - 3] == "normalized_energy",
         "load_dataset_csv: unexpected header layout");

  EnergyDataset ds;
  ds.feature_names.assign(header.begin() + 4, header.end() - 3);

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    ensure(cells.size() == header.size(),
           "load_dataset_csv: row width mismatch");
    EnergySample s;
    std::size_t i = 0;
    s.benchmark = cells[i++];
    s.threads = std::stoi(cells[i++]);
    s.cf = CoreFreq::mhz(std::stoi(cells[i++]));
    s.ucf = UncoreFreq::mhz(std::stoi(cells[i++]));
    for (std::size_t f = 0; f < ds.feature_names.size(); ++f)
      s.features.push_back(std::stod(cells[i++]));
    s.normalized_energy = std::stod(cells[i++]);
    s.normalized_power = std::stod(cells[i++]);
    s.normalized_time = std::stod(cells[i++]);
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

}  // namespace ecotune::model
