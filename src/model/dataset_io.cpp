#include "model/dataset_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/numbers.hpp"

namespace ecotune::model {
namespace {

/// Context carried into cell parsers so a malformed cell reports file, row
/// and column instead of an uncontextualized std::invalid_argument.
struct CellContext {
  const std::string& path;
  long line_no;  ///< 1-based physical line number in the file
};

[[noreturn]] void fail_cell(const CellContext& ctx,
                            const std::string& column,
                            const std::string& cell, const char* what) {
  throw Error("load_dataset_csv: " + ctx.path + ':' +
              std::to_string(ctx.line_no) + ": column '" + column + "': " +
              what + " '" + cell + "'");
}

int parse_cell_int(const CellContext& ctx, const std::string& column,
                   const std::string& cell) {
  int value = 0;
  const auto res =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (res.ec != std::errc() || res.ptr != cell.data() + cell.size())
    fail_cell(ctx, column, cell, "expected an integer, got");
  return value;
}

double parse_cell_double(const CellContext& ctx, const std::string& column,
                         const std::string& cell) {
  double value = 0.0;
  const auto res =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (res.ec != std::errc() || res.ptr != cell.data() + cell.size())
    fail_cell(ctx, column, cell, "expected a number, got");
  return value;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  // The dataset writer never emits quoted cells (names are alphanumeric),
  // so a plain comma split suffices; reject quotes defensively.
  ensure(line.find('"') == std::string::npos,
         "load_dataset_csv: quoted cells are not supported");
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

void save_dataset_csv(const EnergyDataset& dataset, const std::string& path) {
  std::ofstream os(path);
  ensure(os.good(), "save_dataset_csv: cannot open '" + path + "'");
  CsvWriter csv(os);

  std::vector<std::string> header{"benchmark", "threads", "cf_mhz",
                                  "ucf_mhz"};
  for (const auto& f : dataset.feature_names) header.push_back(f);
  header.insert(header.end(), {"normalized_energy", "normalized_power",
                               "normalized_time"});
  csv.row(header);

  for (const auto& s : dataset.samples) {
    std::vector<std::string> row{s.benchmark, std::to_string(s.threads),
                                 std::to_string(s.cf.as_mhz()),
                                 std::to_string(s.ucf.as_mhz())};
    for (double v : s.features) row.push_back(format_double(v));
    row.push_back(format_double(s.normalized_energy));
    row.push_back(format_double(s.normalized_power));
    row.push_back(format_double(s.normalized_time));
    csv.row(row);
  }
  ensure(os.good(), "save_dataset_csv: write failed");
}

EnergyDataset load_dataset_csv(const std::string& path) {
  std::ifstream is(path);
  ensure(is.good(), "load_dataset_csv: cannot open '" + path + "'");
  std::string line;
  long line_no = 0;
  // Accept CRLF files (Windows tooling, git autocrlf checkouts): strip the
  // trailing '\r' getline leaves behind.
  auto read_line = [&]() {
    if (!std::getline(is, line)) return false;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  };

  ensure(read_line(), "load_dataset_csv: empty file");
  const auto header = split_csv_line(line);
  ensure(header.size() > 7, "load_dataset_csv: malformed header");
  ensure(header[0] == "benchmark" &&
             header[header.size() - 3] == "normalized_energy",
         "load_dataset_csv: unexpected header layout");

  EnergyDataset ds;
  ds.feature_names.assign(header.begin() + 4, header.end() - 3);

  while (read_line()) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    ensure(cells.size() == header.size(),
           "load_dataset_csv: " + path + ':' + std::to_string(line_no) +
               ": row width mismatch (expected " +
               std::to_string(header.size()) + " cells, got " +
               std::to_string(cells.size()) + ")");
    const CellContext ctx{path, line_no};
    EnergySample s;
    std::size_t i = 0;
    s.benchmark = cells[i++];
    s.threads = parse_cell_int(ctx, header[1], cells[i++]);
    s.cf = CoreFreq::mhz(parse_cell_int(ctx, header[2], cells[i++]));
    s.ucf = UncoreFreq::mhz(parse_cell_int(ctx, header[3], cells[i++]));
    for (std::size_t f = 0; f < ds.feature_names.size(); ++f) {
      s.features.push_back(
          parse_cell_double(ctx, ds.feature_names[f], cells[i++]));
    }
    s.normalized_energy =
        parse_cell_double(ctx, "normalized_energy", cells[i++]);
    s.normalized_power =
        parse_cell_double(ctx, "normalized_power", cells[i++]);
    s.normalized_time = parse_cell_double(ctx, "normalized_time", cells[i++]);
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

}  // namespace ecotune::model
