#include "model/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "instr/scorep_runtime.hpp"
#include "store/measurement_store.hpp"
#include "model/features.hpp"
#include "pmc/counter_sampler.hpp"
#include "pmc/event_set.hpp"
#include "trace/otf2.hpp"
#include "trace/post_processor.hpp"
#include "trace/trace_listener.hpp"

namespace ecotune::model {

stats::Matrix EnergyDataset::feature_matrix() const {
  ensure(!samples.empty(), "EnergyDataset::feature_matrix: empty dataset");
  stats::Matrix m(samples.size(), samples.front().features.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ensure(samples[i].features.size() == m.cols(),
           "EnergyDataset: inconsistent feature sizes");
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = samples[i].features[j];
  }
  return m;
}

std::vector<double> EnergyDataset::labels() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.normalized_energy);
  return out;
}

std::vector<std::string> EnergyDataset::groups() const {
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.benchmark);
  return out;
}

EnergyDataset EnergyDataset::subset(
    const std::vector<std::size_t>& idx) const {
  EnergyDataset out;
  out.feature_names = feature_names;
  out.samples.reserve(idx.size());
  for (auto i : idx) {
    ensure(i < samples.size(), "EnergyDataset::subset: index out of range");
    out.samples.push_back(samples[i]);
  }
  return out;
}

EnergyDataset EnergyDataset::subset_benchmark(
    const std::string& benchmark) const {
  EnergyDataset out;
  out.feature_names = feature_names;
  for (const auto& s : samples)
    if (s.benchmark == benchmark) out.samples.push_back(s);
  return out;
}

DataAcquisition::DataAcquisition(hwsim::NodeSimulator& node,
                                 AcquisitionOptions options)
    : node_(node), options_(options), rng_(options.seed) {}

DataAcquisition::SweepPoint DataAcquisition::traced_run(
    const workload::Benchmark& benchmark, const SystemConfig& config) {
  trace::Otf2Archive archive;
  // Energy-only trace (empty event set) -- the metric plugin records the
  // HDEEM accumulator at region enter/exit.
  trace::TraceListener listener(
      archive, pmc::EventSet{},
      pmc::CounterSampler(rng_.fork("trace"), options_.counter_noise));

  instr::ExecutionContext ctx(node_);
  ctx.apply(config);
  instr::ScorepRuntime runtime(benchmark,
                               instr::InstrumentationFilter::instrument_all());
  runtime.add_listener(&listener);
  runtime.execute(ctx);
  ++runs_;

  const trace::Otf2PostProcessor post(archive,
                                      std::string(instr::kPhaseRegionName));
  SweepPoint p;
  p.energy = post.total_energy();
  p.time = post.total_time();
  return p;
}

std::map<std::string, double> DataAcquisition::collect_counter_rates(
    const workload::Benchmark& benchmark, int threads,
    const std::vector<hwsim::PmuEvent>& events) {
  const auto& spec = node_.spec();
  SystemConfig calib{threads, spec.calibration_core,
                     spec.calibration_uncore};
  const workload::Benchmark short_app =
      benchmark.with_iterations(options_.phase_iterations);

  std::map<std::string, double> merged;
  for (const auto& set : pmc::multiplex_schedule(events)) {
    trace::Otf2Archive archive;
    trace::TraceListener listener(
        archive, set,
        pmc::CounterSampler(rng_.fork("counters"), options_.counter_noise));
    instr::ExecutionContext ctx(node_);
    ctx.apply(calib);
    instr::ScorepRuntime runtime(
        short_app, instr::InstrumentationFilter::instrument_all());
    runtime.add_listener(&listener);
    runtime.execute(ctx);
    ++runs_;
    const trace::Otf2PostProcessor post(archive,
                                        std::string(instr::kPhaseRegionName));
    for (const auto& [name, rate] : post.mean_counter_rates()) {
      if (name != std::string(trace::kEnergyMetricName)) merged[name] = rate;
    }
  }
  return merged;
}

namespace {

/// Accumulates per-region counter sums and durations from region exits.
class RegionCounterCollector final : public instr::RegionListener {
 public:
  RegionCounterCollector(const pmc::EventSet& set,
                         pmc::CounterSampler& sampler)
      : set_(set), sampler_(sampler) {}

  void on_exit(const instr::RegionExit& e) override {
    if (e.type == instr::RegionType::kPhase) return;
    auto& acc = per_region_[std::string(e.region)];
    acc.time += e.duration().value();
    for (const auto& [event, value] : sampler_.sample(set_, e.counters))
      acc.counts[event] += value;
  }

  struct Accumulator {
    double time = 0.0;
    std::map<hwsim::PmuEvent, double> counts;
  };
  [[nodiscard]] const std::map<std::string, Accumulator>& per_region() const {
    return per_region_;
  }

 private:
  const pmc::EventSet& set_;
  pmc::CounterSampler& sampler_;
  std::map<std::string, Accumulator> per_region_;
};

}  // namespace

std::map<std::string, std::map<std::string, double>>
DataAcquisition::collect_region_counter_rates(
    const workload::Benchmark& benchmark, int threads,
    const std::vector<hwsim::PmuEvent>& events) {
  const auto& spec = node_.spec();
  const SystemConfig calib{threads, spec.calibration_core,
                           spec.calibration_uncore};
  const workload::Benchmark short_app =
      benchmark.with_iterations(options_.phase_iterations);

  std::map<std::string, std::map<std::string, double>> rates;
  pmc::CounterSampler sampler(rng_.fork("region-counters"),
                              options_.counter_noise);
  for (const auto& set : pmc::multiplex_schedule(events)) {
    RegionCounterCollector collector(set, sampler);
    instr::ExecutionContext ctx(node_);
    ctx.apply(calib);
    instr::ScorepRuntime runtime(
        short_app, instr::InstrumentationFilter::instrument_all());
    runtime.add_listener(&collector);
    runtime.execute(ctx);
    ++runs_;
    for (const auto& [region, acc] : collector.per_region()) {
      ensure(acc.time > 0, "collect_region_counter_rates: zero region time");
      for (const auto& [event, count] : acc.counts) {
        rates[region][std::string(hwsim::pmu_event_name(event))] =
            count / acc.time;
      }
    }
  }
  return rates;
}

std::vector<EnergySample> DataAcquisition::acquire_benchmark(
    const workload::Benchmark& benchmark) {
  const auto& spec = node_.spec();
  std::vector<EnergySample> samples;
  const workload::Benchmark short_app =
      benchmark.with_iterations(options_.phase_iterations);
  for (int threads : options_.thread_counts) {
    const auto rates =
        collect_counter_rates(benchmark, threads, paper_feature_events());

    // Reference (calibration) energy for normalization.
    const SweepPoint calib = traced_run(
        short_app, SystemConfig{threads, spec.calibration_core,
                                spec.calibration_uncore});
    ensure(calib.energy.value() > 0,
           "DataAcquisition: zero calibration energy");

    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      const CoreFreq cf = spec.core_grid.at(ci);
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        const UncoreFreq ucf = spec.uncore_grid.at(ui);
        const SweepPoint p =
            traced_run(short_app, SystemConfig{threads, cf, ucf});
        EnergySample s;
        s.benchmark = benchmark.name();
        s.threads = threads;
        s.cf = cf;
        s.ucf = ucf;
        s.features = build_features(rates, paper_feature_events(), cf, ucf);
        s.normalized_energy = p.energy / calib.energy;
        s.normalized_time = p.time / calib.time;
        s.normalized_power =
            s.normalized_energy / std::max(1e-12, s.normalized_time);
        samples.push_back(std::move(s));
      }
    }
  }
  return samples;
}

namespace {

Json sample_to_json(const EnergySample& s) {
  Json j = Json::object();
  j["threads"] = s.threads;
  j["cf_mhz"] = s.cf.as_mhz();
  j["ucf_mhz"] = s.ucf.as_mhz();
  Json features = Json::array();
  for (double v : s.features) features.push_back(v);
  j["features"] = std::move(features);
  j["normalized_energy"] = s.normalized_energy;
  j["normalized_power"] = s.normalized_power;
  j["normalized_time"] = s.normalized_time;
  return j;
}

EnergySample sample_from_json(const std::string& benchmark, const Json& j) {
  EnergySample s;
  s.benchmark = benchmark;
  s.threads = j.at("threads").as_int();
  s.cf = CoreFreq::mhz(j.at("cf_mhz").as_int());
  s.ucf = UncoreFreq::mhz(j.at("ucf_mhz").as_int());
  for (const Json& v : j.at("features").as_array())
    s.features.push_back(v.as_number());
  s.normalized_energy = j.at("normalized_energy").as_number();
  s.normalized_power = j.at("normalized_power").as_number();
  s.normalized_time = j.at("normalized_time").as_number();
  return s;
}

}  // namespace

EnergyDataset DataAcquisition::acquire(
    const std::vector<workload::Benchmark>& benchmarks) {
  EnergyDataset ds;
  ds.feature_names = model::feature_names(paper_feature_events());

  // One task per benchmark, each sweeping on its own node clone with
  // jitter keyed by (acquire() call, benchmark); samples are concatenated
  // in benchmark order, so the dataset does not depend on the job count.
  const long call_tag = acquire_calls_++;
  struct BenchOutcome {
    std::vector<EnergySample> samples;
    long runs = 0;
    Seconds elapsed{0};
  };
  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", node_.state_fingerprint())
        .add_digest("rng", rng_.state_hash());
    for (int t : options_.thread_counts) base_fp.add("thread_count", t);
    base_fp.add("cf_stride", options_.cf_stride)
        .add("ucf_stride", options_.ucf_stride)
        .add("phase_iterations", options_.phase_iterations)
        .add("counter_noise", options_.counter_noise)
        .add("seed", options_.seed);
  }
  auto outcomes = parallel_map_ordered(
      benchmarks.size(),
      [&](std::size_t i) {
        const std::string noise_key = "acquire-" + std::to_string(call_tag) +
                                      "-" + std::to_string(i) + "-" +
                                      benchmarks[i].name();
        store::MeasurementKey cache_key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("noise_key", noise_key)
              .add_digest("app", benchmarks[i].fingerprint_digest());
          cache_key.task = "acquire/" + noise_key;
          cache_key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(cache_key)) {
            try {
              // A full sweep yields exactly (thread counts x strided CF x
              // strided UCF) samples; any other size is a payload from
              // another schema or a truncated sweep.
              const auto& spec = node_.spec();
              const auto strided = [](std::size_t n, int stride) {
                return (n + static_cast<std::size_t>(stride) - 1) /
                       static_cast<std::size_t>(stride);
              };
              const std::size_t expected =
                  options_.thread_counts.size() *
                  strided(spec.core_grid.size(), options_.cf_stride) *
                  strided(spec.uncore_grid.size(), options_.ucf_stride);
              BenchOutcome out;
              for (const Json& sj : hit->at("samples").as_array())
                out.samples.push_back(
                    sample_from_json(benchmarks[i].name(), sj));
              ensure(out.samples.size() == expected,
                     "payload covers a different sweep");
              out.runs = static_cast<long>(hit->at("runs").as_number());
              out.elapsed = Seconds(hit->at("elapsed").as_number());
              return out;
            } catch (const std::exception& e) {
              log::error("store")
                  << "undecodable cache payload for '" << cache_key.task
                  << "' (" << e.what() << "); re-simulating";
            }
          }
        }

        hwsim::NodeSimulator node = node_.clone(noise_key);
        DataAcquisition acquisition(node, options_);
        const Seconds t0 = node.now();
        BenchOutcome out;
        out.samples = acquisition.acquire_benchmark(benchmarks[i]);
        out.runs = acquisition.runs_performed();
        out.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json samples = Json::array();
          for (const EnergySample& s : out.samples)
            samples.push_back(sample_to_json(s));
          Json payload = Json::object();
          payload["samples"] = std::move(samples);
          payload["runs"] = static_cast<std::int64_t>(out.runs);
          payload["elapsed"] = out.elapsed.value();
          cache->insert(cache_key, payload);
        }
        return out;
      },
      options_.jobs);

  Seconds total{0};
  for (auto& out : outcomes) {
    for (auto& s : out.samples) ds.samples.push_back(std::move(s));
    runs_ += out.runs;
    total += out.elapsed;
  }
  node_.idle(total);
  return ds;
}

CounterSurvey DataAcquisition::survey_counters(
    const std::vector<workload::Benchmark>& benchmarks) {
  const auto& spec = node_.spec();
  CounterSurvey survey;
  std::vector<std::map<std::string, double>> rows;

  std::vector<hwsim::PmuEvent> all_events(hwsim::all_pmu_events().begin(),
                                          hwsim::all_pmu_events().end());
  for (const auto& benchmark : benchmarks) {
    for (int threads : options_.thread_counts) {
      auto rates = collect_counter_rates(benchmark, threads, all_events);
      // Dependent variable: mean node power at the calibration point.
      const SweepPoint p = traced_run(
          benchmark.with_iterations(options_.phase_iterations),
          SystemConfig{threads, spec.calibration_core,
                       spec.calibration_uncore});
      survey.benchmark.push_back(benchmark.name());
      survey.mean_node_power.push_back(p.energy.value() /
                                       std::max(1e-12, p.time.value()));
      rows.push_back(std::move(rates));
    }
  }

  survey.rates = stats::Matrix(rows.size(), all_events.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < all_events.size(); ++j) {
      const std::string name(hwsim::pmu_event_name(all_events[j]));
      auto it = rows[i].find(name);
      survey.rates(i, j) = it != rows[i].end() ? it->second : 0.0;
    }
  }
  return survey;
}

}  // namespace ecotune::model
