#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "hwsim/cpu_spec.hpp"
#include "model/dataset.hpp"
#include "nn/mlp.hpp"
#include "stats/scaler.hpp"

namespace ecotune::model {

/// Configuration of the neural-network energy model (paper Sec. IV-C and
/// V-B defaults).
struct EnergyModelConfig {
  nn::MlpConfig mlp;   ///< 9-5-5-1, ReLU, ADAM lr 1e-3
  int epochs = 5;      ///< LOOCV uses 5 epochs; the final model uses 10
  /// Members of the seed ensemble whose predictions are averaged. The paper
  /// trains a single network; with so small a network the argmin over the
  /// nearly flat energy surface is noisy across initializations, so the
  /// plugin averages a small ensemble by default. Set to 1 for the
  /// paper-exact single-network setup.
  int ensemble = 5;
  std::uint64_t seed = 0x4E4EULL;
  /// Concurrent candidate trainings in train() (1 = serial, 0 = hardware
  /// concurrency). Every candidate is seeded independently and the pool is
  /// reduced in candidate order, so the trained model is bitwise identical
  /// for any value.
  int jobs = 1;
};

/// Recommendation produced by sweeping the model over the frequency grids.
struct FrequencyRecommendation {
  CoreFreq cf;
  UncoreFreq ucf;
  double predicted_normalized_energy = 0.0;
};

/// The paper's energy model: a StandardScaler (fit on the training set) in
/// front of the 2-hidden-layer MLP predicting normalized node energy from
/// seven counter rates plus the core and uncore frequency. Sweeping all
/// frequency combinations through the network and taking the argmin yields
/// the plugin's global frequency recommendation (Sec. III-C).
///
/// All prediction entry points funnel through one batched path: the feature
/// matrix is scaled once, each ensemble member sweeps every layer over the
/// whole batch, and the ensemble mean accumulates in member order — bitwise
/// identical to scaling and forwarding each point by itself.
class EnergyModel {
 public:
  explicit EnergyModel(EnergyModelConfig config = {});

  /// Fits scaler and network on `train` for `config.epochs` epochs.
  void train(const EnergyDataset& train);
  /// As train(), overriding the epoch count (paper: 5 for LOOCV, 10 final).
  void train(const EnergyDataset& train, int epochs);

  [[nodiscard]] bool trained() const { return trained_; }

  /// Predicts normalized energy for one raw (unscaled) feature vector.
  [[nodiscard]] double predict(const std::vector<double>& features) const;

  /// Batched prediction: one normalized energy per row of `raw` (raw,
  /// unscaled features). Bitwise identical to predict() on each row.
  [[nodiscard]] std::vector<double> predict_batch(
      const stats::Matrix& raw) const;

  /// Predictions for a whole dataset (validation convenience).
  [[nodiscard]] std::vector<double> predict_all(
      const EnergyDataset& ds) const;

  /// Sweeps every supported (CF, UCF) combination for an application whose
  /// calibration counter rates are `counter_rates` and returns the
  /// energy-minimal point.
  [[nodiscard]] FrequencyRecommendation recommend(
      const std::map<std::string, double>& counter_rates,
      const hwsim::CpuSpec& spec) const;

  /// recommend() for several counter-rate signatures at once (the plugin's
  /// per-region mode): all grids are swept in a single batch. Entry k of
  /// the result corresponds to rate_sets[k].
  [[nodiscard]] std::vector<FrequencyRecommendation> recommend_many(
      const std::vector<std::map<std::string, double>>& rate_sets,
      const hwsim::CpuSpec& spec) const;

  /// Full predicted surface over the grids (for Figs. 6-7 style heatmaps):
  /// row-major [cf index][ucf index].
  [[nodiscard]] std::vector<std::vector<double>> predict_surface(
      const std::map<std::string, double>& counter_rates,
      const hwsim::CpuSpec& spec) const;

  /// Serialization of scaler + network weights (the "tuning plugin input").
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static EnergyModel from_json(const Json& j);

 private:
  /// The shared batched core: scales `raw` (n x features) once and writes
  /// the ensemble-mean prediction per row into `out` (out.size() == n).
  void predict_rows(const stats::Matrix& raw, std::span<double> out) const;
  /// Builds the CF x UCF grid feature matrix (CF-major, UCF-minor row
  /// order) for one counter-rate signature into `rows` starting at
  /// `first_row`.
  void fill_grid_features(const std::map<std::string, double>& counter_rates,
                          const hwsim::CpuSpec& spec, stats::Matrix& rows,
                          std::size_t first_row) const;

  EnergyModelConfig config_;
  stats::StandardScaler scaler_;
  std::vector<nn::Mlp> nets_;  ///< ensemble members (>= 1 when trained)
  bool trained_ = false;
};

}  // namespace ecotune::model
