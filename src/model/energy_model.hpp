#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "hwsim/cpu_spec.hpp"
#include "model/dataset.hpp"
#include "nn/mlp.hpp"
#include "stats/scaler.hpp"

namespace ecotune::model {

/// Configuration of the neural-network energy model (paper Sec. IV-C and
/// V-B defaults).
struct EnergyModelConfig {
  nn::MlpConfig mlp;   ///< 9-5-5-1, ReLU, ADAM lr 1e-3
  int epochs = 5;      ///< LOOCV uses 5 epochs; the final model uses 10
  /// Members of the seed ensemble whose predictions are averaged. The paper
  /// trains a single network; with so small a network the argmin over the
  /// nearly flat energy surface is noisy across initializations, so the
  /// plugin averages a small ensemble by default. Set to 1 for the
  /// paper-exact single-network setup.
  int ensemble = 5;
  std::uint64_t seed = 0x4E4EULL;
};

/// Recommendation produced by sweeping the model over the frequency grids.
struct FrequencyRecommendation {
  CoreFreq cf;
  UncoreFreq ucf;
  double predicted_normalized_energy = 0.0;
};

/// The paper's energy model: a StandardScaler (fit on the training set) in
/// front of the 2-hidden-layer MLP predicting normalized node energy from
/// seven counter rates plus the core and uncore frequency. Sweeping all
/// frequency combinations through the network and taking the argmin yields
/// the plugin's global frequency recommendation (Sec. III-C).
class EnergyModel {
 public:
  explicit EnergyModel(EnergyModelConfig config = {});

  /// Fits scaler and network on `train` for `config.epochs` epochs.
  void train(const EnergyDataset& train);
  /// As train(), overriding the epoch count (paper: 5 for LOOCV, 10 final).
  void train(const EnergyDataset& train, int epochs);

  [[nodiscard]] bool trained() const { return trained_; }

  /// Predicts normalized energy for one raw (unscaled) feature vector.
  [[nodiscard]] double predict(const std::vector<double>& features) const;

  /// Predictions for a whole dataset (validation convenience).
  [[nodiscard]] std::vector<double> predict_all(
      const EnergyDataset& ds) const;

  /// Sweeps every supported (CF, UCF) combination for an application whose
  /// calibration counter rates are `counter_rates` and returns the
  /// energy-minimal point.
  [[nodiscard]] FrequencyRecommendation recommend(
      const std::map<std::string, double>& counter_rates,
      const hwsim::CpuSpec& spec) const;

  /// Full predicted surface over the grids (for Figs. 6-7 style heatmaps):
  /// row-major [cf index][ucf index].
  [[nodiscard]] std::vector<std::vector<double>> predict_surface(
      const std::map<std::string, double>& counter_rates,
      const hwsim::CpuSpec& spec) const;

  /// Serialization of scaler + network weights (the "tuning plugin input").
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static EnergyModel from_json(const Json& j);

 private:
  EnergyModelConfig config_;
  stats::StandardScaler scaler_;
  std::vector<nn::Mlp> nets_;  ///< ensemble members (>= 1 when trained)
  bool trained_ = false;
};

}  // namespace ecotune::model
