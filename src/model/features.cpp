#include "model/features.hpp"

#include "common/error.hpp"

namespace ecotune::model {

const std::vector<hwsim::PmuEvent>& paper_feature_events() {
  static const std::vector<hwsim::PmuEvent> events{
      hwsim::PmuEvent::kBR_NTK,  hwsim::PmuEvent::kLD_INS,
      hwsim::PmuEvent::kL2_ICR,  hwsim::PmuEvent::kBR_MSP,
      hwsim::PmuEvent::kRES_STL, hwsim::PmuEvent::kSR_INS,
      hwsim::PmuEvent::kL2_DCR,
  };
  return events;
}

std::vector<std::string> feature_names(
    const std::vector<hwsim::PmuEvent>& events) {
  std::vector<std::string> names;
  names.reserve(events.size() + 2);
  for (auto e : events) names.emplace_back(hwsim::pmu_event_name(e));
  names.emplace_back("core_freq_ghz");
  names.emplace_back("uncore_freq_ghz");
  return names;
}

std::vector<double> build_features(
    const std::map<std::string, double>& counter_rates,
    const std::vector<hwsim::PmuEvent>& events, CoreFreq cf, UncoreFreq ucf) {
  std::vector<double> f;
  f.reserve(events.size() + 2);
  for (auto e : events) {
    const std::string name(hwsim::pmu_event_name(e));
    auto it = counter_rates.find(name);
    ensure(it != counter_rates.end(),
           "build_features: missing counter rate for " + name);
    f.push_back(it->second);
  }
  f.push_back(cf.as_ghz());
  f.push_back(ucf.as_ghz());
  return f;
}

}  // namespace ecotune::model
