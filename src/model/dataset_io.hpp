#pragma once

#include <string>

#include "model/dataset.hpp"

namespace ecotune::model {

/// Writes the dataset as CSV: benchmark, threads, cf_mhz, ucf_mhz, one
/// column per feature, then the three normalized labels. Enables offline
/// analysis (plotting, alternative estimators) outside the harness.
void save_dataset_csv(const EnergyDataset& dataset, const std::string& path);

/// Reads a CSV written by save_dataset_csv(); throws Error on malformed
/// input or a feature-column mismatch.
[[nodiscard]] EnergyDataset load_dataset_csv(const std::string& path);

}  // namespace ecotune::model
