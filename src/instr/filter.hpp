#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "instr/profile.hpp"

namespace ecotune::instr {

/// Which regions carry measurement probes. Score-P compiler instrumentation
/// starts with everything instrumented; filtering (runtime + compile-time)
/// then suppresses fine-granular regions to bound overhead (paper
/// Sec. III-A).
class InstrumentationFilter {
 public:
  /// Everything instrumented (fresh compiler instrumentation).
  [[nodiscard]] static InstrumentationFilter instrument_all() {
    return InstrumentationFilter{};
  }

  /// Nothing instrumented (uninstrumented reference binary).
  [[nodiscard]] static InstrumentationFilter instrument_none() {
    InstrumentationFilter f;
    f.exclude_all_ = true;
    return f;
  }

  /// Marks one region as excluded from instrumentation.
  void exclude(std::string region) { excluded_.insert(std::move(region)); }

  [[nodiscard]] bool is_instrumented(const std::string& region) const {
    if (exclude_all_) return false;
    return !excluded_.contains(region);
  }

  [[nodiscard]] const std::set<std::string>& excluded() const {
    return excluded_;
  }

  /// Serializes in Score-P filter-file syntax.
  [[nodiscard]] std::string to_filter_file() const;
  /// Parses a filter file produced by to_filter_file().
  [[nodiscard]] static InstrumentationFilter from_filter_file(
      const std::string& text);

 private:
  std::set<std::string> excluded_;
  bool exclude_all_ = false;
};

/// Result of the scorep-autofilter pass.
struct AutoFilterResult {
  InstrumentationFilter filter;
  std::vector<std::string> excluded;  ///< regions below the threshold
};

/// The READEX scorep-autofilter tool: excludes compiler-instrumented regions
/// whose mean duration falls below `granularity` (probe cost would dominate),
/// keeping phase and user regions.
[[nodiscard]] AutoFilterResult scorep_autofilter(const CallTreeProfile& profile,
                                                 Seconds granularity);

}  // namespace ecotune::instr
