#pragma once

#include <memory>
#include <string>
#include <vector>

#include "instr/execution_context.hpp"

namespace ecotune::instr {

/// Score-P Parameter Control Plugin interface (READEX PCPs): a named,
/// integer-valued runtime-tunable parameter. The three concrete plugins
/// mirror the paper's: OpenMPTP (thread count), cpu_freq (MHz) and
/// uncore_freq (MHz).
class Pcp {
 public:
  virtual ~Pcp() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Applies a new value; returns the switching overhead charged.
  virtual Seconds set(ExecutionContext& ctx, int value) = 0;
  /// Reads the current value.
  [[nodiscard]] virtual int get(const ExecutionContext& ctx) const = 0;
};

/// OpenMPTP PCP: number of OpenMP threads.
class OmpThreadsPcp final : public Pcp {
 public:
  [[nodiscard]] std::string_view name() const override { return "OpenMPTP"; }
  Seconds set(ExecutionContext& ctx, int value) override {
    return ctx.set_omp_threads(value);
  }
  [[nodiscard]] int get(const ExecutionContext& ctx) const override {
    return ctx.omp_threads();
  }
};

/// cpu_freq PCP: core frequency in MHz (applied to all cores).
class CpuFreqPcp final : public Pcp {
 public:
  [[nodiscard]] std::string_view name() const override { return "cpu_freq"; }
  Seconds set(ExecutionContext& ctx, int value) override {
    return ctx.adapt().set_all_core_freqs(CoreFreq::mhz(value));
  }
  [[nodiscard]] int get(const ExecutionContext& ctx) const override {
    return ctx.node().core_freq(0).as_mhz();
  }
};

/// uncore_freq PCP: uncore frequency in MHz (applied to all sockets).
class UncoreFreqPcp final : public Pcp {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "uncore_freq";
  }
  Seconds set(ExecutionContext& ctx, int value) override {
    return ctx.adapt().set_all_uncore_freqs(UncoreFreq::mhz(value));
  }
  [[nodiscard]] int get(const ExecutionContext& ctx) const override {
    return ctx.node().uncore_freq(0).as_mhz();
  }
};

/// The standard plugin stack used by RRL and the experiments engine.
[[nodiscard]] std::vector<std::unique_ptr<Pcp>> default_pcps();

}  // namespace ecotune::instr
