#include "instr/pcp.hpp"

namespace ecotune::instr {

std::vector<std::unique_ptr<Pcp>> default_pcps() {
  std::vector<std::unique_ptr<Pcp>> v;
  v.push_back(std::make_unique<OmpThreadsPcp>());
  v.push_back(std::make_unique<CpuFreqPcp>());
  v.push_back(std::make_unique<UncoreFreqPcp>());
  return v;
}

}  // namespace ecotune::instr
