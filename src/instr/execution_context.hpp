#pragma once

#include "common/config.hpp"
#include "common/units.hpp"
#include "hwsim/node.hpp"
#include "hwsim/x86_adapt.hpp"

namespace ecotune::instr {

/// Binds an application run to a node: tracks the active OpenMP thread count
/// and provides latency-accounted frequency control. Parameter Control
/// Plugins and the RRL mutate system state exclusively through this object,
/// so switching overhead is accounted in one place.
class ExecutionContext {
 public:
  explicit ExecutionContext(hwsim::NodeSimulator& node)
      : node_(node), adapt_(node) {}

  [[nodiscard]] hwsim::NodeSimulator& node() { return node_; }
  [[nodiscard]] const hwsim::NodeSimulator& node() const { return node_; }
  [[nodiscard]] hwsim::X86Adapt& adapt() { return adapt_; }

  [[nodiscard]] int omp_threads() const { return omp_threads_; }

  /// Changes the OpenMP team size; charges the fork/join reshaping latency
  /// when the value actually changes.
  Seconds set_omp_threads(int threads);

  /// Applies a full configuration (threads + CF + UCF); returns the total
  /// switching overhead charged.
  Seconds apply(const SystemConfig& config);

  /// Currently active configuration.
  [[nodiscard]] SystemConfig current() const;

  /// Cumulative switching overhead (threads + DVFS + UFS) so far.
  [[nodiscard]] Seconds total_switch_overhead() const {
    return thread_switch_time_ + adapt_.total_switch_time();
  }
  /// Number of configuration-changing switch operations so far.
  [[nodiscard]] long switch_count() const {
    return thread_switch_count_ + adapt_.switch_count();
  }

 private:
  hwsim::NodeSimulator& node_;
  hwsim::X86Adapt adapt_;
  int omp_threads_ = 24;
  Seconds thread_switch_time_{0};
  long thread_switch_count_ = 0;
  /// OpenMP team resize cost (omp_set_num_threads + next fork).
  static constexpr Seconds kThreadSwitchLatency{8e-6};
};

}  // namespace ecotune::instr
