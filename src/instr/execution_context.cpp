#include "instr/execution_context.hpp"

#include "common/error.hpp"

namespace ecotune::instr {

Seconds ExecutionContext::set_omp_threads(int threads) {
  ensure(threads >= 1 && threads <= node_.spec().total_cores(),
         "ExecutionContext::set_omp_threads: invalid thread count");
  if (threads == omp_threads_) return Seconds(0);
  omp_threads_ = threads;
  node_.idle(kThreadSwitchLatency);
  thread_switch_time_ += kThreadSwitchLatency;
  ++thread_switch_count_;
  return kThreadSwitchLatency;
}

Seconds ExecutionContext::apply(const SystemConfig& config) {
  Seconds overhead{0};
  overhead += set_omp_threads(config.threads);
  overhead += adapt_.set_all_core_freqs(config.core);
  overhead += adapt_.set_all_uncore_freqs(config.uncore);
  return overhead;
}

SystemConfig ExecutionContext::current() const {
  SystemConfig c;
  c.threads = omp_threads_;
  c.core = node_.core_freq(0);
  c.uncore = node_.uncore_freq(0);
  return c;
}

}  // namespace ecotune::instr
