#pragma once

#include <string>

#include "common/config.hpp"
#include "common/units.hpp"
#include "hwsim/counter_model.hpp"

namespace ecotune::instr {

/// Kind of instrumented region, as Score-P classifies them.
enum class RegionType { kFunction, kOmpParallel, kMpi, kPhase, kUser };

[[nodiscard]] std::string_view to_string(RegionType t);

/// Payload delivered when an instrumented region is entered. Listeners (RRL,
/// tracers, profilers) may switch the configuration here -- before the
/// region's work executes.
struct RegionEnter {
  std::string_view region;
  RegionType type = RegionType::kFunction;
  int iteration = 0;      ///< phase iteration index
  Seconds timestamp{0};   ///< simulated time at enter
};

/// Payload delivered when an instrumented region exits, carrying the
/// ground-truth measurements of this region execution.
struct RegionExit {
  std::string_view region;
  RegionType type = RegionType::kFunction;
  int iteration = 0;
  Seconds enter_time{0};
  Seconds exit_time{0};
  Joules node_energy{0};     ///< exact node energy of the execution
  Joules cpu_energy{0};      ///< exact CPU energy of the execution
  hwsim::PmuCounts counters{};  ///< exact counters (phase: aggregated)
  SystemConfig config;       ///< configuration the region executed under

  [[nodiscard]] Seconds duration() const { return exit_time - enter_time; }
};

/// Observer of region events (Score-P substrate adapter interface).
class RegionListener {
 public:
  virtual ~RegionListener() = default;
  virtual void on_enter(const RegionEnter&) {}
  virtual void on_exit(const RegionExit&) {}
};

}  // namespace ecotune::instr
