#include "instr/filter.hpp"

#include <sstream>

namespace ecotune::instr {

std::string InstrumentationFilter::to_filter_file() const {
  std::ostringstream os;
  os << "SCOREP_REGION_NAMES_BEGIN\n";
  for (const auto& r : excluded_) os << "  EXCLUDE " << r << '\n';
  os << "SCOREP_REGION_NAMES_END\n";
  return os.str();
}

InstrumentationFilter InstrumentationFilter::from_filter_file(
    const std::string& text) {
  InstrumentationFilter f;
  std::istringstream is(text);
  std::string token;
  bool in_block = false;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    ls >> token;
    if (token == "SCOREP_REGION_NAMES_BEGIN") {
      in_block = true;
    } else if (token == "SCOREP_REGION_NAMES_END") {
      in_block = false;
    } else if (in_block && token == "EXCLUDE") {
      // Region names may contain spaces (e.g. "omp parallel:423").
      std::string rest;
      std::getline(ls, rest);
      const auto start = rest.find_first_not_of(' ');
      if (start != std::string::npos) f.exclude(rest.substr(start));
    }
  }
  return f;
}

AutoFilterResult scorep_autofilter(const CallTreeProfile& profile,
                                   Seconds granularity) {
  AutoFilterResult result;
  for (const auto& s : profile.all()) {
    if (s.type == RegionType::kPhase || s.type == RegionType::kUser) continue;
    if (s.mean_time() < granularity) {
      result.filter.exclude(s.name);
      result.excluded.push_back(s.name);
    }
  }
  return result;
}

}  // namespace ecotune::instr
