#include "instr/profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::instr {

std::string_view to_string(RegionType t) {
  switch (t) {
    case RegionType::kFunction:
      return "function";
    case RegionType::kOmpParallel:
      return "omp_parallel";
    case RegionType::kMpi:
      return "mpi";
    case RegionType::kPhase:
      return "phase";
    case RegionType::kUser:
      return "user";
  }
  return "?";
}

void CallTreeProfile::add_sample(const RegionExit& e) {
  const std::string key(e.region);
  auto it = stats_.find(key);
  if (it == stats_.end()) {
    RegionStats s;
    s.name = key;
    s.type = e.type;
    s.min_time = e.duration();
    s.max_time = e.duration();
    it = stats_.emplace(key, std::move(s)).first;
    order_.push_back(key);
  }
  RegionStats& s = it->second;
  ++s.count;
  s.total_time += e.duration();
  s.total_node_energy += e.node_energy;
  s.min_time = std::min(s.min_time, e.duration());
  s.max_time = std::max(s.max_time, e.duration());
}

bool CallTreeProfile::contains(const std::string& region) const {
  return stats_.count(region) > 0;
}

const RegionStats& CallTreeProfile::stats(const std::string& region) const {
  auto it = stats_.find(region);
  ensure(it != stats_.end(),
         "CallTreeProfile::stats: unknown region '" + region + "'");
  return it->second;
}

std::vector<RegionStats> CallTreeProfile::all() const {
  std::vector<RegionStats> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.push_back(stats_.at(name));
  return out;
}

Seconds CallTreeProfile::phase_time() const {
  for (const auto& [name, s] : stats_)
    if (s.type == RegionType::kPhase) return s.total_time;
  return Seconds(0);
}

long CallTreeProfile::phase_count() const {
  for (const auto& [name, s] : stats_)
    if (s.type == RegionType::kPhase) return s.count;
  return 0;
}

}  // namespace ecotune::instr
