#include "instr/scorep_runtime.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::instr {
namespace {

/// Captures exact node/CPU energy over a scope by listening to the node's
/// power timeline.
class EnergyAccumulator final : public hwsim::PowerListener {
 public:
  explicit EnergyAccumulator(hwsim::NodeSimulator& node) : node_(node) {
    node_.add_listener(this);
  }
  ~EnergyAccumulator() override { node_.remove_listener(this); }
  EnergyAccumulator(const EnergyAccumulator&) = delete;
  EnergyAccumulator& operator=(const EnergyAccumulator&) = delete;

  void on_segment(Seconds duration, Watts node_power,
                  Watts cpu_power) override {
    node_energy_ += node_power * duration;
    cpu_energy_ += cpu_power * duration;
  }

  [[nodiscard]] Joules node_energy() const { return node_energy_; }
  [[nodiscard]] Joules cpu_energy() const { return cpu_energy_; }

 private:
  hwsim::NodeSimulator& node_;
  Joules node_energy_{0};
  Joules cpu_energy_{0};
};

void add_counts(hwsim::PmuCounts& into, const hwsim::PmuCounts& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

}  // namespace

ScorepRuntime::ScorepRuntime(workload::Benchmark app,
                             InstrumentationFilter filter,
                             ScorepOptions options)
    : app_(std::move(app)), filter_(std::move(filter)), options_(options) {}

void ScorepRuntime::add_listener(RegionListener* l) {
  ensure(l != nullptr, "ScorepRuntime::add_listener: null listener");
  listeners_.push_back(l);
}

AppRunResult ScorepRuntime::execute(ExecutionContext& ctx) {
  hwsim::NodeSimulator& node = ctx.node();
  AppRunResult result;
  CallTreeProfile profile;

  EnergyAccumulator total(node);
  const Seconds t_begin = node.now();
  const std::string phase_name(kPhaseRegionName);
  const bool phase_instrumented = filter_.is_instrumented(phase_name);

  auto charge_event = [&] {
    node.idle(options_.per_event_overhead);
    result.instrumentation_overhead += options_.per_event_overhead;
    ++result.instrumentation_events;
  };

  for (int iter = 0; iter < app_.phase_iterations(); ++iter) {
    const Seconds phase_enter_time = node.now();
    Joules phase_node_e0 = total.node_energy();
    Joules phase_cpu_e0 = total.cpu_energy();
    hwsim::PmuCounts phase_counters{};

    if (phase_instrumented) {
      RegionEnter ev{kPhaseRegionName, RegionType::kPhase, iter, node.now()};
      for (auto* l : listeners_) l->on_enter(ev);
      charge_event();
    }

    for (const auto& region : app_.regions()) {
      const bool instrumented = filter_.is_instrumented(region.name);
      const RegionType type =
          region.name.rfind("omp ", 0) == 0 ? RegionType::kOmpParallel
                                            : RegionType::kFunction;
      for (int call = 0; call < region.calls_per_iteration; ++call) {
        Seconds enter_time = node.now();
        Joules node_e0 = total.node_energy();
        Joules cpu_e0 = total.cpu_energy();

        if (instrumented) {
          RegionEnter ev{region.name, type, iter, enter_time};
          for (auto* l : listeners_) l->on_enter(ev);
          charge_event();
          // Listener switches (RRL) and the probe happen before the work;
          // re-stamp so duration covers the kernel + residual overhead.
          enter_time = node.now();
          node_e0 = total.node_energy();
          cpu_e0 = total.cpu_energy();
        }

        const auto run = node.run_kernel(region.traits, ctx.omp_threads());
        add_counts(phase_counters, run.counters);

        if (instrumented) {
          if (options_.charge_region_overhead &&
              app_.instr_overhead_fraction() > 0) {
            const Seconds extra =
                run.time * app_.instr_overhead_fraction();
            node.idle(extra);
            result.instrumentation_overhead += extra;
          }
          charge_event();
          RegionExit ev;
          ev.region = region.name;
          ev.type = type;
          ev.iteration = iter;
          ev.enter_time = enter_time;
          ev.exit_time = node.now();
          ev.node_energy = total.node_energy() - node_e0;
          ev.cpu_energy = total.cpu_energy() - cpu_e0;
          ev.counters = run.counters;
          ev.config = ctx.current();
          for (auto* l : listeners_) l->on_exit(ev);
          if (options_.profiling) profile.add_sample(ev);
        }
      }
    }

    if (phase_instrumented) {
      charge_event();
      RegionExit ev;
      ev.region = kPhaseRegionName;
      ev.type = RegionType::kPhase;
      ev.iteration = iter;
      ev.enter_time = phase_enter_time;
      ev.exit_time = node.now();
      ev.node_energy = total.node_energy() - phase_node_e0;
      ev.cpu_energy = total.cpu_energy() - phase_cpu_e0;
      ev.counters = phase_counters;
      ev.config = ctx.current();
      for (auto* l : listeners_) l->on_exit(ev);
      if (options_.profiling) profile.add_sample(ev);
    }
  }

  result.wall_time = node.now() - t_begin;
  result.node_energy = total.node_energy();
  result.cpu_energy = total.cpu_energy();
  if (options_.profiling) result.profile = std::move(profile);
  return result;
}

AppRunResult run_uninstrumented(const workload::Benchmark& app,
                                hwsim::NodeSimulator& node,
                                const SystemConfig& config) {
  ExecutionContext ctx(node);
  ctx.apply(config);
  ScorepRuntime runtime(app, InstrumentationFilter::instrument_none());
  return runtime.execute(ctx);
}

}  // namespace ecotune::instr
