#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "instr/region_events.hpp"

namespace ecotune::instr {

/// Aggregated statistics for one region across an application run (one node
/// of the CUBE4-like call-tree profile).
struct RegionStats {
  std::string name;
  RegionType type = RegionType::kFunction;
  long count = 0;
  Seconds total_time{0};
  Joules total_node_energy{0};
  Seconds min_time{0};
  Seconds max_time{0};

  [[nodiscard]] Seconds mean_time() const {
    return count > 0 ? total_time / static_cast<double>(count) : Seconds(0);
  }
  /// Coefficient of variation proxy used by dynamism analysis.
  [[nodiscard]] double time_spread() const {
    const double mean = mean_time().value();
    return mean > 0 ? (max_time.value() - min_time.value()) / mean : 0.0;
  }
};

/// Call-tree application profile (CUBE4 analogue): root -> phase -> regions.
/// Built by profiling runs and consumed by scorep-autofilter and
/// readex-dyn-detect.
class CallTreeProfile final : public RegionListener {
 public:
  /// Records one region execution.
  void add_sample(const RegionExit& e);

  // RegionListener: profile runs simply subscribe to the runtime.
  void on_exit(const RegionExit& e) override { add_sample(e); }

  /// True if the region appears in the profile.
  [[nodiscard]] bool contains(const std::string& region) const;
  /// Stats for one region; throws if absent.
  [[nodiscard]] const RegionStats& stats(const std::string& region) const;
  /// All regions, insertion-ordered (phase region included).
  [[nodiscard]] std::vector<RegionStats> all() const;

  /// Total wall time attributed to the phase region.
  [[nodiscard]] Seconds phase_time() const;
  /// Number of phase iterations observed.
  [[nodiscard]] long phase_count() const;

 private:
  std::map<std::string, RegionStats> stats_;
  std::vector<std::string> order_;
};

}  // namespace ecotune::instr
