#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "instr/execution_context.hpp"
#include "instr/filter.hpp"
#include "instr/profile.hpp"
#include "instr/region_events.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::instr {

/// Name under which the manually annotated phase region appears (Score-P
/// user-region macro SCOREP_USER_REGION in the paper's workflow).
inline constexpr std::string_view kPhaseRegionName = "PHASE";

/// Knobs of the instrumented runtime.
struct ScorepOptions {
  /// Build a call-tree profile during the run (SCOREP_ENABLE_PROFILING).
  bool profiling = false;
  /// Cost of one measurement probe event (enter or exit).
  Seconds per_event_overhead{1.5e-6};
  /// Whether the residual per-region overhead fraction (uninstrumentable
  /// OpenMP/MPI wrapper events, paper Sec. V-E) is charged.
  bool charge_region_overhead = true;
};

/// Aggregate result of one instrumented application run.
struct AppRunResult {
  Seconds wall_time{0};
  Joules node_energy{0};  ///< exact node energy incl. all overheads
  Joules cpu_energy{0};   ///< exact CPU energy incl. all overheads
  long instrumentation_events = 0;
  Seconds instrumentation_overhead{0};  ///< probe + wrapper overhead time
  std::optional<CallTreeProfile> profile;
};

/// The Score-P measurement substrate: executes a workload::Benchmark on an
/// ExecutionContext, firing region enter/exit events for instrumented
/// regions, charging probe overhead, and aggregating ground-truth energy.
/// The benchmark is stored by value, so temporaries (e.g.
/// app.with_iterations(n)) are safe to pass.
///
/// Listeners registered before execute() observe the run: profilers,
/// tracers, and the READEX Runtime Library all attach here.
class ScorepRuntime {
 public:
  ScorepRuntime(workload::Benchmark app, InstrumentationFilter filter,
                ScorepOptions options = {});

  /// Registers a region-event listener (not owned).
  void add_listener(RegionListener* l);

  [[nodiscard]] const InstrumentationFilter& filter() const { return filter_; }
  [[nodiscard]] const workload::Benchmark& app() const { return app_; }

  /// Runs the full application (all phase iterations).
  AppRunResult execute(ExecutionContext& ctx);

 private:
  workload::Benchmark app_;
  InstrumentationFilter filter_;
  ScorepOptions options_;
  std::vector<RegionListener*> listeners_;
};

/// Convenience: run `app` uninstrumented at a fixed configuration on `node`
/// and return the exact job-level result (the paper's "default run").
AppRunResult run_uninstrumented(const workload::Benchmark& app,
                                hwsim::NodeSimulator& node,
                                const SystemConfig& config);

}  // namespace ecotune::instr
