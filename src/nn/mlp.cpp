#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ecotune::nn {

namespace {

/// Flushes denormal optimizer state to zero. Long trainings park the ADAM
/// moments of near-dead weights in the denormal range, where every touch
/// takes a microcode assist (~2x on the whole epoch, measured); a denormal
/// moment cannot move a normal-range weight by even one ULP (the largest
/// step it can induce is lr * DBL_TRUE_MIN / epsilon ~= 1e-303), so zeroing
/// it keeps the training trajectory intact and the arithmetic fast.
inline double flush_denormal(double v) {
  return (v < std::numeric_limits<double>::min() &&
          v > -std::numeric_limits<double>::min())
             ? 0.0
             : v;
}

}  // namespace

void Workspace::bind(const std::vector<std::size_t>& sizes) {
  ECOTUNE_DCHECK(sizes.size() >= 2,
                 "Workspace::bind: a network has at least an input and an "
                 "output layer");
  if (shape_ == sizes) return;
  shape_ = sizes;
  max_width_ = *std::max_element(sizes.begin(), sizes.end());
  act_.resize(sizes.size());
  for (std::size_t l = 0; l < sizes.size(); ++l) act_[l].resize(sizes[l]);
  pre_.resize(sizes.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l)
    pre_[l].resize(sizes[l + 1]);
  delta_.resize(max_width_);
  prev_delta_.resize(max_width_);
  batch_rows_ = 0;  // batch buffers are sized per (shape, rows)
}

void Workspace::bind_batch(std::size_t rows) {
  // Binding order contract: batch buffers are sized from the bound shape's
  // max width; bind_batch on an unbound workspace would allocate zero-byte
  // buffers and batched inference would read/write out of bounds.
  ECOTUNE_CHECK(max_width_ > 0,
                "Workspace::bind_batch: bind(layer_sizes) must run first");
  if (rows <= batch_rows_) return;
  batch_rows_ = rows;
  batch_a_.resize(rows * max_width_);
  batch_b_.resize(rows * max_width_);
}

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  ensure(config_.layer_sizes.size() >= 2, "Mlp: need at least two layers");
}

Mlp::Mlp(const Mlp& other)
    : config_(other.config_),
      layers_(other.layers_),
      timestep_(other.timestep_),
      bc1_saturated_(other.bc1_saturated_),
      bc2_saturated_(other.bc2_saturated_) {}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this != &other) {
    config_ = other.config_;
    layers_ = other.layers_;
    timestep_ = other.timestep_;
    bc1_saturated_ = other.bc1_saturated_;
    bc2_saturated_ = other.bc2_saturated_;
    engine_.reset();
  }
  return *this;
}

Mlp::Mlp(MlpConfig config, Rng& rng) : Mlp(std::move(config)) {
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    const std::size_t in = config_.layer_sizes[l];
    const std::size_t out = config_.layer_sizes[l + 1];
    Layer layer;
    layer.w = stats::Matrix(out, in);
    const double he = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t i = 0; i < out; ++i)
      for (std::size_t j = 0; j < in; ++j)
        layer.w(i, j) = rng.normal(0.0, 1.0) * he;
    layer.wt = layer.w.transpose();
    layer.b.assign(out, 0.0);
    layer.mw = stats::Matrix(out, in);
    layer.vw = stats::Matrix(out, in);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    const bool is_output = (l + 2 == config_.layer_sizes.size());
    layer.relu = !is_output || config_.relu_output;
    layers_.push_back(std::move(layer));
  }
}

void Mlp::forward(std::span<const double> x, std::span<double> out,
                  Workspace& ws) const {
  ensure(x.size() == input_size(), "Mlp::forward: input size mismatch");
  ensure(out.size() == output_size(), "Mlp::forward: output size mismatch");
  ws.bind(config_.layer_sizes);
  std::copy(x.begin(), x.end(), ws.act_[0].begin());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const double* a = ws.act_[l].data();
    std::vector<double>& z = ws.act_[l + 1];
    const std::size_t rows = layer.w.rows();
    const std::size_t cols = layer.w.cols();
    const double* wr = layer.w.data().data();
    for (std::size_t i = 0; i < rows; ++i, wr += cols) {
      double acc = layer.b[i];
      for (std::size_t j = 0; j < cols; ++j) acc += wr[j] * a[j];
      z[i] = layer.relu ? std::max(0.0, acc) : acc;
    }
  }
  const std::vector<double>& last = ws.act_.back();
  std::copy(last.begin(), last.end(), out.begin());
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  thread_local Workspace ws;
  std::vector<double> out(output_size());
  forward(std::span<const double>(x), std::span<double>(out), ws);
  return out;
}

double Mlp::predict(std::span<const double> x, Workspace& ws) const {
  ensure(output_size() == 1, "Mlp::predict: network is not scalar-valued");
  double out = 0.0;
  forward(x, std::span<double>(&out, 1), ws);
  return out;
}

double Mlp::predict(const std::vector<double>& x) const {
  thread_local Workspace ws;
  return predict(std::span<const double>(x), ws);
}

void Mlp::forward_batch(const stats::Matrix& x, std::span<double> out,
                        Workspace& ws) const {
  ensure(output_size() == 1, "Mlp::forward_batch: network is not "
                             "scalar-valued");
  ensure(x.cols() == input_size(),
         "Mlp::forward_batch: input size mismatch");
  ensure(out.size() == x.rows(), "Mlp::forward_batch: output size mismatch");
  const std::size_t n = x.rows();
  if (n == 0) return;
  if (kernels::active().forward_batch != nullptr) {
    forward_batch_ensemble(std::span<const Mlp>(this, 1), x, out, ws,
                           /*mean=*/false);
    return;
  }
  ws.bind(config_.layer_sizes);
  ws.bind_batch(n);

  // Ping-pong the batch through the layers; each row's dot products run in
  // the same operand order as the per-point forward pass, so the results
  // are bitwise identical.
  double* a = ws.batch_a_.data();
  double* z = ws.batch_b_.data();
  std::size_t width = input_size();
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row_span(r);
    std::copy(row.begin(), row.end(), a + r * width);
  }
  for (const Layer& layer : layers_) {
    const std::size_t out_w = layer.w.rows();
    const double* w0 = layer.w.data().data();
    for (std::size_t r = 0; r < n; ++r) {
      const double* ar = a + r * width;
      double* zr = z + r * out_w;
      const double* wr = w0;
      for (std::size_t i = 0; i < out_w; ++i, wr += width) {
        double acc = layer.b[i];
        for (std::size_t j = 0; j < width; ++j) acc += wr[j] * ar[j];
        zr[i] = layer.relu ? std::max(0.0, acc) : acc;
      }
    }
    std::swap(a, z);
    width = out_w;
  }
  for (std::size_t r = 0; r < n; ++r) out[r] = a[r];
}

std::vector<double> Mlp::forward_batch(const stats::Matrix& x,
                                       Workspace& ws) const {
  std::vector<double> out(x.rows());
  forward_batch(x, std::span<double>(out), ws);
  return out;
}

double Mlp::train_sample(std::span<const double> x,
                         std::span<const double> y) {
  ensure(x.size() == input_size(), "Mlp::train_sample: input size mismatch");
  ensure(y.size() == output_size(), "Mlp::train_sample: label size mismatch");
  train_ws_.bind(config_.layer_sizes);
  return train_sample_bound(x.data(), y.data());
}

double Mlp::train_sample_bound(const double* x, const double* y) {
  Workspace& ws = train_ws_;

  // Forward pass, caching pre-activations and activations.
  std::copy(x, x + input_size(), ws.act_[0].begin());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const double* a = ws.act_[l].data();
    std::vector<double>& pre = ws.pre_[l];
    std::vector<double>& act = ws.act_[l + 1];
    const std::size_t rows = layer.w.rows();
    const std::size_t cols = layer.w.cols();
    const double* wr = layer.w.data().data();
    for (std::size_t i = 0; i < rows; ++i, wr += cols) {
      double acc = layer.b[i];
      for (std::size_t j = 0; j < cols; ++j) acc += wr[j] * a[j];
      pre[i] = acc;
      act[i] = layer.relu ? std::max(0.0, acc) : acc;
    }
  }

  // MSE loss and output gradient: L = mean_i (a_i - y_i)^2.
  const std::vector<double>& out = ws.act_.back();
  const std::size_t out_n = out.size();
  double loss = 0.0;
  for (std::size_t i = 0; i < out_n; ++i) {
    const double diff = out[i] - y[i];
    loss += diff * diff;
    ws.delta_[i] = 2.0 * diff / static_cast<double>(out_n);
  }
  loss /= static_cast<double>(out_n);

  // Backward pass: propagate delta, then fused ADAM update per layer.
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const std::size_t rows = layer.w.rows();
    const std::size_t cols = layer.w.cols();
    if (layer.relu) {
      const std::vector<double>& pre = ws.pre_[li];
      for (std::size_t i = 0; i < rows; ++i)
        if (pre[i] <= 0.0) ws.delta_[i] = 0.0;
    }
    // Gradient w.r.t. the previous activation (before updating weights),
    // read row-contiguously off the cached transpose. The innermost sum
    // runs over i for fixed j, exactly as the historical column walk did.
    if (li > 0) {
      const double* d = ws.delta_.data();
      const double* wtr = layer.wt.data().data();
      for (std::size_t j = 0; j < cols; ++j, wtr += rows) {
        double acc = 0.0;
        for (std::size_t i = 0; i < rows; ++i) acc += wtr[i] * d[i];
        // A denormal delta can only spawn denormal gradients and moments
        // (which are flushed anyway); zero it before it poisons the
        // downstream arithmetic with microcode assists.
        ws.prev_delta_[j] = flush_denormal(acc);
      }
    }
    adam_step(layer, std::span<const double>(ws.delta_.data(), rows),
              std::span<const double>(ws.act_[li]), li > 0);
    std::swap(ws.delta_, ws.prev_delta_);
  }
  return loss;
}

double Mlp::train_sample(const std::vector<double>& x,
                         const std::vector<double>& y) {
  return train_sample(std::span<const double>(x), std::span<const double>(y));
}

void Mlp::adam_step(Layer& layer, std::span<const double> delta,
                    std::span<const double> a_in, bool maintain_transpose) {
  ++timestep_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  // Bias corrections. Saturation shortcut: once 1 - beta^t == 1.0 exactly,
  // monotonicity of beta^t (for 0 <= beta < 1) keeps it exactly 1.0 for
  // every later t, so the pow() is skipped; and x / 1.0 == x bitwise, so
  // the per-parameter divisions by a saturated correction are skipped too.
  // Both shortcuts are bit-exact no-ops; they only avoid redundant work.
  double bc1 = 1.0;
  if (!bc1_saturated_) {
    bc1 = 1.0 - std::pow(b1, static_cast<double>(timestep_));
    bc1_saturated_ = (bc1 == 1.0 && b1 >= 0.0 && b1 < 1.0);
  }
  double bc2 = 1.0;
  if (!bc2_saturated_) {
    bc2 = 1.0 - std::pow(b2, static_cast<double>(timestep_));
    bc2_saturated_ = (bc2 == 1.0 && b2 >= 0.0 && b2 < 1.0);
  }
  const bool correct1 = (bc1 != 1.0);
  const bool correct2 = (bc2 != 1.0);
  const double lr = config_.learning_rate;

  const std::size_t rows = layer.w.rows();
  const std::size_t cols = layer.w.cols();
  const double eps = config_.epsilon;
  double* w = layer.w.data().data();
  double* wt = layer.wt.data().data();
  double* mw = layer.mw.data().data();
  double* vw = layer.vw.data().data();
  for (std::size_t i = 0; i < rows; ++i, w += cols, mw += cols, vw += cols) {
    const double d = delta[i];
    if (!correct1 && !correct2) {
      // Steady state (both corrections saturated at 1.0): a branch- and
      // division-by-correction-free elementwise loop the compiler can
      // vectorize. Bit-identical to the general form below.
      for (std::size_t j = 0; j < cols; ++j) {
        const double g = d * a_in[j];
        mw[j] = flush_denormal(b1 * mw[j] + (1 - b1) * g);
        vw[j] = flush_denormal(b2 * vw[j] + (1 - b2) * g * g);
        w[j] -= lr * mw[j] / (std::sqrt(vw[j]) + eps);
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) {
        const double g = d * a_in[j];
        mw[j] = flush_denormal(b1 * mw[j] + (1 - b1) * g);
        vw[j] = flush_denormal(b2 * vw[j] + (1 - b2) * g * g);
        const double mhat = correct1 ? mw[j] / bc1 : mw[j];
        const double vhat = correct2 ? vw[j] / bc2 : vw[j];
        w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
      }
    }
    if (maintain_transpose)
      for (std::size_t j = 0; j < cols; ++j) wt[j * rows + i] = w[j];
    const double g = d;
    layer.mb[i] = flush_denormal(b1 * layer.mb[i] + (1 - b1) * g);
    layer.vb[i] = flush_denormal(b2 * layer.vb[i] + (1 - b2) * g * g);
    const double mhat = correct1 ? layer.mb[i] / bc1 : layer.mb[i];
    const double vhat = correct2 ? layer.vb[i] / bc2 : layer.vb[i];
    layer.b[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

double Mlp::train_epoch(const stats::Matrix& x, const std::vector<double>& y,
                        Rng& shuffle_rng) {
  ensure(x.rows() == y.size(), "Mlp::train_epoch: sample count mismatch");
  ensure(output_size() == 1, "Mlp::train_epoch: expects scalar labels");
  ensure(x.cols() == input_size(), "Mlp::train_epoch: input size mismatch");
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i-- > 1;) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(order[i], order[j]);
  }
  // The shuffle draws happen before dispatch, so both paths consume the
  // RNG identically and visit the rows in the same order.
  const kernels::KernelSet& ks = kernels::active();
  if (ks.train_epoch != nullptr) return train_epoch_kernel(ks, x, y, order);
  train_ws_.bind(config_.layer_sizes);
  const double* data = x.data().data();
  const std::size_t stride = x.cols();
  double total = 0.0;
  for (const auto idx : order)
    total += train_sample_bound(data + idx * stride, &y[idx]);
  return total / static_cast<double>(x.rows());
}

void Mlp::engine_pack() {
  TrainEngine& e = *engine_;
  double* p = e.state.p.data();
  double* m = e.state.m.data();
  double* v = e.state.v.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const kernels::LayerGeom& g = e.plan.layers[l];
    for (std::size_t i = 0; i < g.rows; ++i) {
      p[g.bias_off + i] = layer.b[i];
      m[g.bias_off + i] = layer.mb[i];
      v[g.bias_off + i] = layer.vb[i];
    }
    for (std::size_t i = 0; i < g.rows; ++i) {
      for (std::size_t j = 0; j < g.cols; ++j) {
        const std::size_t k =
            i < 4 * g.nb
                ? g.block_off + (j * g.nb + i / 4) * 4 + i % 4
                : g.tail_off + j * g.tail + (i - 4 * g.nb);
        p[k] = layer.w(i, j);
        m[k] = layer.mw(i, j);
        v[k] = layer.vw(i, j);
      }
    }
  }
  e.state.timestep = timestep_;
  e.state.bc1_saturated = bc1_saturated_;
  e.state.bc2_saturated = bc2_saturated_;
}

void Mlp::engine_unpack() {
  const TrainEngine& e = *engine_;
  const double* p = e.state.p.data();
  const double* m = e.state.m.data();
  const double* v = e.state.v.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    const kernels::LayerGeom& g = e.plan.layers[l];
    for (std::size_t i = 0; i < g.rows; ++i) {
      layer.b[i] = p[g.bias_off + i];
      layer.mb[i] = m[g.bias_off + i];
      layer.vb[i] = v[g.bias_off + i];
    }
    for (std::size_t i = 0; i < g.rows; ++i) {
      for (std::size_t j = 0; j < g.cols; ++j) {
        const std::size_t k =
            i < 4 * g.nb
                ? g.block_off + (j * g.nb + i / 4) * 4 + i % 4
                : g.tail_off + j * g.tail + (i - 4 * g.nb);
        layer.w(i, j) = p[k];
        layer.mw(i, j) = m[k];
        layer.vw(i, j) = v[k];
        layer.wt(j, i) = p[k];
      }
    }
  }
  timestep_ = e.state.timestep;
  bc1_saturated_ = e.state.bc1_saturated;
  bc2_saturated_ = e.state.bc2_saturated;
}

double Mlp::train_epoch_kernel(const kernels::KernelSet& ks,
                               const stats::Matrix& x,
                               const std::vector<double>& y,
                               const std::vector<std::size_t>& order) {
  if (!engine_) {
    engine_ = std::make_unique<TrainEngine>();
    std::vector<std::uint8_t> relu;
    relu.reserve(layers_.size());
    for (const Layer& layer : layers_) relu.push_back(layer.relu ? 1 : 0);
    engine_->plan = kernels::build_train_plan(
        config_.layer_sizes, relu, config_.learning_rate, config_.beta1,
        config_.beta2, config_.epsilon);
    kernels::init_train_state(engine_->plan, engine_->state);
  }
  engine_pack();
  const double total = ks.train_epoch(engine_->plan, engine_->state,
                                      x.data().data(), x.cols(), y.data(),
                                      order.data(), order.size());
  engine_unpack();
  return total / static_cast<double>(x.rows());
}

void forward_batch_ensemble(std::span<const Mlp> nets, const stats::Matrix& x,
                            std::span<double> out, Workspace& ws, bool mean) {
  ensure(!nets.empty(), "forward_batch_ensemble: empty ensemble");
  const Mlp& first = nets.front();
  ensure(first.output_size() == 1,
         "forward_batch_ensemble: networks are not scalar-valued");
  for (const Mlp& net : nets)
    ensure(net.config_.layer_sizes == first.config_.layer_sizes,
           "forward_batch_ensemble: ensemble shape mismatch");
  ensure(x.cols() == first.input_size(),
         "forward_batch_ensemble: input size mismatch");
  ensure(out.size() == x.rows(),
         "forward_batch_ensemble: output size mismatch");
  const std::size_t n = x.rows();
  if (n == 0) return;
  const kernels::KernelSet& ks = kernels::active();
  if (ks.forward_batch == nullptr) {
    // Scalar reference path: per-member batched sweeps accumulated in
    // member order — the historical EnergyModel::predict_rows loop.
    ws.bind(first.config_.layer_sizes);
    if (ws.ens_member_.size() < n) ws.ens_member_.resize(n);
    std::fill(out.begin(), out.end(), 0.0);
    const std::span<double> member(ws.ens_member_.data(), n);
    for (const Mlp& net : nets) {
      net.forward_batch(x, member, ws);
      for (std::size_t r = 0; r < n; ++r) out[r] += member[r];
    }
    if (mean) {
      const double count = static_cast<double>(nets.size());
      for (std::size_t r = 0; r < n; ++r) out[r] /= count;
    }
    return;
  }
  ws.bind(first.config_.layer_sizes);
  const std::size_t cols = first.input_size();
  const std::size_t padded = (n + 3) & ~static_cast<std::size_t>(3);
  if (ws.cm_.size() < padded * cols) ws.cm_.resize(padded * cols);
  for (std::size_t j = 0; j < cols; ++j) {
    double* col = ws.cm_.data() + j * padded;
    for (std::size_t r = 0; r < n; ++r) col[r] = x(r, j);
    for (std::size_t r = n; r < padded; ++r) col[r] = 0.0;
  }
  const std::size_t lane_len = 4 * ws.max_width_;
  if (ws.lane_a_.size() < lane_len) {
    ws.lane_a_.resize(lane_len);
    ws.lane_b_.resize(lane_len);
  }
  ws.refs_.clear();
  for (const Mlp& net : nets) {
    for (const Mlp::Layer& layer : net.layers_) {
      ws.refs_.push_back({layer.w.data().data(), layer.b.data(),
                          layer.w.rows(), layer.w.cols(), layer.relu});
    }
  }
  ks.forward_batch(ws.refs_.data(), first.layers_.size(), nets.size(),
                   ws.cm_.data(), padded, n, out.data(), mean,
                   ws.lane_a_.data(), ws.lane_b_.data());
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    n += layer.w.rows() * layer.w.cols() + layer.b.size();
  return n;
}

namespace {

Json matrix_to_json(const stats::Matrix& m) {
  Json rows = Json::array();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    Json row = Json::array();
    for (std::size_t j = 0; j < m.cols(); ++j) row.push_back(m(i, j));
    rows.push_back(std::move(row));
  }
  return rows;
}

stats::Matrix matrix_from_json(const Json& j, std::size_t rows,
                               std::size_t cols, const char* what) {
  const auto& rj = j.as_array();
  ensure(rj.size() == rows, std::string("Mlp::from_json: ") + what +
                                " row count mismatch");
  stats::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& row = rj[i].as_array();
    ensure(row.size() == cols, std::string("Mlp::from_json: ragged ") + what);
    for (std::size_t jj = 0; jj < cols; ++jj) m(i, jj) = row[jj].as_number();
  }
  return m;
}

}  // namespace

Json Mlp::to_json() const {
  Json j = Json::object();
  Json sizes = Json::array();
  for (auto s : config_.layer_sizes) sizes.push_back(s);
  j["layer_sizes"] = std::move(sizes);
  j["relu_output"] = config_.relu_output;
  j["learning_rate"] = config_.learning_rate;
  j["beta1"] = config_.beta1;
  j["beta2"] = config_.beta2;
  j["epsilon"] = config_.epsilon;
  j["timestep"] = timestep_;
  Json layers = Json::array();
  for (const auto& layer : layers_) {
    Json lj = Json::object();
    Json b = Json::array();
    for (double v : layer.b) b.push_back(v);
    lj["w"] = matrix_to_json(layer.w);
    lj["b"] = std::move(b);
    lj["relu"] = layer.relu;
    // ADAM moments: without them a restored network silently resumes with a
    // reset optimizer (cold moments, wrong bias correction).
    lj["mw"] = matrix_to_json(layer.mw);
    lj["vw"] = matrix_to_json(layer.vw);
    Json mb = Json::array();
    for (double v : layer.mb) mb.push_back(v);
    Json vb = Json::array();
    for (double v : layer.vb) vb.push_back(v);
    lj["mb"] = std::move(mb);
    lj["vb"] = std::move(vb);
    layers.push_back(std::move(lj));
  }
  j["layers"] = std::move(layers);
  return j;
}

Mlp Mlp::from_json(const Json& j) {
  MlpConfig config;
  config.layer_sizes.clear();
  for (const auto& s : j.at("layer_sizes").as_array())
    config.layer_sizes.push_back(static_cast<std::size_t>(s.as_int()));
  config.relu_output = j.at("relu_output").as_bool();
  config.learning_rate = j.at("learning_rate").as_number();
  // Optimizer hyper-parameters: absent in files written before they were
  // serialized; fall back to the historical defaults.
  if (j.contains("beta1")) config.beta1 = j.at("beta1").as_number();
  if (j.contains("beta2")) config.beta2 = j.at("beta2").as_number();
  if (j.contains("epsilon")) config.epsilon = j.at("epsilon").as_number();

  Mlp net(config);
  if (j.contains("timestep")) net.timestep_ = j.at("timestep").as_int();
  for (const auto& lj : j.at("layers").as_array()) {
    const auto& wj = lj.at("w").as_array();
    const auto& bj = lj.at("b").as_array();
    Layer layer;
    const std::size_t out = wj.size();
    const std::size_t in = out ? wj[0].as_array().size() : 0;
    layer.w = matrix_from_json(lj.at("w"), out, in, "weight matrix");
    layer.wt = layer.w.transpose();
    for (const auto& v : bj) layer.b.push_back(v.as_number());
    ensure(layer.b.size() == out, "Mlp::from_json: bias size mismatch");
    if (lj.contains("mw")) {
      layer.mw = matrix_from_json(lj.at("mw"), out, in, "mw moments");
      layer.vw = matrix_from_json(lj.at("vw"), out, in, "vw moments");
      layer.mb.clear();
      for (const auto& v : lj.at("mb").as_array())
        layer.mb.push_back(v.as_number());
      layer.vb.clear();
      for (const auto& v : lj.at("vb").as_array())
        layer.vb.push_back(v.as_number());
      ensure(layer.mb.size() == out && layer.vb.size() == out,
             "Mlp::from_json: bias moment size mismatch");
    } else {
      layer.mw = stats::Matrix(out, in);
      layer.vw = stats::Matrix(out, in);
      layer.mb.assign(out, 0.0);
      layer.vb.assign(out, 0.0);
    }
    layer.relu = lj.at("relu").as_bool();
    net.layers_.push_back(std::move(layer));
  }
  ensure(net.layers_.size() + 1 == config.layer_sizes.size(),
         "Mlp::from_json: layer count mismatch");
  return net;
}

}  // namespace ecotune::nn
