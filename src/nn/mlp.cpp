#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ecotune::nn {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  ensure(config_.layer_sizes.size() >= 2, "Mlp: need at least two layers");
}

Mlp::Mlp(MlpConfig config, Rng& rng) : Mlp(std::move(config)) {
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    const std::size_t in = config_.layer_sizes[l];
    const std::size_t out = config_.layer_sizes[l + 1];
    Layer layer;
    layer.w = stats::Matrix(out, in);
    const double he = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t i = 0; i < out; ++i)
      for (std::size_t j = 0; j < in; ++j)
        layer.w(i, j) = rng.normal(0.0, 1.0) * he;
    layer.b.assign(out, 0.0);
    layer.mw = stats::Matrix(out, in);
    layer.vw = stats::Matrix(out, in);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    const bool is_output = (l + 2 == config_.layer_sizes.size());
    layer.relu = !is_output || config_.relu_output;
    layers_.push_back(std::move(layer));
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  ensure(x.size() == input_size(), "Mlp::forward: input size mismatch");
  std::vector<double> a = x;
  for (const auto& layer : layers_) {
    std::vector<double> z(layer.b);
    for (std::size_t i = 0; i < layer.w.rows(); ++i) {
      double acc = z[i];
      for (std::size_t j = 0; j < layer.w.cols(); ++j)
        acc += layer.w(i, j) * a[j];
      z[i] = acc;
    }
    if (layer.relu)
      for (auto& v : z) v = std::max(0.0, v);
    a = std::move(z);
  }
  return a;
}

double Mlp::predict(const std::vector<double>& x) const {
  ensure(output_size() == 1, "Mlp::predict: network is not scalar-valued");
  return forward(x)[0];
}

double Mlp::train_sample(const std::vector<double>& x,
                         const std::vector<double>& y) {
  ensure(x.size() == input_size(), "Mlp::train_sample: input size mismatch");
  ensure(y.size() == output_size(), "Mlp::train_sample: label size mismatch");

  // Forward pass, caching pre-activations and activations.
  std::vector<std::vector<double>> activations{x};  // a[0] = input
  std::vector<std::vector<double>> pre;             // z per layer
  for (const auto& layer : layers_) {
    const auto& a = activations.back();
    std::vector<double> z(layer.b);
    for (std::size_t i = 0; i < layer.w.rows(); ++i) {
      double acc = z[i];
      for (std::size_t j = 0; j < layer.w.cols(); ++j)
        acc += layer.w(i, j) * a[j];
      z[i] = acc;
    }
    pre.push_back(z);
    if (layer.relu)
      for (auto& v : z) v = std::max(0.0, v);
    activations.push_back(std::move(z));
  }

  // MSE loss and output gradient: L = mean_i (a_i - y_i)^2.
  const auto& out = activations.back();
  double loss = 0.0;
  std::vector<double> delta(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double diff = out[i] - y[i];
    loss += diff * diff;
    delta[i] = 2.0 * diff / static_cast<double>(out.size());
  }
  loss /= static_cast<double>(out.size());

  // Backward pass.
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    // Through the activation.
    if (layer.relu) {
      for (std::size_t i = 0; i < delta.size(); ++i)
        if (pre[li][i] <= 0.0) delta[i] = 0.0;
    }
    const auto& a_in = activations[li];
    stats::Matrix grad_w(layer.w.rows(), layer.w.cols());
    for (std::size_t i = 0; i < layer.w.rows(); ++i)
      for (std::size_t j = 0; j < layer.w.cols(); ++j)
        grad_w(i, j) = delta[i] * a_in[j];
    const std::vector<double>& grad_b = delta;

    // Gradient w.r.t. the previous activation (before updating weights).
    std::vector<double> prev_delta(layer.w.cols(), 0.0);
    for (std::size_t j = 0; j < layer.w.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < layer.w.rows(); ++i)
        acc += layer.w(i, j) * delta[i];
      prev_delta[j] = acc;
    }

    adam_step(layer, grad_w, grad_b);
    delta = std::move(prev_delta);
  }
  return loss;
}

void Mlp::adam_step(Layer& layer, const stats::Matrix& grad_w,
                    const std::vector<double>& grad_b) {
  ++timestep_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(timestep_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(timestep_));
  const double lr = config_.learning_rate;

  for (std::size_t i = 0; i < layer.w.rows(); ++i) {
    for (std::size_t j = 0; j < layer.w.cols(); ++j) {
      const double g = grad_w(i, j);
      layer.mw(i, j) = b1 * layer.mw(i, j) + (1 - b1) * g;
      layer.vw(i, j) = b2 * layer.vw(i, j) + (1 - b2) * g * g;
      const double mhat = layer.mw(i, j) / bc1;
      const double vhat = layer.vw(i, j) / bc2;
      layer.w(i, j) -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
    }
    const double g = grad_b[i];
    layer.mb[i] = b1 * layer.mb[i] + (1 - b1) * g;
    layer.vb[i] = b2 * layer.vb[i] + (1 - b2) * g * g;
    const double mhat = layer.mb[i] / bc1;
    const double vhat = layer.vb[i] / bc2;
    layer.b[i] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
  }
}

double Mlp::train_epoch(const stats::Matrix& x, const std::vector<double>& y,
                        Rng& shuffle_rng) {
  ensure(x.rows() == y.size(), "Mlp::train_epoch: sample count mismatch");
  ensure(output_size() == 1, "Mlp::train_epoch: expects scalar labels");
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i-- > 1;) {
    const auto j = static_cast<std::size_t>(
        shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(order[i], order[j]);
  }
  double total = 0.0;
  for (const auto idx : order)
    total += train_sample(x.row(idx), {y[idx]});
  return total / static_cast<double>(x.rows());
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    n += layer.w.rows() * layer.w.cols() + layer.b.size();
  return n;
}

Json Mlp::to_json() const {
  Json j = Json::object();
  Json sizes = Json::array();
  for (auto s : config_.layer_sizes) sizes.push_back(s);
  j["layer_sizes"] = std::move(sizes);
  j["relu_output"] = config_.relu_output;
  j["learning_rate"] = config_.learning_rate;
  Json layers = Json::array();
  for (const auto& layer : layers_) {
    Json lj = Json::object();
    Json w = Json::array();
    for (std::size_t i = 0; i < layer.w.rows(); ++i) {
      Json row = Json::array();
      for (std::size_t jj = 0; jj < layer.w.cols(); ++jj)
        row.push_back(layer.w(i, jj));
      w.push_back(std::move(row));
    }
    Json b = Json::array();
    for (double v : layer.b) b.push_back(v);
    lj["w"] = std::move(w);
    lj["b"] = std::move(b);
    lj["relu"] = layer.relu;
    layers.push_back(std::move(lj));
  }
  j["layers"] = std::move(layers);
  return j;
}

Mlp Mlp::from_json(const Json& j) {
  MlpConfig config;
  config.layer_sizes.clear();
  for (const auto& s : j.at("layer_sizes").as_array())
    config.layer_sizes.push_back(static_cast<std::size_t>(s.as_int()));
  config.relu_output = j.at("relu_output").as_bool();
  config.learning_rate = j.at("learning_rate").as_number();

  Mlp net(config);
  for (const auto& lj : j.at("layers").as_array()) {
    const auto& wj = lj.at("w").as_array();
    const auto& bj = lj.at("b").as_array();
    Layer layer;
    const std::size_t out = wj.size();
    const std::size_t in = out ? wj[0].as_array().size() : 0;
    layer.w = stats::Matrix(out, in);
    for (std::size_t i = 0; i < out; ++i) {
      const auto& row = wj[i].as_array();
      ensure(row.size() == in, "Mlp::from_json: ragged weight matrix");
      for (std::size_t jj = 0; jj < in; ++jj)
        layer.w(i, jj) = row[jj].as_number();
    }
    for (const auto& v : bj) layer.b.push_back(v.as_number());
    ensure(layer.b.size() == out, "Mlp::from_json: bias size mismatch");
    layer.mw = stats::Matrix(out, in);
    layer.vw = stats::Matrix(out, in);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layer.relu = lj.at("relu").as_bool();
    net.layers_.push_back(std::move(layer));
  }
  ensure(net.layers_.size() + 1 == config.layer_sizes.size(),
         "Mlp::from_json: layer count mismatch");
  return net;
}

}  // namespace ecotune::nn
