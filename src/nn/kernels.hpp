#pragma once

// Runtime-dispatched SIMD kernel layer for the NN hot paths.
//
// A KernelSet bundles the vector kernels for one simd::Level. The scalar
// and SSE2 sets carry only the generic primitives (dot, axpy); their
// engine slots are null, which callers (Mlp::train_epoch,
// forward_batch_ensemble) interpret as "run the historical scalar
// reference loops". The fused train/forward engines exist only in the
// AVX2 set: they use FMA throughout, which SSE2 cannot express (see
// nn/kernels_engine.inc).
//
// Determinism contract
// --------------------
// * train_epoch / forward_batch engines (AVX2 only): FMA-fused, so NOT
//   bit-identical to the scalar reference path — but every
//   multiply-accumulate is one correctly-rounded step in a frozen order,
//   so results are exactly reproducible run to run, independent of
//   thread count, on any FMA machine. The scalar reference path keeps
//   the historical bits (ECOTUNE_SIMD=off / SessionConfig::simd(false));
//   both paths pin golden training trajectories in tests/test_nn.cpp.
// * dot: fixed-order pairwise accumulation — four virtual accumulators,
//   lane k sums elements with index ≡ k (mod 4) in ascending order, then
//   combines as (s0+s1)+(s2+s3). Identical across ALL levels including
//   scalar, but differs from a naive left-to-right fold by a few ULP.
// * axpy: elementwise, exact on every level.
//
// Training-state layout (TrainPlan / TrainState)
// ----------------------------------------------
// Weights live in a flat aligned parameter vector p (with parallel ADAM
// moment vectors m, v and gradient scratch g), laid out per layer as:
//   head:   [bias row 0..rows) | tail weights w(4*nb+t, j) at j*tail+t]
//   blocks: w(i, j) for i < 4*nb at block_off + (j*nb + i/4)*4 + i%4
// Every region starts 4-aligned (32-byte); pad parameter slots are never
// read by any forward/backward pass or by the unpack, and an ADAM step
// over finite garbage stays finite, so padding never perturbs real
// parameters. The lane-blocked transpose layout makes a weight column's
// row-lanes one aligned vector load, so the forward pass reads exactly
// what the ADAM update of the previous sample stored.

#include <cstddef>
#include <vector>

#include "common/simd.hpp"

namespace ecotune::nn::kernels {

/// Geometry of one layer inside the flat blocked parameter vector.
struct LayerGeom {
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool relu = true;
  std::size_t nb = 0;         ///< rows / 4 full lane blocks
  std::size_t tail = 0;       ///< rows % 4 leftover rows
  std::size_t bias_off = 0;   ///< rows doubles (region padded to 4)
  std::size_t tail_off = 0;   ///< cols * tail doubles, index [j*tail + t]
  std::size_t block_off = 0;  ///< cols*nb*4 doubles, [(j*nb + b)*4 + lane]
};

/// Immutable description of a training problem: layer geometry, buffer
/// offsets and the ADAM hyper-parameters, derived once per network shape.
struct TrainPlan {
  std::vector<std::size_t> sizes;  ///< layer widths (L+1 entries)
  std::vector<LayerGeom> layers;   ///< per weight layer (L entries)
  std::size_t head_size = 0;       ///< doubles before the first block region
  std::size_t total = 0;           ///< doubles in each of p/m/v/g
  std::vector<std::size_t> act_off, pre_off;
  std::size_t act_total = 0, pre_total = 0;
  std::size_t max_width = 0;
  double learning_rate = 0.0, beta1 = 0.0, beta2 = 0.0, epsilon = 0.0;
};

/// Mutable training state over a TrainPlan: the packed parameters, ADAM
/// moments, gradient scratch, and the per-sample forward/backward buffers.
struct TrainState {
  simd::aligned_vector<double> p, m, v, g;
  simd::aligned_vector<double> act, pre;  ///< forward scratch
  simd::aligned_vector<double> delta_a, delta_b;
  long timestep = 0;
  bool bc1_saturated = false;
  bool bc2_saturated = false;
};

/// Builds the blocked layout for `sizes` (relu[l] = activation after
/// weight layer l; relu.size() == sizes.size() - 1).
[[nodiscard]] TrainPlan build_train_plan(const std::vector<std::size_t>& sizes,
                                         const std::vector<std::uint8_t>& relu,
                                         double learning_rate, double beta1,
                                         double beta2, double epsilon);

/// Sizes and zero-fills every TrainState buffer for `plan`.
void init_train_state(const TrainPlan& plan, TrainState& st);

/// Borrowed view of one network layer in canonical row-major storage, used
/// by the fused batched-inference engine (weights are broadcast a scalar at
/// a time, so no repacking is needed for inference).
struct NetLayerRef {
  const double* w = nullptr;  ///< row-major rows x cols
  const double* b = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool relu = true;
};

/// One epoch of per-sample ADAM SGD over the packed state; returns the
/// summed loss in visit order (caller divides by the sample count exactly
/// like the scalar path).
using TrainEpochFn = double (*)(const TrainPlan& plan, TrainState& st,
                                const double* x, std::size_t stride,
                                const double* y, const std::size_t* order,
                                std::size_t n);

/// Fused multi-network batched forward over a column-major batch. `layers`
/// holds nnets*nlayers refs, net-major; `xcm` is the batch with columns of
/// `padded` rows (padded to a multiple of 4 with zeros, 32-byte-aligned
/// column starts); lane_a/lane_b are 4*max_width aligned scratch rows.
/// Writes the ensemble sum (mean when `mean`) of the scalar outputs of the
/// first `nrows` samples into `out`, accumulating members in net order —
/// per sample, bit-identical to summing per-net forward_batch results.
using ForwardBatchFn = void (*)(const NetLayerRef* layers,
                                std::size_t nlayers, std::size_t nnets,
                                const double* xcm, std::size_t padded,
                                std::size_t nrows, double* out, bool mean,
                                double* lane_a, double* lane_b);

/// Pairwise dot product (see the contract above): identical result on
/// every level.
using DotFn = double (*)(const double* a, const double* b, std::size_t n);

/// y[i] += a * x[i]; elementwise exact on every level.
using AxpyFn = void (*)(double* y, double a, const double* x, std::size_t n);

struct KernelSet {
  simd::Level level = simd::Level::kScalar;
  DotFn dot = nullptr;   ///< never null
  AxpyFn axpy = nullptr; ///< never null
  /// Null on the scalar set: callers run the historical reference loops.
  TrainEpochFn train_epoch = nullptr;
  ForwardBatchFn forward_batch = nullptr;
};

/// The kernel set for an explicit level (clamped to scalar off x86).
[[nodiscard]] const KernelSet& set_for(simd::Level level);

/// The kernel set for the process-wide simd::active_level().
[[nodiscard]] const KernelSet& active();

}  // namespace ecotune::nn::kernels
