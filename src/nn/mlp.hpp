#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "nn/kernels.hpp"
#include "stats/linalg.hpp"

namespace ecotune::nn {

/// Hyper-parameters of the feed-forward network and its ADAM optimizer.
/// Defaults reproduce the paper's Fig. 4 architecture and Sec. V-B training
/// setup: 9 inputs -> 5 -> 5 -> 1, ReLU before the hidden layers and before
/// the output, He initialization, zero biases, MSE loss, ADAM with the
/// default parameters and learning rate 1e-3.
struct MlpConfig {
  std::vector<std::size_t> layer_sizes{9, 5, 5, 1};
  /// ReLU on the output unit as well (the paper places ReLU "before the two
  /// hidden layers and before the output layer"; normalized energy is
  /// non-negative).
  bool relu_output = true;
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Mlp;
class Workspace;

/// Fused batched inference over an ensemble of identically shaped
/// scalar-output networks: one pass over `x` (one column-major packing,
/// all members' layer sweeps interleaved over the same cache-resident
/// rows) writing the member-order ensemble sum — the mean when `mean` is
/// set — into `out`. Bitwise identical to calling net.forward_batch per
/// member and accumulating in member order, on every dispatch level; with
/// the scalar kernel set active it literally runs that reference loop.
void forward_batch_ensemble(std::span<const Mlp> nets, const stats::Matrix& x,
                            std::span<double> out, Workspace& ws, bool mean);

/// Reusable scratch buffers for Mlp forward/backward passes. A workspace
/// binds lazily to a network's layer geometry on first use and is reused
/// allocation-free afterwards (rebinding to a different geometry regrows the
/// buffers). Workspaces are not thread-safe: give each thread its own.
class Workspace {
 public:
  Workspace() = default;

 private:
  friend class Mlp;
  friend void forward_batch_ensemble(std::span<const Mlp> nets,
                                     const stats::Matrix& x,
                                     std::span<double> out, Workspace& ws,
                                     bool mean);

  /// Grows the per-point buffers to `sizes` (the network's layer widths).
  void bind(const std::vector<std::size_t>& sizes);
  /// Grows the two batch ping-pong buffers to `rows` x max layer width.
  void bind_batch(std::size_t rows);

  std::vector<std::size_t> shape_;            ///< bound layer widths
  std::size_t max_width_ = 0;
  std::vector<std::vector<double>> act_;      ///< activations a[0..L]
  std::vector<std::vector<double>> pre_;      ///< pre-activations z[0..L-1]
  std::vector<double> delta_, prev_delta_;    ///< backprop buffers
  std::vector<double> batch_a_, batch_b_;     ///< batched layer ping-pong
  std::size_t batch_rows_ = 0;
  /// Fused-inference scratch: the column-major batch (columns padded to a
  /// multiple of 4 rows), two aligned lane rows, the per-member buffer of
  /// the scalar reference path, and the borrowed layer refs.
  simd::aligned_vector<double> cm_, lane_a_, lane_b_;
  std::vector<double> ens_member_;
  std::vector<kernels::NetLayerRef> refs_;
};

/// Fully connected feed-forward network trained by per-sample stochastic
/// gradient descent with ADAM on a mean-squared-error objective.
///
/// The hot paths are allocation-free: training reuses an internal Workspace
/// and walks dataset rows through stats::Matrix::row_span; inference routes
/// through a caller-supplied (or thread-local) Workspace. Batched inference
/// (forward_batch) sweeps each layer over a whole feature matrix and is
/// bitwise identical to the per-point path: every dot product accumulates
/// in the same operand order.
class Mlp {
 public:
  /// Initializes weights ~ N(0,1) * sqrt(2/n_in) (He et al.), biases zero.
  Mlp(MlpConfig config, Rng& rng);

  /// Copies transfer the network and optimizer state but not the cached
  /// kernel-engine scratch (it rebinds lazily on the next train_epoch).
  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;
  ~Mlp() = default;

  [[nodiscard]] const MlpConfig& config() const { return config_; }
  [[nodiscard]] std::size_t input_size() const {
    return config_.layer_sizes.front();
  }
  [[nodiscard]] std::size_t output_size() const {
    return config_.layer_sizes.back();
  }

  /// Forward pass; returns the output vector.
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& x) const;

  /// Allocation-free forward pass into `out` (out.size() == output_size()).
  void forward(std::span<const double> x, std::span<double> out,
               Workspace& ws) const;

  /// Scalar prediction convenience (single-output networks).
  [[nodiscard]] double predict(const std::vector<double>& x) const;

  /// Allocation-free scalar prediction through a caller-owned workspace.
  [[nodiscard]] double predict(std::span<const double> x,
                               Workspace& ws) const;

  /// Batched forward for scalar-output networks: one prediction per row of
  /// `x` (x.cols() == input_size()), written into `out` (out.size() ==
  /// x.rows()). Bitwise identical to predict() on each row.
  void forward_batch(const stats::Matrix& x, std::span<double> out,
                     Workspace& ws) const;
  [[nodiscard]] std::vector<double> forward_batch(const stats::Matrix& x,
                                                  Workspace& ws) const;

  /// One forward/backward pass and ADAM update on a single sample; returns
  /// the sample's squared-error loss before the update.
  double train_sample(const std::vector<double>& x,
                      const std::vector<double>& y);
  double train_sample(std::span<const double> x, std::span<const double> y);

  /// One epoch of per-sample SGD over (x, y) in shuffled order; returns the
  /// mean loss. Allocation-free: rows are visited via row_span and all
  /// scratch lives in the network's internal workspace.
  double train_epoch(const stats::Matrix& x, const std::vector<double>& y,
                     Rng& shuffle_rng);

  /// Serializes weights, biases, config and ADAM optimizer state (moments,
  /// timestep, beta1/beta2/epsilon), so a restored network resumes training
  /// exactly where the original left off.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Mlp from_json(const Json& j);

  /// Total number of trainable parameters.
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  struct Layer {
    stats::Matrix w;         ///< out x in
    stats::Matrix wt;        ///< in x out: cached transpose of w, kept in
                             ///< sync by every update; the backward pass
                             ///< reads it row-contiguously
    std::vector<double> b;   ///< out
    stats::Matrix mw, vw;    ///< ADAM first/second moments for w
    std::vector<double> mb, vb;
    bool relu = true;        ///< activation after this layer
  };

  friend void forward_batch_ensemble(std::span<const Mlp> nets,
                                     const stats::Matrix& x,
                                     std::span<double> out, Workspace& ws,
                                     bool mean);

  /// Cached kernel-engine training scratch: the blocked layout plan and the
  /// packed parameter/moment state. Exists only between pack (train_epoch
  /// entry) and unpack (exit) — layers_ stays the canonical storage at
  /// rest, so serialization and inference never see the blocked form.
  struct TrainEngine {
    kernels::TrainPlan plan;
    kernels::TrainState state;
  };

  explicit Mlp(MlpConfig config);  // uninitialized (for from_json)
  /// train_sample with sizes validated and the workspace already bound (the
  /// per-row body of train_epoch).
  double train_sample_bound(const double* x, const double* y);
  /// The vector-engine epoch: pack layers_ into the blocked state, run the
  /// kernel engine over `order`, unpack. Bit-identical to the scalar loop.
  double train_epoch_kernel(const kernels::KernelSet& ks,
                            const stats::Matrix& x,
                            const std::vector<double>& y,
                            const std::vector<std::size_t>& order);
  void engine_pack();
  void engine_unpack();
  /// Fused backward step for one layer: ADAM update of (w, b) from the
  /// layer's delta and input activation. Operand order matches the
  /// historical grad-then-adam_step formulation bit for bit. When
  /// `maintain_transpose` is set the cached transpose is refreshed after
  /// the row update (the input layer's transpose is never read by the
  /// backward pass, so training skips it).
  void adam_step(Layer& layer, std::span<const double> delta,
                 std::span<const double> a_in, bool maintain_transpose);

  MlpConfig config_;
  std::vector<Layer> layers_;
  long timestep_ = 0;
  /// Set once 1 - beta^timestep rounds to exactly 1.0. For 0 <= beta < 1
  /// the power is monotone decreasing, so the correction stays exactly 1.0
  /// for every later timestep and the pow() and the division by it can be
  /// skipped without changing a single bit of the update.
  bool bc1_saturated_ = false;
  bool bc2_saturated_ = false;
  Workspace train_ws_;  ///< scratch for the training hot path
  std::unique_ptr<TrainEngine> engine_;  ///< lazy vector-engine scratch
};

}  // namespace ecotune::nn
