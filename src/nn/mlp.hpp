#pragma once

#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "stats/linalg.hpp"

namespace ecotune::nn {

/// Hyper-parameters of the feed-forward network and its ADAM optimizer.
/// Defaults reproduce the paper's Fig. 4 architecture and Sec. V-B training
/// setup: 9 inputs -> 5 -> 5 -> 1, ReLU before the hidden layers and before
/// the output, He initialization, zero biases, MSE loss, ADAM with the
/// default parameters and learning rate 1e-3.
struct MlpConfig {
  std::vector<std::size_t> layer_sizes{9, 5, 5, 1};
  /// ReLU on the output unit as well (the paper places ReLU "before the two
  /// hidden layers and before the output layer"; normalized energy is
  /// non-negative).
  bool relu_output = true;
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Fully connected feed-forward network trained by per-sample stochastic
/// gradient descent with ADAM on a mean-squared-error objective.
class Mlp {
 public:
  /// Initializes weights ~ N(0,1) * sqrt(2/n_in) (He et al.), biases zero.
  Mlp(MlpConfig config, Rng& rng);

  [[nodiscard]] const MlpConfig& config() const { return config_; }
  [[nodiscard]] std::size_t input_size() const {
    return config_.layer_sizes.front();
  }
  [[nodiscard]] std::size_t output_size() const {
    return config_.layer_sizes.back();
  }

  /// Forward pass; returns the output vector.
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& x) const;

  /// Scalar prediction convenience (single-output networks).
  [[nodiscard]] double predict(const std::vector<double>& x) const;

  /// One forward/backward pass and ADAM update on a single sample; returns
  /// the sample's squared-error loss before the update.
  double train_sample(const std::vector<double>& x,
                      const std::vector<double>& y);

  /// One epoch of per-sample SGD over (x, y) in shuffled order; returns the
  /// mean loss.
  double train_epoch(const stats::Matrix& x, const std::vector<double>& y,
                     Rng& shuffle_rng);

  /// Serializes weights, biases and config (optimizer state excluded).
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Mlp from_json(const Json& j);

  /// Total number of trainable parameters.
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  struct Layer {
    stats::Matrix w;         ///< out x in
    std::vector<double> b;   ///< out
    stats::Matrix mw, vw;    ///< ADAM first/second moments for w
    std::vector<double> mb, vb;
    bool relu = true;        ///< activation after this layer
  };

  explicit Mlp(MlpConfig config);  // uninitialized (for from_json)
  void adam_step(Layer& layer, const stats::Matrix& grad_w,
                 const std::vector<double>& grad_b);

  MlpConfig config_;
  std::vector<Layer> layers_;
  long timestep_ = 0;
};

}  // namespace ecotune::nn
