#include "nn/kernels.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ecotune::nn::kernels {

namespace {

constexpr std::size_t round_up4(std::size_t n) {
  return (n + 3) & ~static_cast<std::size_t>(3);
}

/// Mirror of nn/mlp.cpp's flush_denormal (see the rationale there); the
/// engines must reproduce it bit for bit.
inline double flushd(double v) {
  return (v < std::numeric_limits<double>::min() &&
          v > -std::numeric_limits<double>::min())
             ? 0.0
             : v;
}

/// Scalar pairwise dot: the same four virtual accumulators as the vector
/// kernels (lane k sums indices ≡ k mod 4, ascending), so the result is
/// identical at every dispatch level.
double dot_scalar_impl(const double* a, const double* b, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s[i % 4] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

void axpy_scalar_impl(double* y, double a, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

#if ECOTUNE_SIMD_X86

/// Fixed-depth constexpr mirror of TrainPlan, built by the same offset
/// algorithm as build_train_plan. The 9-5-5-1 instance below lets the
/// engine templates constant-fold the paper architecture's entire layout
/// (every loop bound and buffer offset), which is worth ~2x on the hot
/// benchmarks versus the runtime-geometry instantiation.
template <std::size_t L>
struct PlanK {
  std::array<std::size_t, L + 1> sizes{};
  std::array<LayerGeom, L> layers{};
  std::size_t head_size = 0;
  std::size_t total = 0;
  std::array<std::size_t, L + 1> act_off{};
  std::array<std::size_t, L> pre_off{};
};

template <std::size_t L>
constexpr PlanK<L> build_plan_k(std::array<std::size_t, L + 1> sizes,
                                std::array<bool, L> relu) {
  PlanK<L> plan{};
  plan.sizes = sizes;
  std::size_t off = 0;
  for (std::size_t l = 0; l < L; ++l) {
    LayerGeom& g = plan.layers[l];
    g.rows = sizes[l + 1];
    g.cols = sizes[l];
    g.relu = relu[l];
    g.nb = g.rows / 4;
    g.tail = g.rows % 4;
    g.bias_off = off;
    off += round_up4(g.rows);
    g.tail_off = off;
    off += round_up4(g.cols * g.tail);
  }
  plan.head_size = off;
  for (std::size_t l = 0; l < L; ++l) {
    plan.layers[l].block_off = off;
    off += plan.layers[l].cols * plan.layers[l].nb * 4;
  }
  plan.total = off;
  std::size_t scratch = 0;
  for (std::size_t l = 0; l <= L; ++l) {
    plan.act_off[l] = scratch;
    scratch += round_up4(sizes[l]);
  }
  scratch = 0;
  for (std::size_t l = 0; l < L; ++l) {
    plan.pre_off[l] = scratch;
    scratch += round_up4(sizes[l + 1]);
  }
  return plan;
}

constexpr PlanK<3> kPlan9551 =
    build_plan_k<3>({9, 5, 5, 1}, {true, true, true});
static_assert(kPlan9551.head_size == 48 && kPlan9551.total == 104 &&
                  kPlan9551.layers[0].block_off == 48 &&
                  kPlan9551.layers[1].block_off == 84,
              "9-5-5-1 blocked layout drifted from the documented offsets");

/// Geometry providers for the engine templates in kernels_engine.inc: the
/// runtime provider reads a TrainPlan, the static one exposes the 9-5-5-1
/// constants. Both feed the identical engine statements, so the two
/// instantiations are bit-identical.
struct RuntimeGeom {
  const TrainPlan* plan;
  std::size_t nlayers() const { return plan->layers.size(); }
  const LayerGeom& layer(std::size_t l) const { return plan->layers[l]; }
  std::size_t size0() const { return plan->sizes[0]; }
  std::size_t head_size() const { return plan->head_size; }
  std::size_t act_off(std::size_t l) const { return plan->act_off[l]; }
  std::size_t pre_off(std::size_t l) const { return plan->pre_off[l]; }
};

struct StaticGeom9551 {
  static constexpr std::size_t nlayers() { return 3; }
  static constexpr LayerGeom layer(std::size_t l) {
    return kPlan9551.layers[l];
  }
  static constexpr std::size_t size0() { return kPlan9551.sizes[0]; }
  static constexpr std::size_t head_size() { return kPlan9551.head_size; }
  static constexpr std::size_t act_off(std::size_t l) {
    return kPlan9551.act_off[l];
  }
  static constexpr std::size_t pre_off(std::size_t l) {
    return kPlan9551.pre_off[l];
  }
};

bool plan_matches_9551(const TrainPlan& plan) {
  if (plan.sizes.size() != kPlan9551.sizes.size()) return false;
  for (std::size_t l = 0; l < kPlan9551.sizes.size(); ++l)
    if (plan.sizes[l] != kPlan9551.sizes[l]) return false;
  for (const LayerGeom& g : plan.layers)
    if (!g.relu) return false;
  // Fingerprint that the runtime layout still equals the constexpr mirror
  // (same algorithm; this guards against the two ever drifting apart — on
  // mismatch the runtime-geometry instantiation handles the plan).
  return plan.head_size == kPlan9551.head_size &&
         plan.total == kPlan9551.total;
}

/// Per-net shapes are validated identical by forward_batch_ensemble, so
/// matching the first net suffices.
bool shape_matches_9551(const NetLayerRef* layers, std::size_t nlayers) {
  if (nlayers != 3) return false;
  for (std::size_t l = 0; l < 3; ++l) {
    if (layers[l].rows != kPlan9551.layers[l].rows ||
        layers[l].cols != kPlan9551.layers[l].cols || !layers[l].relu)
      return false;
  }
  return true;
}

/// Shape providers for the fused-inference engine.
struct FwdRuntimeShape {
  const NetLayerRef* first;
  std::size_t n;
  std::size_t nlayers() const { return n; }
  std::size_t rows(std::size_t l) const { return first[l].rows; }
  std::size_t cols(std::size_t l) const { return first[l].cols; }
  bool relu(std::size_t l) const { return first[l].relu; }
};

struct FwdStatic9551 {
  static constexpr std::size_t nlayers() { return 3; }
  static constexpr std::size_t rows(std::size_t l) {
    return kPlan9551.layers[l].rows;
  }
  static constexpr std::size_t cols(std::size_t l) {
    return kPlan9551.layers[l].cols;
  }
  static constexpr bool relu(std::size_t) { return true; }
};

// The fused train/forward engines (ET_ENGINES) exist only at the AVX2
// level: they rely on V::fma, and SSE2 has no fused operation (emulating
// one with mul+add would round twice and void the fixed-rounding
// determinism contract). The SSE2 instantiation carries just the
// bit-identical dot/axpy kernels.
#define ET_SUFFIX _avx2
#define ET_TARGET ECOTUNE_TARGET_AVX2
#define ET_V ecotune::simd::V4
#define ET_ENGINES 1
#include "nn/kernels_engine.inc"  // NOLINT(bugprone-suspicious-include)
#undef ET_SUFFIX
#undef ET_TARGET
#undef ET_V
#undef ET_ENGINES

#define ET_SUFFIX _sse2
#define ET_TARGET
#define ET_V ecotune::simd::V2x2
#define ET_ENGINES 0
#include "nn/kernels_engine.inc"  // NOLINT(bugprone-suspicious-include)
#undef ET_SUFFIX
#undef ET_TARGET
#undef ET_V
#undef ET_ENGINES

#endif  // ECOTUNE_SIMD_X86

}  // namespace

TrainPlan build_train_plan(const std::vector<std::size_t>& sizes,
                           const std::vector<std::uint8_t>& relu,
                           double learning_rate, double beta1, double beta2,
                           double epsilon) {
  ECOTUNE_CHECK(sizes.size() >= 2 && relu.size() + 1 == sizes.size(),
                "build_train_plan: inconsistent layer geometry");
  TrainPlan plan;
  plan.sizes = sizes;
  plan.learning_rate = learning_rate;
  plan.beta1 = beta1;
  plan.beta2 = beta2;
  plan.epsilon = epsilon;
  plan.max_width = *std::max_element(sizes.begin(), sizes.end());
  const std::size_t num_layers = sizes.size() - 1;
  plan.layers.resize(num_layers);
  std::size_t off = 0;
  for (std::size_t l = 0; l < num_layers; ++l) {
    LayerGeom& g = plan.layers[l];
    g.rows = sizes[l + 1];
    g.cols = sizes[l];
    g.relu = relu[l] != 0;
    g.nb = g.rows / 4;
    g.tail = g.rows % 4;
    g.bias_off = off;
    off += round_up4(g.rows);
    g.tail_off = off;
    off += round_up4(g.cols * g.tail);
  }
  plan.head_size = off;
  for (std::size_t l = 0; l < num_layers; ++l) {
    LayerGeom& g = plan.layers[l];
    g.block_off = off;
    off += g.cols * g.nb * 4;
  }
  plan.total = off;

  plan.act_off.resize(num_layers + 1);
  std::size_t scratch = 0;
  for (std::size_t l = 0; l <= num_layers; ++l) {
    plan.act_off[l] = scratch;
    scratch += round_up4(sizes[l]);
  }
  plan.act_total = scratch;
  plan.pre_off.resize(num_layers);
  scratch = 0;
  for (std::size_t l = 0; l < num_layers; ++l) {
    plan.pre_off[l] = scratch;
    scratch += round_up4(sizes[l + 1]);
  }
  plan.pre_total = scratch;
  return plan;
}

void init_train_state(const TrainPlan& plan, TrainState& st) {
  st.p.assign(plan.total, 0.0);
  st.m.assign(plan.total, 0.0);
  st.v.assign(plan.total, 0.0);
  st.g.assign(plan.total, 0.0);
  st.act.assign(plan.act_total, 0.0);
  st.pre.assign(plan.pre_total, 0.0);
  const std::size_t width = round_up4(plan.max_width);
  st.delta_a.assign(width, 0.0);
  st.delta_b.assign(width, 0.0);
  st.timestep = 0;
  st.bc1_saturated = false;
  st.bc2_saturated = false;
}

const KernelSet& set_for(simd::Level level) {
  static const KernelSet scalar_set{simd::Level::kScalar, &dot_scalar_impl,
                                    &axpy_scalar_impl, nullptr, nullptr};
#if ECOTUNE_SIMD_X86
  static const KernelSet sse2_set{simd::Level::kSse2, &dot_sse2, &axpy_sse2,
                                  nullptr, nullptr};
  static const KernelSet avx2_set{simd::Level::kAvx2, &dot_avx2, &axpy_avx2,
                                  &train_epoch_avx2, &forward_batch_avx2};
  switch (level) {
    case simd::Level::kAvx2:
      return avx2_set;
    case simd::Level::kSse2:
      return sse2_set;
    case simd::Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return scalar_set;
}

const KernelSet& active() { return set_for(simd::active_level()); }

}  // namespace ecotune::nn::kernels
