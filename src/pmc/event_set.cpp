#include "pmc/event_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::pmc {

EventSet::EventSet(std::vector<hwsim::PmuEvent> events) {
  for (auto e : events) add(e);
}

void EventSet::add(hwsim::PmuEvent e) {
  ensure(events_.size() < static_cast<std::size_t>(kMaxHardwareCounters),
         "EventSet::add: no free hardware counter (PAPI_ECNFLCT)");
  ensure(!contains(e), "EventSet::add: event already in set");
  events_.push_back(e);
}

bool EventSet::contains(hwsim::PmuEvent e) const {
  return std::find(events_.begin(), events_.end(), e) != events_.end();
}

std::vector<EventSet> multiplex_schedule(
    const std::vector<hwsim::PmuEvent>& events) {
  std::vector<EventSet> out;
  EventSet current;
  for (auto e : events) {
    if (current.size() ==
        static_cast<std::size_t>(EventSet::kMaxHardwareCounters)) {
      out.push_back(std::move(current));
      current = EventSet();
    }
    current.add(e);
  }
  if (current.size() > 0) out.push_back(std::move(current));
  return out;
}

}  // namespace ecotune::pmc
