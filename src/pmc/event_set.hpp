#pragma once

#include <vector>

#include "hwsim/pmu_events.hpp"

namespace ecotune::pmc {

/// PAPI-style event set. The simulated PMU has a limited number of
/// programmable counters (4, as on Haswell with hyper-threading disabled but
/// NMI watchdog active), which is why collecting all 56 presets requires
/// multiple application runs (paper Sec. IV-A).
class EventSet {
 public:
  /// Programmable counters available per run.
  static constexpr int kMaxHardwareCounters = 4;

  EventSet() = default;
  /// Convenience constructor; throws if `events` exceeds the limit.
  explicit EventSet(std::vector<hwsim::PmuEvent> events);

  /// Adds an event; throws PreconditionError when full or duplicated
  /// (PAPI_ECNFLCT analogue).
  void add(hwsim::PmuEvent e);

  [[nodiscard]] const std::vector<hwsim::PmuEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool contains(hwsim::PmuEvent e) const;

 private:
  std::vector<hwsim::PmuEvent> events_;
};

/// Splits `events` into the minimal sequence of hardware-feasible event sets
/// (the multiplexing schedule for multi-run collection).
[[nodiscard]] std::vector<EventSet> multiplex_schedule(
    const std::vector<hwsim::PmuEvent>& events);

}  // namespace ecotune::pmc
