#pragma once

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "hwsim/counter_model.hpp"
#include "pmc/event_set.hpp"

namespace ecotune::pmc {

/// Measured values keyed by event.
using CounterReadings = std::map<hwsim::PmuEvent, double>;

/// Converts ground-truth counter values into "measured" ones: per-read
/// multiplicative noise models sampling skid and interrupt perturbation.
class CounterSampler {
 public:
  explicit CounterSampler(Rng rng, double relative_noise = 0.005)
      : rng_(rng), noise_(relative_noise) {}

  /// Samples one event set from one region-execution ground truth.
  [[nodiscard]] CounterReadings sample(const EventSet& set,
                                       const hwsim::PmuCounts& truth);

  /// Collects all `events` from repeated executions: `run` is invoked once
  /// per multiplexed event set and per repeat, returning the ground truth of
  /// that execution; readings are averaged over `repeats` (paper: "energy
  /// and PAPI counter values are averaged across all runs").
  template <class RunFn>
  [[nodiscard]] CounterReadings collect_multiplexed(
      const std::vector<hwsim::PmuEvent>& events, RunFn&& run,
      int repeats = 1) {
    CounterReadings avg;
    const auto schedule = multiplex_schedule(events);
    for (const auto& set : schedule) {
      for (int r = 0; r < repeats; ++r) {
        const hwsim::PmuCounts truth = run();
        for (const auto& [e, v] : sample(set, truth)) avg[e] += v;
      }
    }
    for (auto& [e, v] : avg) v /= repeats;
    return avg;
  }

  /// Number of application runs needed to collect `n_events` counters.
  [[nodiscard]] static int runs_required(std::size_t n_events) {
    return static_cast<int>(
        (n_events + EventSet::kMaxHardwareCounters - 1) /
        EventSet::kMaxHardwareCounters);
  }

 private:
  Rng rng_;
  double noise_;
};

}  // namespace ecotune::pmc
