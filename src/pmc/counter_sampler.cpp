#include "pmc/counter_sampler.hpp"

#include <algorithm>

namespace ecotune::pmc {

CounterReadings CounterSampler::sample(const EventSet& set,
                                       const hwsim::PmuCounts& truth) {
  CounterReadings out;
  for (auto e : set.events()) {
    const double v = truth[static_cast<std::size_t>(static_cast<int>(e))];
    const double factor =
        noise_ > 0 ? std::max(0.0, rng_.normal(1.0, noise_)) : 1.0;
    out[e] = v * factor;
  }
  return out;
}

}  // namespace ecotune::pmc
