#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/units.hpp"

namespace ecotune::ptf {

/// What the experiments engine measured for one scenario (or one region
/// under one scenario).
struct Measurement {
  Joules node_energy{0};
  Joules cpu_energy{0};
  Seconds time{0};
  long count = 0;  ///< number of aggregated instances

  Measurement& operator+=(const Measurement& rhs) {
    node_energy += rhs.node_energy;
    cpu_energy += rhs.cpu_energy;
    time += rhs.time;
    count += rhs.count;
    return *this;
  }
};

/// A single-objective tuning criterion (paper Sec. II: energy, TCO, EDP,
/// ED2P...). Lower is better.
class TuningObjective {
 public:
  virtual ~TuningObjective() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual double evaluate(const Measurement& m) const = 0;
};

/// Node energy (the paper's fundamental tuning objective).
class EnergyObjective final : public TuningObjective {
 public:
  [[nodiscard]] std::string_view name() const override { return "energy"; }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return m.node_energy.value();
  }
};

/// CPU (RAPL-domain) energy.
class CpuEnergyObjective final : public TuningObjective {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cpu_energy";
  }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return m.cpu_energy.value();
  }
};

/// Time-to-solution.
class TimeObjective final : public TuningObjective {
 public:
  [[nodiscard]] std::string_view name() const override { return "time"; }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return m.time.value();
  }
};

/// Energy-delay product E*T.
class EdpObjective final : public TuningObjective {
 public:
  [[nodiscard]] std::string_view name() const override { return "edp"; }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return m.node_energy.value() * m.time.value();
  }
};

/// Energy-delay-squared product E*T^2.
class Ed2pObjective final : public TuningObjective {
 public:
  [[nodiscard]] std::string_view name() const override { return "ed2p"; }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return m.node_energy.value() * m.time.value() * m.time.value();
  }
};

/// Total cost of ownership: energy cost plus machine-time cost.
class TcoObjective final : public TuningObjective {
 public:
  /// Defaults: ~0.25 EUR/kWh and a machine-hour rate.
  TcoObjective(double cost_per_joule = 0.25 / 3.6e6,
               double cost_per_second = 0.02 / 3.6e3)
      : cost_per_joule_(cost_per_joule), cost_per_second_(cost_per_second) {}
  [[nodiscard]] std::string_view name() const override { return "tco"; }
  [[nodiscard]] double evaluate(const Measurement& m) const override {
    return cost_per_joule_ * m.node_energy.value() +
           cost_per_second_ * m.time.value();
  }

 private:
  double cost_per_joule_;
  double cost_per_second_;
};

/// Power-capped time-to-solution (Cuttlefish-style, PAPERS.md): score is the
/// run time plus a hard-cap penalty proportional to how far the mean power
/// draw exceeds `cap`. At or under the cap the penalty is exactly zero, so
/// the objective degenerates to plain time; above it each fractional watt of
/// excess costs `weight` x (excess/cap) extra seconds per second of runtime.
/// A zero-time measurement has no defined mean power and scores 0.
class PowerCapObjective final : public TuningObjective {
 public:
  explicit PowerCapObjective(double cap_watts = kDefaultCapWatts,
                             double weight = kDefaultWeight);
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] double evaluate(const Measurement& m) const override;
  [[nodiscard]] double cap_watts() const { return cap_watts_; }

  static constexpr double kDefaultCapWatts = 300.0;
  static constexpr double kDefaultWeight = 10.0;

 private:
  double cap_watts_;
  double weight_;
  std::string name_;
};

/// Energy-budget variant of the cap family: score is run time plus a penalty
/// proportional to how far total node energy exceeds `budget` joules. The
/// penalty is additive (not time-scaled) so an over-budget measurement is
/// penalized even as its time approaches zero.
class EnergyBudgetObjective final : public TuningObjective {
 public:
  explicit EnergyBudgetObjective(double budget_joules = kDefaultBudgetJoules,
                                 double weight = kDefaultWeight);
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] double evaluate(const Measurement& m) const override;
  [[nodiscard]] double budget_joules() const { return budget_joules_; }

  static constexpr double kDefaultBudgetJoules = 10000.0;
  static constexpr double kDefaultWeight = 10.0;

 private:
  double budget_joules_;
  double weight_;
  std::string name_;
};

/// Factory by name ("energy", "cpu_energy", "time", "edp", "ed2p", "tco",
/// "power_cap", "energy_budget"). The cap family also accepts a parameterized
/// spelling: "power_cap:250" caps at 250 W, "energy_budget:5000" budgets
/// 5000 J. Throws ConfigError on unknown names or malformed parameters.
[[nodiscard]] std::unique_ptr<TuningObjective> make_objective(
    std::string_view name);

/// The base spellings make_objective accepts, sorted, for CLI diagnostics.
[[nodiscard]] const std::vector<std::string>& objective_names();

/// Comma-separated objective_names(), for one-line CLI diagnostics.
[[nodiscard]] std::string objective_names_joined();

/// JSON round trip of a Measurement for the measurement store. Doubles
/// survive bit-exactly (Json serializes via std::to_chars), so replayed
/// measurements are indistinguishable from freshly simulated ones.
[[nodiscard]] Json to_json(const Measurement& m);
[[nodiscard]] Measurement measurement_from_json(const Json& j);

}  // namespace ecotune::ptf
