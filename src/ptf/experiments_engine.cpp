#include "ptf/experiments_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/numbers.hpp"
#include "common/parallel.hpp"
#include "store/measurement_store.hpp"

namespace ecotune::ptf {

void ScenarioScheduler::on_enter(const instr::RegionEnter& e) {
  if (e.type != instr::RegionType::kPhase) return;
  const std::size_t i = static_cast<std::size_t>(e.iteration);
  if (i >= schedule_.size()) {
    // Past the schedule: deactivate, or trailing iterations would silently
    // be attributed to the previously active scenario.
    active_ = -1;
    return;
  }
  active_ = schedule_[i].first;
  ctx_.apply(schedule_[i].second);
}

void ScenarioScheduler::on_exit(const instr::RegionExit& e) {
  if (active_ < 0) return;
  auto it = buckets_.find(active_);
  if (it == buckets_.end()) return;
  Measurement m;
  // HDEEM-plugin style measurement: exact value with small reading noise.
  const double f = noise_ > 0 ? std::max(0.0, rng_.normal(1.0, noise_)) : 1.0;
  m.node_energy = e.node_energy * f;
  m.cpu_energy = e.cpu_energy * f;
  m.time = e.duration();
  m.count = 1;
  if (e.type == instr::RegionType::kPhase) {
    it->second.phase += m;
  } else {
    it->second.regions[std::string(e.region)] += m;
  }
}

ExperimentsEngine::ExperimentsEngine(hwsim::NodeSimulator& node,
                                     workload::Benchmark app,
                                     instr::InstrumentationFilter filter,
                                     EngineOptions options)
    : node_(node),
      app_(std::move(app)),
      filter_(std::move(filter)),
      options_(options),
      rng_(options.seed) {}

std::vector<ScenarioResult> ExperimentsEngine::run(
    const std::vector<Scenario>& scenarios, const SystemConfig& base) {
  ensure(!scenarios.empty(), "ExperimentsEngine::run: no scenarios");
  ensure(options_.iterations_per_scenario >= 1,
         "ExperimentsEngine::run: iterations_per_scenario must be >= 1");
  ensure(app_.phase_iterations() >= 1,
         "ExperimentsEngine::run: application has no phase iterations");

  // Build the experiment schedule: each scenario occupies
  // `iterations_per_scenario` consecutive phase iterations.
  ScenarioScheduler::Schedule schedule;
  for (const auto& s : scenarios) {
    for (int i = 0; i < options_.iterations_per_scenario; ++i)
      schedule.emplace_back(s.id, scenario_to_config(s, base));
  }
  std::map<std::int64_t, const Scenario*> by_id;
  for (const auto& s : scenarios) by_id.emplace(s.id, &s);

  // Chunk the schedule into application runs: one run covers at most
  // `phase_iterations` scheduled slots.
  const auto per_run = static_cast<std::size_t>(app_.phase_iterations());
  struct Chunk {
    std::size_t begin = 0;
    std::size_t size = 0;
  };
  std::vector<Chunk> chunks;
  for (std::size_t cursor = 0; cursor < schedule.size();) {
    const std::size_t n = std::min(per_run, schedule.size() - cursor);
    chunks.push_back({cursor, n});
    cursor += n;
  }

  // Each chunk is an independent application run: it gets its own node
  // clone and noise substreams keyed by (run call, chunk index), so the
  // measured values do not depend on the number of concurrent jobs.
  const long run_tag = run_calls_++;

  // Everything chunk-invariant the measured values depend on; each chunk
  // extends a copy with its slice and noise key. The job count stays out of
  // the fingerprint on purpose: chunking and noise keys are jobs-invariant,
  // so a cache written at --jobs 1 answers a --jobs N run and vice versa.
  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", node_.state_fingerprint())
        .add_digest("app", app_.fingerprint_digest())
        .add("base", base)
        .add("iterations_per_scenario", options_.iterations_per_scenario)
        .add("measurement_noise", options_.measurement_noise)
        .add("seed", options_.seed)
        .add("filter", filter_.to_filter_file());
  }

  struct ChunkOutcome {
    std::map<std::int64_t, ScenarioResult> buckets;
    Seconds elapsed{0};
  };
  const auto outcomes = parallel_map_ordered(
      chunks.size(),
      [&](std::size_t k) {
        const Chunk& chunk = chunks[k];
        const std::string key = "engine-run-" + std::to_string(run_tag) +
                                "-chunk-" + std::to_string(k);
        const ScenarioScheduler::Schedule slice(
            schedule.begin() + static_cast<std::ptrdiff_t>(chunk.begin),
            schedule.begin() +
                static_cast<std::ptrdiff_t>(chunk.begin + chunk.size));

        ChunkOutcome out;
        for (const auto& [id, config] : slice) {
          if (out.buckets.contains(id)) continue;
          ScenarioResult r;
          r.scenario = *by_id.at(id);
          r.config = config;
          out.buckets.emplace(id, std::move(r));
        }

        store::MeasurementKey cache_key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("chunk_key", key);
          for (const auto& [id, config] : slice)
            fp.add("slot", static_cast<std::int64_t>(id))
                .add("slot_config", config);
          cache_key.task =
              "engine/" + app_.name() +
              (options_.key_scope.empty() ? "" : "/" + options_.key_scope) +
              "/" + key;
          cache_key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(cache_key)) {
            // Decode into a copy: a payload from an older schema revision
            // must fall back to simulation, not crash the worker or leave
            // half-filled buckets behind.
            try {
              ChunkOutcome cached = out;
              cached.elapsed = Seconds(hit->at("elapsed").as_number());
              std::size_t decoded = 0;
              for (const auto& [id_str, bucket] :
                   hit->at("buckets").as_object()) {
                std::int64_t id = 0;
                ensure(parse_int(id_str, id),
                       "bad bucket id '" + id_str + "'");
                auto& r = cached.buckets.at(id);
                r.phase = measurement_from_json(bucket.at("phase"));
                for (const auto& [region, m] :
                     bucket.at("regions").as_object())
                  r.regions[region] = measurement_from_json(m);
                ++decoded;
              }
              // .at() above rejects payload ids outside the slice; this
              // rejects payloads covering only a subset of it, which would
              // otherwise return zero-initialized scenario measurements.
              ensure(decoded == cached.buckets.size(),
                     "payload covers a different scenario set");
              return cached;
            } catch (const std::exception& e) {
              log::error("store")
                  << "undecodable cache payload for '" << cache_key.task
                  << "' (" << e.what() << "); re-simulating";
            }
          }
        }

        hwsim::NodeSimulator node = node_.clone(key);
        Rng rng = rng_.fork(key);
        const Seconds t0 = node.now();
        // Shorten the app so the run ends when its slice is exhausted.
        const workload::Benchmark run_app =
            app_.with_iterations(static_cast<int>(chunk.size));
        instr::ExecutionContext ctx(node);
        ctx.apply(base);
        ScenarioScheduler scheduler(ctx, slice, out.buckets, rng,
                                    options_.measurement_noise);
        instr::ScorepRuntime runtime(run_app, filter_);
        runtime.add_listener(&scheduler);
        runtime.execute(ctx);
        out.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json buckets = Json::object();
          for (const auto& [id, r] : out.buckets) {
            Json bucket = Json::object();
            bucket["phase"] = to_json(r.phase);
            Json regions = Json::object();
            for (const auto& [region, m] : r.regions)
              regions[region] = to_json(m);
            bucket["regions"] = std::move(regions);
            buckets[std::to_string(id)] = std::move(bucket);
          }
          Json payload = Json::object();
          payload["elapsed"] = out.elapsed.value();
          payload["buckets"] = std::move(buckets);
          cache->insert(cache_key, payload);
        }
        return out;
      },
      options_.jobs);

  // Ordered reduce: merge chunk buckets in schedule order (a scenario's
  // iterations can straddle a chunk boundary) and account the simulated
  // time the clones consumed on the parent node's timeline.
  std::map<std::int64_t, ScenarioResult> merged;
  Seconds total{0};
  for (const auto& out : outcomes) {
    for (const auto& [id, r] : out.buckets) {
      auto it = merged.find(id);
      if (it == merged.end()) {
        merged.emplace(id, r);
      } else {
        it->second.phase += r.phase;
        for (const auto& [region, m] : r.regions)
          it->second.regions[region] += m;
      }
    }
    total += out.elapsed;
  }
  app_runs_ += static_cast<long>(chunks.size());
  experiment_time_ += total;
  node_.idle(total);

  std::vector<ScenarioResult> results;
  results.reserve(scenarios.size());
  for (const auto& s : scenarios) results.push_back(merged.at(s.id));
  return results;
}

const ScenarioResult& ExperimentsEngine::best_phase(
    const std::vector<ScenarioResult>& results,
    const TuningObjective& objective) {
  ensure(!results.empty(), "best_phase: no results");
  const ScenarioResult* best = &results.front();
  for (const auto& r : results) {
    if (objective.evaluate(r.phase) < objective.evaluate(best->phase))
      best = &r;
  }
  return *best;
}

std::map<std::string, const ScenarioResult*>
ExperimentsEngine::best_per_region(const std::vector<ScenarioResult>& results,
                                   const TuningObjective& objective) {
  std::map<std::string, const ScenarioResult*> best;
  for (const auto& r : results) {
    for (const auto& [region, m] : r.regions) {
      auto it = best.find(region);
      if (it == best.end()) {
        best.emplace(region, &r);
      } else {
        const Measurement& incumbent = it->second->regions.at(region);
        if (objective.evaluate(m) < objective.evaluate(incumbent))
          it->second = &r;
      }
    }
  }
  return best;
}

}  // namespace ecotune::ptf
