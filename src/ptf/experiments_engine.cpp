#include "ptf/experiments_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::ptf {
namespace {

/// Listener that assigns one scenario per phase iteration: switches the
/// configuration at phase enter and buckets region/phase measurements by the
/// active scenario.
class ScenarioScheduler final : public instr::RegionListener {
 public:
  ScenarioScheduler(instr::ExecutionContext& ctx,
                    const std::vector<std::pair<int, SystemConfig>>& schedule,
                    std::map<int, ScenarioResult>& buckets, Rng& rng,
                    double noise)
      : ctx_(ctx),
        schedule_(schedule),
        buckets_(buckets),
        rng_(rng),
        noise_(noise) {}

  void on_enter(const instr::RegionEnter& e) override {
    if (e.type != instr::RegionType::kPhase) return;
    const std::size_t i = static_cast<std::size_t>(e.iteration);
    if (i >= schedule_.size()) return;
    active_ = schedule_[i].first;
    ctx_.apply(schedule_[i].second);
  }

  void on_exit(const instr::RegionExit& e) override {
    if (active_ < 0) return;
    auto it = buckets_.find(active_);
    if (it == buckets_.end()) return;
    Measurement m;
    // HDEEM-plugin style measurement: exact value with small reading noise.
    const double f =
        noise_ > 0 ? std::max(0.0, rng_.normal(1.0, noise_)) : 1.0;
    m.node_energy = e.node_energy * f;
    m.cpu_energy = e.cpu_energy * f;
    m.time = e.duration();
    m.count = 1;
    if (e.type == instr::RegionType::kPhase) {
      it->second.phase += m;
    } else {
      it->second.regions[std::string(e.region)] += m;
    }
  }

 private:
  instr::ExecutionContext& ctx_;
  const std::vector<std::pair<int, SystemConfig>>& schedule_;
  std::map<int, ScenarioResult>& buckets_;
  Rng& rng_;
  double noise_;
  int active_ = -1;
};

}  // namespace

ExperimentsEngine::ExperimentsEngine(hwsim::NodeSimulator& node,
                                     workload::Benchmark app,
                                     instr::InstrumentationFilter filter,
                                     EngineOptions options)
    : node_(node),
      app_(std::move(app)),
      filter_(std::move(filter)),
      options_(options),
      rng_(options.seed) {}

std::vector<ScenarioResult> ExperimentsEngine::run(
    const std::vector<Scenario>& scenarios, const SystemConfig& base) {
  ensure(!scenarios.empty(), "ExperimentsEngine::run: no scenarios");
  ensure(options_.iterations_per_scenario >= 1,
         "ExperimentsEngine::run: iterations_per_scenario must be >= 1");

  // Build the experiment schedule: each scenario occupies
  // `iterations_per_scenario` consecutive phase iterations.
  std::vector<std::pair<int, SystemConfig>> schedule;
  std::map<int, ScenarioResult> buckets;
  for (const auto& s : scenarios) {
    ScenarioResult r;
    r.scenario = s;
    r.config = scenario_to_config(s, base);
    buckets.emplace(s.id, std::move(r));
    for (int i = 0; i < options_.iterations_per_scenario; ++i)
      schedule.emplace_back(s.id, scenario_to_config(s, base));
  }

  // Chunk the schedule into application runs: one run covers at most
  // `phase_iterations` scheduled slots.
  const auto per_run = static_cast<std::size_t>(app_.phase_iterations());
  const Seconds t0 = node_.now();
  std::size_t cursor = 0;
  while (cursor < schedule.size()) {
    const std::size_t n = std::min(per_run, schedule.size() - cursor);
    const std::vector<std::pair<int, SystemConfig>> slice(
        schedule.begin() + static_cast<std::ptrdiff_t>(cursor),
        schedule.begin() + static_cast<std::ptrdiff_t>(cursor + n));
    // Shorten the app so the run ends when its slice is exhausted.
    const workload::Benchmark chunk =
        app_.with_iterations(static_cast<int>(n));
    instr::ExecutionContext ctx(node_);
    ctx.apply(base);
    ScenarioScheduler scheduler(ctx, slice, buckets, rng_,
                                options_.measurement_noise);
    instr::ScorepRuntime runtime(chunk, filter_);
    runtime.add_listener(&scheduler);
    runtime.execute(ctx);
    ++app_runs_;
    cursor += n;
  }
  experiment_time_ += node_.now() - t0;

  std::vector<ScenarioResult> out;
  out.reserve(scenarios.size());
  for (const auto& s : scenarios) out.push_back(buckets.at(s.id));
  return out;
}

const ScenarioResult& ExperimentsEngine::best_phase(
    const std::vector<ScenarioResult>& results,
    const TuningObjective& objective) {
  ensure(!results.empty(), "best_phase: no results");
  const ScenarioResult* best = &results.front();
  for (const auto& r : results) {
    if (objective.evaluate(r.phase) < objective.evaluate(best->phase))
      best = &r;
  }
  return *best;
}

std::map<std::string, const ScenarioResult*>
ExperimentsEngine::best_per_region(const std::vector<ScenarioResult>& results,
                                   const TuningObjective& objective) {
  std::map<std::string, const ScenarioResult*> best;
  for (const auto& r : results) {
    for (const auto& [region, m] : r.regions) {
      auto it = best.find(region);
      if (it == best.end()) {
        best.emplace(region, &r);
      } else {
        const Measurement& incumbent = it->second->regions.at(region);
        if (objective.evaluate(m) < objective.evaluate(incumbent))
          it->second = &r;
      }
    }
  }
  return best;
}

}  // namespace ecotune::ptf
