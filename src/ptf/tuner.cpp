#include "ptf/tuner.hpp"

#include <cstdint>

#include "store/serdes.hpp"

namespace ecotune {

Json TuningOutcome::to_json() const {
  Json j = Json::object();
  j["tuner"] = tuner;
  j["objective"] = objective;
  j["best"] = store::to_json(best);
  Json regions = Json::object();
  for (const auto& [region, config] : region_best) {
    regions[region] = store::to_json(config);
  }
  j["region_best"] = regions;
  j["scenarios_evaluated"] = static_cast<std::int64_t>(scenarios_evaluated);
  j["app_runs"] = static_cast<std::int64_t>(app_runs);
  j["tuning_time"] = tuning_time.value();
  j["best_measurement"] = ptf::to_json(best_measurement);
  return j;
}

}  // namespace ecotune
