#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "instr/filter.hpp"
#include "instr/scorep_runtime.hpp"
#include "ptf/objectives.hpp"
#include "ptf/tuning_parameter.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::ptf {

/// What the engine measured for one scenario: the phase-region aggregate
/// plus per-region aggregates (regions are measured in the same experiment,
/// which is how the plugin tunes all significant regions "in a single
/// application run", paper Sec. V-C).
struct ScenarioResult {
  Scenario scenario;
  SystemConfig config;
  Measurement phase;
  std::map<std::string, Measurement> regions;
};

/// Engine knobs.
struct EngineOptions {
  /// Phase iterations evaluated per scenario (>=1; averaging reduces noise).
  int iterations_per_scenario = 1;
  /// Relative noise of per-region energy measurements (HDEEM metric-plugin
  /// readings at region granularity).
  double measurement_noise = 0.004;
  std::uint64_t seed = 0xE61E5EEDULL;
  /// Concurrent application runs (chunks) during scenario execution; each
  /// run executes on its own NodeSimulator clone. 1 = serial, 0 = hardware
  /// concurrency. Results are identical for any value.
  int jobs = 1;
  /// Optional persistent measurement store (not owned). When set and
  /// enabled, each application run (chunk) is answered from the store when
  /// its key -- benchmark, schedule, options, seed, and node-state
  /// fingerprint -- was measured before; values replayed from the store are
  /// bit-exact, so warm results are identical to simulated ones. The job
  /// count is deliberately NOT part of the key: entries written at one
  /// --jobs value answer runs at any other.
  store::MeasurementStore* store = nullptr;
  /// Disambiguates store task keys between engine *instances* that would
  /// otherwise count their run() calls from zero independently (the PTF
  /// frontend builds one engine per tuning step). Cache-key-only: noise
  /// keys are unaffected, so measured values do not depend on it.
  std::string key_scope;
};

/// Listener that assigns one scenario per phase iteration: switches the
/// configuration at phase enter and buckets region/phase measurements by the
/// active scenario. Iterations outside the schedule deactivate measurement
/// (they belong to no scenario). Exposed for direct testing; the engine is
/// the intended user.
class ScenarioScheduler final : public instr::RegionListener {
 public:
  using Schedule = std::vector<std::pair<std::int64_t, SystemConfig>>;

  ScenarioScheduler(instr::ExecutionContext& ctx, const Schedule& schedule,
                    std::map<std::int64_t, ScenarioResult>& buckets, Rng& rng,
                    double noise)
      : ctx_(ctx),
        schedule_(schedule),
        buckets_(buckets),
        rng_(rng),
        noise_(noise) {}

  void on_enter(const instr::RegionEnter& e) override;
  void on_exit(const instr::RegionExit& e) override;

 private:
  instr::ExecutionContext& ctx_;
  const Schedule& schedule_;
  std::map<std::int64_t, ScenarioResult>& buckets_;
  Rng& rng_;
  double noise_;
  std::int64_t active_ = -1;
};

/// PTF experiments engine: executes scenarios on the instrumented
/// application, assigning one scenario per phase iteration so a single
/// application run evaluates many scenarios (the progressive-phase-loop
/// exploitation of paper Sec. V-C). Configurations are switched at phase
/// boundaries through the Parameter Control Plugins.
///
/// With jobs > 1 the independent application runs execute concurrently on
/// per-run node clones; each run's jitter/measurement noise is keyed by its
/// chunk index (not by worker), and measurements are merged in schedule
/// order, so results are bitwise-identical for any job count.
class ExperimentsEngine {
 public:
  /// The application is stored by value, so temporaries are safe to pass.
  ExperimentsEngine(hwsim::NodeSimulator& node, workload::Benchmark app,
                    instr::InstrumentationFilter filter,
                    EngineOptions options = {});

  /// Runs all scenarios; unspecified parameters default to `base`.
  [[nodiscard]] std::vector<ScenarioResult> run(
      const std::vector<Scenario>& scenarios, const SystemConfig& base);

  /// Application runs performed so far (one run covers up to
  /// phase_iterations scenarios).
  [[nodiscard]] long app_runs() const { return app_runs_; }
  /// Total simulated wall time spent in experiments (the tuning time).
  [[nodiscard]] Seconds experiment_time() const { return experiment_time_; }

  /// Picks the best scenario for the phase region under `objective`.
  [[nodiscard]] static const ScenarioResult& best_phase(
      const std::vector<ScenarioResult>& results,
      const TuningObjective& objective);

  /// Picks the best scenario per region under `objective`.
  [[nodiscard]] static std::map<std::string, const ScenarioResult*>
  best_per_region(const std::vector<ScenarioResult>& results,
                  const TuningObjective& objective);

 private:
  hwsim::NodeSimulator& node_;
  workload::Benchmark app_;
  instr::InstrumentationFilter filter_;
  EngineOptions options_;
  Rng rng_;
  long run_calls_ = 0;  ///< disambiguates chunk noise keys across run()s
  long app_runs_ = 0;
  Seconds experiment_time_{0};
};

}  // namespace ecotune::ptf
