#include "ptf/objectives.hpp"

#include "common/error.hpp"

namespace ecotune::ptf {

std::unique_ptr<TuningObjective> make_objective(std::string_view name) {
  if (name == "energy") return std::make_unique<EnergyObjective>();
  if (name == "cpu_energy") return std::make_unique<CpuEnergyObjective>();
  if (name == "time") return std::make_unique<TimeObjective>();
  if (name == "edp") return std::make_unique<EdpObjective>();
  if (name == "ed2p") return std::make_unique<Ed2pObjective>();
  if (name == "tco") return std::make_unique<TcoObjective>();
  throw ConfigError("make_objective: unknown objective '" +
                    std::string(name) + "'");
}

Json to_json(const Measurement& m) {
  Json j = Json::object();
  j["node_energy"] = m.node_energy.value();
  j["cpu_energy"] = m.cpu_energy.value();
  j["time"] = m.time.value();
  j["count"] = static_cast<std::int64_t>(m.count);
  return j;
}

Measurement measurement_from_json(const Json& j) {
  Measurement m;
  m.node_energy = Joules(j.at("node_energy").as_number());
  m.cpu_energy = Joules(j.at("cpu_energy").as_number());
  m.time = Seconds(j.at("time").as_number());
  m.count = static_cast<long>(j.at("count").as_number());
  return m;
}

}  // namespace ecotune::ptf
