#include "ptf/objectives.hpp"

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/numbers.hpp"

namespace ecotune::ptf {
namespace {

// Stringify a cap/budget parameter the way Json does (to_chars shortest
// form), so parameterized names round-trip: make_objective(o->name())
// reconstructs an equivalent objective.
std::string format_parameter(double value) {
  Json j = value;
  return j.dump();
}

// Parses the "<value>" part of "power_cap:<value>" / "energy_budget:<value>".
double parse_cap_parameter(std::string_view family, std::string_view text) {
  double value = 0.0;
  if (!parse_double(text, value) || !(value > 0.0)) {
    throw ConfigError("make_objective: bad parameter '" + std::string(text) +
                      "' for objective family '" + std::string(family) +
                      "' (want a positive number)");
  }
  return value;
}

}  // namespace

PowerCapObjective::PowerCapObjective(double cap_watts, double weight)
    : cap_watts_(cap_watts),
      weight_(weight),
      name_("power_cap:" + format_parameter(cap_watts)) {
  ECOTUNE_CHECK(cap_watts > 0.0, "PowerCapObjective: cap must be positive");
}

double PowerCapObjective::evaluate(const Measurement& m) const {
  const double time = m.time.value();
  if (time <= 0.0) return 0.0;  // no runtime: mean power is undefined
  const double mean_power = m.node_energy.value() / time;
  const double excess = mean_power > cap_watts_ ? mean_power - cap_watts_ : 0.0;
  return time + weight_ * (excess / cap_watts_) * time;
}

EnergyBudgetObjective::EnergyBudgetObjective(double budget_joules,
                                             double weight)
    : budget_joules_(budget_joules),
      weight_(weight),
      name_("energy_budget:" + format_parameter(budget_joules)) {
  ECOTUNE_CHECK(budget_joules > 0.0,
                "EnergyBudgetObjective: budget must be positive");
}

double EnergyBudgetObjective::evaluate(const Measurement& m) const {
  const double energy = m.node_energy.value();
  const double excess =
      energy > budget_joules_ ? energy - budget_joules_ : 0.0;
  return m.time.value() + weight_ * (excess / budget_joules_);
}

std::unique_ptr<TuningObjective> make_objective(std::string_view name) {
  if (name == "energy") return std::make_unique<EnergyObjective>();
  if (name == "cpu_energy") return std::make_unique<CpuEnergyObjective>();
  if (name == "time") return std::make_unique<TimeObjective>();
  if (name == "edp") return std::make_unique<EdpObjective>();
  if (name == "ed2p") return std::make_unique<Ed2pObjective>();
  if (name == "tco") return std::make_unique<TcoObjective>();
  if (name == "power_cap") return std::make_unique<PowerCapObjective>();
  if (name == "energy_budget") {
    return std::make_unique<EnergyBudgetObjective>();
  }
  if (const auto colon = name.find(':'); colon != std::string_view::npos) {
    const std::string_view family = name.substr(0, colon);
    const std::string_view parameter = name.substr(colon + 1);
    if (family == "power_cap") {
      return std::make_unique<PowerCapObjective>(
          parse_cap_parameter(family, parameter));
    }
    if (family == "energy_budget") {
      return std::make_unique<EnergyBudgetObjective>(
          parse_cap_parameter(family, parameter));
    }
  }
  throw ConfigError("make_objective: unknown objective '" +
                    std::string(name) + "'");
}

const std::vector<std::string>& objective_names() {
  static const std::vector<std::string> kNames = {
      "cpu_energy", "ed2p",      "edp", "energy", "energy_budget",
      "power_cap",  "tco", "time"};
  return kNames;
}

std::string objective_names_joined() {
  std::string joined;
  for (const auto& name : objective_names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

Json to_json(const Measurement& m) {
  Json j = Json::object();
  j["node_energy"] = m.node_energy.value();
  j["cpu_energy"] = m.cpu_energy.value();
  j["time"] = m.time.value();
  j["count"] = static_cast<std::int64_t>(m.count);
  return j;
}

Measurement measurement_from_json(const Json& j) {
  Measurement m;
  m.node_energy = Joules(j.at("node_energy").as_number());
  m.cpu_energy = Joules(j.at("cpu_energy").as_number());
  m.time = Seconds(j.at("time").as_number());
  m.count = static_cast<long>(j.at("count").as_number());
  return m;
}

}  // namespace ecotune::ptf
