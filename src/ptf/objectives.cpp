#include "ptf/objectives.hpp"

#include "common/error.hpp"

namespace ecotune::ptf {

std::unique_ptr<TuningObjective> make_objective(std::string_view name) {
  if (name == "energy") return std::make_unique<EnergyObjective>();
  if (name == "cpu_energy") return std::make_unique<CpuEnergyObjective>();
  if (name == "time") return std::make_unique<TimeObjective>();
  if (name == "edp") return std::make_unique<EdpObjective>();
  if (name == "ed2p") return std::make_unique<Ed2pObjective>();
  if (name == "tco") return std::make_unique<TcoObjective>();
  throw ConfigError("make_objective: unknown objective '" +
                    std::string(name) + "'");
}

}  // namespace ecotune::ptf
