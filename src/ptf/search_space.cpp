#include "ptf/search_space.hpp"

#include "common/error.hpp"

namespace ecotune::ptf {

SearchSpace::SearchSpace(std::vector<TuningParameter> params)
    : params_(std::move(params)) {}

void SearchSpace::add_parameter(TuningParameter p) {
  ensure(!p.values.empty(), "SearchSpace: parameter without values");
  params_.push_back(std::move(p));
}

std::size_t SearchSpace::size() const {
  if (params_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& p : params_) n *= p.values.size();
  return n;
}

std::vector<Scenario> SearchSpace::exhaustive() const {
  std::vector<Scenario> out;
  if (params_.empty()) return out;
  out.reserve(size());
  std::vector<std::size_t> idx(params_.size(), 0);
  int id = 0;
  while (true) {
    Scenario s;
    s.id = id++;
    for (std::size_t i = 0; i < params_.size(); ++i)
      s.values[params_[i].name] = params_[i].values[idx[i]];
    out.push_back(std::move(s));
    // Odometer increment.
    std::size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < params_[i].values.size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return out;
}

}  // namespace ecotune::ptf
