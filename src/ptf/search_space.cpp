#include "ptf/search_space.hpp"

#include <limits>

#include "common/error.hpp"

namespace ecotune::ptf {

SearchSpace::SearchSpace(std::vector<TuningParameter> params)
    : params_(std::move(params)) {}

void SearchSpace::add_parameter(TuningParameter p) {
  ensure(!p.values.empty(), "SearchSpace: parameter without values");
  params_.push_back(std::move(p));
}

std::uint64_t SearchSpace::size() const {
  if (params_.empty()) return 0;
  std::uint64_t n = 1;
  for (const auto& p : params_) {
    const auto m = static_cast<std::uint64_t>(p.values.size());
    ensure(n <= std::numeric_limits<std::uint64_t>::max() / m,
           "SearchSpace::size: cartesian product overflows 64 bits");
    n *= m;
  }
  return n;
}

Scenario SearchSpace::scenario_at(std::uint64_t index) const {
  ensure(index < size(), "SearchSpace::scenario_at: index out of range");
  Scenario s;
  s.id = static_cast<std::int64_t>(index);
  std::uint64_t rem = index;
  for (const auto& p : params_) {
    const auto m = static_cast<std::uint64_t>(p.values.size());
    s.values[p.name] = p.values[static_cast<std::size_t>(rem % m)];
    rem /= m;
  }
  return s;
}

ScenarioCursor::ScenarioCursor(const SearchSpace& space)
    : space_(space),
      odometer_(space.parameters().size(), 0),
      remaining_(space.size()) {}

std::optional<Scenario> ScenarioCursor::next() {
  if (remaining_ == 0) return std::nullopt;
  const auto& params = space_.parameters();
  Scenario s;
  s.id = id_++;
  for (std::size_t i = 0; i < params.size(); ++i)
    s.values[params[i].name] = params[i].values[odometer_[i]];
  --remaining_;
  // Odometer increment, parameter 0 fastest (matches exhaustive()).
  for (std::size_t i = 0; i < odometer_.size(); ++i) {
    if (++odometer_[i] < params[i].values.size()) break;
    odometer_[i] = 0;
  }
  return s;
}

std::vector<Scenario> SearchSpace::exhaustive() const {
  std::vector<Scenario> out;
  if (params_.empty()) return out;
  const std::uint64_t n = size();
  ensure(n <= std::numeric_limits<std::size_t>::max() / sizeof(Scenario),
         "SearchSpace::exhaustive: space too large to materialize; "
         "use cursor()/for_each_scenario");
  out.reserve(static_cast<std::size_t>(n));
  for_each_scenario([&](Scenario s) { out.push_back(std::move(s)); });
  return out;
}

}  // namespace ecotune::ptf
