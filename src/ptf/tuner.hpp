#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/units.hpp"
#include "ptf/objectives.hpp"
#include "workload/benchmark.hpp"

namespace ecotune {

/// One tuning task handed to a strategy: the application to tune and the
/// objective to minimize (a name resolvable by ptf::make_objective, so the
/// power-cap family's parameterized spellings -- "power_cap:250" -- work
/// everywhere a request is built).
struct TuningRequest {
  workload::Benchmark app;
  std::string objective = "energy";
};

/// What every strategy reports back, regardless of how it searched: the
/// chosen configuration(s), how many scenarios it evaluated, and what the
/// search cost in application runs and simulated wall time. Strategy-rich
/// details (Q tables, full evaluation lists, tuning models) stay on the
/// concrete tuner types; this is the common denominator the comparison
/// drivers render side by side.
struct TuningOutcome {
  std::string tuner;      ///< strategy name (registry key)
  std::string objective;  ///< objective the request was scored under
  SystemConfig best;      ///< application/phase-level winner
  /// Per-region winners; empty for strategies that only tune app-level.
  std::map<std::string, SystemConfig> region_best;
  long scenarios_evaluated = 0;  ///< configurations (or episodes) scored
  long app_runs = 0;             ///< simulated application runs consumed
  Seconds tuning_time{0};        ///< simulated wall time of the search
  /// Measurement of the winning configuration, when the strategy measured
  /// it directly (count == 0 when it did not).
  ptf::Measurement best_measurement;

  [[nodiscard]] Json to_json() const;
};

/// The common seam every tuning strategy sits behind (paper Table VI /
/// Sec. V): exhaustive and static baselines, the model-based DTA plugin,
/// the online Q-learning tuner, and the cpufreq-governor baselines all
/// implement this, so the comparison drivers can iterate a registry of
/// strategies instead of hand-wiring one stack per approach.
class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Stable strategy name (the TunerRegistry key, e.g. "qlearn").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Runs the strategy's full search for `request` and reports the common
  /// outcome. Implementations draw all randomness from task-keyed Rng
  /// forks, so outcomes are bitwise reproducible and jobs-invariant.
  [[nodiscard]] virtual TuningOutcome tune(const TuningRequest& request) = 0;
};

}  // namespace ecotune
