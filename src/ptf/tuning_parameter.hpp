#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/frequency.hpp"

namespace ecotune::ptf {

/// A named, integer-valued tuning parameter with its explored values (PTF
/// manages search spaces over such parameters). Frequencies are expressed in
/// MHz, threads as counts.
struct TuningParameter {
  std::string name;
  std::vector<int> values;
};

/// Parameter names used by the DVFS/UFS plugin (match the PCP names).
inline constexpr std::string_view kOmpThreadsParam = "OpenMPTP";
inline constexpr std::string_view kCoreFreqParam = "cpu_freq";
inline constexpr std::string_view kUncoreFreqParam = "uncore_freq";

/// OpenMP thread range parameter: lower..upper with the given step (paper
/// Sec. III-B: lower bound and step size come from the pre-processing
/// configuration file).
[[nodiscard]] TuningParameter omp_threads_parameter(int lower, int upper,
                                                    int step);

/// Core-frequency parameter over (a subset of) the DVFS grid.
[[nodiscard]] TuningParameter core_freq_parameter(
    const std::vector<CoreFreq>& values);

/// Uncore-frequency parameter over (a subset of) the UFS grid.
[[nodiscard]] TuningParameter uncore_freq_parameter(
    const std::vector<UncoreFreq>& values);

/// A scenario: one concrete assignment of values to tuning parameters
/// (paper Sec. III: "the tuning plugin creates scenarios ... which are then
/// executed and evaluated by the experiments engine").
struct Scenario {
  /// 64-bit: lazily enumerated search spaces can exceed INT_MAX scenarios.
  std::int64_t id = 0;
  std::map<std::string, int> values;

  [[nodiscard]] bool has(std::string_view param) const {
    return values.count(std::string(param)) > 0;
  }
  [[nodiscard]] int at(std::string_view param) const;
};

/// Converts a scenario to a SystemConfig, taking unspecified parameters
/// from `base`.
[[nodiscard]] SystemConfig scenario_to_config(const Scenario& s,
                                              const SystemConfig& base);

/// Builds a scenario from a SystemConfig (all three parameters set).
[[nodiscard]] Scenario config_to_scenario(std::int64_t id,
                                          const SystemConfig& c);

}  // namespace ecotune::ptf
