#pragma once

#include <string_view>
#include <vector>

#include "hwsim/node.hpp"
#include "instr/filter.hpp"
#include "ptf/experiments_engine.hpp"
#include "ptf/tuning_parameter.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::ptf {

/// What the frontend hands a plugin at initialization: the target
/// application and the node it is being tuned on.
class PluginContext {
 public:
  PluginContext(hwsim::NodeSimulator& node, const workload::Benchmark& app)
      : node_(node), app_(app) {}
  [[nodiscard]] hwsim::NodeSimulator& node() { return node_; }
  [[nodiscard]] const workload::Benchmark& app() const { return app_; }

 private:
  hwsim::NodeSimulator& node_;
  const workload::Benchmark& app_;
};

/// Simplified PTF Tuning Plugin Interface: the frontend drives the plugin
/// through initialize -> (create_scenarios -> experiments engine ->
/// process_results)* -> finalize, mirroring PTF's plugin lifecycle
/// (Miceli et al.).
class TuningPlugin {
 public:
  virtual ~TuningPlugin() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Pre-processing / design-time setup (instrumentation, filtering,
  /// significant-region detection for the DVFS/UFS plugin).
  virtual void initialize(PluginContext& ctx) = 0;

  /// Region instrumentation used for experiment runs (queried after
  /// initialize()).
  [[nodiscard]] virtual instr::InstrumentationFilter
  instrumentation_filter() const = 0;

  /// Base configuration for unspecified scenario parameters.
  [[nodiscard]] virtual SystemConfig scenario_base() const = 0;

  /// True while another tuning step remains.
  [[nodiscard]] virtual bool has_next_tuning_step() const = 0;

  /// Scenarios of the next tuning step (may run analysis internally, as PTF
  /// plugins do in startTuningStep).
  [[nodiscard]] virtual std::vector<Scenario> create_scenarios() = 0;

  /// Consumes the measurements of the step's scenarios.
  virtual void process_results(const std::vector<ScenarioResult>& results) = 0;

  /// End of design-time analysis (tuning model generation for the DVFS/UFS
  /// plugin).
  virtual void finalize() {}
};

/// The PTF frontend: owns the experiments engine and drives a plugin's
/// tuning steps to completion.
class Frontend {
 public:
  explicit Frontend(EngineOptions engine_options = {})
      : engine_options_(engine_options) {}

  /// Runs the full design-time analysis of `plugin` on `app`/`node`.
  /// Returns the total number of scenarios executed.
  int run(TuningPlugin& plugin, const workload::Benchmark& app,
          hwsim::NodeSimulator& node);

  /// Experiment statistics of the last run().
  [[nodiscard]] long app_runs() const { return app_runs_; }
  [[nodiscard]] Seconds experiment_time() const { return experiment_time_; }

 private:
  EngineOptions engine_options_;
  long app_runs_ = 0;
  Seconds experiment_time_{0};
};

}  // namespace ecotune::ptf
