#include "ptf/tuning_parameter.hpp"

#include "common/error.hpp"

namespace ecotune::ptf {

TuningParameter omp_threads_parameter(int lower, int upper, int step) {
  ensure(lower >= 1 && upper >= lower && step >= 1,
         "omp_threads_parameter: invalid range");
  TuningParameter p;
  p.name = std::string(kOmpThreadsParam);
  for (int t = lower; t <= upper; t += step) p.values.push_back(t);
  return p;
}

TuningParameter core_freq_parameter(const std::vector<CoreFreq>& values) {
  ensure(!values.empty(), "core_freq_parameter: empty value set");
  TuningParameter p;
  p.name = std::string(kCoreFreqParam);
  for (auto f : values) p.values.push_back(f.as_mhz());
  return p;
}

TuningParameter uncore_freq_parameter(const std::vector<UncoreFreq>& values) {
  ensure(!values.empty(), "uncore_freq_parameter: empty value set");
  TuningParameter p;
  p.name = std::string(kUncoreFreqParam);
  for (auto f : values) p.values.push_back(f.as_mhz());
  return p;
}

int Scenario::at(std::string_view param) const {
  auto it = values.find(std::string(param));
  ensure(it != values.end(),
         "Scenario::at: parameter '" + std::string(param) + "' not set");
  return it->second;
}

SystemConfig scenario_to_config(const Scenario& s, const SystemConfig& base) {
  SystemConfig c = base;
  if (s.has(kOmpThreadsParam)) c.threads = s.at(kOmpThreadsParam);
  if (s.has(kCoreFreqParam)) c.core = CoreFreq::mhz(s.at(kCoreFreqParam));
  if (s.has(kUncoreFreqParam))
    c.uncore = UncoreFreq::mhz(s.at(kUncoreFreqParam));
  return c;
}

Scenario config_to_scenario(std::int64_t id, const SystemConfig& c) {
  Scenario s;
  s.id = id;
  s.values[std::string(kOmpThreadsParam)] = c.threads;
  s.values[std::string(kCoreFreqParam)] = c.core.as_mhz();
  s.values[std::string(kUncoreFreqParam)] = c.uncore.as_mhz();
  return s;
}

}  // namespace ecotune::ptf
