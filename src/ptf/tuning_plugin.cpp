#include "ptf/tuning_plugin.hpp"

#include <string>

namespace ecotune::ptf {

int Frontend::run(TuningPlugin& plugin, const workload::Benchmark& app,
                  hwsim::NodeSimulator& node) {
  PluginContext ctx(node, app);
  plugin.initialize(ctx);

  int scenarios_executed = 0;
  int step = 0;
  app_runs_ = 0;
  experiment_time_ = Seconds(0);
  while (plugin.has_next_tuning_step()) {
    const std::vector<Scenario> scenarios = plugin.create_scenarios();
    if (scenarios.empty()) continue;
    // Each step gets its own engine (the filter may change between steps);
    // scope their store keys so step N cannot shadow step N-1's entries.
    // A caller-provided scope (campaign row, service request) composes as a
    // prefix so concurrent frontends over the same app cannot collide on
    // identical step task ids either.
    EngineOptions step_options = engine_options_;
    step_options.key_scope =
        (engine_options_.key_scope.empty() ? ""
                                           : engine_options_.key_scope + "/") +
        "step-" + std::to_string(step++);
    ExperimentsEngine engine(node, app, plugin.instrumentation_filter(),
                             step_options);
    const auto results = engine.run(scenarios, plugin.scenario_base());
    app_runs_ += engine.app_runs();
    experiment_time_ += engine.experiment_time();
    scenarios_executed += static_cast<int>(scenarios.size());
    plugin.process_results(results);
  }
  plugin.finalize();
  return scenarios_executed;
}

}  // namespace ecotune::ptf
