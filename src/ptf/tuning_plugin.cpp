#include "ptf/tuning_plugin.hpp"

namespace ecotune::ptf {

int Frontend::run(TuningPlugin& plugin, const workload::Benchmark& app,
                  hwsim::NodeSimulator& node) {
  PluginContext ctx(node, app);
  plugin.initialize(ctx);

  int scenarios_executed = 0;
  app_runs_ = 0;
  experiment_time_ = Seconds(0);
  while (plugin.has_next_tuning_step()) {
    const std::vector<Scenario> scenarios = plugin.create_scenarios();
    if (scenarios.empty()) continue;
    ExperimentsEngine engine(node, app, plugin.instrumentation_filter(),
                             engine_options_);
    const auto results = engine.run(scenarios, plugin.scenario_base());
    app_runs_ += engine.app_runs();
    experiment_time_ += engine.experiment_time();
    scenarios_executed += static_cast<int>(scenarios.size());
    plugin.process_results(results);
  }
  plugin.finalize();
  return scenarios_executed;
}

}  // namespace ecotune::ptf
