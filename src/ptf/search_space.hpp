#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ptf/tuning_parameter.hpp"

namespace ecotune::ptf {

class SearchSpace;

/// Lazy odometer over a SearchSpace's cartesian product: yields the same
/// scenarios as SearchSpace::exhaustive(), in the same order and with the
/// same ids, without ever materializing the product. Together with
/// SearchSpace::scenario_at() (O(#params) random access) this is the
/// enumeration substrate for sweeping spaces too large to materialize;
/// today's plugin spaces are small enough that consumers still pass
/// materialized vectors around.
class ScenarioCursor {
 public:
  explicit ScenarioCursor(const SearchSpace& space);

  /// Scenarios remaining (== space size for a fresh cursor).
  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

  /// Yields the next scenario, or nullopt when the space is exhausted.
  [[nodiscard]] std::optional<Scenario> next();

 private:
  const SearchSpace& space_;
  std::vector<std::size_t> odometer_;
  std::int64_t id_ = 0;
  std::uint64_t remaining_ = 0;
};

/// Cartesian search space over tuning parameters, with the exhaustive and
/// reduced (neighborhood) enumeration strategies the plugin uses.
class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<TuningParameter> params);

  void add_parameter(TuningParameter p);
  [[nodiscard]] const std::vector<TuningParameter>& parameters() const {
    return params_;
  }

  /// Number of scenarios in the full cartesian product. Throws instead of
  /// silently wrapping when the product overflows 64 bits.
  [[nodiscard]] std::uint64_t size() const;

  /// Enumerates every combination (ids are assigned 0..size-1). Prefer
  /// cursor()/for_each_scenario for large spaces: this materializes the
  /// whole product.
  [[nodiscard]] std::vector<Scenario> exhaustive() const;

  /// Lazy enumerator over the same sequence as exhaustive().
  [[nodiscard]] ScenarioCursor cursor() const { return ScenarioCursor(*this); }

  /// Random access: the scenario exhaustive() would place at `index`
  /// (parameter 0 varies fastest). O(#params), no materialization.
  [[nodiscard]] Scenario scenario_at(std::uint64_t index) const;

  /// Applies fn to every scenario lazily, in enumeration order.
  template <typename Fn>
  void for_each_scenario(Fn&& fn) const {
    ScenarioCursor c = cursor();
    while (auto s = c.next()) fn(*s);
  }

 private:
  std::vector<TuningParameter> params_;
};

}  // namespace ecotune::ptf
