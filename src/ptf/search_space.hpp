#pragma once

#include <vector>

#include "ptf/tuning_parameter.hpp"

namespace ecotune::ptf {

/// Cartesian search space over tuning parameters, with the exhaustive and
/// reduced (neighborhood) enumeration strategies the plugin uses.
class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<TuningParameter> params);

  void add_parameter(TuningParameter p);
  [[nodiscard]] const std::vector<TuningParameter>& parameters() const {
    return params_;
  }

  /// Number of scenarios in the full cartesian product.
  [[nodiscard]] std::size_t size() const;

  /// Enumerates every combination (ids are assigned 0..size-1).
  [[nodiscard]] std::vector<Scenario> exhaustive() const;

 private:
  std::vector<TuningParameter> params_;
};

}  // namespace ecotune::ptf
