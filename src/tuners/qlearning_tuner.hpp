#pragma once

#include <cstdint>
#include <vector>

#include "hwsim/node.hpp"
#include "ptf/tuner.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::tuners {

/// Hyperparameters of the online Q-learning tuner. All of them (plus the
/// seed) are part of every cached episode's fingerprint: together with the
/// deterministic Rng they pin the entire episode schedule, so a warm store
/// replays the exact trajectory with zero misses.
struct QLearningOptions {
  int episodes = 48;
  double alpha = 0.5;           ///< learning rate
  double gamma = 0.6;           ///< discount factor
  double epsilon0 = 1.0;        ///< initial exploration rate
  double epsilon_decay = 0.94;  ///< per-episode multiplicative decay
  double epsilon_min = 0.05;
  /// Episode runs use shortened phase loops (same economy as StaticTuner).
  int phase_iterations = 2;
  /// Thread-count axis of the state lattice.
  std::vector<int> thread_counts{12, 16, 20, 24};
  /// Grid-index stride per frequency action; lattices anchor at the grid
  /// maximum so the cluster-default configuration is always a state.
  int cf_step = 2;
  int ucf_step = 2;
  std::uint64_t seed = 0x9173A2;
  /// Optional persistent measurement store (not owned): answers individual
  /// episode measurements from a previous session. Jobs-invariant (the
  /// walk is inherently serial).
  store::MeasurementStore* store = nullptr;
  /// Optional store task-key namespace ("qlearn/<app>/<key_scope>/...");
  /// see baseline::StaticTunerOptions::key_scope.
  std::string key_scope;
};

/// Online Q-learning self-tuning in the style of Gocht et al. (PAPERS.md):
/// no offline acquisition phase -- the tuner learns a state-action value
/// table while the application runs, walking the (threads, CF, UCF) lattice
/// one epsilon-greedy step per episode. Reward is the relative improvement
/// of the objective over the first (reference) episode. Every random draw
/// comes from task-keyed Rng forks (call tag + episode index), so results
/// are bitwise reproducible and trivially `--jobs` invariant.
class QLearningTuner final : public Tuner {
 public:
  QLearningTuner(hwsim::NodeSimulator& node, QLearningOptions options = {});

  [[nodiscard]] std::string_view name() const override { return "qlearn"; }
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request) override;

 private:
  hwsim::NodeSimulator& node_;
  QLearningOptions options_;
  long tune_calls_ = 0;  ///< decorrelates noise across tune() calls
};

}  // namespace ecotune::tuners
