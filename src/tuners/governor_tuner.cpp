#include "tuners/governor_tuner.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "instr/execution_context.hpp"
#include "instr/scorep_runtime.hpp"
#include "store/measurement_store.hpp"
#include "store/serdes.hpp"

namespace ecotune::tuners {
namespace {

/// Reacts to each phase iteration's measured load by re-deciding the core
/// frequency for the next iteration, and aggregates per-configuration
/// residence so the tuner can report the governor's steady-state choice.
class GovernorListener final : public instr::RegionListener {
 public:
  GovernorListener(instr::ExecutionContext& ctx, GovernorPolicy policy,
                   const GovernorOptions& options)
      : ctx_(ctx), policy_(policy), options_(options) {}

  void on_exit(const instr::RegionExit& ev) override {
    if (ev.type != instr::RegionType::kPhase) return;
    record(ev);
    govern(load_of(ev));
  }

  /// Per-configuration residence, in first-visited order.
  struct Residence {
    SystemConfig config;
    ptf::Measurement m;
  };
  [[nodiscard]] const std::vector<Residence>& residences() const {
    return residences_;
  }

 private:
  static double load_of(const instr::RegionExit& ev) {
    const double cycles = ev.counters[static_cast<std::size_t>(
        hwsim::PmuEvent::kTOT_CYC)];
    const double stalled = ev.counters[static_cast<std::size_t>(
        hwsim::PmuEvent::kRES_STL)];
    if (cycles <= 0.0) return 1.0;  // no signal: assume busy, stay high
    const double load = 1.0 - stalled / cycles;
    return load < 0.0 ? 0.0 : (load > 1.0 ? 1.0 : load);
  }

  void record(const instr::RegionExit& ev) {
    for (auto& r : residences_) {
      if (r.config == ev.config) {
        r.m.node_energy += ev.node_energy;
        r.m.cpu_energy += ev.cpu_energy;
        r.m.time += ev.duration();
        ++r.m.count;
        return;
      }
    }
    Residence r;
    r.config = ev.config;
    r.m.node_energy = ev.node_energy;
    r.m.cpu_energy = ev.cpu_energy;
    r.m.time = ev.duration();
    r.m.count = 1;
    residences_.push_back(r);
  }

  void govern(double load) {
    const auto& grid = ctx_.node().spec().core_grid;
    const CoreFreq current = ctx_.current().core;
    CoreFreq next = current;
    if (policy_ == GovernorPolicy::kOndemand) {
      if (load >= options_.up_threshold) {
        next = grid.max();
      } else {
        // Below the threshold ondemand scales proportionally to load.
        const double span =
            static_cast<double>(grid.max().as_mhz() - grid.min().as_mhz());
        next = grid.clamp(CoreFreq::mhz(
            grid.min().as_mhz() + static_cast<int>(load * span)));
      }
    } else {
      const auto index = static_cast<int>(grid.index_of(current));
      int target = index;
      if (load > options_.up_threshold) {
        target = index + options_.freq_step;
      } else if (load < options_.down_threshold) {
        target = index - options_.freq_step;
      }
      const int last = static_cast<int>(grid.size()) - 1;
      target = target < 0 ? 0 : (target > last ? last : target);
      next = grid.at(static_cast<std::size_t>(target));
    }
    if (next.as_mhz() != current.as_mhz()) {
      SystemConfig config = ctx_.current();
      config.core = next;
      ctx_.apply(config);  // charges the DVFS switching latency
    }
  }

  instr::ExecutionContext& ctx_;
  GovernorPolicy policy_;
  GovernorOptions options_;
  std::vector<Residence> residences_;
};

}  // namespace

std::string_view to_string(GovernorPolicy policy) {
  return policy == GovernorPolicy::kOndemand ? "ondemand" : "conservative";
}

GovernorTuner::GovernorTuner(hwsim::NodeSimulator& node, GovernorPolicy policy,
                             GovernorOptions options)
    : node_(node), policy_(policy), options_(options) {
  ensure(options_.freq_step > 0, "GovernorTuner: freq_step must be positive");
  ensure(options_.down_threshold <= options_.up_threshold,
         "GovernorTuner: down_threshold must not exceed up_threshold");
}

TuningOutcome GovernorTuner::tune(const TuningRequest& request) {
  const auto objective = ptf::make_objective(request.objective);
  TuningOutcome out;
  out.tuner = std::string(name());
  out.objective = std::string(objective->name());

  const long call_tag = tune_calls_++;
  const std::string noise_key = "governor-" + std::string(name()) + "-" +
                                std::to_string(call_tag);

  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  store::MeasurementKey cache_key;
  if (cache != nullptr) {
    Fingerprint fp;
    fp.add_digest("node", node_.state_fingerprint())
        .add_digest("app", request.app.fingerprint_digest())
        .add("policy", to_string(policy_))
        .add("up_threshold", options_.up_threshold)
        .add("down_threshold", options_.down_threshold)
        .add("freq_step", options_.freq_step)
        .add("noise_key", noise_key);
    cache_key.task =
        "governor/" + std::string(name()) + "/" + request.app.name() +
        (options_.key_scope.empty() ? "" : "/" + options_.key_scope) + "/" +
        noise_key;
    cache_key.fingerprint = fp.digest();
    if (const auto hit = cache->lookup(cache_key)) {
      try {
        out.best = store::config_from_json(hit->at("best"));
        out.best_measurement = ptf::measurement_from_json(hit->at("m"));
        out.scenarios_evaluated =
            static_cast<long>(hit->at("scenarios").as_number());
        out.app_runs = 1;
        out.tuning_time = Seconds(hit->at("tuning_time").as_number());
        node_.idle(Seconds(hit->at("elapsed").as_number()));
        return out;
      } catch (const std::exception& ex) {
        log::error("store")
            << "undecodable cache payload for '" << cache_key.task << "' ("
            << ex.what() << "); re-simulating";
      }
    }
  }

  // One governed run of the full application on a task-keyed clone. Only
  // the phase region carries probes: the governor samples at phase
  // boundaries, exactly like a kernel governor's periodic load sampling.
  hwsim::NodeSimulator node = node_.clone(noise_key);
  const auto& spec = node.spec();
  instr::InstrumentationFilter filter =
      instr::InstrumentationFilter::instrument_all();
  for (const auto& region : request.app.regions()) filter.exclude(region.name);

  instr::ExecutionContext ctx(node);
  ctx.apply(SystemConfig{spec.total_cores(), spec.default_core,
                         spec.default_uncore});
  instr::ScorepRuntime runtime(request.app, std::move(filter));
  GovernorListener governor(ctx, policy_, options_);
  runtime.add_listener(&governor);

  const Seconds t0 = node.now();
  runtime.execute(ctx);
  const Seconds elapsed = node.now() - t0;

  // The governor's recommendation is its steady state: the configuration
  // the run spent the most phase time under (first-reached wins ties).
  const auto& residences = governor.residences();
  ensure(!residences.empty(),
         "GovernorTuner: the application fired no phase events");
  const GovernorListener::Residence* best = &residences.front();
  for (const auto& r : residences) {
    if (r.m.time.value() > best->m.time.value()) best = &r;
  }
  out.best = best->config;
  out.best_measurement = best->m;
  out.scenarios_evaluated = static_cast<long>(residences.size());
  out.app_runs = 1;
  out.tuning_time = elapsed;

  if (cache != nullptr) {
    Json payload = Json::object();
    payload["best"] = store::to_json(out.best);
    payload["m"] = ptf::to_json(out.best_measurement);
    payload["scenarios"] = static_cast<std::int64_t>(out.scenarios_evaluated);
    payload["tuning_time"] = out.tuning_time.value();
    payload["elapsed"] = elapsed.value();
    cache->insert(cache_key, payload);
  }
  // Return the clone's simulated time to the parent timeline.
  node_.idle(elapsed);
  return out;
}

}  // namespace ecotune::tuners
