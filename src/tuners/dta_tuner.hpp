#pragma once

#include <functional>

#include "core/dvfs_ufs_plugin.hpp"
#include "hwsim/node.hpp"
#include "ptf/tuner.hpp"

namespace ecotune::tuners {

/// Adapter that runs the paper's model-based design-time analysis (the
/// DvfsUfsPlugin frontend loop) behind the common Tuner seam. A fresh
/// plugin is constructed per tune()/run() call, exactly like the hand-wired
/// drivers did, so results are bit-identical to the pre-refactor path.
///
/// The trained energy model is obtained lazily through `model`, so building
/// a DtaTuner (e.g. by listing a registry) costs nothing until it actually
/// tunes -- the other strategies never pay for model training.
class DtaTuner final : public Tuner {
 public:
  using ModelProvider = std::function<const model::EnergyModel&()>;

  DtaTuner(hwsim::NodeSimulator& node, ModelProvider model,
           core::DvfsUfsPlugin::Options options = {});

  [[nodiscard]] std::string_view name() const override { return "dta"; }
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request) override;

  /// Full-detail DTA under the configured options (the rich result the
  /// report sinks render); tune() is a thin mapping over this.
  [[nodiscard]] core::DtaResult run(const workload::Benchmark& app);

 private:
  [[nodiscard]] core::DtaResult run_with(
      const workload::Benchmark& app,
      const core::DvfsUfsPlugin::Options& options);

  hwsim::NodeSimulator& node_;
  ModelProvider model_;
  core::DvfsUfsPlugin::Options options_;
};

}  // namespace ecotune::tuners
