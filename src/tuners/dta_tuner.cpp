#include "tuners/dta_tuner.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace ecotune::tuners {

DtaTuner::DtaTuner(hwsim::NodeSimulator& node, ModelProvider model,
                   core::DvfsUfsPlugin::Options options)
    : node_(node), model_(std::move(model)), options_(std::move(options)) {
  ensure(static_cast<bool>(model_), "DtaTuner: null model provider");
}

core::DtaResult DtaTuner::run_with(const workload::Benchmark& app,
                                   const core::DvfsUfsPlugin::Options& options) {
  const model::EnergyModel& trained = model_();
  core::DvfsUfsPlugin plugin(trained, options);
  return plugin.run_dta(app, node_);
}

core::DtaResult DtaTuner::run(const workload::Benchmark& app) {
  return run_with(app, options_);
}

TuningOutcome DtaTuner::tune(const TuningRequest& request) {
  const auto objective = ptf::make_objective(request.objective);
  core::DvfsUfsPlugin::Options options = options_;
  options.config.objective = std::string(objective->name());
  const core::DtaResult result = run_with(request.app, options);

  TuningOutcome out;
  out.tuner = std::string(name());
  out.objective = std::string(objective->name());
  out.best = result.phase_best;
  out.region_best = result.region_best;
  out.scenarios_evaluated = result.thread_scenarios + result.analysis_runs +
                            result.frequency_scenarios;
  out.app_runs = result.app_runs;
  out.tuning_time = result.tuning_time;
  return out;
}

}  // namespace ecotune::tuners
