#pragma once

#include "hwsim/node.hpp"
#include "ptf/tuner.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::tuners {

/// Which kernel cpufreq policy the governor emulates.
enum class GovernorPolicy {
  kOndemand,      ///< jump to max on high load, scale proportionally below
  kConservative,  ///< step frequency up/down gradually around thresholds
};

[[nodiscard]] std::string_view to_string(GovernorPolicy policy);

/// Knobs mirroring the kernel governors' sysfs tunables.
struct GovernorOptions {
  double up_threshold = 0.80;    ///< load above this scales up
  double down_threshold = 0.30;  ///< load below this scales down
  /// Grid steps per conservative adjustment (freq_step analogue).
  int freq_step = 2;
  /// Optional persistent measurement store (not owned): replays the whole
  /// governed run from a previous session when node/app/options match.
  store::MeasurementStore* store = nullptr;
  /// Optional store task-key namespace ("governor/<policy>/<app>/
  /// <key_scope>/..."); see baseline::StaticTunerOptions::key_scope.
  std::string key_scope;
};

/// Load-reactive frequency governor baseline: runs the application once at
/// the cluster default configuration and re-decides the core frequency at
/// every phase boundary from the measured load of the previous iteration
/// (load = 1 - RES_STL/TOT_CYC, the fraction of cycles not stalled on any
/// resource), the way the kernel's ondemand/conservative cpufreq governors
/// react to utilization samples. No search, no model: acquisition cost is a
/// single application run. Uncore frequency and threads stay at default --
/// real cpufreq governors do not manage either.
class GovernorTuner final : public Tuner {
 public:
  GovernorTuner(hwsim::NodeSimulator& node, GovernorPolicy policy,
                GovernorOptions options = {});

  [[nodiscard]] std::string_view name() const override {
    return to_string(policy_);
  }
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request) override;

 private:
  hwsim::NodeSimulator& node_;
  GovernorPolicy policy_;
  GovernorOptions options_;
  long tune_calls_ = 0;  ///< decorrelates noise across tune() calls
};

}  // namespace ecotune::tuners
