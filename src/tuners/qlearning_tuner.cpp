#include "tuners/qlearning_tuner.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <tuple>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "instr/scorep_runtime.hpp"
#include "store/measurement_store.hpp"

namespace ecotune::tuners {
namespace {

/// Position on the state lattice: (thread index, steps below max CF, steps
/// below max UCF). Ordered so the Q table can live in a std::map (the
/// determinism lint forbids unordered containers near output paths).
using State = std::tuple<int, int, int>;

/// Action set: hold, threads +/- one lattice step, CF/UCF +/- one stride.
enum Action : int {
  kStay = 0,
  kThreadsUp,
  kThreadsDown,
  kCoreDown,
  kCoreUp,
  kUncoreDown,
  kUncoreUp,
  kActionCount,
};

using QRow = std::array<double, kActionCount>;

struct Lattice {
  std::vector<int> thread_counts;
  int core_levels = 0;    ///< reachable CF positions (0 = grid max)
  int uncore_levels = 0;  ///< reachable UCF positions (0 = grid max)
  int cf_step = 1;
  int ucf_step = 1;

  [[nodiscard]] bool valid(const State& s, Action a) const {
    const auto [ti, ck, uk] = s;
    switch (a) {
      case kStay:
        return true;
      case kThreadsUp:
        return ti + 1 < static_cast<int>(thread_counts.size());
      case kThreadsDown:
        return ti > 0;
      case kCoreDown:
        return ck + 1 < core_levels;
      case kCoreUp:
        return ck > 0;
      case kUncoreDown:
        return uk + 1 < uncore_levels;
      case kUncoreUp:
        return uk > 0;
      default:
        return false;
    }
  }

  [[nodiscard]] State apply(const State& s, Action a) const {
    auto [ti, ck, uk] = s;
    switch (a) {
      case kThreadsUp:
        ++ti;
        break;
      case kThreadsDown:
        --ti;
        break;
      case kCoreDown:
        ++ck;
        break;
      case kCoreUp:
        --ck;
        break;
      case kUncoreDown:
        ++uk;
        break;
      case kUncoreUp:
        --uk;
        break;
      default:
        break;
    }
    return State{ti, ck, uk};
  }

  [[nodiscard]] SystemConfig config(const hwsim::CpuSpec& spec,
                                    const State& s) const {
    const auto [ti, ck, uk] = s;
    const std::size_t ci = spec.core_grid.size() - 1 -
                           static_cast<std::size_t>(ck * cf_step);
    const std::size_t ui = spec.uncore_grid.size() - 1 -
                           static_cast<std::size_t>(uk * ucf_step);
    return SystemConfig{thread_counts[static_cast<std::size_t>(ti)],
                        spec.core_grid.at(ci), spec.uncore_grid.at(ui)};
  }
};

/// Greedy action over the valid subset, first-listed winner on ties (the
/// enum order is the deterministic tie-break).
Action best_action(const Lattice& lattice, const QRow& row, const State& s) {
  Action best = kStay;
  double best_q = -std::numeric_limits<double>::max();
  for (int a = 0; a < kActionCount; ++a) {
    const auto action = static_cast<Action>(a);
    if (!lattice.valid(s, action)) continue;
    if (row[static_cast<std::size_t>(a)] > best_q) {
      best_q = row[static_cast<std::size_t>(a)];
      best = action;
    }
  }
  return best;
}

double max_q(const Lattice& lattice, const QRow& row, const State& s) {
  return row[static_cast<std::size_t>(best_action(lattice, row, s))];
}

}  // namespace

QLearningTuner::QLearningTuner(hwsim::NodeSimulator& node,
                               QLearningOptions options)
    : node_(node), options_(std::move(options)) {
  ensure(options_.episodes > 0, "QLearningTuner: episodes must be positive");
  ensure(!options_.thread_counts.empty(),
         "QLearningTuner: empty thread-count lattice");
  ensure(options_.cf_step > 0 && options_.ucf_step > 0,
         "QLearningTuner: frequency strides must be positive");
}

TuningOutcome QLearningTuner::tune(const TuningRequest& request) {
  const auto objective = ptf::make_objective(request.objective);
  const auto& spec = node_.spec();
  const workload::Benchmark short_app =
      request.app.with_iterations(options_.phase_iterations);

  Lattice lattice;
  lattice.thread_counts = options_.thread_counts;
  lattice.cf_step = options_.cf_step;
  lattice.ucf_step = options_.ucf_step;
  lattice.core_levels =
      static_cast<int>(spec.core_grid.size() - 1) / options_.cf_step + 1;
  lattice.uncore_levels =
      static_cast<int>(spec.uncore_grid.size() - 1) / options_.ucf_step + 1;

  // The walk starts at the cluster default operating point: grid maxima and
  // the largest configured thread count (the lattice anchors at index 0).
  const State start{static_cast<int>(lattice.thread_counts.size()) - 1, 0, 0};

  const long call_tag = tune_calls_++;
  const std::string call_key = "qlearn-" + std::to_string(call_tag);
  // All exploration randomness comes from per-episode forks of one
  // call-keyed stream: episode i draws from fork(call).fork(i) regardless
  // of anything that happened in other episodes, so the schedule is pinned
  // by (seed, call, episode) alone.
  const Rng call_rng = Rng(options_.seed).fork(call_key);

  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    // The full episode schedule is part of each entry's identity: node
    // state, app, objective, and every hyperparameter that shapes the
    // trajectory. A warm run with identical options replays the identical
    // walk, so each episode's lookup hits.
    base_fp.add_digest("node", node_.state_fingerprint())
        .add_digest("app", short_app.fingerprint_digest())
        .add("objective", objective->name())
        .add("episodes", options_.episodes)
        .add("alpha", options_.alpha)
        .add("gamma", options_.gamma)
        .add("epsilon0", options_.epsilon0)
        .add("epsilon_decay", options_.epsilon_decay)
        .add("epsilon_min", options_.epsilon_min)
        .add("phase_iterations", options_.phase_iterations)
        .add("cf_step", options_.cf_step)
        .add("ucf_step", options_.ucf_step)
        .add("seed", options_.seed);
    for (int t : options_.thread_counts) base_fp.add("thread_count", t);
  }

  std::map<State, QRow> q;
  State state = start;
  TuningOutcome out;
  out.tuner = std::string(name());
  out.objective = std::string(objective->name());
  double best_score = std::numeric_limits<double>::max();
  double ref_score = 0.0;
  bool have_ref = false;
  Seconds total{0};

  for (int ep = 0; ep < options_.episodes; ++ep) {
    Rng ep_rng = call_rng.fork(static_cast<std::uint64_t>(ep));
    const double epsilon =
        std::max(options_.epsilon_min,
                 options_.epsilon0 * std::pow(options_.epsilon_decay, ep));

    Action action = kStay;
    if (ep_rng.uniform() < epsilon) {
      std::vector<Action> valid;
      for (int a = 0; a < kActionCount; ++a) {
        if (lattice.valid(state, static_cast<Action>(a))) {
          valid.push_back(static_cast<Action>(a));
        }
      }
      action = valid[static_cast<std::size_t>(
          ep_rng.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1))];
    } else {
      action = best_action(lattice, q[state], state);
    }

    const State next = lattice.apply(state, action);
    const SystemConfig config = lattice.config(spec, next);

    // Measure the episode's configuration on a clone whose noise stream is
    // keyed by (call, episode) -- the same task-identity convention the
    // sweep tuners use, so caching and determinism work identically.
    const std::string noise_key = call_key + "-ep-" + std::to_string(ep);
    ptf::Measurement m;
    Seconds elapsed{0};
    store::MeasurementKey cache_key;
    bool measured = false;
    if (cache != nullptr) {
      Fingerprint fp = base_fp;
      fp.add("noise_key", noise_key).add("episode", ep).add("config", config);
      cache_key.task =
          "qlearn/" + request.app.name() +
          (options_.key_scope.empty() ? "" : "/" + options_.key_scope) + "/" +
          noise_key;
      cache_key.fingerprint = fp.digest();
      if (const auto hit = cache->lookup(cache_key)) {
        try {
          ptf::Measurement cached = ptf::measurement_from_json(hit->at("m"));
          elapsed = Seconds(hit->at("elapsed").as_number());
          m = cached;
          measured = true;
        } catch (const std::exception& ex) {
          log::error("store")
              << "undecodable cache payload for '" << cache_key.task << "' ("
              << ex.what() << "); re-simulating";
        }
      }
    }
    if (!measured) {
      hwsim::NodeSimulator node = node_.clone(noise_key);
      const Seconds t0 = node.now();
      const auto run = instr::run_uninstrumented(short_app, node, config);
      m.node_energy = run.node_energy;
      m.cpu_energy = run.cpu_energy;
      m.time = run.wall_time;
      m.count = 1;
      elapsed = node.now() - t0;
      if (cache != nullptr) {
        Json payload = Json::object();
        payload["m"] = ptf::to_json(m);
        payload["elapsed"] = elapsed.value();
        cache->insert(cache_key, payload);
      }
    }
    total += elapsed;

    const double score = objective->evaluate(m);
    if (!have_ref) {
      ref_score = score;
      have_ref = true;
    }
    // Relative improvement over the reference (first) episode; positive
    // when the new configuration beats the starting point.
    const double reward =
        ref_score != 0.0 ? (ref_score - score) / ref_score : -score;

    QRow& row = q[state];
    const double future = max_q(lattice, q[next], next);
    double& value = row[static_cast<std::size_t>(action)];
    value += options_.alpha * (reward + options_.gamma * future - value);

    if (score < best_score) {
      best_score = score;
      out.best = config;
      out.best_measurement = m;
    }
    state = next;
  }

  out.scenarios_evaluated = options_.episodes;
  out.app_runs = options_.episodes;
  out.tuning_time = total;
  // The clones consumed simulated time off the parent's timeline; put it
  // back so downstream accounting (now() deltas) stays meaningful.
  node_.idle(total);
  return out;
}

}  // namespace ecotune::tuners
