#include "tuners/registry.hpp"

#include <utility>

#include "common/error.hpp"

namespace ecotune::tuners {
namespace {

std::unique_ptr<Tuner> make_governor(const TunerContext& ctx,
                                     GovernorPolicy policy) {
  GovernorOptions opts = ctx.governor;
  opts.store = ctx.store;
  opts.key_scope = ctx.key_scope;
  return std::make_unique<GovernorTuner>(*ctx.node, policy, opts);
}

}  // namespace

void TunerRegistry::add(std::string name, Factory factory) {
  ensure(!name.empty(), "TunerRegistry::add: empty strategy name");
  ensure(static_cast<bool>(factory), "TunerRegistry::add: null factory");
  factories_[std::move(name)] = std::move(factory);
}

bool TunerRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> TunerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

std::string TunerRegistry::names_joined() const {
  std::string out;
  for (const auto& [name, factory] : factories_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::unique_ptr<Tuner> TunerRegistry::make(const std::string& name,
                                           const TunerContext& ctx) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw ConfigError("unknown tuner '" + name +
                      "' (registered: " + names_joined() + ")");
  }
  ensure(ctx.node != nullptr, "TunerRegistry::make: null node in context");
  return it->second(ctx);
}

const TunerRegistry& default_registry() {
  static const TunerRegistry kRegistry = [] {
    TunerRegistry r;
    r.add("exhaustive", [](const TunerContext& ctx) -> std::unique_ptr<Tuner> {
      baseline::ExhaustiveTunerOptions opts = ctx.exhaustive_search;
      opts.jobs = ctx.jobs;
      opts.store = ctx.store;
      opts.key_scope = ctx.key_scope;
      return std::make_unique<baseline::ExhaustiveTuner>(*ctx.node, opts);
    });
    r.add("static", [](const TunerContext& ctx) -> std::unique_ptr<Tuner> {
      baseline::StaticTunerOptions opts = ctx.static_search;
      opts.jobs = ctx.jobs;
      opts.store = ctx.store;
      opts.key_scope = ctx.key_scope;
      return std::make_unique<baseline::StaticTuner>(*ctx.node, opts);
    });
    r.add("dta", [](const TunerContext& ctx) -> std::unique_ptr<Tuner> {
      ensure(static_cast<bool>(ctx.model),
             "tuner 'dta' needs a trained-model provider in the context");
      core::DvfsUfsPlugin::Options opts = ctx.plugin;
      opts.engine.jobs = ctx.jobs;
      opts.engine.store = ctx.store;
      if (!ctx.key_scope.empty()) opts.engine.key_scope = ctx.key_scope;
      return std::make_unique<DtaTuner>(*ctx.node, ctx.model, opts);
    });
    r.add("qlearn", [](const TunerContext& ctx) -> std::unique_ptr<Tuner> {
      QLearningOptions opts = ctx.qlearn;
      opts.store = ctx.store;
      opts.key_scope = ctx.key_scope;
      return std::make_unique<QLearningTuner>(*ctx.node, opts);
    });
    r.add("ondemand", [](const TunerContext& ctx) {
      return make_governor(ctx, GovernorPolicy::kOndemand);
    });
    r.add("conservative", [](const TunerContext& ctx) {
      return make_governor(ctx, GovernorPolicy::kConservative);
    });
    return r;
  }();
  return kRegistry;
}

}  // namespace ecotune::tuners
