#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/exhaustive_tuner.hpp"
#include "baseline/static_tuner.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "ptf/tuner.hpp"
#include "tuners/dta_tuner.hpp"
#include "tuners/governor_tuner.hpp"
#include "tuners/qlearning_tuner.hpp"

namespace ecotune::tuners {

/// Everything a strategy factory may need. jobs/store are threaded into
/// each strategy's options by the factory, mirroring how Session overrode
/// them on the hand-wired stacks; `model` is the lazy trained-model
/// provider only the DTA adapter consumes.
struct TunerContext {
  hwsim::NodeSimulator* node = nullptr;
  DtaTuner::ModelProvider model;  ///< may be empty if "dta" is never made
  int jobs = 1;
  store::MeasurementStore* store = nullptr;
  /// Store task-key namespace threaded into every strategy's per-config
  /// entries (and, for "dta", the engine's). Concurrent strategies over the
  /// same benchmark (one per service request) need distinct scopes or their
  /// store entries collide on identical task ids.
  std::string key_scope;
  baseline::StaticTunerOptions static_search;
  baseline::ExhaustiveTunerOptions exhaustive_search;
  core::DvfsUfsPlugin::Options plugin;
  QLearningOptions qlearn;
  GovernorOptions governor;
};

/// Name -> factory map of every registered tuning strategy. Names are the
/// `--tuner` CLI vocabulary; names() is sorted so diagnostics and listings
/// are deterministic.
class TunerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Tuner>(const TunerContext& ctx)>;

  /// Registers (or replaces) a strategy factory under `name`.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Comma-separated sorted names, for CLI diagnostics.
  [[nodiscard]] std::string names_joined() const;

  /// Instantiates the strategy `name` for `ctx`; throws ConfigError with
  /// the registered-name list when `name` is unknown.
  [[nodiscard]] std::unique_ptr<Tuner> make(const std::string& name,
                                            const TunerContext& ctx) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// The built-in strategies: exhaustive, static, dta, qlearn, ondemand,
/// conservative.
[[nodiscard]] const TunerRegistry& default_registry();

}  // namespace ecotune::tuners
