#include "trace/post_processor.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "trace/trace_listener.hpp"

namespace ecotune::trace {

Otf2PostProcessor::Otf2PostProcessor(const Otf2Archive& archive,
                                     std::string phase_region) {
  const auto& records = archive.records();
  if (records.empty()) return;

  total_time_ = Seconds(records.back().timestamp - records.front().timestamp);

  // Metric snapshots: the metric records immediately following an enter or
  // preceding an exit describe that position's cumulative values.
  std::map<std::uint32_t, double> current_metrics;
  std::optional<double> first_energy, last_energy;
  std::uint32_t energy_id = static_cast<std::uint32_t>(-1);
  for (std::size_t i = 0; i < archive.metric_names().size(); ++i) {
    if (archive.metric_names()[i] == kEnergyMetricName)
      energy_id = static_cast<std::uint32_t>(i);
  }

  const bool has_phase = archive.has_region(phase_region);
  const std::uint32_t phase_id =
      has_phase ? archive.region_id(phase_region) : 0;

  std::map<std::uint32_t, RegionTraceStats> region_agg;
  std::map<std::uint32_t, double> open_enter_time;
  std::map<std::uint32_t, double> open_enter_energy;

  std::optional<PhaseInstance> open_phase;
  std::map<std::string, double> phase_enter_counters;
  int phase_counter = 0;

  for (const auto& r : records) {
    switch (r.type) {
      case RecordType::kMetric:
        current_metrics[r.id] = r.value;
        if (r.id == energy_id) {
          if (!first_energy) first_energy = r.value;
          last_energy = r.value;
        }
        break;
      case RecordType::kEnter: {
        open_enter_time[r.id] = r.timestamp;
        if (has_phase && r.id == phase_id) {
          // Snapshot counters at phase entry. The metric records follow the
          // enter record, so defer the snapshot: mark the instance open and
          // fill on first subsequent metric sweep. Since metrics directly
          // follow enters in our writer, reading current_metrics at the next
          // record boundary is equivalent; we snapshot lazily at exit using
          // enter-time values captured below.
          PhaseInstance inst;
          inst.index = phase_counter++;
          inst.start = Seconds(r.timestamp);
          open_phase = inst;
          phase_enter_counters.clear();
        }
        break;
      }
      case RecordType::kExit: {
        auto it = open_enter_time.find(r.id);
        const double t0 = it != open_enter_time.end() ? it->second : 0.0;
        auto& agg = region_agg[r.id];
        agg.count += 1;
        agg.total_time += Seconds(r.timestamp - t0);
        if (has_phase && r.id == phase_id && open_phase) {
          open_phase->end = Seconds(r.timestamp);
          // Counter deltas: cumulative metrics now vs at phase entry.
          for (const auto& [mid, value] : current_metrics) {
            const auto& name = archive.metric_name(mid);
            if (name == kEnergyMetricName) {
              open_phase->energy +=
                  Joules(value - phase_enter_counters[name]);
            } else {
              open_phase->counters[name] =
                  value - phase_enter_counters[name];
            }
          }
          instances_.push_back(*open_phase);
          open_phase.reset();
        }
        break;
      }
    }
    // Snapshot metrics seen right after a phase enter (the writer emits the
    // metric sweep immediately after the enter record).
    if (open_phase && r.type == RecordType::kMetric) {
      const auto& name = archive.metric_name(r.id);
      if (!phase_enter_counters.contains(name))
        phase_enter_counters[name] = r.value;
    }
  }

  if (first_energy && last_energy)
    total_energy_ = Joules(*last_energy - *first_energy);

  for (auto& [id, agg] : region_agg) {
    agg.name = archive.region_name(id);
    region_stats_.push_back(agg);
  }
  std::sort(region_stats_.begin(), region_stats_.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

std::map<std::string, double> Otf2PostProcessor::mean_counter_rates() const {
  std::map<std::string, double> sums;
  double total_duration = 0.0;
  for (const auto& inst : instances_) {
    total_duration += inst.duration().value();
    for (const auto& [name, delta] : inst.counters) sums[name] += delta;
  }
  ensure(total_duration > 0,
         "Otf2PostProcessor::mean_counter_rates: no phase instances");
  for (auto& [name, v] : sums) v /= total_duration;
  return sums;
}

}  // namespace ecotune::trace
