#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/otf2.hpp"

namespace ecotune::trace {

/// Per-phase-instance measurements extracted from a trace: the counter and
/// energy deltas between the phase region's enter and exit records.
struct PhaseInstance {
  int index = 0;
  Seconds start{0};
  Seconds end{0};
  Joules energy{0};
  /// PAPI metric deltas keyed by metric (event) name.
  std::map<std::string, double> counters;

  [[nodiscard]] Seconds duration() const { return end - start; }
};

/// Per-region aggregate extracted from a trace.
struct RegionTraceStats {
  std::string name;
  long count = 0;
  Seconds total_time{0};
  Joules total_energy{0};
};

/// The custom OTF2 post-processing tool of paper Sec. IV-A ("Our tool
/// reports energy values for the entire application run, while PAPI values
/// are reported individually for instances of the phase region").
class Otf2PostProcessor {
 public:
  /// `phase_region` is the annotated phase region name.
  Otf2PostProcessor(const Otf2Archive& archive, std::string phase_region);

  /// Energy over the whole run (last minus first energy metric record).
  [[nodiscard]] Joules total_energy() const { return total_energy_; }

  /// Wall time between the first and last record.
  [[nodiscard]] Seconds total_time() const { return total_time_; }

  /// One entry per phase iteration, chronological.
  [[nodiscard]] const std::vector<PhaseInstance>& phase_instances() const {
    return instances_;
  }

  /// Counter deltas averaged across phase instances and divided by the mean
  /// phase duration: the "PAPI counters normalized by the execution time of
  /// one phase iteration" that feed the energy model (paper Sec. IV-C).
  [[nodiscard]] std::map<std::string, double> mean_counter_rates() const;

  /// Aggregates for every region that appears in the trace.
  [[nodiscard]] const std::vector<RegionTraceStats>& region_stats() const {
    return region_stats_;
  }

 private:
  std::vector<PhaseInstance> instances_;
  std::vector<RegionTraceStats> region_stats_;
  Joules total_energy_{0};
  Seconds total_time_{0};
};

}  // namespace ecotune::trace
