#include "trace/otf2.hpp"

#include <fstream>

#include "common/error.hpp"

namespace ecotune::trace {
namespace {
constexpr char kMagic[8] = {'E', 'C', 'O', 'T', 'R', 'C', '0', '1'};
}

std::uint32_t Otf2Archive::define_region(const std::string& name) {
  auto it = region_ids_.find(name);
  if (it != region_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(region_names_.size());
  region_names_.push_back(name);
  region_ids_.emplace(name, id);
  return id;
}

std::uint32_t Otf2Archive::define_metric(const std::string& name) {
  auto it = metric_ids_.find(name);
  if (it != metric_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(metric_names_.size());
  metric_names_.push_back(name);
  metric_ids_.emplace(name, id);
  return id;
}

void Otf2Archive::append(TraceRecord r) {
  ensure(r.timestamp >= last_timestamp_,
         "Otf2Archive: records must be chronological");
  last_timestamp_ = r.timestamp;
  records_.push_back(r);
}

void Otf2Archive::enter(Seconds t, std::uint32_t region) {
  ensure(region < region_names_.size(), "Otf2Archive::enter: unknown region");
  append({RecordType::kEnter, t.value(), region, 0.0});
}

void Otf2Archive::exit(Seconds t, std::uint32_t region) {
  ensure(region < region_names_.size(), "Otf2Archive::exit: unknown region");
  append({RecordType::kExit, t.value(), region, 0.0});
}

void Otf2Archive::metric(Seconds t, std::uint32_t metric, double value) {
  ensure(metric < metric_names_.size(), "Otf2Archive::metric: unknown metric");
  append({RecordType::kMetric, t.value(), metric, value});
}

const std::string& Otf2Archive::region_name(std::uint32_t id) const {
  ensure(id < region_names_.size(), "Otf2Archive::region_name: bad id");
  return region_names_[id];
}

const std::string& Otf2Archive::metric_name(std::uint32_t id) const {
  ensure(id < metric_names_.size(), "Otf2Archive::metric_name: bad id");
  return metric_names_[id];
}

std::uint32_t Otf2Archive::metric_id(const std::string& name) const {
  auto it = metric_ids_.find(name);
  ensure(it != metric_ids_.end(),
         "Otf2Archive::metric_id: unknown metric '" + name + "'");
  return it->second;
}

std::uint32_t Otf2Archive::region_id(const std::string& name) const {
  auto it = region_ids_.find(name);
  ensure(it != region_ids_.end(),
         "Otf2Archive::region_id: unknown region '" + name + "'");
  return it->second;
}

namespace {

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  ensure(is.good(), "Otf2Archive::load: truncated file");
  return v;
}

void write_string(std::ofstream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& is) {
  const std::uint64_t n = read_u64(is);
  ensure(n < (1ULL << 20), "Otf2Archive::load: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  ensure(is.good(), "Otf2Archive::load: truncated string");
  return s;
}

}  // namespace

void Otf2Archive::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  ensure(os.good(), "Otf2Archive::save: cannot open '" + path + "'");
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, region_names_.size());
  for (const auto& n : region_names_) write_string(os, n);
  write_u64(os, metric_names_.size());
  for (const auto& n : metric_names_) write_string(os, n);
  write_u64(os, records_.size());
  for (const auto& r : records_) {
    os.put(static_cast<char>(r.type));
    os.write(reinterpret_cast<const char*>(&r.timestamp),
             sizeof(r.timestamp));
    os.write(reinterpret_cast<const char*>(&r.id), sizeof(r.id));
    os.write(reinterpret_cast<const char*>(&r.value), sizeof(r.value));
  }
  ensure(os.good(), "Otf2Archive::save: write failed");
}

Otf2Archive Otf2Archive::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ensure(is.good(), "Otf2Archive::load: cannot open '" + path + "'");
  char magic[8];
  is.read(magic, sizeof(magic));
  ensure(is.good() && std::equal(magic, magic + 8, kMagic),
         "Otf2Archive::load: bad magic");
  Otf2Archive a;
  const std::uint64_t nregions = read_u64(is);
  for (std::uint64_t i = 0; i < nregions; ++i)
    a.define_region(read_string(is));
  const std::uint64_t nmetrics = read_u64(is);
  for (std::uint64_t i = 0; i < nmetrics; ++i)
    a.define_metric(read_string(is));
  const std::uint64_t nrecords = read_u64(is);
  a.records_.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    TraceRecord r;
    r.type = static_cast<RecordType>(is.get());
    is.read(reinterpret_cast<char*>(&r.timestamp), sizeof(r.timestamp));
    is.read(reinterpret_cast<char*>(&r.id), sizeof(r.id));
    is.read(reinterpret_cast<char*>(&r.value), sizeof(r.value));
    ensure(is.good(), "Otf2Archive::load: truncated record");
    a.records_.push_back(r);
  }
  if (!a.records_.empty()) a.last_timestamp_ = a.records_.back().timestamp;
  return a;
}

}  // namespace ecotune::trace
