#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace ecotune::trace {

/// Trace record kinds (subset of OTF2 event records we need).
enum class RecordType : std::uint8_t { kEnter = 0, kExit = 1, kMetric = 2 };

/// One chronological trace record. Metric records are associated with the
/// enclosing enter/exit position, as Score-P writes them (paper Sec. IV-A:
/// "performance metrics and energy values are recorded only at entry and
/// exit of a region").
struct TraceRecord {
  RecordType type = RecordType::kEnter;
  double timestamp = 0.0;  ///< seconds since trace start
  std::uint32_t id = 0;    ///< region id (enter/exit) or metric id (metric)
  double value = 0.0;      ///< metric value; unused otherwise
};

/// An OTF2-style trace archive: definitions (region/metric name tables) plus
/// a chronologically ordered record stream, serializable to a compact binary
/// file.
class Otf2Archive {
 public:
  /// Interns a region name, returning its id.
  std::uint32_t define_region(const std::string& name);
  /// Interns a metric name, returning its id.
  std::uint32_t define_metric(const std::string& name);

  /// Appends records; timestamps must be monotonically non-decreasing.
  void enter(Seconds t, std::uint32_t region);
  void exit(Seconds t, std::uint32_t region);
  void metric(Seconds t, std::uint32_t metric, double value);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<std::string>& region_names() const {
    return region_names_;
  }
  [[nodiscard]] const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }
  [[nodiscard]] const std::string& region_name(std::uint32_t id) const;
  [[nodiscard]] const std::string& metric_name(std::uint32_t id) const;
  /// Id of a previously defined metric; throws if unknown.
  [[nodiscard]] std::uint32_t metric_id(const std::string& name) const;
  /// Id of a previously defined region; throws if unknown.
  [[nodiscard]] std::uint32_t region_id(const std::string& name) const;
  [[nodiscard]] bool has_region(const std::string& name) const {
    return region_ids_.count(name) > 0;
  }

  /// Serializes to the ecotune binary trace format.
  void save(const std::string& path) const;
  /// Loads an archive written by save(); throws Error on malformed input.
  [[nodiscard]] static Otf2Archive load(const std::string& path);

 private:
  void append(TraceRecord r);
  std::vector<std::string> region_names_;
  std::map<std::string, std::uint32_t> region_ids_;
  std::vector<std::string> metric_names_;
  std::map<std::string, std::uint32_t> metric_ids_;
  std::vector<TraceRecord> records_;
  double last_timestamp_ = 0.0;
};

}  // namespace ecotune::trace
