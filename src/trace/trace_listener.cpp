#include "trace/trace_listener.hpp"

#include <string>

namespace ecotune::trace {

TraceListener::TraceListener(Otf2Archive& archive, pmc::EventSet events,
                             pmc::CounterSampler sampler)
    : archive_(archive),
      events_(std::move(events)),
      sampler_(std::move(sampler)),
      energy_metric_(archive_.define_metric(std::string(kEnergyMetricName))),
      cum_counters_(events_.size(), 0.0) {
  for (auto e : events_.events())
    counter_metrics_.push_back(
        archive_.define_metric(std::string(hwsim::pmu_event_name(e))));
}

void TraceListener::write_metrics(Seconds t) {
  archive_.metric(t, energy_metric_, cum_energy_);
  for (std::size_t i = 0; i < counter_metrics_.size(); ++i)
    archive_.metric(t, counter_metrics_[i], cum_counters_[i]);
}

void TraceListener::on_enter(const instr::RegionEnter& e) {
  const std::uint32_t region = archive_.define_region(std::string(e.region));
  archive_.enter(e.timestamp, region);
  write_metrics(e.timestamp);
  ++depth_;
}

void TraceListener::on_exit(const instr::RegionExit& e) {
  --depth_;
  // Leaf regions advance the cumulative measurements; the enclosing phase
  // region would otherwise double-count its children.
  if (e.type != instr::RegionType::kPhase) {
    cum_energy_ += e.node_energy.value();
    const auto readings = sampler_.sample(events_, e.counters);
    std::size_t i = 0;
    for (auto ev : events_.events()) cum_counters_[i++] += readings.at(ev);
  }
  const std::uint32_t region = archive_.define_region(std::string(e.region));
  write_metrics(e.exit_time);
  archive_.exit(e.exit_time, region);
}

}  // namespace ecotune::trace
