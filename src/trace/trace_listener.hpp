#pragma once

#include <vector>

#include "instr/region_events.hpp"
#include "pmc/counter_sampler.hpp"
#include "pmc/event_set.hpp"
#include "trace/otf2.hpp"

namespace ecotune::trace {

/// Name of the node-energy metric written by the scorep_hdeem_plugin
/// analogue.
inline constexpr std::string_view kEnergyMetricName = "hdeem/BLADE/E";

/// Bridges Score-P region events into an OTF2 archive: writes enter/exit
/// records plus cumulative metric records for node energy (the HDEEM metric
/// plugin) and for the PAPI events of one hardware event set (at most 4, the
/// multiplexing limit). Counter readings carry sampling noise.
class TraceListener final : public instr::RegionListener {
 public:
  /// Traces into `archive`; `events` is the PMU event set recorded in this
  /// run (may be empty for energy-only traces).
  TraceListener(Otf2Archive& archive, pmc::EventSet events,
                pmc::CounterSampler sampler);

  // instr::RegionListener:
  void on_enter(const instr::RegionEnter& e) override;
  void on_exit(const instr::RegionExit& e) override;

 private:
  void write_metrics(Seconds t);

  Otf2Archive& archive_;
  pmc::EventSet events_;
  pmc::CounterSampler sampler_;
  std::uint32_t energy_metric_;
  std::vector<std::uint32_t> counter_metrics_;
  /// Cumulative (since trace start) measured values.
  double cum_energy_ = 0.0;
  std::vector<double> cum_counters_;
  int depth_ = 0;  ///< nesting depth: counters accumulate on leaf exits only
};

}  // namespace ecotune::trace
