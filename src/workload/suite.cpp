#include "workload/suite.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::workload {
namespace {

using hwsim::KernelTraits;

/// Instruction-mix presets; they mainly shape the counter signature each
/// benchmark presents to the model-selection pipeline.
enum class Mix { kFpVector, kFpScalar, kStream, kIntBranchy, kSparse };

KernelTraits mix_traits(Mix m) {
  KernelTraits t;
  switch (m) {
    case Mix::kFpVector:  // dense FP kernels: BLAS, MD force loops
      t.ipc_peak = 2.6;
      t.load_fraction = 0.30;
      t.store_fraction = 0.10;
      t.branch_fraction = 0.06;
      t.branch_taken_rate = 0.70;
      t.branch_miss_rate = 0.008;
      t.l1d_miss_rate = 0.020;
      t.l1i_miss_rate = 0.0008;
      t.l2_miss_rate = 0.25;
      t.l3_miss_rate = 0.30;
      t.fp_fraction = 0.45;
      t.vector_fraction = 0.55;
      break;
    case Mix::kFpScalar:  // unstructured-mesh FP: Lulesh, BEM kernels
      t.ipc_peak = 2.0;
      t.load_fraction = 0.28;
      t.store_fraction = 0.12;
      t.branch_fraction = 0.10;
      t.branch_taken_rate = 0.60;
      t.branch_miss_rate = 0.015;
      t.l1d_miss_rate = 0.035;
      t.l1i_miss_rate = 0.0015;
      t.l2_miss_rate = 0.30;
      t.l3_miss_rate = 0.35;
      t.fp_fraction = 0.38;
      t.vector_fraction = 0.25;
      break;
    case Mix::kStream:  // bandwidth-bound sweeps: MG, miniFE, FT
      t.ipc_peak = 1.4;
      t.load_fraction = 0.38;
      t.store_fraction = 0.18;
      t.branch_fraction = 0.08;
      t.branch_taken_rate = 0.85;
      t.branch_miss_rate = 0.004;
      t.l1d_miss_rate = 0.11;
      t.l1i_miss_rate = 0.0005;
      t.l2_miss_rate = 0.60;
      t.l3_miss_rate = 0.65;
      t.fp_fraction = 0.25;
      t.vector_fraction = 0.40;
      break;
    case Mix::kIntBranchy:  // sorting, Monte Carlo control flow: IS, DC, Mcb
      t.ipc_peak = 1.6;
      t.load_fraction = 0.26;
      t.store_fraction = 0.14;
      t.branch_fraction = 0.22;
      t.branch_taken_rate = 0.48;
      t.branch_miss_rate = 0.060;
      t.l1d_miss_rate = 0.060;
      t.l1i_miss_rate = 0.004;
      t.l2_miss_rate = 0.45;
      t.l3_miss_rate = 0.50;
      t.fp_fraction = 0.08;
      t.vector_fraction = 0.05;
      break;
    case Mix::kSparse:  // indirect access: CG, XSBench, AMG
      t.ipc_peak = 1.3;
      t.load_fraction = 0.42;
      t.store_fraction = 0.08;
      t.branch_fraction = 0.12;
      t.branch_taken_rate = 0.58;
      t.branch_miss_rate = 0.030;
      t.l1d_miss_rate = 0.14;
      t.l1i_miss_rate = 0.002;
      t.l2_miss_rate = 0.70;
      t.l3_miss_rate = 0.60;
      t.fp_fraction = 0.22;
      t.vector_fraction = 0.10;
      break;
  }
  return t;
}

/// Compact region builder used by the suite definitions below.
struct R {
  std::string name;
  Mix mix;
  double gi;       ///< giga-instructions per iteration
  double bpi;      ///< DRAM bytes per instruction
  double upi;      ///< uncore cycles per instruction
  double par;      ///< Amdahl parallel fraction
  double cont;     ///< contention per extra thread
  double overlap;  ///< compute/memory overlap
  double act;      ///< dynamic-power activity factor
};

Region make_region(const R& r) {
  KernelTraits t = mix_traits(r.mix);
  t.total_instructions = r.gi * 1e9;
  // Fork/join cost grows with the amount of work sharing inside the region
  // but stays bounded; tiny helper regions must remain sub-millisecond.
  t.sync_seconds_per_thread = std::min(2.0e-5, 2.0e-6 + 1.2e-6 * r.gi);
  t.dram_bytes = r.bpi * t.total_instructions;
  t.uncore_cycles = r.upi * t.total_instructions;
  t.parallel_fraction = r.par;
  t.contention = r.cont;
  t.overlap = r.overlap;
  t.activity = r.act;
  return Region{r.name, t, 1};
}

std::vector<Region> make_regions(std::initializer_list<R> rs) {
  std::vector<Region> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(make_region(r));
  return out;
}

std::vector<Benchmark> build_suite() {
  std::vector<Benchmark> v;
  const auto omp = ProgrammingModel::kOpenMp;
  const auto mpi = ProgrammingModel::kMpi;
  const auto hyb = ProgrammingModel::kHybrid;

  // ---- NPB-3.3 -----------------------------------------------------------
  // CG: sparse conjugate gradient, memory-latency bound.
  v.emplace_back("CG", "NPB-3.3", omp,
                 make_regions({
                     {"conj_grad", Mix::kSparse, 14, 2.8, 0.50, 0.992, 0.006,
                      0.85, 0.70},
                     {"norm_resid", Mix::kStream, 4, 1.8, 0.30, 0.990, 0.006,
                      0.80, 0.65},
                 }),
                 15, 0.015);
  // DC: data cube, branchy integer with irregular IO-like stalls.
  v.emplace_back("DC", "NPB-3.3", omp,
                 make_regions({
                     {"build_cube", Mix::kIntBranchy, 10, 0.9, 0.45, 0.975,
                      0.010, 0.55, 0.62},
                     {"aggregate_views", Mix::kIntBranchy, 7, 1.3, 0.55, 0.970,
                      0.012, 0.60, 0.60},
                 }),
                 10, 0.02);
  // EP: embarrassingly parallel random-number kernel, pure compute.
  v.emplace_back("EP", "NPB-3.3", omp,
                 make_regions({
                     {"gaussian_pairs", Mix::kFpScalar, 26, 0.02, 0.015, 0.999,
                      0.001, 0.95, 0.98},
                 }),
                 12, 0.01);
  // FT: 3-D FFT, alternating compute and transpose (bandwidth) phases.
  v.emplace_back("FT", "NPB-3.3", omp,
                 make_regions({
                     {"fft_layers", Mix::kFpVector, 16, 0.55, 0.30, 0.995,
                      0.004, 0.75, 1.02},
                     {"transpose", Mix::kStream, 7, 2.4, 0.45, 0.990, 0.006,
                      0.80, 0.70},
                 }),
                 12, 0.015);
  // IS: integer bucket sort, bandwidth + branches.
  v.emplace_back("IS", "NPB-3.3", omp,
                 make_regions({
                     {"rank_keys", Mix::kIntBranchy, 9, 3.2, 0.55, 0.988,
                      0.008, 0.85, 0.62},
                     {"key_permute", Mix::kStream, 5, 3.8, 0.40, 0.985, 0.008,
                      0.85, 0.60},
                 }),
                 14, 0.02);
  // MG: multigrid V-cycle, strongly bandwidth bound.
  v.emplace_back("MG", "NPB-3.3", omp,
                 make_regions({
                     {"resid", Mix::kStream, 11, 2.9, 0.50, 0.993, 0.005, 0.85,
                      0.72},
                     {"psinv", Mix::kStream, 8, 2.6, 0.45, 0.993, 0.005, 0.85,
                      0.72},
                     {"interp", Mix::kStream, 5, 2.1, 0.40, 0.990, 0.006, 0.80,
                      0.68},
                 }),
                 16, 0.015);
  // BT: block-tridiagonal solver, compute heavy.
  v.emplace_back("BT", "NPB-3.3", omp,
                 make_regions({
                     {"x_solve", Mix::kFpScalar, 15, 0.35, 0.18, 0.996, 0.003,
                      0.80, 1.05},
                     {"y_solve", Mix::kFpScalar, 15, 0.35, 0.18, 0.996, 0.003,
                      0.80, 1.05},
                     {"z_solve", Mix::kFpScalar, 16, 0.45, 0.20, 0.996, 0.003,
                      0.80, 1.05},
                 }),
                 12, 0.015);
  // BT-MZ: multi-zone hybrid variant.
  v.emplace_back("BT-MZ", "NPB-3.3", hyb,
                 make_regions({
                     {"zone_solve", Mix::kFpScalar, 24, 0.30, 0.16, 0.995,
                      0.004, 0.80, 1.02},
                     {"exch_qbc", Mix::kStream, 4, 1.6, 0.35, 0.980, 0.008,
                      0.70, 0.68},
                 }),
                 12, 0.02);
  // SP-MZ: multi-zone scalar-pentadiagonal, hybrid.
  v.emplace_back("SP-MZ", "NPB-3.3", hyb,
                 make_regions({
                     {"zone_sp_solve", Mix::kFpScalar, 20, 0.55, 0.25, 0.995,
                      0.004, 0.78, 1.0},
                     {"exch_qbc", Mix::kStream, 5, 1.9, 0.35, 0.982, 0.008,
                      0.72, 0.68},
                 }),
                 12, 0.02);

  // ---- CORAL -------------------------------------------------------------
  // Amg2013: algebraic multigrid; scaling saturates well below 24 threads
  // (paper Table V: 16 threads optimal).
  v.emplace_back("Amg2013", "CORAL", hyb,
                 make_regions({
                     {"hypre_BoomerAMGSolve", Mix::kFpScalar, 24, 0.54, 0.31,
                      0.984, 0.026, 0.78, 0.80},
                     {"hypre_BoomerAMGRelax", Mix::kFpScalar, 18, 0.67, 0.33,
                      0.983, 0.023, 0.80, 0.78},
                     {"hypre_ParCSRMatvec", Mix::kFpScalar, 15, 0.47, 0.27,
                      0.992, 0.006, 0.78, 0.82},
                 }),
                 18, 0.02);
  // Lulesh: shock hydrodynamics, compute-bound with mildly heterogeneous
  // regions (paper Tables III and V).
  v.emplace_back("Lulesh", "CORAL", hyb,
                 make_regions({
                     {"IntegrateStressForElems", Mix::kFpScalar, 16, 0.17,
                      0.13, 0.996, 0.003, 0.80, 0.96},
                     {"CalcFBHourglassForceForElems", Mix::kFpScalar, 18, 0.14,
                      0.11, 0.996, 0.003, 0.80, 0.99},
                     {"CalcKinematicsForElems", Mix::kFpScalar, 13, 0.26, 0.16,
                      0.995, 0.004, 0.78, 0.93},
                     {"CalcQForElems", Mix::kFpScalar, 11, 0.21, 0.14, 0.993,
                      0.008, 0.78, 0.96},
                     {"ApplyMaterialPropertiesForElems", Mix::kFpScalar, 9,
                      0.32, 0.18, 0.985, 0.019, 0.75, 0.91},
                     {"TimeIncrement", Mix::kIntBranchy, 0.008, 0.3, 0.2, 0.90,
                      0.01, 0.6, 0.6},
                     {"CalcCourantConstraint", Mix::kFpScalar, 0.02, 0.2, 0.2,
                      0.95, 0.01, 0.7, 0.8},
                 }),
                 25, 0.022);
  // miniFE: finite-element assembly + CG solve, bandwidth bound.
  v.emplace_back("miniFE", "CORAL", omp,
                 make_regions({
                     {"matvec", Mix::kStream, 13, 2.7, 0.50, 0.992, 0.006,
                      0.85, 0.70},
                     {"assemble_FE", Mix::kFpScalar, 8, 0.8, 0.30, 0.990,
                      0.008, 0.75, 0.88},
                     {"dot_axpy", Mix::kStream, 5, 3.0, 0.40, 0.990, 0.006,
                      0.85, 0.66},
                 }),
                 15, 0.015);
  // XSBench: Monte Carlo cross-section lookup, memory-latency dominated.
  v.emplace_back("XSBench", "CORAL", hyb,
                 make_regions({
                     {"xs_lookup", Mix::kSparse, 15, 3.4, 0.65, 0.993, 0.006,
                      0.90, 0.64},
                     {"grid_search", Mix::kIntBranchy, 6, 2.2, 0.50, 0.990,
                      0.008, 0.85, 0.62},
                 }),
                 14, 0.02);
  // Kripke: deterministic transport sweeps, mixed compute/memory.
  v.emplace_back("Kripke", "CORAL", mpi,
                 make_regions({
                     {"sweep_solver", Mix::kFpScalar, 17, 0.85, 0.35, 0.994,
                      0.005, 0.78, 0.95},
                     {"ltimes", Mix::kFpVector, 9, 0.55, 0.25, 0.995, 0.004,
                      0.78, 1.0},
                     {"scattering", Mix::kStream, 6, 1.8, 0.40, 0.990, 0.006,
                      0.80, 0.75},
                 }),
                 14, 0.02);
  // Mcb: Monte Carlo burnup proxy, predominantly memory bound (paper Fig. 7,
  // Tables IV and V).
  v.emplace_back("Mcb", "CORAL", hyb,
                 make_regions({
                     {"setupDT", Mix::kIntBranchy, 9, 3.0, 0.60, 0.984, 0.016,
                      0.90, 0.58},
                     {"advPhoton", Mix::kIntBranchy, 14, 4.2, 0.70, 0.985,
                      0.016, 0.90, 0.56},
                     {"omp parallel:423", Mix::kSparse, 8, 2.5, 0.52, 0.982,
                      0.017, 0.88, 0.60},
                     {"omp parallel:501", Mix::kSparse, 7, 2.0, 0.48, 0.978,
                      0.030, 0.85, 0.64},
                     {"omp parallel:642", Mix::kIntBranchy, 8, 3.8, 0.65,
                      0.983, 0.016, 0.90, 0.56},
                     {"tallyFlux", Mix::kStream, 0.015, 1.0, 0.4, 0.9, 0.01,
                      0.8, 0.6},
                 }),
                 20, 0.045);

  // ---- Mantevo -----------------------------------------------------------
  // CoMD: classical molecular dynamics, compute bound.
  v.emplace_back("CoMD", "Mantevo", mpi,
                 make_regions({
                     {"ljForce", Mix::kFpVector, 20, 0.12, 0.08, 0.997, 0.002,
                      0.85, 1.05},
                     {"advanceVelocity", Mix::kStream, 4, 1.2, 0.25, 0.992,
                      0.005, 0.80, 0.72},
                 }),
                 16, 0.01);
  // miniMD: MD proxy, strongly compute bound (paper Table V: 2.5|1.5).
  v.emplace_back("miniMD", "Mantevo", hyb,
                 make_regions({
                     {"compute_force", Mix::kFpVector, 24, 0.10, 0.09, 0.998,
                      0.002, 0.90, 1.0},
                     {"neighbor_build", Mix::kIntBranchy, 7, 0.35, 0.18, 0.990,
                      0.012, 0.75, 0.80},
                     {"integrate", Mix::kStream, 8, 0.5, 0.10, 0.994, 0.004,
                      0.85, 0.70},
                 }),
                 22, 0.018);

  // ---- LLCBench ----------------------------------------------------------
  // Blasbench: dense BLAS, cache-resident compute.
  v.emplace_back("Blasbench", "LLCBench", omp,
                 make_regions({
                     {"dgemm_kernel", Mix::kFpVector, 30, 0.04, 0.06, 0.998,
                      0.002, 0.92, 1.0},
                     {"dgemv_kernel", Mix::kFpVector, 8, 0.8, 0.20, 0.994,
                      0.004, 0.85, 0.95},
                 }),
                 12, 0.01);

  // ---- Real-world application --------------------------------------------
  // BEM4I: boundary-element Helmholtz solver; AVX-heavy assembly plus a
  // memory-bound representation evaluation (paper Table V: 2.3|1.9).
  v.emplace_back("BEM4I", "Other", hyb,
                 make_regions({
                     {"assembleV", Mix::kFpVector, 18, 0.22, 0.17, 0.996,
                      0.003, 0.82, 1.18},
                     {"assembleK", Mix::kFpVector, 15, 0.24, 0.18, 0.996,
                      0.003, 0.82, 1.16},
                     {"gmresSolve", Mix::kSparse, 10, 0.75, 0.26, 0.990, 0.015,
                      0.82, 0.86},
                     {"evalRepresentation", Mix::kFpScalar, 8, 0.45, 0.18,
                      0.988, 0.013, 0.78, 0.95},
                     {"printInfo", Mix::kIntBranchy, 0.008, 0.4, 0.3, 0.8, 0.01,
                      0.6, 0.5},
                 }),
                 14, 0.012);

  return v;
}

}  // namespace

const std::vector<Benchmark>& BenchmarkSuite::all() {
  static const std::vector<Benchmark> suite = build_suite();
  return suite;
}

const Benchmark& BenchmarkSuite::by_name(const std::string& name) {
  for (const auto& b : all())
    if (b.name() == name) return b;
  throw ConfigError("BenchmarkSuite: unknown benchmark '" + name + "'");
}

std::vector<std::string> BenchmarkSuite::names() {
  std::vector<std::string> out;
  out.reserve(all().size());
  for (const auto& b : all()) out.push_back(b.name());
  return out;
}

const std::vector<std::string>& BenchmarkSuite::evaluation_names() {
  static const std::vector<std::string> names{"Lulesh", "Amg2013", "miniMD",
                                              "BEM4I", "Mcb"};
  return names;
}

std::vector<Benchmark> BenchmarkSuite::evaluation_set() {
  std::vector<Benchmark> out;
  for (const auto& n : evaluation_names()) out.push_back(by_name(n));
  return out;
}

std::vector<Benchmark> BenchmarkSuite::training_set() {
  std::vector<Benchmark> out;
  const auto& eval = evaluation_names();
  for (const auto& b : all()) {
    if (std::find(eval.begin(), eval.end(), b.name()) == eval.end())
      out.push_back(b);
  }
  return out;
}

}  // namespace ecotune::workload
