#pragma once

#include <vector>

#include "workload/benchmark.hpp"

namespace ecotune::workload {

/// The 19 benchmarks of paper Table II (NPB-3.3, CORAL, Mantevo, LLCBench,
/// BEM4I), recreated as synthetic kernels with matched qualitative
/// characteristics: Lulesh/miniMD/CoMD/Blasbench compute-bound,
/// CG/IS/MG/miniFE/XSBench/Mcb memory-bound, Amg2013 thread-scaling-limited,
/// and region-level heterogeneity inside the five evaluation benchmarks.
class BenchmarkSuite {
 public:
  /// All 19 benchmarks, stable order (as in Table II).
  [[nodiscard]] static const std::vector<Benchmark>& all();

  /// Lookup by name; throws ConfigError if unknown.
  [[nodiscard]] static const Benchmark& by_name(const std::string& name);

  /// Names of all benchmarks, suite order.
  [[nodiscard]] static std::vector<std::string> names();

  /// The paper's evaluation (test) set: the five hybrid benchmarks Lulesh,
  /// Amg2013, miniMD, BEM4I, Mcb (Sec. V-B last paragraph).
  [[nodiscard]] static const std::vector<std::string>& evaluation_names();
  [[nodiscard]] static std::vector<Benchmark> evaluation_set();

  /// Everything not in the evaluation set (the final training split).
  [[nodiscard]] static std::vector<Benchmark> training_set();
};

}  // namespace ecotune::workload
