#include "workload/benchmark.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace ecotune::workload {

std::string_view to_string(ProgrammingModel m) {
  switch (m) {
    case ProgrammingModel::kOpenMp:
      return "OpenMP";
    case ProgrammingModel::kMpi:
      return "MPI";
    case ProgrammingModel::kHybrid:
      return "hybrid";
  }
  return "?";
}

Benchmark::Benchmark(std::string name, std::string suite,
                     ProgrammingModel model, std::vector<Region> regions,
                     int phase_iterations, double instr_overhead_fraction)
    : name_(std::move(name)),
      suite_(std::move(suite)),
      model_(model),
      regions_(std::move(regions)),
      phase_iterations_(phase_iterations),
      instr_overhead_fraction_(instr_overhead_fraction) {
  ensure(!regions_.empty(), "Benchmark: needs at least one region");
  ensure(phase_iterations_ >= 1, "Benchmark: needs at least one iteration");
  ensure(instr_overhead_fraction_ >= 0.0 && instr_overhead_fraction_ < 0.5,
         "Benchmark: implausible instrumentation overhead");
}

std::uint64_t Benchmark::fingerprint_digest() const {
  Fingerprint fp;
  fp.add("name", name_)
      .add("suite", suite_)
      .add("model", static_cast<int>(model_))
      .add("phase_iterations", phase_iterations_)
      .add("instr_overhead_fraction", instr_overhead_fraction_);
  for (const Region& r : regions_) {
    const hwsim::KernelTraits& k = r.traits;
    fp.add("region", r.name)
        .add("calls_per_iteration", r.calls_per_iteration)
        .add("total_instructions", k.total_instructions)
        .add("ipc_peak", k.ipc_peak)
        .add("load_fraction", k.load_fraction)
        .add("store_fraction", k.store_fraction)
        .add("branch_fraction", k.branch_fraction)
        .add("branch_conditional_fraction", k.branch_conditional_fraction)
        .add("branch_taken_rate", k.branch_taken_rate)
        .add("branch_miss_rate", k.branch_miss_rate)
        .add("l1d_miss_rate", k.l1d_miss_rate)
        .add("l1i_miss_rate", k.l1i_miss_rate)
        .add("l2_miss_rate", k.l2_miss_rate)
        .add("l3_miss_rate", k.l3_miss_rate)
        .add("tlb_d_rate", k.tlb_d_rate)
        .add("tlb_i_rate", k.tlb_i_rate)
        .add("fp_fraction", k.fp_fraction)
        .add("fp_double_fraction", k.fp_double_fraction)
        .add("vector_fraction", k.vector_fraction)
        .add("fp_div_fraction", k.fp_div_fraction)
        .add("dram_bytes", k.dram_bytes)
        .add("uncore_cycles", k.uncore_cycles)
        .add("parallel_fraction", k.parallel_fraction)
        .add("contention", k.contention)
        .add("sync_seconds_per_thread", k.sync_seconds_per_thread)
        .add("overlap", k.overlap)
        .add("activity", k.activity);
  }
  return fp.digest();
}

const Region* Benchmark::find_region(const std::string& name) const {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [&](const Region& r) { return r.name == name; });
  return it == regions_.end() ? nullptr : &*it;
}

double Benchmark::instructions_per_iteration() const {
  double total = 0.0;
  for (const auto& r : regions_)
    total += r.traits.total_instructions * r.calls_per_iteration;
  return total;
}

hwsim::KernelTraits Benchmark::phase_traits() const {
  hwsim::KernelTraits agg;
  const double total_ins = instructions_per_iteration();
  ensure(total_ins > 0, "Benchmark::phase_traits: zero instruction count");

  // Additive quantities sum; rates and fractions are instruction-weighted.
  agg.total_instructions = total_ins;
  agg.dram_bytes = 0;
  agg.uncore_cycles = 0;
  double w_ipc_inv = 0, w_load = 0, w_store = 0, w_branch = 0, w_brcn = 0,
         w_taken = 0, w_miss = 0, w_l1d = 0, w_l1i = 0, w_l2 = 0, w_l3 = 0,
         w_tlbd = 0, w_tlbi = 0, w_fp = 0, w_fpd = 0, w_vec = 0, w_div = 0,
         w_par = 0, w_cont = 0, w_overlap = 0, w_act = 0;
  double sync = 0;
  for (const auto& r : regions_) {
    const double w =
        r.traits.total_instructions * r.calls_per_iteration / total_ins;
    const auto& t = r.traits;
    agg.dram_bytes += t.dram_bytes * r.calls_per_iteration;
    agg.uncore_cycles += t.uncore_cycles * r.calls_per_iteration;
    sync += t.sync_seconds_per_thread * r.calls_per_iteration;
    w_ipc_inv += w / t.ipc_peak;
    w_load += w * t.load_fraction;
    w_store += w * t.store_fraction;
    w_branch += w * t.branch_fraction;
    w_brcn += w * t.branch_conditional_fraction;
    w_taken += w * t.branch_taken_rate;
    w_miss += w * t.branch_miss_rate;
    w_l1d += w * t.l1d_miss_rate;
    w_l1i += w * t.l1i_miss_rate;
    w_l2 += w * t.l2_miss_rate;
    w_l3 += w * t.l3_miss_rate;
    w_tlbd += w * t.tlb_d_rate;
    w_tlbi += w * t.tlb_i_rate;
    w_fp += w * t.fp_fraction;
    w_fpd += w * t.fp_double_fraction;
    w_vec += w * t.vector_fraction;
    w_div += w * t.fp_div_fraction;
    w_par += w * t.parallel_fraction;
    w_cont += w * t.contention;
    w_overlap += w * t.overlap;
    w_act += w * t.activity;
  }
  agg.ipc_peak = 1.0 / w_ipc_inv;
  agg.load_fraction = w_load;
  agg.store_fraction = w_store;
  agg.branch_fraction = w_branch;
  agg.branch_conditional_fraction = w_brcn;
  agg.branch_taken_rate = w_taken;
  agg.branch_miss_rate = w_miss;
  agg.l1d_miss_rate = w_l1d;
  agg.l1i_miss_rate = w_l1i;
  agg.l2_miss_rate = w_l2;
  agg.l3_miss_rate = w_l3;
  agg.tlb_d_rate = w_tlbd;
  agg.tlb_i_rate = w_tlbi;
  agg.fp_fraction = w_fp;
  agg.fp_double_fraction = w_fpd;
  agg.vector_fraction = w_vec;
  agg.fp_div_fraction = w_div;
  agg.parallel_fraction = w_par;
  agg.contention = w_cont;
  agg.overlap = w_overlap;
  agg.activity = w_act;
  agg.sync_seconds_per_thread = sync;
  return agg;
}

}  // namespace ecotune::workload
