#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwsim/kernel_traits.hpp"

namespace ecotune::workload {

/// Programming model of a benchmark (paper Table II: OpenMP-only, MPI-only,
/// or hybrid MPI+OpenMP).
enum class ProgrammingModel { kOpenMp, kMpi, kHybrid };

[[nodiscard]] std::string_view to_string(ProgrammingModel m);

/// One instrumentable code region of a benchmark: a name (function or OpenMP
/// construct, as Score-P would record it) plus the latent kernel
/// characteristics the simulator executes.
struct Region {
  std::string name;
  hwsim::KernelTraits traits;
  /// Executions of this region per phase iteration.
  int calls_per_iteration = 1;
};

/// A benchmark application: a main progress loop (the "phase region") that
/// executes a fixed sequence of regions each iteration. This mirrors the
/// paper's application model: the phase region is manually annotated, inner
/// regions are compiler-instrumented.
class Benchmark {
 public:
  Benchmark(std::string name, std::string suite, ProgrammingModel model,
            std::vector<Region> regions, int phase_iterations,
            double instr_overhead_fraction = 0.015);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& suite() const { return suite_; }
  [[nodiscard]] ProgrammingModel model() const { return model_; }
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] int phase_iterations() const { return phase_iterations_; }

  /// Residual Score-P overhead per instrumented region execution, as a
  /// fraction of region time (OpenMP/MPI wrapper events that filtering
  /// cannot remove; paper Sec. V-E).
  [[nodiscard]] double instr_overhead_fraction() const {
    return instr_overhead_fraction_;
  }

  /// Region lookup by name; nullptr if absent.
  [[nodiscard]] const Region* find_region(const std::string& name) const;

  /// Copy of this benchmark with a different phase-iteration count (used to
  /// shorten runs when a few phase iterations suffice, as the paper does).
  [[nodiscard]] Benchmark with_iterations(int iterations) const {
    Benchmark copy = *this;
    copy.phase_iterations_ = iterations;
    return copy;
  }

  /// Instruction-weighted aggregate of all region traits: the phase region
  /// viewed as a single kernel. Used for phase-level analysis runs.
  [[nodiscard]] hwsim::KernelTraits phase_traits() const;

  /// Sum of per-iteration instruction counts (weights for aggregation).
  [[nodiscard]] double instructions_per_iteration() const;

  /// Exact digest of everything that defines this benchmark's simulated
  /// behavior: identity, phase-iteration count, instrumentation overhead,
  /// and every region's kernel traits. The measurement store folds it into
  /// cache keys so editing a workload invalidates its cached measurements.
  [[nodiscard]] std::uint64_t fingerprint_digest() const;

 private:
  std::string name_;
  std::string suite_;
  ProgrammingModel model_;
  std::vector<Region> regions_;
  int phase_iterations_;
  double instr_overhead_fraction_;
};

}  // namespace ecotune::workload
