#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ecotune::store {

/// Access policy of the measurement store.
enum class StoreMode {
  kOff,        ///< store disabled: every lookup misses, inserts are dropped
  kReadOnly,   ///< answer from the cache, never write anything
  kReadWrite,  ///< answer from the cache and append fresh measurements
};

/// Parses "off" | "ro" | "rw"; throws Error on anything else.
[[nodiscard]] StoreMode parse_store_mode(std::string_view text);
[[nodiscard]] std::string_view to_string(StoreMode mode);

/// Shared CLI semantics of --cache-mode/--cache-dir: empty mode text means
/// rw when a cache dir is given and off otherwise; a non-off mode without a
/// cache dir is an error. Throws Error with a user-facing message.
[[nodiscard]] StoreMode resolve_store_mode(const std::string& mode_text,
                                           const std::string& cache_dir);

/// Identity of one cached measurement task.
///
/// `task` is the human-readable address used for lookup (e.g.
/// "engine/Lulesh/run-0/chunk-3"); `fingerprint` is the exact content hash
/// of everything the measured values depend on -- benchmark, configuration
/// schedule, engine options, seed, and the node/CPU-spec state digest
/// (hwsim::NodeSimulator::state_fingerprint). A lookup only hits when both
/// match; a task match with a fingerprint mismatch invalidates the stale
/// entry instead of answering with it.
struct MeasurementKey {
  std::string task;
  std::uint64_t fingerprint = 0;
};

/// Hit/miss accounting, surfaced in driver summaries (on stderr, so driver
/// stdout stays byte-identical between cold and warm runs).
struct StoreStats {
  long hits = 0;         ///< lookups answered from the store
  long misses = 0;       ///< lookups that found nothing usable
  long invalidated = 0;  ///< entries dropped on fingerprint mismatch
  long rejected = 0;     ///< corrupt on-disk entries refused at load
  long writes = 0;       ///< entries appended this session
};

/// Persistent, content-addressed measurement store.
///
/// In-memory map of task -> (fingerprint, payload) backed by an append-only
/// JSON-lines file `<cache_dir>/measurements.jsonl`. Every measurement
/// consumer (experiments engine, baseline tuners, data acquisition, savings
/// evaluator, the tuning service) consults the store before simulating and
/// appends what it measured, so a warm rerun of any driver answers
/// already-seen scenario measurements from disk instead of re-simulating
/// them. Payload values round-trip bit-exactly (Json serializes doubles via
/// std::to_chars), which is what makes warm output byte-identical to a cold
/// run.
///
/// Thread safety: the in-memory index is split into `shard_count()`
/// fingerprint-hashed shards (FNV-1a over the scoped task key), each an
/// independently `ecotune::Mutex`-guarded map, so concurrent lookups of
/// different tasks proceed without serializing on one global lock. The disk
/// appender and its counters sit behind a separate `append_mutex_` that is
/// only ever taken *after* a shard lock is released, so the lock order is
/// trivially acyclic. The discipline is compiler-proved: every guarded
/// member carries ECOTUNE_GUARDED_BY and the _locked helpers carry
/// ECOTUNE_REQUIRES, so a Clang `-Wthread-safety` build rejects any access
/// outside the lock. mode_/dir_/scope_/file_path_/shards_ are written
/// exactly once by open() (before any concurrent use -- drivers open the
/// store during CLI setup) and are read-only afterwards, which is why the
/// cheap accessors below take no lock. Shard count never changes results:
/// it only partitions the task-key space, and warm-restart identity is over
/// the union of the shards.
class MeasurementStore {
 public:
  /// Shard count used when open() is passed shards == 0.
  static constexpr std::size_t kDefaultShardCount = 16;

  /// Constructs a disabled (kOff) store; open() activates it.
  MeasurementStore() = default;

  /// Convenience: construct and open.
  MeasurementStore(const std::string& cache_dir, StoreMode mode);

  /// Opens the backing directory (created if missing in rw mode) and loads
  /// every valid entry of measurements.jsonl into memory. Corrupt lines are
  /// rejected loudly (log::error with file and line number, counted in
  /// stats().rejected) and never answer lookups. Later duplicates of a task
  /// win, matching append-only semantics.
  ///
  /// `scope` namespaces every task key ("scope/task"); drivers pass their
  /// own name so several drivers can share one cache directory without
  /// colliding on identical task ids (which would ping-pong-invalidate each
  /// other's entries, since their contexts fingerprint differently).
  ///
  /// `shards` picks the in-memory index shard count (0 means
  /// kDefaultShardCount). Purely a concurrency knob: lookup results, stats
  /// totals and the on-disk format are identical for every value.
  void open(const std::string& cache_dir, StoreMode mode,
            std::string scope = {}, std::size_t shards = 0);

  [[nodiscard]] bool enabled() const { return mode_ != StoreMode::kOff; }
  [[nodiscard]] StoreMode mode() const { return mode_; }
  [[nodiscard]] const std::string& cache_dir() const { return dir_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Returns the payload recorded for `key`, or nullopt on miss. A stored
  /// entry whose fingerprint differs from key.fingerprint is stale (the
  /// context changed); it is invalidated and the lookup misses.
  [[nodiscard]] std::optional<Json> lookup(const MeasurementKey& key);

  /// Records `payload` under `key`. No-op in ro/off mode. In rw mode the
  /// entry is appended to disk immediately (one JSON line, flushed), so a
  /// killed run still leaves a usable cache.
  void insert(const MeasurementKey& key, const Json& payload)
      ECOTUNE_EXCLUDES(append_mutex_);

  /// Consistent snapshot of the counters, safe to poll concurrently with
  /// in-flight lookups/inserts: each shard contributes its totals under its
  /// own lock, then the appender counters are added under append_mutex_.
  [[nodiscard]] StoreStats stats() const ECOTUNE_EXCLUDES(append_mutex_);
  [[nodiscard]] std::size_t size() const;

  /// One-line, machine-greppable summary:
  /// "[measurement-store] hits=H misses=M invalidated=I rejected=R writes=W
  ///  entries=E (mode=rw, dir=...)". Drivers print it to stderr.
  [[nodiscard]] std::string summary() const ECOTUNE_EXCLUDES(append_mutex_);

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    Json payload;
  };

  /// One fingerprint-hashed slice of the index. Shards never share state:
  /// a task key maps to exactly one shard (shard_of), so per-shard counters
  /// sum to the same totals a single-mutex index would report.
  struct Shard {
    /// Lock-held workhorses behind the public lookup/insert; the REQUIRES
    /// contract is what the Clang lane's negative check targets.
    [[nodiscard]] std::optional<Json> lookup_locked(
        const std::string& task, std::uint64_t fingerprint)
        ECOTUNE_REQUIRES(mutex_);
    void insert_locked(const std::string& task, std::uint64_t fingerprint,
                       const Json& payload) ECOTUNE_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::map<std::string, Entry> entries_ ECOTUNE_GUARDED_BY(mutex_);
    long hits_ ECOTUNE_GUARDED_BY(mutex_) = 0;
    long misses_ ECOTUNE_GUARDED_BY(mutex_) = 0;
    long invalidated_ ECOTUNE_GUARDED_BY(mutex_) = 0;
  };

  [[nodiscard]] Shard& shard_of(const std::string& task) const;
  void load_file(const std::string& path);
  void append_line_locked(const std::string& task, std::uint64_t fingerprint,
                          const Json& payload)
      ECOTUNE_REQUIRES(append_mutex_);
  [[nodiscard]] std::string scoped(const std::string& task) const;

  StoreMode mode_ = StoreMode::kOff;
  std::string dir_;
  std::string scope_;
  std::string file_path_;
  /// Fixed after open(); unique_ptr because Mutex is immovable.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes the append-only disk stream; never held together with a
  /// shard lock (insert releases the shard before appending).
  mutable Mutex append_mutex_;
  std::ofstream appender_ ECOTUNE_GUARDED_BY(append_mutex_);
  long rejected_ ECOTUNE_GUARDED_BY(append_mutex_) = 0;
  long writes_ ECOTUNE_GUARDED_BY(append_mutex_) = 0;
};

}  // namespace ecotune::store
