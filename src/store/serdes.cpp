#include "store/serdes.hpp"

namespace ecotune::store {

Json to_json(const SystemConfig& c) {
  Json j = Json::object();
  j["threads"] = c.threads;
  j["cf_mhz"] = c.core.as_mhz();
  j["ucf_mhz"] = c.uncore.as_mhz();
  return j;
}

SystemConfig config_from_json(const Json& j) {
  return SystemConfig{j.at("threads").as_int(),
                      CoreFreq::mhz(j.at("cf_mhz").as_int()),
                      UncoreFreq::mhz(j.at("ucf_mhz").as_int())};
}

}  // namespace ecotune::store
