#pragma once

#include "common/config.hpp"
#include "common/json.hpp"

namespace ecotune::store {

/// JSON (de)serialization of the common value types measurement consumers
/// cache. Doubles survive the round trip bit-exactly (Json emits them via
/// std::to_chars and parses via std::from_chars), which is what lets a warm
/// store replay produce byte-identical driver output. Consumer-owned types
/// serialize in their own modules (ptf::Measurement in ptf/objectives,
/// core::DtaResult/SavingsRow in core/dta_serdes) so the store stays a
/// common-only base layer.

[[nodiscard]] Json to_json(const SystemConfig& c);
[[nodiscard]] SystemConfig config_from_json(const Json& j);

}  // namespace ecotune::store
