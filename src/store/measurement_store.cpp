#include "store/measurement_store.hpp"

#include <charconv>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ecotune::store {
namespace {

constexpr std::string_view kStoreFileName = "measurements.jsonl";

/// Parses the fixed-width hex fingerprint written by Fingerprint::to_hex.
std::optional<std::uint64_t> parse_hex_fingerprint(const std::string& text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

}  // namespace

StoreMode parse_store_mode(std::string_view text) {
  if (text == "off") return StoreMode::kOff;
  if (text == "ro") return StoreMode::kReadOnly;
  if (text == "rw") return StoreMode::kReadWrite;
  throw Error("parse_store_mode: expected off|ro|rw, got '" +
              std::string(text) + "'");
}

std::string_view to_string(StoreMode mode) {
  switch (mode) {
    case StoreMode::kOff:
      return "off";
    case StoreMode::kReadOnly:
      return "ro";
    case StoreMode::kReadWrite:
      return "rw";
  }
  return "off";
}

StoreMode resolve_store_mode(const std::string& mode_text,
                             const std::string& cache_dir) {
  const StoreMode mode = mode_text.empty()
                             ? (cache_dir.empty() ? StoreMode::kOff
                                                  : StoreMode::kReadWrite)
                             : parse_store_mode(mode_text);
  ensure(mode == StoreMode::kOff || !cache_dir.empty(),
         "--cache-mode " + std::string(to_string(mode)) +
             " requires --cache-dir");
  return mode;
}

MeasurementStore::MeasurementStore(const std::string& cache_dir,
                                   StoreMode mode) {
  open(cache_dir, mode);
}

void MeasurementStore::open(const std::string& cache_dir, StoreMode mode,
                            std::string scope, std::size_t shards) {
  // open() runs before any concurrent use (drivers open during CLI setup),
  // so the one-time setup below needs no locking; load_file still routes
  // entries through the shard locks to keep the analysis contract uniform.
  ensure(!enabled(), "MeasurementStore::open: already open");
  if (mode == StoreMode::kOff) return;
  scope_ = std::move(scope);
  ensure(!cache_dir.empty(),
         "MeasurementStore::open: cache directory required for mode '" +
             std::string(to_string(mode)) + "'");

  if (shards == 0) shards = kDefaultShardCount;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());

  namespace fs = std::filesystem;
  if (mode == StoreMode::kReadWrite) {
    std::error_code ec;
    fs::create_directories(cache_dir, ec);
    ensure(!ec, "MeasurementStore::open: cannot create cache directory '" +
                    cache_dir + "': " + ec.message());
  }

  dir_ = cache_dir;
  file_path_ = (fs::path(cache_dir) / kStoreFileName).string();
  if (fs::exists(file_path_)) load_file(file_path_);

  if (mode == StoreMode::kReadWrite) {
    // Unbuffered stream + one write() per entry line (below): with the OS
    // in append mode, concurrent writers sharing one cache directory
    // cannot interleave partial lines inside each other's entries.
    const MutexLock lock(append_mutex_);
    appender_.rdbuf()->pubsetbuf(nullptr, 0);
    appender_.open(file_path_, std::ios::app);
    ensure(appender_.good(),
           "MeasurementStore::open: cannot append to '" + file_path_ + "'");
  }
  mode_ = mode;
}

void MeasurementStore::load_file(const std::string& path) {
  std::ifstream is(path);
  ensure(is.good(), "MeasurementStore: cannot read '" + path + "'");
  std::string line;
  long line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      Json entry = Json::parse(line);
      const std::string& task = entry.at("task").as_string();
      const auto fp = parse_hex_fingerprint(entry.at("fp").as_string());
      ensure(fp.has_value(), "bad fingerprint");
      ensure(!task.empty(), "empty task");
      Shard& shard = shard_of(task);
      const MutexLock lock(shard.mutex_);
      shard.entries_[task] = Entry{*fp, entry.at("payload")};
    } catch (const std::exception& e) {
      // Loud rejection: a corrupt entry must never silently answer a
      // lookup, and the operator must learn the cache is damaged.
      {
        const MutexLock lock(append_mutex_);
        ++rejected_;
      }
      log::error("store") << "rejecting corrupt cache entry " << path << ':'
                          << line_no << " (" << e.what() << ')';
    }
  }
}

std::string MeasurementStore::scoped(const std::string& task) const {
  return scope_.empty() ? task : scope_ + "/" + task;
}

MeasurementStore::Shard& MeasurementStore::shard_of(
    const std::string& task) const {
  ECOTUNE_DCHECK(!shards_.empty(), "MeasurementStore: no shards (not open)");
  return *shards_[fnv1a(task) % shards_.size()];
}

std::optional<Json> MeasurementStore::lookup(const MeasurementKey& key) {
  if (mode_ == StoreMode::kOff) return std::nullopt;
  // Fingerprint precondition: a default-constructed key (digest 0) means
  // the caller forgot to hash the measurement context. Such a key could
  // never invalidate stale entries, silently breaking warm-restart
  // byte-identity; every real Fingerprint digest is FNV-mixed and is never
  // 0 in practice.
  ECOTUNE_DCHECK(key.fingerprint != 0,
                 "MeasurementStore::lookup: key carries no fingerprint");
  ECOTUNE_DCHECK(!key.task.empty(),
                 "MeasurementStore::lookup: empty task key");
  const std::string task = scoped(key.task);
  Shard& shard = shard_of(task);
  const MutexLock lock(shard.mutex_);
  return shard.lookup_locked(task, key.fingerprint);
}

std::optional<Json> MeasurementStore::Shard::lookup_locked(
    const std::string& task, std::uint64_t fingerprint) {
  auto it = entries_.find(task);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second.fingerprint != fingerprint) {
    // The context behind this task changed (different benchmark revision,
    // seed, node state, options...): the stored value is stale. Drop it so
    // a subsequent insert can replace it.
    entries_.erase(it);
    ++invalidated_;
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.payload;
}

void MeasurementStore::insert(const MeasurementKey& key, const Json& payload) {
  if (mode_ != StoreMode::kReadWrite) return;
  ensure(!key.task.empty(), "MeasurementStore::insert: empty task key");
  ECOTUNE_DCHECK(key.fingerprint != 0,
                 "MeasurementStore::insert: key carries no fingerprint");
  const std::string task = scoped(key.task);
  {
    Shard& shard = shard_of(task);
    const MutexLock lock(shard.mutex_);
    shard.insert_locked(task, key.fingerprint, payload);
  }
  // Shard lock released before the append lock is taken: the two locks are
  // never nested, so the overall order is acyclic by construction. Two
  // concurrent inserts of the *same* task may reach disk in either order,
  // but task keys are unique per measurement context and reload is
  // last-wins, so both interleavings replay to the same index.
  const MutexLock lock(append_mutex_);
  append_line_locked(task, key.fingerprint, payload);
}

void MeasurementStore::Shard::insert_locked(const std::string& task,
                                            std::uint64_t fingerprint,
                                            const Json& payload) {
  entries_[task] = Entry{fingerprint, payload};
}

void MeasurementStore::append_line_locked(const std::string& task,
                                          std::uint64_t fingerprint,
                                          const Json& payload) {
  Json line = Json::object();
  line["task"] = task;
  line["fp"] = Fingerprint::to_hex(fingerprint);
  line["payload"] = payload;
  // One write() call for the whole "entry\n" so appends stay atomic.
  const std::string text = line.dump(-1) + '\n';
  appender_.write(text.data(), static_cast<std::streamsize>(text.size()));
  appender_.flush();
  ensure(appender_.good(),
         "MeasurementStore::insert: write to '" + file_path_ + "' failed");
  ++writes_;
}

StoreStats MeasurementStore::stats() const {
  StoreStats total;
  // Shard-by-shard locked snapshot: each counter is internally consistent
  // (no torn reads), and with no in-flight requests the sums equal what a
  // single-mutex index would report. Summing in shard order keeps the
  // analysis happy -- no dynamic all-shards lock set.
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex_);
    total.hits += shard->hits_;
    total.misses += shard->misses_;
    total.invalidated += shard->invalidated_;
  }
  const MutexLock lock(append_mutex_);
  total.rejected = rejected_;
  total.writes = writes_;
  return total;
}

std::size_t MeasurementStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex_);
    total += shard->entries_.size();
  }
  return total;
}

std::string MeasurementStore::summary() const {
  const StoreStats s = stats();
  std::ostringstream os;
  os << "[measurement-store] hits=" << s.hits << " misses=" << s.misses
     << " invalidated=" << s.invalidated << " rejected=" << s.rejected
     << " writes=" << s.writes << " entries=" << size()
     << " (mode=" << to_string(mode_) << ", dir=" << (dir_.empty() ? "-" : dir_)
     << ')';
  return os.str();
}

}  // namespace ecotune::store
