#include "stats/descriptive.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ecotune::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double stddev_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ensure(xs.size() == ys.size(), "pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ecotune::stats
