#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace ecotune::stats {

double OlsResult::predict(const std::vector<double>& features) const {
  const std::size_t offset = has_intercept ? 1 : 0;
  ensure(features.size() + offset == coefficients.size(),
         "OlsResult::predict: feature count mismatch");
  double y = has_intercept ? coefficients[0] : 0.0;
  for (std::size_t i = 0; i < features.size(); ++i)
    y += coefficients[i + offset] * features[i];
  return y;
}

OlsResult ols_fit(const Matrix& x, const std::vector<double>& y,
                  bool intercept) {
  ensure(x.rows() == y.size(), "ols_fit: sample count mismatch");
  ensure(x.rows() > 0, "ols_fit: empty design");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols() + (intercept ? 1 : 0);
  ensure(n >= p, "ols_fit: more parameters than samples");

  // Design with intercept column.
  Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = 0;
    if (intercept) design(i, c++) = 1.0;
    for (std::size_t j = 0; j < x.cols(); ++j) design(i, c++) = x(i, j);
  }

  const Matrix xt = design.transpose();
  const Matrix xtx = xt * design;
  std::vector<double> xty(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += design(i, j) * y[i];
    xty[j] = acc;
  }

  OlsResult result;
  result.has_intercept = intercept;
  result.coefficients = solve_spd(xtx, xty);

  result.residuals.resize(n);
  double ss_res = 0.0;
  const double y_mean = mean(y);
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < p; ++j)
      pred += design(i, j) * result.coefficients[j];
    result.residuals[i] = y[i] - pred;
    ss_res += result.residuals[i] * result.residuals[i];
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  result.mse = ss_res / static_cast<double>(n);
  result.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  const double dof = static_cast<double>(n) - static_cast<double>(p);
  result.adjusted_r_squared =
      dof > 0 ? 1.0 - (1.0 - result.r_squared) *
                          (static_cast<double>(n) - (intercept ? 1.0 : 0.0)) /
                          dof
              : result.r_squared;
  return result;
}

double vif(const Matrix& x, std::size_t j) {
  ensure(j < x.cols(), "vif: feature index out of range");
  ensure(x.cols() >= 2, "vif: need at least two features");
  Matrix others(x.rows(), x.cols() - 1);
  std::vector<double> target(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::size_t c = 0;
    for (std::size_t k = 0; k < x.cols(); ++k) {
      if (k == j) {
        target[i] = x(i, k);
      } else {
        others(i, c++) = x(i, k);
      }
    }
  }
  const OlsResult fit = ols_fit(others, target, /*intercept=*/true);
  const double r2 = std::clamp(fit.r_squared, 0.0, 1.0 - 1e-12);
  return 1.0 / (1.0 - r2);
}

std::vector<double> vif_all(const Matrix& x) {
  std::vector<double> out(x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j) out[j] = vif(x, j);
  return out;
}

double mean_vif(const Matrix& x) {
  const auto v = vif_all(x);
  return mean(v);
}

}  // namespace ecotune::stats
