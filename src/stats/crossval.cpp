#include "stats/crossval.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace ecotune::stats {

std::vector<Split> kfold(std::size_t n, std::size_t k, Rng& rng) {
  ensure(k >= 2 && k <= n, "kfold: need 2 <= k <= n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = n; i-- > 1;) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(idx[i], idx[j]);
  }
  std::vector<Split> splits(k);
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t lo = f * n / k;
    const std::size_t hi = (f + 1) * n / k;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi)
        splits[f].test.push_back(idx[i]);
      else
        splits[f].train.push_back(idx[i]);
    }
  }
  return splits;
}

std::vector<std::string> distinct_groups(
    const std::vector<std::string>& groups) {
  std::vector<std::string> out;
  for (const auto& g : groups)
    if (std::find(out.begin(), out.end(), g) == out.end()) out.push_back(g);
  return out;
}

std::vector<Split> leave_one_group_out(
    const std::vector<std::string>& groups) {
  ensure(!groups.empty(), "leave_one_group_out: empty input");
  const auto labels = distinct_groups(groups);
  ensure(labels.size() >= 2, "leave_one_group_out: need >= 2 groups");
  std::vector<Split> splits;
  splits.reserve(labels.size());
  for (const auto& label : labels) {
    Split s;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i] == label)
        s.test.push_back(i);
      else
        s.train.push_back(i);
    }
    splits.push_back(std::move(s));
  }
  return splits;
}

}  // namespace ecotune::stats
