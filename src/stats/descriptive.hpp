#pragma once

#include <span>
#include <vector>

namespace ecotune::stats {

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two values.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Population standard deviation (n denominator), as used by the paper's
/// feature standardization ("removing the mean and scaling to unit
/// variance").
[[nodiscard]] double stddev_population(std::span<const double> xs);

/// Pearson correlation coefficient; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace ecotune::stats
