#include "stats/linalg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ecotune::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    ensure(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  ensure(r < rows_, "Matrix::row: out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::span<const double> Matrix::row_span(std::size_t r) const {
  ensure(r < rows_, "Matrix::row_span: out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row_span(std::size_t r) {
  ensure(r < rows_, "Matrix::row_span: out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  ensure(c < cols_, "Matrix::col: out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  ensure(cols_ == rhs.rows_, "Matrix::operator*: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  ensure(rows_ == rhs.rows_ && cols_ == rhs.cols_,
         "Matrix::operator+: dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  ensure(rows_ == rhs.rows_ && cols_ == rhs.cols_,
         "Matrix::operator-: dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  ensure(rows_ == rhs.rows_ && cols_ == rhs.cols_,
         "Matrix::operator+=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  ensure(x.size() == cols_, "Matrix::apply: dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

namespace {

/// In-place Cholesky; returns false if not positive definite.
bool cholesky(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    a(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / a(j, j);
    }
  }
  return true;
}

}  // namespace

std::vector<double> solve_spd(Matrix a, const std::vector<double>& b,
                              double ridge) {
  ensure(a.rows() == a.cols(), "solve_spd: matrix must be square");
  ensure(a.rows() == b.size(), "solve_spd: rhs size mismatch");
  const std::size_t n = a.rows();

  Matrix chol = a;
  double lambda = ridge;
  for (int attempt = 0; attempt < 24; ++attempt) {
    chol = a;
    if (lambda > 0)
      for (std::size_t i = 0; i < n; ++i) chol(i, i) += lambda;
    if (cholesky(chol)) break;
    lambda = lambda > 0 ? lambda * 10.0 : 1e-10;
    ensure(attempt < 23, "solve_spd: matrix not positive definite");
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol(i, k) * y[k];
    y[i] = s / chol(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= chol(k, ii) * x[k];
    x[ii] = s / chol(ii, ii);
  }
  return x;
}

}  // namespace ecotune::stats
