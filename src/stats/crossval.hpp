#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ecotune::stats {

/// One train/test index split.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// k-fold cross-validation with random index shuffling (the 10-fold CV "with
/// random indexing" of the paper's regression baseline).
[[nodiscard]] std::vector<Split> kfold(std::size_t n, std::size_t k, Rng& rng);

/// Leave-one-group-out cross-validation: one split per distinct group, the
/// split's test set being all samples of that group. With group = benchmark
/// name this is exactly the paper's LOOCV ("in each step of LOOCV a single
/// benchmark forms the testing set").
[[nodiscard]] std::vector<Split> leave_one_group_out(
    const std::vector<std::string>& groups);

/// Distinct group labels in first-appearance order (parallel to the splits
/// returned by leave_one_group_out).
[[nodiscard]] std::vector<std::string> distinct_groups(
    const std::vector<std::string>& groups);

}  // namespace ecotune::stats
