#pragma once

#include <vector>

#include "common/json.hpp"
#include "stats/linalg.hpp"

namespace ecotune::stats {

/// Standardizes features by removing the mean and scaling to unit variance
/// (paper Sec. IV-C). Mean/scale are learned from the training set only.
class StandardScaler {
 public:
  /// Learns per-column mean and population stddev from `x`.
  void fit(const Matrix& x);

  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<double>& scale() const { return scale_; }

  /// Standardizes one row in place.
  void transform_row(std::vector<double>& row) const;
  /// Standardizes a copy of the whole matrix.
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  /// Standardizes `x` into `out`, reusing out's storage when the shape
  /// already matches (the batched-prediction hot path). Elementwise
  /// identical to transform()/transform_row().
  void transform_into(const Matrix& x, Matrix& out) const;
  /// Undoes the transform for one row.
  void inverse_transform_row(std::vector<double>& row) const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static StandardScaler from_json(const Json& j);

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace ecotune::stats
