#include "stats/scaler.hpp"

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace ecotune::stats {

void StandardScaler::fit(const Matrix& x) {
  ensure(x.rows() > 0, "StandardScaler::fit: empty matrix");
  mean_.assign(x.cols(), 0.0);
  scale_.assign(x.cols(), 1.0);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const auto column = x.col(j);
    mean_[j] = ecotune::stats::mean(column);
    const double sd = stddev_population(column);
    scale_[j] = sd > 1e-300 ? sd : 1.0;  // constant feature: leave centered
  }
}

void StandardScaler::transform_row(std::vector<double>& row) const {
  ensure(fitted(), "StandardScaler: not fitted");
  ensure(row.size() == mean_.size(), "StandardScaler: column mismatch");
  for (std::size_t j = 0; j < row.size(); ++j)
    row[j] = (row[j] - mean_[j]) / scale_[j];
}

Matrix StandardScaler::transform(const Matrix& x) const {
  Matrix out;
  transform_into(x, out);
  return out;
}

void StandardScaler::transform_into(const Matrix& x, Matrix& out) const {
  ensure(fitted(), "StandardScaler: not fitted");
  ensure(x.cols() == mean_.size(), "StandardScaler: column mismatch");
  if (out.rows() != x.rows() || out.cols() != x.cols())
    out = Matrix(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      out(i, j) = (x(i, j) - mean_[j]) / scale_[j];
}

void StandardScaler::inverse_transform_row(std::vector<double>& row) const {
  ensure(fitted(), "StandardScaler: not fitted");
  ensure(row.size() == mean_.size(), "StandardScaler: column mismatch");
  for (std::size_t j = 0; j < row.size(); ++j)
    row[j] = row[j] * scale_[j] + mean_[j];
}

Json StandardScaler::to_json() const {
  Json j = Json::object();
  Json means = Json::array();
  Json scales = Json::array();
  for (double m : mean_) means.push_back(m);
  for (double s : scale_) scales.push_back(s);
  j["mean"] = std::move(means);
  j["scale"] = std::move(scales);
  return j;
}

StandardScaler StandardScaler::from_json(const Json& j) {
  StandardScaler s;
  for (const auto& v : j.at("mean").as_array())
    s.mean_.push_back(v.as_number());
  for (const auto& v : j.at("scale").as_array())
    s.scale_.push_back(v.as_number());
  ensure(s.mean_.size() == s.scale_.size(),
         "StandardScaler::from_json: inconsistent sizes");
  return s;
}

}  // namespace ecotune::stats
