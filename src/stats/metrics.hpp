#pragma once

#include <span>

namespace ecotune::stats {

/// Mean absolute percentage error, in percent (the paper's Fig. 5 metric).
[[nodiscard]] double mape(std::span<const double> y_true,
                          std::span<const double> y_pred);

/// Mean squared error.
[[nodiscard]] double mse(std::span<const double> y_true,
                         std::span<const double> y_pred);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> y_true,
                         std::span<const double> y_pred);

/// Coefficient of determination.
[[nodiscard]] double r2_score(std::span<const double> y_true,
                              std::span<const double> y_pred);

}  // namespace ecotune::stats
