#include "stats/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace ecotune::stats {
namespace {

Matrix submatrix(const Matrix& x, const std::vector<std::size_t>& cols) {
  Matrix out(x.rows(), cols.size());
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < cols.size(); ++j) out(i, j) = x(i, cols[j]);
  return out;
}

}  // namespace

SelectionResult select_features(const Matrix& x,
                                const std::vector<double>& target,
                                SelectionOptions options) {
  ensure(x.rows() == target.size(), "select_features: sample count mismatch");
  SelectionResult result;

  // Constant columns can never explain variance and break VIF computation.
  std::vector<bool> eligible(x.cols(), true);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const auto column = x.col(j);
    if (stddev_population(column) <= 1e-12) eligible[j] = false;
  }

  double current_adj_r2 = -std::numeric_limits<double>::infinity();
  while (result.selected.size() < options.max_features) {
    std::size_t best_j = x.cols();
    double best_adj_r2 = current_adj_r2;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (!eligible[j]) continue;
      if (std::find(result.selected.begin(), result.selected.end(), j) !=
          result.selected.end())
        continue;
      auto candidate = result.selected;
      candidate.push_back(j);
      const Matrix xs = submatrix(x, candidate);
      // VIF guard (only meaningful with >= 2 features).
      if (candidate.size() >= 2) {
        const auto vifs = vif_all(xs);
        if (*std::max_element(vifs.begin(), vifs.end()) > options.vif_limit)
          continue;
      }
      const OlsResult fit = ols_fit(xs, target);
      if (fit.adjusted_r_squared > best_adj_r2) {
        best_adj_r2 = fit.adjusted_r_squared;
        best_j = j;
      }
    }
    if (best_j == x.cols()) break;  // no admissible candidate
    if (!result.selected.empty() &&
        best_adj_r2 - current_adj_r2 < options.min_improvement)
      break;
    result.selected.push_back(best_j);
    current_adj_r2 = best_adj_r2;
  }

  ensure(!result.selected.empty(),
         "select_features: no feature improved the fit");
  const Matrix xs = submatrix(x, result.selected);
  if (result.selected.size() >= 2) {
    result.vifs = vif_all(xs);
    result.mean_vif = mean(result.vifs);
  } else {
    result.vifs = {1.0};
    result.mean_vif = 1.0;
  }
  result.adjusted_r_squared = ols_fit(xs, target).adjusted_r_squared;
  return result;
}

}  // namespace ecotune::stats
