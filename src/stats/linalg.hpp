#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "common/simd.hpp"

namespace ecotune::stats {

/// Dense row-major matrix of doubles. Deliberately small: exactly the
/// operations the regression pipeline and the neural network need.
/// Storage is 64-byte aligned so the SIMD kernel layer can use aligned
/// vector loads over feature batches without copying.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  /// From nested initializer list (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Column vector from values.
  [[nodiscard]] static Matrix column(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const simd::aligned_vector<double>& data() const {
    return data_;
  }
  [[nodiscard]] simd::aligned_vector<double>& data() { return data_; }

  /// One row as a vector copy.
  [[nodiscard]] std::vector<double> row(std::size_t r) const;
  /// One row as a non-owning view into the row-major storage. The view is
  /// invalidated by any operation that reallocates the matrix; it exists so
  /// per-sample hot paths (the NN training loop) can walk rows without a
  /// heap allocation per visit.
  [[nodiscard]] std::span<const double> row_span(std::size_t r) const;
  [[nodiscard]] std::span<double> row_span(std::size_t r);
  /// One column as a vector copy.
  [[nodiscard]] std::vector<double> col(std::size_t c) const;

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Matrix-vector product (x.size() == cols()).
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  simd::aligned_vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky; if the
/// factorization fails (rank deficiency / collinearity), retries with a
/// ridge term lambda*I growing until it succeeds.
[[nodiscard]] std::vector<double> solve_spd(Matrix a,
                                            const std::vector<double>& b,
                                            double ridge = 0.0);

}  // namespace ecotune::stats
