#include "stats/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace ecotune::stats {

double mape(std::span<const double> y_true, std::span<const double> y_pred) {
  ensure(y_true.size() == y_pred.size() && !y_true.empty(),
         "mape: bad input sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ensure(std::fabs(y_true[i]) > 1e-300, "mape: zero ground-truth value");
    acc += std::fabs((y_true[i] - y_pred[i]) / y_true[i]);
  }
  return 100.0 * acc / static_cast<double>(y_true.size());
}

double mse(std::span<const double> y_true, std::span<const double> y_pred) {
  ensure(y_true.size() == y_pred.size() && !y_true.empty(),
         "mse: bad input sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y_true.size());
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
  ensure(y_true.size() == y_pred.size() && !y_true.empty(),
         "mae: bad input sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i)
    acc += std::fabs(y_true[i] - y_pred[i]);
  return acc / static_cast<double>(y_true.size());
}

double r2_score(std::span<const double> y_true,
                std::span<const double> y_pred) {
  ensure(y_true.size() == y_pred.size() && !y_true.empty(),
         "r2_score: bad input sizes");
  const double m = mean(y_true);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - m) * (y_true[i] - m);
  }
  return ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
}

}  // namespace ecotune::stats
