#pragma once

#include <cstddef>
#include <vector>

#include "stats/linalg.hpp"

namespace ecotune::stats {

/// Options for the stepwise selection algorithm of Chadha et al. (IPDPSW'17)
/// that the paper reuses for counter selection (Sec. IV-B).
struct SelectionOptions {
  /// Stop adding features beyond this count (the paper selects 7 counters).
  std::size_t max_features = 7;
  /// Candidate is rejected if adding it pushes any selected feature's VIF
  /// above this limit (multicollinearity guard; >10 is harmful).
  double vif_limit = 10.0;
  /// Minimal adjusted-R^2 improvement to keep adding features.
  double min_improvement = 1e-3;
};

/// Result of stepwise feature selection.
struct SelectionResult {
  std::vector<std::size_t> selected;  ///< column indices, selection order
  std::vector<double> vifs;           ///< VIF per selected feature
  double mean_vif = 0.0;
  double adjusted_r_squared = 0.0;    ///< of the final model
};

/// Greedy forward selection with a VIF guard: at each step add the feature
/// that best improves the adjusted R^2 of the OLS fit to `target`, skipping
/// candidates that would introduce multicollinearity. Constant (zero
/// variance) columns are never selected.
[[nodiscard]] SelectionResult select_features(const Matrix& x,
                                              const std::vector<double>& target,
                                              SelectionOptions options = {});

}  // namespace ecotune::stats
