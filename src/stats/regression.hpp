#pragma once

#include <vector>

#include "stats/linalg.hpp"

namespace ecotune::stats {

/// Ordinary-least-squares fit result.
struct OlsResult {
  /// Coefficients; index 0 is the intercept when fitted with one, followed
  /// by one coefficient per feature column.
  std::vector<double> coefficients;
  bool has_intercept = true;
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double mse = 0.0;
  std::vector<double> residuals;

  /// Predicts for one feature row (without intercept column).
  [[nodiscard]] double predict(const std::vector<double>& features) const;
};

/// Fits y ~ X by OLS via normal equations (Cholesky with ridge fallback for
/// collinear designs). X is samples x features, without intercept column.
[[nodiscard]] OlsResult ols_fit(const Matrix& x, const std::vector<double>& y,
                                bool intercept = true);

/// Variance Inflation Factor of feature `j`: 1 / (1 - R^2) of regressing
/// X_j on the remaining features. VIF > 10 conventionally signals harmful
/// multicollinearity (paper Sec. IV-B).
[[nodiscard]] double vif(const Matrix& x, std::size_t j);

/// VIF for every feature column.
[[nodiscard]] std::vector<double> vif_all(const Matrix& x);

/// Mean VIF across features (the paper's Table I headline statistic).
[[nodiscard]] double mean_vif(const Matrix& x);

}  // namespace ecotune::stats
