#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace ecotune {

/// Incremental FNV-1a-based content hash used to fingerprint the full
/// context a cached measurement depends on (benchmark, configuration,
/// simulator state, options). Every component is mixed with a label so that
/// two adjacent fields with swapped values cannot collide trivially, and
/// doubles are hashed by bit pattern so the fingerprint is exact (no
/// formatting round-trip).
class Fingerprint {
 public:
  Fingerprint& add(std::string_view label, std::string_view value) {
    mix_label(label);
    mix(fnv1a(value));
    mix(static_cast<std::uint64_t>(value.size()));
    return *this;
  }

  /// Any integral value (including bool), widened through int64 so equal
  /// values of different integer widths hash identically.
  template <class T>
    requires std::is_integral_v<T>
  Fingerprint& add(std::string_view label, T value) {
    mix_label(label);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
    return *this;
  }

  Fingerprint& add(std::string_view label, double value) {
    mix_label(label);
    mix(std::bit_cast<std::uint64_t>(value));
    return *this;
  }

  Fingerprint& add(std::string_view label, const SystemConfig& c) {
    mix_label(label);
    mix(static_cast<std::uint64_t>(c.threads));
    mix(static_cast<std::uint64_t>(c.core.as_mhz()));
    mix(static_cast<std::uint64_t>(c.uncore.as_mhz()));
    return *this;
  }

  /// Folds a pre-computed digest (e.g. a node-state fingerprint) in.
  Fingerprint& add_digest(std::string_view label, std::uint64_t digest) {
    mix_label(label);
    mix(digest);
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

  /// Fixed-width lowercase hex rendering of the digest (16 chars).
  [[nodiscard]] std::string hex() const { return to_hex(h_); }

  [[nodiscard]] static std::string to_hex(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
      v >>= 4;
    }
    return out;
  }

 private:
  void mix_label(std::string_view label) { mix(fnv1a(label)); }

  void mix(std::uint64_t v) {
    // FNV-1a over the 8 bytes of v, seeded by the running hash.
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace ecotune
