#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace ecotune {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::Rng(const std::uint64_t (&state)[4]) {
  for (int i = 0; i < 4; ++i) s_[i] = state[i];
}

Rng Rng::fork(std::string_view name) const {
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ fnv1a(name);
  std::uint64_t st[4];
  for (auto& s : st) s = splitmix64(x);
  return Rng(st);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Weyl-sequence mix of the tag, offset by a constant that is not the
  // FNV-1a hash of any short string, keeps the numeric-tag stream family
  // disjoint from the named-fork family.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^
                    (0xA24BAED4963EE407ULL + tag * 0x9E3779B97F4A7C15ULL);
  std::uint64_t st[4];
  for (auto& s : st) s = splitmix64(x);
  return Rng(st);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform(double lo, double hi) {
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, "Rng::uniform_int: inverted bounds (lo > hi)");
  // Difference in unsigned space so INT64_MIN..INT64_MAX cannot overflow.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's multiply-shift draw with rejection of the biased low slice
  // (a plain modulo over-selects the first 2^64 mod span values).
  unsigned __int128 product =
      static_cast<unsigned __int128>((*this)()) * span;
  auto low = static_cast<std::uint64_t>(product);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      product = static_cast<unsigned __int128>((*this)()) * span;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   static_cast<std::uint64_t>(product >> 64));
}

std::uint64_t Rng::state_hash() const {
  Fingerprint fp;
  for (std::uint64_t s : s_) fp.add("state", s);
  fp.add("has_spare", has_spare_);
  if (has_spare_) fp.add("spare", spare_);
  return fp.digest();
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace ecotune
