#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>

namespace ecotune {

/// Strongly typed scalar quantity. `Tag` distinguishes incompatible units at
/// compile time so that, e.g., seconds cannot be added to joules.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// Underlying value in the unit's base (J, s, W, ...).
  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity rhs) {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }
  /// Dimensionless ratio of two like quantities.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_;
  }

 private:
  double value_{0.0};
};

using Joules = Quantity<struct JouleTag>;    ///< Energy in joules.
using Seconds = Quantity<struct SecondTag>;  ///< Time in seconds.
using Watts = Quantity<struct WattTag>;      ///< Power in watts.
using Bytes = Quantity<struct ByteTag>;      ///< Data volume in bytes.

/// Energy = power x time.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules(p.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
/// Power = energy / time.
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts(e.value() / t.value());
}
/// Time = energy / power.
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds(e.value() / p.value());
}

/// Strongly typed frequency, stored in MHz to keep grid arithmetic exact.
/// `Tag` separates the core (DVFS) and uncore (UFS) frequency domains.
template <class Tag>
class FreqT {
 public:
  constexpr FreqT() = default;

  /// Constructs from a MHz count (exact).
  [[nodiscard]] static constexpr FreqT mhz(int m) { return FreqT(m); }
  /// Constructs from GHz, rounded to the nearest MHz.
  [[nodiscard]] static constexpr FreqT ghz(double g) {
    return FreqT(static_cast<int>(g * 1000.0 + (g >= 0 ? 0.5 : -0.5)));
  }

  [[nodiscard]] constexpr int as_mhz() const { return mhz_; }
  [[nodiscard]] constexpr double as_ghz() const { return mhz_ / 1000.0; }
  [[nodiscard]] constexpr double as_hz() const { return mhz_ * 1e6; }

  /// True for any frequency actually set (0 MHz means "unset").
  [[nodiscard]] constexpr bool valid() const { return mhz_ > 0; }

  friend constexpr auto operator<=>(FreqT a, FreqT b) = default;

  friend std::ostream& operator<<(std::ostream& os, FreqT f) {
    const int whole = f.mhz_ / 1000;
    const int frac = (f.mhz_ % 1000) / 100;
    return os << whole << '.' << frac << "GHz";
  }

 private:
  constexpr explicit FreqT(int m) : mhz_(m) {}
  int mhz_{0};
};

using CoreFreq = FreqT<struct CoreFreqTag>;      ///< Per-core DVFS frequency.
using UncoreFreq = FreqT<struct UncoreFreqTag>;  ///< Per-socket UFS frequency.

/// "2.4GHz"-style display string.
template <class Tag>
[[nodiscard]] std::string to_string(FreqT<Tag> f) {
  std::ostringstream os;
  os << f;
  return os.str();
}

}  // namespace ecotune

template <class Tag>
struct std::hash<ecotune::FreqT<Tag>> {
  std::size_t operator()(ecotune::FreqT<Tag> f) const noexcept {
    return std::hash<int>{}(f.as_mhz());
  }
};
