#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ecotune::log {
namespace {

/// Atomic, not mutex-guarded: level() is read on every Line construction
/// and every streamed operand (the logging hot path); a relaxed load is
/// free and a torn read is impossible for an enum.
std::atomic<Level> g_level{Level::kWarn};
Mutex g_mutex;
std::ostream* g_sink ECOTUNE_GUARDED_BY(g_mutex) = nullptr;

constexpr std::string_view name_of(Level l) {
  switch (l) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}
Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(std::ostream* sink) {
  const MutexLock lock(g_mutex);
  g_sink = sink;
}

namespace detail {
void emit(Level level, std::string_view component, const std::string& message) {
  const MutexLock lock(g_mutex);
  std::ostream& os = g_sink ? *g_sink : std::clog;
  os << '[' << name_of(level) << "] [" << component << "] " << message << '\n';
}
}  // namespace detail

}  // namespace ecotune::log
