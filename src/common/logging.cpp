#include "common/logging.hpp"

#include <iostream>
#include <mutex>

namespace ecotune::log {
namespace {

Level g_level = Level::kWarn;
std::ostream* g_sink = nullptr;
std::mutex g_mutex;

constexpr std::string_view name_of(Level l) {
  switch (l) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }
void set_sink(std::ostream* sink) { g_sink = sink; }

namespace detail {
void emit(Level level, std::string_view component, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& os = g_sink ? *g_sink : std::clog;
  os << '[' << name_of(level) << "] [" << component << "] " << message << '\n';
}
}  // namespace detail

}  // namespace ecotune::log
