#pragma once

#include <cstdio>
#include <cstdlib>

namespace ecotune::detail {

/// Terminates the process after printing the failed contract. Deliberately
/// abort()-based (not an exception): a violated invariant means the program
/// state is already wrong, and the determinism guarantees downstream of it
/// (byte-identical stdout, store fingerprints) can no longer be trusted.
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expression,
                                      const char* message) {
  std::fprintf(stderr, "[ecotune] CHECK failed at %s:%d: (%s) %s\n", file,
               line, expression, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ecotune::detail

/// ECOTUNE_CHECK(cond, msg): always-on invariant. Aborts with file:line,
/// the stringized condition, and `msg` when `cond` is false. Use for
/// invariants whose violation would silently corrupt results (store
/// fingerprint mismatches, workspace binding, task accounting).
#define ECOTUNE_CHECK(cond, message)                                      \
  ((cond) ? static_cast<void>(0)                                          \
          : ::ecotune::detail::check_failed(__FILE__, __LINE__, #cond,    \
                                            message))

/// ECOTUNE_DCHECK(cond, msg): debug-build invariant. Active in !NDEBUG
/// builds and whenever ECOTUNE_ENABLE_DCHECKS is defined (the
/// ECOTUNE_DCHECKS=ON CMake option — the sanitizer CI matrix turns it on
/// so contract violations surface there even in optimized builds).
/// Otherwise compiles to nothing while still type-checking `cond`
/// (unevaluated operand), so release builds pay zero cost and variables
/// used only in the check don't warn as unused.
#if defined(ECOTUNE_ENABLE_DCHECKS) || !defined(NDEBUG)
#define ECOTUNE_DCHECK(cond, message) ECOTUNE_CHECK(cond, message)
#else
#define ECOTUNE_DCHECK(cond, message) \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#endif
