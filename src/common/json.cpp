#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "common/error.hpp"

namespace ecotune {

bool Json::as_bool() const {
  ensure(is_bool(), "Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  ensure(is_number(), "Json: not a number");
  return std::get<double>(value_);
}

int Json::as_int() const {
  const double d = as_number();
  return static_cast<int>(std::llround(d));
}

const std::string& Json::as_string() const {
  ensure(is_string(), "Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  ensure(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  ensure(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  ensure(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  ensure(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  ensure(is_object(), "Json::operator[]: not an object");
  return std::get<Object>(value_)[key];
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  ensure(it != obj.end(), "Json::at: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  ensure(is_array(), "Json::push_back: not an array");
  std::get<Array>(value_).push_back(std::move(v));
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  // std::to_chars: locale-independent shortest representation that parses
  // back to exactly the same double. The default-locale operator<< path
  // would emit ',' decimal separators under e.g. de_DE and break round
  // trips (and the measurement store's byte-identical warm replays).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ')
                  : std::string();
  const std::string closepad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ')
                  : std::string();
  const char* nl = indent >= 0 ? "\n" : "";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, std::get<double>(value_));
  } else if (is_string()) {
    dump_string(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& arr = std::get<Array>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += closepad;
    out += ']';
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, v] : obj) {
      out += pad;
      dump_string(out, k);
      out += indent >= 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += closepad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    skip_ws();
    Json v = value();
    skip_ws();
    ensure(pos_ == text_.size(), "Json::parse: trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    ensure(pos_ < text_.size(), "Json::parse: unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    ensure(next() == c, std::string("Json::parse: expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        ensure(consume_literal("true"), "Json::parse: bad literal");
        return Json(true);
      case 'f':
        ensure(consume_literal("false"), "Json::parse: bad literal");
        return Json(false);
      case 'n':
        ensure(consume_literal("null"), "Json::parse: bad literal");
        return Json(nullptr);
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      ensure(c == ',', "Json::parse: expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      ensure(c == ',', "Json::parse: expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9')
                code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else
                ensure(false, "Json::parse: bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs not needed here).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            ensure(false, "Json::parse: bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    ensure(pos_ > start, "Json::parse: bad number");
    // std::from_chars is locale-independent (std::stod honors the process
    // locale and misparses under ',' decimal separators).
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, value);
    if (res.ec != std::errc() || res.ptr != last) {
      throw Error("Json::parse: bad number '" +
                  text_.substr(start, pos_ - start) + "'");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ecotune
