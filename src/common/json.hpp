#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ecotune {

/// Minimal JSON document model with parser and serializer. Supports the
/// subset needed by ecotune (tuning models, plugin configuration files):
/// null, bool, double, string, array, object. Object keys keep sorted order
/// (std::map) so serialization is deterministic.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Constructs null.
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  /// Factory helpers.
  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw Error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object field access; const version throws if missing.
  Json& operator[](const std::string& key);
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Array append.
  void push_back(Json v);

  /// Serializes; indent < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a JSON document; throws Error on malformed input.
  [[nodiscard]] static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace ecotune
