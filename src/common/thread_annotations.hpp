#pragma once

// Portable spellings of Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang the
// macros expand to the attributes and `-Wthread-safety` turns lock misuse
// into a compile error (the CI lane builds with -Werror=thread-safety);
// under every other compiler they expand to nothing, so the annotated tree
// stays portable.
//
// Policy (see README "Correctness tooling"):
//  - Every mutex-guarded member is annotated ECOTUNE_GUARDED_BY(mutex_),
//    and every function that assumes the lock is held is annotated
//    ECOTUNE_REQUIRES(mutex_). The `lock-discipline` lint rule enforces
//    that no mutex outside src/common/ goes un-annotated.
//  - The annotations attach to ecotune::Mutex / ecotune::MutexLock
//    (common/mutex.hpp), not raw std::mutex: libstdc++'s std::mutex
//    carries no capability attribute, so the analysis cannot track it.
//  - A function whose locking pattern the analysis cannot express (e.g.
//    lock handoff across an opaque boundary) is waived explicitly with
//    ECOTUNE_NO_THREAD_SAFETY_ANALYSIS plus a comment saying why; blanket
//    waivers are not acceptable.

#if defined(__clang__)
#define ECOTUNE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ECOTUNE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define ECOTUNE_CAPABILITY(x) ECOTUNE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define ECOTUNE_SCOPED_CAPABILITY ECOTUNE_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define ECOTUNE_GUARDED_BY(x) ECOTUNE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define ECOTUNE_PT_GUARDED_BY(x) ECOTUNE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define ECOTUNE_ACQUIRED_BEFORE(...) \
  ECOTUNE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ECOTUNE_ACQUIRED_AFTER(...) \
  ECOTUNE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The caller must hold the capability when calling this function (held
/// on entry and on exit).
#define ECOTUNE_REQUIRES(...) \
  ECOTUNE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// This function acquires the capability (not held on entry, held on
/// exit).
#define ECOTUNE_ACQUIRE(...) \
  ECOTUNE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// This function releases the capability (held on entry, not on exit).
#define ECOTUNE_RELEASE(...) \
  ECOTUNE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// This function acquires the capability iff it returns `success`.
#define ECOTUNE_TRY_ACQUIRE(success, ...) \
  ECOTUNE_THREAD_ANNOTATION_(try_acquire_capability(success, __VA_ARGS__))

/// The caller must NOT hold the capability (the function acquires it
/// itself; calling with it held would self-deadlock a non-recursive
/// mutex).
#define ECOTUNE_EXCLUDES(...) \
  ECOTUNE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reached only
/// under a lock the analysis cannot see).
#define ECOTUNE_ASSERT_CAPABILITY(x) \
  ECOTUNE_THREAD_ANNOTATION_(assert_capability(x))

/// This function returns a reference to the named capability.
#define ECOTUNE_RETURN_CAPABILITY(x) \
  ECOTUNE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the pattern is inexpressible.
#define ECOTUNE_NO_THREAD_SAFETY_ANALYSIS \
  ECOTUNE_THREAD_ANNOTATION_(no_thread_safety_analysis)
