#include "common/csv.hpp"

#include <iomanip>
#include <sstream>

namespace ecotune {

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& values) {
  std::ostringstream tmp;
  tmp << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) tmp << ',';
    tmp << values[i];
  }
  os_ << tmp.str() << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ecotune
