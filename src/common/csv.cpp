#include "common/csv.hpp"

#include <charconv>
#include <system_error>

namespace ecotune {

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& values) {
  // std::to_chars: locale-independent shortest round-trip formatting. The
  // previous default-locale operator<< emitted ',' decimal separators under
  // e.g. de_DE, corrupting the CSV column structure outright.
  std::string line;
  char buf[32];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line += ',';
    const auto res = std::to_chars(buf, buf + sizeof(buf), values[i]);
    line.append(buf, res.ptr);
  }
  os_ << line << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ecotune
