#pragma once

#include <charconv>
#include <iostream>
#include <string>

namespace ecotune::cli {

/// Strict integer parsing shared by every driver CLI: the whole value must
/// be a base-10 integer within [min_value, max of T]. std::atoi silently
/// returned 0 on garbage, which turned e.g. "--epochs ten" into a
/// zero-epoch (untrained) model; every flag that takes a number goes
/// through here so "--jobs ten" fails loudly in the bench drivers exactly
/// as it does in ecotune_dta. Prints a user-facing message to stderr and
/// returns false on rejection.
template <class T>
bool parse_strict_int(const char* flag, const std::string& text, T min_value,
                      T& out) {
  T value{};
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (value < min_value) {
    std::cerr << "error: " << flag << " must be >= " << +min_value
              << ", got " << +value << '\n';
    return false;
  }
  out = value;
  return true;
}

/// parse_strict_int for exit-on-error CLIs (the bench drivers): returns the
/// parsed value or exits with status 2.
[[nodiscard]] int parse_strict_int_or_exit(const char* flag,
                                           const std::string& text,
                                           int min_value);

/// Fetches the value of `flag` from argv, advancing `i`; prints an error
/// and returns nullptr when the value is missing. Shared by every driver's
/// hand-rolled argument loop.
[[nodiscard]] const char* next_arg_value(int argc, char** argv, int& i,
                                         const char* flag);

}  // namespace ecotune::cli
