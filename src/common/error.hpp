#pragma once

#include <stdexcept>
#include <string>

namespace ecotune {

/// Base class for all errors raised by the ecotune library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates an API precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Raised when a configuration (file, parameter set) is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Throws PreconditionError with `message` unless `condition` holds.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw PreconditionError(message);
}

}  // namespace ecotune
