#include "common/parallel.hpp"

#include <atomic>
#include <limits>

#include "common/check.hpp"

namespace ecotune {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_jobs(int jobs) { return jobs <= 0 ? hardware_jobs() : jobs; }

/// One run() invocation: a shared task cursor plus completion bookkeeping.
/// Lives on the caller's stack; workers may only touch it between claiming
/// the batch generation and decrementing `remaining_workers` (both under the
/// pool mutex), which is what lets run() return safely once the count hits
/// zero.
struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  // Guarded by the *pool* mutex, which the analysis cannot name from here
  // (a nested struct has no path to the owning pool's mutex_ expression);
  // every touch point sits visibly inside a MutexLock(pool.mutex_) scope.
  int remaining_workers = 0;

  Mutex error_mutex;
  std::exception_ptr error ECOTUNE_GUARDED_BY(error_mutex);
  std::size_t error_index ECOTUNE_GUARDED_BY(error_mutex) =
      std::numeric_limits<std::size_t>::max();
};

ThreadPool::ThreadPool(int jobs) {
  const int n = resolve_jobs(jobs);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Batch& b) {
  for (;;) {
    if (b.cancelled.load()) return;
    const std::size_t i = b.next.fetch_add(1);
    if (i >= b.count) return;
    try {
      (*b.fn)(i);
    } catch (...) {
      const MutexLock lock(b.error_mutex);
      if (i < b.error_index) {
        b.error_index = i;
        b.error = std::current_exception();
      }
      b.cancelled.store(true);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lock(mutex_);
  for (;;) {
    // Explicit predicate loop (not the lambda-predicate wait overload): the
    // guarded reads of stop_/generation_ stay in this function's body, where
    // the analysis can see the MutexLock that covers them.
    while (!stop_ && generation_ == seen) wake_cv_.wait(lock);
    if (stop_) return;
    seen = generation_;
    ECOTUNE_DCHECK(batch_ != nullptr,
                   "ThreadPool::worker_loop: woken for a new generation "
                   "with no batch published");
    Batch& b = *batch_;
    lock.unlock();
    drain(b);
    lock.lock();
    if (--b.remaining_workers == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  Batch b;
  b.count = count;
  b.fn = &fn;

  if (!workers_.empty()) {
    {
      const MutexLock lock(mutex_);
      b.remaining_workers = static_cast<int>(workers_.size());
      batch_ = &b;
      ++generation_;
    }
    wake_cv_.notify_all();
  }

  drain(b);  // the caller participates as a worker

  if (!workers_.empty()) {
    MutexLock lock(mutex_);
    while (b.remaining_workers != 0) done_cv_.wait(lock);
    batch_ = nullptr;
  }
  // Task accounting: once every worker checked in, either the batch was
  // cancelled by a throwing task or the cursor must have covered (and thus
  // handed out) all `count` indices — anything else means a task was
  // silently dropped and downstream ordered reductions would misalign.
  ECOTUNE_CHECK(b.cancelled.load() || b.next.load() >= b.count,
                "ThreadPool::run: batch completed with unclaimed tasks");
  // No lock needed for b.error here in the memory model (all workers have
  // checked in), but the annotation contract is absolute: guarded members
  // are only touched under their mutex.
  std::exception_ptr error;
  {
    const MutexLock lock(b.error_mutex);
    error = b.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ecotune
