#pragma once

// The SIMD substrate of the ecotune kernel layer: runtime level detection,
// the process-wide dispatch level (ECOTUNE_SIMD / SessionConfig::simd),
// a 64-byte-aligned allocator for kernel-visible storage, and thin value
// wrappers over the x86 vector types.
//
// This header is the ONLY file in the tree allowed to touch raw vendor
// intrinsics (`_mm*`, <immintrin.h>); the `raw-intrinsics` lint rule
// enforces that. Everything above (src/nn/kernels.*) speaks V4 / V2x2.
//
// Determinism contract
// --------------------
// Every wrapper maps to exactly one IEEE-754 double operation per lane —
// no reciprocal/rsqrt approximations, no reassociation inside a wrapper —
// so any loop built from them computes one fixed, machine-independent
// sequence of rounding steps. Two tiers follow from that:
//
//  * dot()/axpy() avoid fma() and use a fixed lane-pairwise order, so
//    they are bit-identical at every dispatch level (scalar included).
//  * The MLP train/forward engines (nn/kernels_engine.inc) use fma(),
//    which contracts mul+add into one correctly-rounded step. Their
//    results differ from the scalar reference path in the last ulps but
//    are fully deterministic: same inputs => same bits, run to run and
//    independent of thread count. The scalar reference path (dispatch
//    level kScalar, ECOTUNE_SIMD=off) keeps the historical bit-exact
//    numbers; the engines pin their own goldens (see tests/test_nn.cpp).
//    fma() exists only on V4 — kAvx2 requires the FMA feature bit, and
//    the engines are not instantiated for SSE2 (no fused op there).
//
// relu(): max(x, 0) keeps the *second* operand as the zero so a -0.0
// pre-activation maps to +0.0, exactly like std::max(0.0, acc) (maxpd
// returns the second operand on equality).

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ECOTUNE_SIMD_X86 1
#include <immintrin.h>
#else
#define ECOTUNE_SIMD_X86 0
#endif

#if ECOTUNE_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
#define ECOTUNE_TARGET_AVX2 __attribute__((target("avx2,fma")))
#else
#define ECOTUNE_TARGET_AVX2
#endif

namespace ecotune::simd {

/// Kernel dispatch levels, ordered by capability. kScalar selects the
/// historical scalar reference loops (no kernel layer at all). kSse2 adds
/// the vector dot/axpy kernels (bit-identical to scalar). kAvx2 — which
/// requires the FMA feature bit too — additionally enables the fused MLP
/// train/forward engines, whose results are deterministic but not
/// bit-identical to the reference path (see nn/kernels.hpp).
enum class Level {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

[[nodiscard]] inline const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

/// Best level the running CPU supports. SSE2 is part of the x86-64
/// baseline; AVX2+FMA is probed at runtime, so one binary serves both.
/// (kAvx2 compiles with target("avx2,fma"), hence the double probe.)
[[nodiscard]] inline Level detect_best() {
#if ECOTUNE_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Level::kAvx2;
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

[[nodiscard]] inline bool supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(detect_best());
}

/// Parses an ECOTUNE_SIMD value. Accepted: "off"/"scalar" (reference
/// path), "sse2", "avx2", "auto"/"on"/"" (best supported). Anything else
/// throws ConfigError — a typo must not silently change the code path.
[[nodiscard]] inline Level parse_level(const std::string& text) {
  if (text == "off" || text == "scalar") return Level::kScalar;
  if (text == "sse2") return Level::kSse2;
  if (text == "avx2") return Level::kAvx2;
  if (text.empty() || text == "auto" || text == "on") return detect_best();
  throw ConfigError("ECOTUNE_SIMD: unknown level '" + text +
                    "' (expected off|scalar|sse2|avx2|auto)");
}

namespace detail {
inline std::atomic<Level>& level_slot() {
  // Initialized once from the environment (then clamped to what the CPU
  // supports); SessionConfig::simd(false) and the test helpers override
  // it through set_level().
  static std::atomic<Level> slot = [] {
    const char* env = std::getenv("ECOTUNE_SIMD");
    Level level = parse_level(env == nullptr ? std::string() : env);
    if (!supported(level)) level = detect_best();
    return level;
  }();
  return slot;
}
}  // namespace detail

/// The process-wide dispatch level.
[[nodiscard]] inline Level active_level() {
  return detail::level_slot().load(std::memory_order_relaxed);
}

/// Forces the dispatch level (process-wide). Throws ConfigError when the
/// CPU cannot execute the requested level.
inline void set_level(Level level) {
  ensure(supported(level), std::string("simd::set_level: level '") +
                               to_string(level) +
                               "' is not supported by this CPU");
  detail::level_slot().store(level, std::memory_order_relaxed);
}

/// Read-prefetch hint into all cache levels; a no-op where unsupported.
/// Purely a scheduling hint — never changes results.
inline void prefetch(const void* p) { __builtin_prefetch(p, 0, 3); }

/// RAII level override for tests and benchmarks.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(active_level()) {
    set_level(level);
  }
  ~ScopedLevel() { set_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

/// Minimal C++17 allocator with 64-byte alignment: kernel loads/stores
/// assume 32-byte-aligned block starts, and 64 keeps hot buffers on cache
/// line boundaries too.
template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  /// Explicit rebind: the non-type alignment parameter defeats the
  /// allocator_traits auto-rebind detection.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <class U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

#if ECOTUNE_SIMD_X86

/// Four double lanes (AVX2). Every method is one vector instruction; all
/// methods carry the avx2 target attribute, so they may only be called
/// from functions that carry it too (the kernel engines).
struct V4 {
  __m256d raw;

  ECOTUNE_TARGET_AVX2 static inline V4 load(const double* p) {
    return {_mm256_load_pd(p)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 loadu(const double* p) {
    return {_mm256_loadu_pd(p)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 broadcast(double x) {
    return {_mm256_set1_pd(x)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 zero() {
    return {_mm256_setzero_pd()};
  }
  ECOTUNE_TARGET_AVX2 inline void store(double* p) const {
    _mm256_store_pd(p, raw);
  }
  ECOTUNE_TARGET_AVX2 inline void storeu(double* p) const {
    _mm256_storeu_pd(p, raw);
  }
  ECOTUNE_TARGET_AVX2 static inline V4 add(V4 a, V4 b) {
    return {_mm256_add_pd(a.raw, b.raw)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 sub(V4 a, V4 b) {
    return {_mm256_sub_pd(a.raw, b.raw)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 mul(V4 a, V4 b) {
    return {_mm256_mul_pd(a.raw, b.raw)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 div(V4 a, V4 b) {
    return {_mm256_div_pd(a.raw, b.raw)};
  }
  ECOTUNE_TARGET_AVX2 static inline V4 sqrt(V4 a) {
    return {_mm256_sqrt_pd(a.raw)};
  }
  /// a*b + c in one correctly-rounded fused operation.
  ECOTUNE_TARGET_AVX2 static inline V4 fma(V4 a, V4 b, V4 c) {
    return {_mm256_fmadd_pd(a.raw, b.raw, c.raw)};
  }
  /// max(x, 0) with x as the first maxpd operand: -0.0 maps to +0.0,
  /// matching std::max(0.0, x).
  ECOTUNE_TARGET_AVX2 static inline V4 relu(V4 x) {
    return {_mm256_max_pd(x.raw, _mm256_setzero_pd())};
  }
  /// Lanes with |x| < DBL_MIN become +0.0 (NaN and normals pass through),
  /// matching nn's scalar flush_denormal bit for bit.
  ECOTUNE_TARGET_AVX2 static inline V4 flush_denormal(V4 x) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    const __m256d tiny = _mm256_set1_pd(2.2250738585072014e-308);
    const __m256d mag = _mm256_andnot_pd(sign, x.raw);
    const __m256d is_denormal = _mm256_cmp_pd(mag, tiny, _CMP_LT_OQ);
    return {_mm256_andnot_pd(is_denormal, x.raw)};
  }
  /// Lanes of x where gate <= 0.0 become +0.0; a NaN gate keeps x (the
  /// comparison is false), matching the scalar `if (gate <= 0) x = 0.0`.
  ECOTUNE_TARGET_AVX2 static inline V4 zero_where_nonpositive(V4 x, V4 gate) {
    const __m256d nonpos =
        _mm256_cmp_pd(gate.raw, _mm256_setzero_pd(), _CMP_LE_OQ);
    return {_mm256_andnot_pd(nonpos, x.raw)};
  }
};

/// Two double lanes (SSE2, x86-64 baseline — no target attribute needed).
struct V2 {
  __m128d raw;

  static inline V2 load(const double* p) { return {_mm_load_pd(p)}; }
  static inline V2 loadu(const double* p) { return {_mm_loadu_pd(p)}; }
  static inline V2 broadcast(double x) { return {_mm_set1_pd(x)}; }
  static inline V2 zero() { return {_mm_setzero_pd()}; }
  inline void store(double* p) const { _mm_store_pd(p, raw); }
  inline void storeu(double* p) const { _mm_storeu_pd(p, raw); }
  static inline V2 add(V2 a, V2 b) { return {_mm_add_pd(a.raw, b.raw)}; }
  static inline V2 sub(V2 a, V2 b) { return {_mm_sub_pd(a.raw, b.raw)}; }
  static inline V2 mul(V2 a, V2 b) { return {_mm_mul_pd(a.raw, b.raw)}; }
  static inline V2 div(V2 a, V2 b) { return {_mm_div_pd(a.raw, b.raw)}; }
  static inline V2 sqrt(V2 a) { return {_mm_sqrt_pd(a.raw)}; }
  static inline V2 relu(V2 x) {
    return {_mm_max_pd(x.raw, _mm_setzero_pd())};
  }
  static inline V2 flush_denormal(V2 x) {
    const __m128d sign = _mm_set1_pd(-0.0);
    const __m128d tiny = _mm_set1_pd(2.2250738585072014e-308);
    const __m128d mag = _mm_andnot_pd(sign, x.raw);
    const __m128d is_denormal = _mm_cmplt_pd(mag, tiny);
    return {_mm_andnot_pd(is_denormal, x.raw)};
  }
  static inline V2 zero_where_nonpositive(V2 x, V2 gate) {
    const __m128d nonpos = _mm_cmple_pd(gate.raw, _mm_setzero_pd());
    return {_mm_andnot_pd(nonpos, x.raw)};
  }
};

/// Four double lanes emulated as two SSE2 halves. Same API as V4 minus
/// fma(), carrying the width-4 dot/axpy kernels on pre-AVX2 hardware with
/// the identical virtual-accumulator order (hence identical bits).
struct V2x2 {
  V2 lo, hi;

  static inline V2x2 load(const double* p) {
    return {V2::load(p), V2::load(p + 2)};
  }
  static inline V2x2 loadu(const double* p) {
    return {V2::loadu(p), V2::loadu(p + 2)};
  }
  static inline V2x2 broadcast(double x) {
    return {V2::broadcast(x), V2::broadcast(x)};
  }
  static inline V2x2 zero() { return {V2::zero(), V2::zero()}; }
  inline void store(double* p) const {
    lo.store(p);
    hi.store(p + 2);
  }
  inline void storeu(double* p) const {
    lo.storeu(p);
    hi.storeu(p + 2);
  }
  static inline V2x2 add(V2x2 a, V2x2 b) {
    return {V2::add(a.lo, b.lo), V2::add(a.hi, b.hi)};
  }
  static inline V2x2 sub(V2x2 a, V2x2 b) {
    return {V2::sub(a.lo, b.lo), V2::sub(a.hi, b.hi)};
  }
  static inline V2x2 mul(V2x2 a, V2x2 b) {
    return {V2::mul(a.lo, b.lo), V2::mul(a.hi, b.hi)};
  }
  static inline V2x2 div(V2x2 a, V2x2 b) {
    return {V2::div(a.lo, b.lo), V2::div(a.hi, b.hi)};
  }
  static inline V2x2 sqrt(V2x2 a) {
    return {V2::sqrt(a.lo), V2::sqrt(a.hi)};
  }
  // No fma(): SSE2 has no fused op and a mul+add emulation would round
  // twice, silently breaking the engines' fixed-rounding determinism
  // contract. The fused engines are V4-only (see kernels.cpp).
  static inline V2x2 relu(V2x2 x) {
    return {V2::relu(x.lo), V2::relu(x.hi)};
  }
  static inline V2x2 flush_denormal(V2x2 x) {
    return {V2::flush_denormal(x.lo), V2::flush_denormal(x.hi)};
  }
  static inline V2x2 zero_where_nonpositive(V2x2 x, V2x2 gate) {
    return {V2::zero_where_nonpositive(x.lo, gate.lo),
            V2::zero_where_nonpositive(x.hi, gate.hi)};
  }
};

#endif  // ECOTUNE_SIMD_X86

}  // namespace ecotune::simd
