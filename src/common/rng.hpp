#pragma once

#include <cstdint>
#include <string_view>

namespace ecotune {

/// FNV-1a 64-bit hash; used to derive independent RNG substreams from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it
/// can drive <random> distributions; all simulator randomness flows through
/// named substreams of this generator for reproducible experiments.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent substream, e.g. Rng(seed).fork("node-3").
  [[nodiscard]] Rng fork(std::string_view name) const;

  /// Numeric-tag convenience for loop bodies (episode/task indices):
  /// Rng(seed).fork(i). Uses a derivation constant distinct from the string
  /// overload so fork(0) can never collide with fork("") or any named fork.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive (unbiased Lemire rejection
  /// draw; requires lo <= hi).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian draw (Box-Muller, cached spare).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Order-sensitive hash of the full generator state (stream position and
  /// the cached Box-Muller spare). Two generators with equal state_hash()
  /// produce identical draw sequences; the measurement store folds this
  /// into cache-entry fingerprints so stale noise streams cannot hit.
  [[nodiscard]] std::uint64_t state_hash() const;

 private:
  explicit Rng(const std::uint64_t (&state)[4]);
  std::uint64_t s_[4];
  double spare_{0.0};
  bool has_spare_{false};
};

}  // namespace ecotune
