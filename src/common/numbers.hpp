#pragma once

#include <charconv>
#include <string>
#include <string_view>
#include <system_error>

namespace ecotune {

/// Locale-independent strict double parse: the whole of `text` must be a
/// number (std::from_chars general format; no leading whitespace, no
/// trailing junk). This is the wrapper the determinism lint points callers
/// at instead of std::strtod / std::stod, both of which honor the process
/// locale's decimal point and so can parse "1.5" differently under e.g.
/// LC_NUMERIC=de_DE.
[[nodiscard]] inline bool parse_double(std::string_view text, double& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  double value{};
  const auto res = std::from_chars(first, last, value);
  if (res.ec != std::errc() || res.ptr != last) return false;
  out = value;
  return true;
}

/// Locale-independent strict integer parse (base 10, whole-string). The
/// counterpart of parse_double for integer-keyed payloads; CLI flags with
/// user-facing errors go through common/cli parse_strict_int instead.
template <class T>
[[nodiscard]] bool parse_int(std::string_view text, T& out) {
  T value{};
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (res.ec != std::errc() || res.ptr != text.data() + text.size())
    return false;
  out = value;
  return true;
}

/// Locale-independent shortest round-trip formatting (the same contract
/// common/json and common/csv rely on for byte-identical output).
[[nodiscard]] inline std::string format_double(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

}  // namespace ecotune
