#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ecotune {

namespace {
const std::string kSeparatorSentinel = "\x01";
}

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

TextTable& TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

TextTable& TextTable::separator() {
  rows_.push_back({kSeparatorSentinel});
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel))
      ncols = std::max(ncols, r.size());
  }
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel)) widen(r);
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t i = 0; i < ncols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < r.size() ? r[i] : std::string();
      os << ' ' << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kSeparatorSentinel) {
      rule();
    } else {
      emit(r);
    }
  }
  rule();
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TextTable::pct(double v, int digits) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(digits) << v << '%';
  return os.str();
}

}  // namespace ecotune
