#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ecotune {

/// Uniform grid of selectable frequencies [min, max] with fixed step, as
/// exposed by cpufreq / the UFS MSR on the simulated machine. All values in
/// MHz so that grid arithmetic is exact.
template <class Tag>
class FrequencyGrid {
 public:
  using Freq = FreqT<Tag>;

  /// Builds the grid; `min`/`max` must be step-aligned and min <= max.
  FrequencyGrid(Freq min, Freq max, int step_mhz)
      : min_(min), max_(max), step_(step_mhz) {
    ensure(step_mhz > 0, "FrequencyGrid: step must be positive");
    ensure(min.as_mhz() <= max.as_mhz(), "FrequencyGrid: min > max");
    ensure((max.as_mhz() - min.as_mhz()) % step_mhz == 0,
           "FrequencyGrid: range not a multiple of step");
  }

  [[nodiscard]] Freq min() const { return min_; }
  [[nodiscard]] Freq max() const { return max_; }
  [[nodiscard]] int step_mhz() const { return step_; }

  /// Number of grid points.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>((max_.as_mhz() - min_.as_mhz()) / step_) +
           1;
  }

  /// i-th grid point, ascending.
  [[nodiscard]] Freq at(std::size_t i) const {
    ensure(i < size(), "FrequencyGrid::at: index out of range");
    return Freq::mhz(min_.as_mhz() + static_cast<int>(i) * step_);
  }

  /// True iff `f` lies exactly on the grid.
  [[nodiscard]] bool contains(Freq f) const {
    return f.as_mhz() >= min_.as_mhz() && f.as_mhz() <= max_.as_mhz() &&
           (f.as_mhz() - min_.as_mhz()) % step_ == 0;
  }

  /// Index of grid point `f`; throws if not on the grid.
  [[nodiscard]] std::size_t index_of(Freq f) const {
    ensure(contains(f), "FrequencyGrid::index_of: frequency not on grid");
    return static_cast<std::size_t>((f.as_mhz() - min_.as_mhz()) / step_);
  }

  /// Nearest grid point to `f` (clamped to [min, max]).
  [[nodiscard]] Freq clamp(Freq f) const {
    int m = f.as_mhz();
    if (m <= min_.as_mhz()) return min_;
    if (m >= max_.as_mhz()) return max_;
    const int offset = m - min_.as_mhz();
    const int snapped = (offset + step_ / 2) / step_ * step_;
    return Freq::mhz(min_.as_mhz() + snapped);
  }

  /// All grid points, ascending.
  [[nodiscard]] std::vector<Freq> values() const {
    std::vector<Freq> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.push_back(at(i));
    return out;
  }

  /// The immediate neighborhood {f - r*step .. f + r*step} clamped to the
  /// grid; used for the plugin's reduced search space (paper Sec. III-C).
  [[nodiscard]] std::vector<Freq> neighborhood(Freq f, int radius = 1) const {
    ensure(contains(f), "FrequencyGrid::neighborhood: frequency not on grid");
    std::vector<Freq> out;
    for (int k = -radius; k <= radius; ++k) {
      const int m = f.as_mhz() + k * step_;
      if (m >= min_.as_mhz() && m <= max_.as_mhz()) out.push_back(Freq::mhz(m));
    }
    return out;
  }

 private:
  Freq min_;
  Freq max_;
  int step_;
};

using CoreFreqGrid = FrequencyGrid<struct CoreFreqTag>;
using UncoreFreqGrid = FrequencyGrid<struct UncoreFreqTag>;

}  // namespace ecotune
