#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ecotune {

/// Number of concurrent jobs the hardware supports (>= 1).
[[nodiscard]] int hardware_jobs();

/// Normalizes a --jobs style argument: values <= 0 mean "use the hardware
/// concurrency", anything else is taken verbatim.
[[nodiscard]] int resolve_jobs(int jobs);

/// A small fixed-size thread-pool executor for index-space parallelism.
///
/// The pool owns `jobs - 1` worker threads; the caller of run() participates
/// as the remaining worker, so a 1-job pool executes everything inline with
/// no synchronization. Tasks are identified by their index in [0, count) and
/// are claimed from a shared atomic cursor, which balances uneven task costs
/// across workers (the sweep engines' tasks vary widely in simulated length).
///
/// Determinism contract: the pool only schedules; anything order-dependent
/// (RNG streams, reductions) must be keyed by task index by the caller.
/// Every consumer in this tree derives per-task RNGs via Rng::fork and
/// reduces results in index order, so output is identical for any job count.
class ThreadPool {
 public:
  /// Creates a pool executing up to resolve_jobs(jobs) tasks concurrently.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency of this pool (worker threads + the calling thread).
  [[nodiscard]] int jobs() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [0, count); blocks until all tasks finished.
  /// If tasks throw, remaining unclaimed tasks are skipped and the exception
  /// with the lowest task index observed is rethrown in the caller.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;
  void worker_loop();
  static void drain(Batch& b);

  std::vector<std::thread> workers_;
  /// Guards the batch-publication state below; the worker/run() rendezvous
  /// is proved by Clang's thread-safety analysis (common/thread_annotations).
  Mutex mutex_;
  /// _any variants: they wait on the annotated MutexLock (BasicLockable),
  /// which the analysis tracks across the wait.
  std::condition_variable_any wake_cv_;  ///< signals workers: new batch/stop
  std::condition_variable_any done_cv_;  ///< signals run(): workers checked in
  Batch* batch_ ECOTUNE_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ ECOTUNE_GUARDED_BY(mutex_) = 0;
  bool stop_ ECOTUNE_GUARDED_BY(mutex_) = false;
};

/// Runs fn(i) for i in [0, count) on a transient pool of `jobs` workers.
template <typename Fn>
void parallel_for_each(std::size_t count, Fn&& fn, int jobs = 0) {
  ThreadPool pool(jobs);
  pool.run(count, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

/// Maps [0, count) through fn concurrently and returns the results in index
/// order, independent of completion order. R must be default-constructible
/// and movable.
template <typename Fn>
auto parallel_map_ordered(std::size_t count, Fn&& fn, int jobs = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using R = decltype(fn(std::size_t{}));
  std::vector<R> out(count);
  parallel_for_each(
      count, [&](std::size_t i) { out[i] = fn(i); }, jobs);
  return out;
}

/// Ordered map-reduce: maps [0, count) concurrently, then folds the mapped
/// values into `init` strictly in index order (so floating-point reductions
/// are bitwise-identical for any job count).
template <typename Acc, typename Map, typename Fold>
Acc parallel_reduce_ordered(std::size_t count, Acc init, Map&& map,
                            Fold&& fold, int jobs = 0) {
  auto mapped = parallel_map_ordered(count, std::forward<Map>(map), jobs);
  for (auto& value : mapped) fold(init, std::move(value));
  return init;
}

}  // namespace ecotune
