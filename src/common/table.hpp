#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ecotune {

/// Formats a plain-text table with aligned columns; used by the benchmark
/// harnesses to print paper tables.
class TextTable {
 public:
  /// Creates a table with the given title (printed above, may be empty).
  explicit TextTable(std::string title = {});

  /// Sets the header row.
  TextTable& header(std::vector<std::string> cells);
  /// Appends a data row; rows may have fewer cells than the header.
  TextTable& row(std::vector<std::string> cells);
  /// Appends a horizontal separator at this position.
  TextTable& separator();

  /// Renders the table.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  /// Formats a double with `digits` decimal places.
  [[nodiscard]] static std::string num(double v, int digits = 2);
  /// Formats a percentage (value already in percent) with sign.
  [[nodiscard]] static std::string pct(double v, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Rows; an empty optional-like sentinel row (single cell "\x01") marks a
  // separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecotune
