#include "common/cli.hpp"

#include <cstdlib>

namespace ecotune::cli {

int parse_strict_int_or_exit(const char* flag, const std::string& text,
                             int min_value) {
  int value = 0;
  if (!parse_strict_int(flag, text, min_value, value)) std::exit(2);
  return value;
}

const char* next_arg_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::cerr << "error: " << flag << " needs a value\n";
    return nullptr;
  }
  return argv[++i];
}

}  // namespace ecotune::cli
