#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace ecotune {

/// std::mutex behind a Clang-analyzable capability. libstdc++'s std::mutex
/// carries no thread-safety attributes, so ECOTUNE_GUARDED_BY(some_std_mutex)
/// would be rejected by the analysis; this wrapper is the lock type every
/// annotated class in the tree uses. Zero overhead: the three members
/// forward directly.
class ECOTUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ECOTUNE_ACQUIRE() { m_.lock(); }
  void unlock() ECOTUNE_RELEASE() { m_.unlock(); }
  bool try_lock() ECOTUNE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII guard over Mutex, tracked by the analysis as a scoped capability.
/// Relockable: lock()/unlock() let a holder drop the mutex mid-scope (the
/// ThreadPool worker loop releases it around each batch drain) and meet
/// BasicLockable, so std::condition_variable_any::wait(MutexLock&) works.
class ECOTUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ECOTUNE_ACQUIRE(mutex)
      : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ECOTUNE_RELEASE() {
    if (held_) mutex_.unlock();
  }

  /// Re-acquires after an explicit unlock().
  void lock() ECOTUNE_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  /// Releases early; the destructor then does nothing.
  void unlock() ECOTUNE_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

 private:
  Mutex& mutex_;
  bool held_;
};

}  // namespace ecotune
