#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ecotune::log {

/// Log severities, ordered.
enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum severity that is emitted.
void set_level(Level level);

/// Current global minimum severity.
[[nodiscard]] Level level();

/// Redirects log output (default: std::clog). Pass nullptr to restore.
void set_sink(std::ostream* sink);

namespace detail {
void emit(Level level, std::string_view component, const std::string& message);
}

/// RAII log line: streams into an internal buffer, emits on destruction.
/// Usage: log::Line(log::Level::kInfo, "hwsim") << "freq=" << f;
class Line {
 public:
  Line(Level level, std::string_view component)
      : level_(level), component_(component) {}
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  ~Line() {
    if (level_ >= level()) detail::emit(level_, component_, buf_.str());
  }

  template <class T>
  Line& operator<<(const T& v) {
    if (level_ >= level()) buf_ << v;
    return *this;
  }

 private:
  Level level_;
  std::string_view component_;
  std::ostringstream buf_;
};

inline Line trace(std::string_view component) {
  return Line(Level::kTrace, component);
}
inline Line debug(std::string_view component) {
  return Line(Level::kDebug, component);
}
inline Line info(std::string_view component) {
  return Line(Level::kInfo, component);
}
inline Line warn(std::string_view component) {
  return Line(Level::kWarn, component);
}
inline Line error(std::string_view component) {
  return Line(Level::kError, component);
}

}  // namespace ecotune::log
