#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ecotune {

/// Minimal CSV writer with RFC-4180 quoting; benches dump series with it so
/// figures can be re-plotted outside the harness.
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row, quoting cells when needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles with full precision.
  void row_numeric(const std::vector<double>& values);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace ecotune
