#pragma once

#include <ostream>
#include <string>

#include "common/units.hpp"

namespace ecotune {

/// One complete hardware/runtime operating point -- the triple the paper
/// tunes per region: OpenMP threads, core frequency (DVFS), uncore frequency
/// (UFS).
struct SystemConfig {
  int threads = 24;
  CoreFreq core = CoreFreq::mhz(2500);
  UncoreFreq uncore = UncoreFreq::mhz(3000);

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;

  friend std::ostream& operator<<(std::ostream& os, const SystemConfig& c) {
    return os << c.threads << " thr, " << c.core << '|' << c.uncore;
  }
};

/// "24 thr, 2.5GHz|3.0GHz"-style display string.
[[nodiscard]] inline std::string to_string(const SystemConfig& c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

}  // namespace ecotune
