#include "core/dvfs_ufs_plugin.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "instr/scorep_runtime.hpp"
#include "model/dataset.hpp"
#include "model/features.hpp"
#include "ptf/search_space.hpp"

namespace ecotune::core {

DvfsUfsPlugin::DvfsUfsPlugin(const model::EnergyModel& energy_model,
                             Options options)
    : energy_model_(energy_model),
      options_(std::move(options)),
      objective_(ptf::make_objective(options_.config.objective)) {
  ensure(energy_model_.trained(),
         "DvfsUfsPlugin: energy model must be trained");
  ensure(options_.config.neighborhood_radius >= 0,
         "DvfsUfsPlugin: negative neighborhood radius");
}

void DvfsUfsPlugin::initialize(ptf::PluginContext& ctx) {
  node_ = &ctx.node();
  app_ = &ctx.app();
  result_ = DtaResult{};
  step_ = Step::kThreads;

  const auto& spec = node_->spec();
  const Seconds t0 = node_->now();

  // --- Pre-processing (paper Sec. III-A) --------------------------------
  // 1. Compiler-instrumented profiling run at the default configuration.
  instr::ExecutionContext profile_ctx(*node_);
  profile_ctx.apply(SystemConfig{spec.total_cores(), spec.default_core,
                                 spec.default_uncore});
  instr::ScorepOptions profile_opts;
  profile_opts.profiling = true;
  instr::ScorepRuntime profiling_run(
      *app_, instr::InstrumentationFilter::instrument_all(), profile_opts);
  const auto profiled = profiling_run.execute(profile_ctx);
  ensure(profiled.profile.has_value(),
         "DvfsUfsPlugin: profiling run produced no profile");
  ++result_.app_runs;

  // 2. scorep-autofilter: drop fine-granular regions.
  result_.autofilter = instr::scorep_autofilter(
      *profiled.profile, options_.config.autofilter_granularity);

  // 3. readex-dyn-detect: significant regions (mean time > threshold).
  result_.dyn_report = readex::readex_dyn_detect(
      *profiled.profile, options_.config.significance_threshold);
  ensure(!result_.dyn_report.significant.empty(),
         "DvfsUfsPlugin: no significant regions detected");

  // 4. Experiment instrumentation: significant regions + phase only.
  filter_ = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app_->regions()) {
    if (!result_.dyn_report.is_significant(r.name)) filter_.exclude(r.name);
  }

  result_.tuning_time += node_->now() - t0;
  log::info("core") << "pre-processing done: "
                    << result_.dyn_report.significant.size()
                    << " significant regions";
}

instr::InstrumentationFilter DvfsUfsPlugin::instrumentation_filter() const {
  return filter_;
}

SystemConfig DvfsUfsPlugin::scenario_base() const {
  ensure(node_ != nullptr, "DvfsUfsPlugin: not initialized");
  const auto& spec = node_->spec();
  return SystemConfig{spec.total_cores(), spec.calibration_core,
                      spec.calibration_uncore};
}

bool DvfsUfsPlugin::has_next_tuning_step() const {
  return step_ != Step::kDone;
}

std::vector<ptf::Scenario> DvfsUfsPlugin::create_scenarios() {
  ensure(node_ != nullptr && app_ != nullptr,
         "DvfsUfsPlugin: not initialized");
  const auto& spec = node_->spec();

  if (step_ == Step::kThreads) {
    // --- Tuning step 1: exhaustive OpenMP-thread search (Sec. III-B) ----
    ptf::SearchSpace space;
    space.add_parameter(ptf::omp_threads_parameter(
        options_.config.omp_lower, spec.total_cores(),
        options_.config.omp_step));
    auto scenarios = space.exhaustive();
    result_.thread_scenarios = static_cast<int>(scenarios.size());
    return scenarios;
  }

  // --- Analysis + tuning step 2 (Sec. III-C) ----------------------------
  // Analysis run(s): collect the model's PAPI counters for the phase region
  // at the calibration frequencies and the step-1 thread optimum.
  const Seconds t0 = node_->now();
  model::AcquisitionOptions acq;
  acq.phase_iterations = std::min(app_->phase_iterations(), 3);
  model::DataAcquisition acquisition(*node_, acq);
  result_.counter_rates = acquisition.collect_counter_rates(
      *app_, result_.phase_threads, model::paper_feature_events());
  result_.analysis_runs = static_cast<int>(acquisition.runs_performed());
  result_.app_runs += result_.analysis_runs;
  result_.tuning_time += node_->now() - t0;

  // Model prediction: energy-minimal global core/uncore frequency in one
  // shot -- this is the search-space reduction.
  result_.recommendation = energy_model_.recommend(result_.counter_rates,
                                                   spec);
  log::info("core") << "model recommends "
                    << to_string(result_.recommendation.cf) << '|'
                    << to_string(result_.recommendation.ucf);

  if (options_.config.per_region_prediction) {
    // Sec. VI extension: predict for every significant region individually.
    const Seconds t1 = node_->now();
    model::AcquisitionOptions region_acq;
    region_acq.phase_iterations = std::min(app_->phase_iterations(), 3);
    model::DataAcquisition acquisition(*node_, region_acq);
    const auto per_region = acquisition.collect_region_counter_rates(
        *app_, result_.phase_threads, model::paper_feature_events());
    result_.analysis_runs +=
        static_cast<int>(acquisition.runs_performed());
    result_.app_runs += acquisition.runs_performed();
    result_.tuning_time += node_->now() - t1;
    // One batched sweep covers every region's grid: the model scales and
    // forwards all (region, CF, UCF) rows in a single pass instead of one
    // per-point forward per grid cell per region.
    std::vector<std::string> region_names;
    std::vector<std::map<std::string, double>> region_rates;
    for (const auto& sig : result_.dyn_report.significant) {
      auto it = per_region.find(sig.name);
      if (it == per_region.end()) continue;
      region_names.push_back(sig.name);
      region_rates.push_back(it->second);
    }
    const auto region_recs = energy_model_.recommend_many(region_rates, spec);
    for (std::size_t k = 0; k < region_names.size(); ++k)
      result_.region_recommendations[region_names[k]] = region_recs[k];
    // Verification space: union of every region's neighborhood (plus the
    // phase recommendation's), deduplicated.
    std::map<std::pair<int, int>, ptf::Scenario> unique;
    auto add_neighborhood = [&](const model::FrequencyRecommendation& rec) {
      for (auto cf : spec.core_grid.neighborhood(
               rec.cf, options_.config.neighborhood_radius)) {
        for (auto ucf : spec.uncore_grid.neighborhood(
                 rec.ucf, options_.config.neighborhood_radius)) {
          unique.emplace(
              std::pair{cf.as_mhz(), ucf.as_mhz()},
              ptf::config_to_scenario(
                  0, SystemConfig{result_.phase_threads, cf, ucf}));
        }
      }
    };
    add_neighborhood(result_.recommendation);
    for (const auto& [region, rec] : result_.region_recommendations)
      add_neighborhood(rec);
    std::vector<ptf::Scenario> scenarios;
    int id = 0;
    for (auto& [key, s] : unique) {
      s.id = id++;
      scenarios.push_back(s);
    }
    result_.frequency_scenarios = static_cast<int>(scenarios.size());
    return scenarios;
  }

  // Reduced search space: immediate neighbors of the recommendation.
  ptf::SearchSpace space;
  space.add_parameter(ptf::core_freq_parameter(spec.core_grid.neighborhood(
      result_.recommendation.cf, options_.config.neighborhood_radius)));
  space.add_parameter(
      ptf::uncore_freq_parameter(spec.uncore_grid.neighborhood(
          result_.recommendation.ucf, options_.config.neighborhood_radius)));
  auto scenarios = space.exhaustive();
  // Threads fixed to the phase optimum during frequency verification.
  for (auto& s : scenarios)
    s.values[std::string(ptf::kOmpThreadsParam)] = result_.phase_threads;
  result_.frequency_scenarios = static_cast<int>(scenarios.size());
  return scenarios;
}

void DvfsUfsPlugin::process_results(
    const std::vector<ptf::ScenarioResult>& results) {
  ensure(!results.empty(), "DvfsUfsPlugin: empty scenario results");

  if (step_ == Step::kThreads) {
    const auto& best =
        ptf::ExperimentsEngine::best_phase(results, *objective_);
    result_.phase_threads = best.config.threads;
    for (const auto& [region, sr] :
         ptf::ExperimentsEngine::best_per_region(results, *objective_)) {
      result_.region_threads[region] = sr->config.threads;
    }
    log::info("core") << "step 1: " << result_.phase_threads
                      << " OpenMP threads optimal for the phase region";
    step_ = Step::kFrequencies;
    return;
  }

  // Step 2: per-region best frequency pair within the verified
  // neighborhood; thread counts from step 1.
  const auto& best_phase =
      ptf::ExperimentsEngine::best_phase(results, *objective_);
  result_.phase_best = best_phase.config;
  const auto& spec = node_->spec();
  auto in_neighborhood = [&](const SystemConfig& c,
                             const model::FrequencyRecommendation& rec) {
    const int r = options_.config.neighborhood_radius;
    return std::abs(c.core.as_mhz() - rec.cf.as_mhz()) <=
               r * spec.core_grid.step_mhz() &&
           std::abs(c.uncore.as_mhz() - rec.ucf.as_mhz()) <=
               r * spec.uncore_grid.step_mhz();
  };
  for (const auto& [region, sr] :
       ptf::ExperimentsEngine::best_per_region(results, *objective_)) {
    SystemConfig c = sr->config;
    // Per-region mode: restrict each region to its own recommendation's
    // neighborhood (the scenario union contains other regions' candidates).
    auto rec_it = result_.region_recommendations.find(region);
    if (rec_it != result_.region_recommendations.end()) {
      const ptf::ScenarioResult* best = nullptr;
      for (const auto& r : results) {
        if (!in_neighborhood(r.config, rec_it->second)) continue;
        auto m = r.regions.find(region);
        if (m == r.regions.end()) continue;
        if (best == nullptr || objective_->evaluate(m->second) <
                                   objective_->evaluate(
                                       best->regions.at(region)))
          best = &r;
      }
      if (best != nullptr) c = best->config;
    }
    auto it = result_.region_threads.find(region);
    if (it != result_.region_threads.end()) c.threads = it->second;
    result_.region_best[region] = c;
  }
  step_ = Step::kDone;
}

void DvfsUfsPlugin::finalize() {
  // --- Tuning model generation (Sec. III-D): group regions with equal
  // best-found configurations into scenarios via the classifier.
  result_.tuning_model = readex::TuningModel{};
  for (const auto& sig : result_.dyn_report.significant) {
    auto it = result_.region_best.find(sig.name);
    if (it != result_.region_best.end())
      result_.tuning_model.add_region(sig.name, it->second);
  }
  log::info("core") << "tuning model: " << result_.tuning_model.region_count()
                    << " regions in "
                    << result_.tuning_model.scenarios().size()
                    << " scenarios";
}

DtaResult DvfsUfsPlugin::run_dta(const workload::Benchmark& app,
                                 hwsim::NodeSimulator& node) {
  const Seconds t0 = node.now();
  ptf::Frontend frontend(options_.engine);
  frontend.run(*this, app, node);
  result_.app_runs += frontend.app_runs();
  result_.tuning_time = node.now() - t0;
  return result_;
}

}  // namespace ecotune::core
