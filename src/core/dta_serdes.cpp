// JSON round trips for the design-time-analysis result and the Table VI
// savings row, used by the measurement store to replay whole evaluations.
// Every double goes through Json's std::to_chars/std::from_chars path, so
// values survive bit-exactly and a warm replay is indistinguishable from a
// cold simulation.
#include "core/dvfs_ufs_plugin.hpp"
#include "core/evaluation.hpp"
#include "store/serdes.hpp"

namespace ecotune::core {
namespace {

Json recommendation_to_json(const model::FrequencyRecommendation& r) {
  Json j = Json::object();
  j["cf_mhz"] = r.cf.as_mhz();
  j["ucf_mhz"] = r.ucf.as_mhz();
  j["predicted_normalized_energy"] = r.predicted_normalized_energy;
  return j;
}

model::FrequencyRecommendation recommendation_from_json(const Json& j) {
  model::FrequencyRecommendation r;
  r.cf = CoreFreq::mhz(j.at("cf_mhz").as_int());
  r.ucf = UncoreFreq::mhz(j.at("ucf_mhz").as_int());
  r.predicted_normalized_energy =
      j.at("predicted_normalized_energy").as_number();
  return r;
}

Json dyn_report_to_json(const readex::DynDetectReport& r) {
  Json j = Json::object();
  Json significant = Json::array();
  for (const auto& s : r.significant) {
    Json sj = Json::object();
    sj["name"] = s.name;
    sj["mean_time"] = s.mean_time.value();
    sj["count"] = static_cast<std::int64_t>(s.count);
    sj["weight"] = s.weight;
    sj["variation"] = s.variation;
    significant.push_back(std::move(sj));
  }
  j["significant"] = std::move(significant);
  Json insignificant = Json::array();
  for (const auto& name : r.insignificant) insignificant.push_back(name);
  j["insignificant"] = std::move(insignificant);
  j["threshold"] = r.threshold.value();
  j["phase_mean_time"] = r.phase_mean_time.value();
  j["inter_region_dynamism"] = r.inter_region_dynamism;
  return j;
}

readex::DynDetectReport dyn_report_from_json(const Json& j) {
  readex::DynDetectReport r;
  for (const Json& sj : j.at("significant").as_array()) {
    readex::SignificantRegion s;
    s.name = sj.at("name").as_string();
    s.mean_time = Seconds(sj.at("mean_time").as_number());
    s.count = static_cast<long>(sj.at("count").as_number());
    s.weight = sj.at("weight").as_number();
    s.variation = sj.at("variation").as_number();
    r.significant.push_back(std::move(s));
  }
  for (const Json& name : j.at("insignificant").as_array())
    r.insignificant.push_back(name.as_string());
  r.threshold = Seconds(j.at("threshold").as_number());
  r.phase_mean_time = Seconds(j.at("phase_mean_time").as_number());
  r.inter_region_dynamism = j.at("inter_region_dynamism").as_number();
  return r;
}

Json config_map_to_json(const std::map<std::string, SystemConfig>& m) {
  Json j = Json::object();
  for (const auto& [name, c] : m) j[name] = store::to_json(c);
  return j;
}

std::map<std::string, SystemConfig> config_map_from_json(const Json& j) {
  std::map<std::string, SystemConfig> m;
  for (const auto& [name, c] : j.as_object())
    m.emplace(name, store::config_from_json(c));
  return m;
}

}  // namespace

Json DtaResult::to_json() const {
  Json j = Json::object();
  // Autofilter: the filter itself round-trips through the Score-P filter
  // file syntax it already serializes to.
  Json autofilter_j = Json::object();
  autofilter_j["filter"] = autofilter.filter.to_filter_file();
  Json excluded = Json::array();
  for (const auto& name : autofilter.excluded) excluded.push_back(name);
  autofilter_j["excluded"] = std::move(excluded);
  j["autofilter"] = std::move(autofilter_j);

  j["dyn_report"] = dyn_report_to_json(dyn_report);
  j["phase_threads"] = phase_threads;
  Json region_threads_j = Json::object();
  for (const auto& [name, threads] : region_threads)
    region_threads_j[name] = threads;
  j["region_threads"] = std::move(region_threads_j);

  Json rates = Json::object();
  for (const auto& [name, rate] : counter_rates) rates[name] = rate;
  j["counter_rates"] = std::move(rates);
  j["recommendation"] = recommendation_to_json(recommendation);
  Json region_recs = Json::object();
  for (const auto& [name, rec] : region_recommendations)
    region_recs[name] = recommendation_to_json(rec);
  j["region_recommendations"] = std::move(region_recs);
  j["phase_best"] = store::to_json(phase_best);
  j["region_best"] = config_map_to_json(region_best);

  j["tuning_model"] = tuning_model.to_json();

  j["thread_scenarios"] = thread_scenarios;
  j["analysis_runs"] = analysis_runs;
  j["frequency_scenarios"] = frequency_scenarios;
  j["app_runs"] = static_cast<std::int64_t>(app_runs);
  j["tuning_time"] = tuning_time.value();
  return j;
}

DtaResult DtaResult::from_json(const Json& j) {
  DtaResult r;
  const Json& autofilter_j = j.at("autofilter");
  r.autofilter.filter = instr::InstrumentationFilter::from_filter_file(
      autofilter_j.at("filter").as_string());
  for (const Json& name : autofilter_j.at("excluded").as_array())
    r.autofilter.excluded.push_back(name.as_string());

  r.dyn_report = dyn_report_from_json(j.at("dyn_report"));
  r.phase_threads = j.at("phase_threads").as_int();
  for (const auto& [name, threads] : j.at("region_threads").as_object())
    r.region_threads.emplace(name, threads.as_int());

  for (const auto& [name, rate] : j.at("counter_rates").as_object())
    r.counter_rates.emplace(name, rate.as_number());
  r.recommendation = recommendation_from_json(j.at("recommendation"));
  for (const auto& [name, rec] :
       j.at("region_recommendations").as_object())
    r.region_recommendations.emplace(name, recommendation_from_json(rec));
  r.phase_best = store::config_from_json(j.at("phase_best"));
  r.region_best = config_map_from_json(j.at("region_best"));

  r.tuning_model = readex::TuningModel::from_json(j.at("tuning_model"));

  r.thread_scenarios = j.at("thread_scenarios").as_int();
  r.analysis_runs = j.at("analysis_runs").as_int();
  r.frequency_scenarios = j.at("frequency_scenarios").as_int();
  r.app_runs = static_cast<long>(j.at("app_runs").as_number());
  r.tuning_time = Seconds(j.at("tuning_time").as_number());
  return r;
}

Json SavingsRow::to_json() const {
  Json j = Json::object();
  j["benchmark"] = benchmark;
  j["static_config"] = store::to_json(static_config);
  j["static_job_energy_pct"] = static_job_energy_pct;
  j["static_cpu_energy_pct"] = static_cpu_energy_pct;
  j["static_time_pct"] = static_time_pct;
  j["dynamic_job_energy_pct"] = dynamic_job_energy_pct;
  j["dynamic_cpu_energy_pct"] = dynamic_cpu_energy_pct;
  j["dynamic_time_pct"] = dynamic_time_pct;
  j["perf_reduction_config_pct"] = perf_reduction_config_pct;
  j["overhead_pct"] = overhead_pct;
  j["dynamic_switches"] = static_cast<std::int64_t>(dynamic_switches);
  j["dta"] = dta.to_json();
  return j;
}

SavingsRow SavingsRow::from_json(const Json& j) {
  SavingsRow r;
  r.benchmark = j.at("benchmark").as_string();
  r.static_config = store::config_from_json(j.at("static_config"));
  r.static_job_energy_pct = j.at("static_job_energy_pct").as_number();
  r.static_cpu_energy_pct = j.at("static_cpu_energy_pct").as_number();
  r.static_time_pct = j.at("static_time_pct").as_number();
  r.dynamic_job_energy_pct = j.at("dynamic_job_energy_pct").as_number();
  r.dynamic_cpu_energy_pct = j.at("dynamic_cpu_energy_pct").as_number();
  r.dynamic_time_pct = j.at("dynamic_time_pct").as_number();
  r.perf_reduction_config_pct =
      j.at("perf_reduction_config_pct").as_number();
  r.overhead_pct = j.at("overhead_pct").as_number();
  r.dynamic_switches = static_cast<long>(j.at("dynamic_switches").as_number());
  r.dta = DtaResult::from_json(j.at("dta"));
  return r;
}

}  // namespace ecotune::core
