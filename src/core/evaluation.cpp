#include "core/evaluation.hpp"

#include <string>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "energymon/rapl.hpp"
#include "energymon/sacct.hpp"
#include "instr/scorep_runtime.hpp"
#include "readex/rrl.hpp"
#include "store/measurement_store.hpp"

namespace ecotune::core {

SavingsEvaluator::SavingsEvaluator(hwsim::NodeSimulator& node,
                                   const model::EnergyModel& energy_model,
                                   SavingsOptions options)
    : node_(node), energy_model_(energy_model), options_(options) {
  // One flag threads the store everywhere: the inner static search and the
  // DTA experiments engine see the same cache, so a cold row still reuses
  // previously measured sweeps.
  if (options_.store != nullptr) {
    options_.static_search.store = options_.store;
    options_.plugin.engine.store = options_.store;
  }
}

SavingsEvaluator::Measured SavingsEvaluator::measure_static(
    const workload::Benchmark& app, const SystemConfig& config) {
  energymon::Sacct sacct(node_);
  energymon::Rapl rapl(node_);
  energymon::MeasureRapl rapl_tool(rapl);
  Measured avg;
  for (int r = 0; r < options_.repeats; ++r) {
    sacct.job_start(app.name());
    rapl_tool.start();
    instr::run_uninstrumented(app, node_, config);
    avg.cpu_energy += rapl_tool.stop().value();
    const auto rec = sacct.job_end();
    avg.job_energy += rec.consumed_energy.value();
    avg.time += rec.elapsed.value();
  }
  avg.job_energy /= options_.repeats;
  avg.cpu_energy /= options_.repeats;
  avg.time /= options_.repeats;
  return avg;
}

SavingsRow SavingsEvaluator::evaluate(const workload::Benchmark& app) {
  SavingsRow row;
  row.benchmark = app.name();
  const auto& spec = node_.spec();
  const SystemConfig default_config{spec.total_cores(), spec.default_core,
                                    spec.default_uncore};

  // 1. Default reference. All savings below divide by it, so a degenerate
  //    (zero-time or zero-energy) measurement must fail loudly here instead
  //    of producing NaN/Inf percentages downstream.
  const Measured def = measure_static(app, default_config);
  ensure(def.job_energy > 0 && def.cpu_energy > 0 && def.time > 0,
         "SavingsEvaluator::evaluate: default run of '" + app.name() +
             "' measured non-positive energy/time; savings undefined");

  // 2. Static tuning: exhaustive search, then re-measure at the optimum on
  //    the same node (paper Sec. V-D).
  baseline::StaticTuner static_tuner(node_, options_.static_search);
  row.static_config = static_tuner.tune(app).best;
  const Measured stat = measure_static(app, row.static_config);
  row.static_job_energy_pct = 100.0 * (1.0 - stat.job_energy / def.job_energy);
  row.static_cpu_energy_pct = 100.0 * (1.0 - stat.cpu_energy / def.cpu_energy);
  row.static_time_pct = 100.0 * (1.0 - stat.time / def.time);

  // 3. Dynamic tuning: DTA, then RRL production runs.
  DvfsUfsPlugin plugin(energy_model_, options_.plugin);
  row.dta = plugin.run_dta(app, node_);

  // Instrumentation for production: significant regions + phase only.
  auto filter = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app.regions()) {
    if (!row.dta.dyn_report.is_significant(r.name)) filter.exclude(r.name);
  }

  energymon::Sacct sacct(node_);
  energymon::Rapl rapl(node_);
  energymon::MeasureRapl rapl_tool(rapl);
  Measured dyn;
  double overhead_time = 0.0;
  long switches = 0;
  for (int r = 0; r < options_.repeats; ++r) {
    sacct.job_start(app.name() + "-rrl");
    rapl_tool.start();
    const auto rat = readex::run_with_rrl(app, node_, row.dta.tuning_model,
                                          filter, default_config);
    dyn.cpu_energy += rapl_tool.stop().value();
    const auto rec = sacct.job_end();
    dyn.job_energy += rec.consumed_energy.value();
    dyn.time += rec.elapsed.value();
    overhead_time += rat.switch_overhead.value() +
                     rat.run.instrumentation_overhead.value();
    switches += rat.switches;
  }
  dyn.job_energy /= options_.repeats;
  dyn.cpu_energy /= options_.repeats;
  dyn.time /= options_.repeats;
  overhead_time /= options_.repeats;
  row.dynamic_switches = switches / options_.repeats;

  row.dynamic_job_energy_pct =
      100.0 * (1.0 - dyn.job_energy / def.job_energy);
  row.dynamic_cpu_energy_pct =
      100.0 * (1.0 - dyn.cpu_energy / def.cpu_energy);
  row.dynamic_time_pct = 100.0 * (1.0 - dyn.time / def.time);
  // Decomposition: the configuration effect is the dynamic time change with
  // switching and instrumentation overhead removed.
  const double config_only_time = dyn.time - overhead_time;
  row.perf_reduction_config_pct =
      100.0 * (1.0 - config_only_time / def.time);
  row.overhead_pct = -100.0 * overhead_time / def.time;
  return row;
}

std::vector<SavingsRow> SavingsEvaluator::evaluate_all(
    const std::vector<workload::Benchmark>& apps) {
  const long call_tag = evaluate_calls_++;
  struct RowOutcome {
    SavingsRow row;
    Seconds elapsed{0};
  };
  // Whole-row caching; api::Session::run_dta_campaign mirrors this exact
  // machinery for whole-DTA rows. A change to either copy's cache
  // invariants (new fingerprint field, fallback policy) belongs in both.
  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", node_.state_fingerprint())
        .add("repeats", options_.repeats)
        .add("plugin_config", options_.plugin.config.to_json().dump(-1))
        .add("engine.iterations_per_scenario",
             options_.plugin.engine.iterations_per_scenario)
        .add("engine.measurement_noise",
             options_.plugin.engine.measurement_noise)
        .add("engine.seed", options_.plugin.engine.seed)
        .add("static.cf_stride", options_.static_search.cf_stride)
        .add("static.ucf_stride", options_.static_search.ucf_stride)
        .add("static.phase_iterations",
             options_.static_search.phase_iterations)
        // The trained model determines the DTA's frequency recommendation,
        // so its full weight state is part of the row identity.
        .add("model", energy_model_.to_json().dump(-1));
    for (int t : options_.static_search.thread_counts)
      base_fp.add("static.thread_count", t);
  }
  auto outcomes = parallel_map_ordered(
      apps.size(),
      [&](std::size_t i) {
        const std::string noise_key = "savings-" + std::to_string(call_tag) +
                                      "-" + std::to_string(i) + "-" +
                                      apps[i].name();
        store::MeasurementKey cache_key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("noise_key", noise_key)
              .add_digest("app", apps[i].fingerprint_digest());
          cache_key.task = "savings/" + noise_key;
          cache_key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(cache_key)) {
            try {
              RowOutcome out;
              out.row = SavingsRow::from_json(hit->at("row"));
              out.elapsed = Seconds(hit->at("elapsed").as_number());
              return out;
            } catch (const std::exception& e) {
              log::error("store")
                  << "undecodable cache payload for '" << cache_key.task
                  << "' (" << e.what() << "); re-evaluating";
            }
          }
        }

        hwsim::NodeSimulator node = node_.clone(noise_key);
        const Seconds t0 = node.now();
        SavingsEvaluator row_evaluator(node, energy_model_, options_);
        RowOutcome out;
        out.row = row_evaluator.evaluate(apps[i]);
        out.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json payload = Json::object();
          payload["row"] = out.row.to_json();
          payload["elapsed"] = out.elapsed.value();
          cache->insert(cache_key, payload);
        }
        return out;
      },
      options_.jobs);

  std::vector<SavingsRow> rows;
  rows.reserve(outcomes.size());
  Seconds total{0};
  for (auto& out : outcomes) {
    rows.push_back(std::move(out.row));
    total += out.elapsed;
  }
  node_.idle(total);
  return rows;
}

}  // namespace ecotune::core
