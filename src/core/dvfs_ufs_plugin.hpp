#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/plugin_config.hpp"
#include "instr/filter.hpp"
#include "model/energy_model.hpp"
#include "ptf/objectives.hpp"
#include "ptf/tuning_plugin.hpp"
#include "readex/dyn_detect.hpp"
#include "readex/tuning_model.hpp"

namespace ecotune::core {

/// Everything the design-time analysis produced (paper Fig. 1 workflow
/// outputs plus cost accounting for the Sec. V-C tuning-time comparison).
struct DtaResult {
  // Pre-processing.
  instr::AutoFilterResult autofilter;
  readex::DynDetectReport dyn_report;

  // Tuning step 1 (exhaustive OpenMP threads).
  int phase_threads = 24;
  std::map<std::string, int> region_threads;

  // Analysis + tuning step 2 (model-based frequency selection).
  std::map<std::string, double> counter_rates;
  model::FrequencyRecommendation recommendation;
  /// Per-region recommendations (only filled in per-region mode).
  std::map<std::string, model::FrequencyRecommendation> region_recommendations;
  SystemConfig phase_best;
  std::map<std::string, SystemConfig> region_best;

  // Product.
  readex::TuningModel tuning_model;

  // Cost accounting (tuning time, Sec. V-C).
  int thread_scenarios = 0;     ///< k
  int analysis_runs = 0;        ///< counter-collection application runs
  int frequency_scenarios = 0;  ///< neighborhood size (9 for radius 1)
  long app_runs = 0;            ///< total simulated application runs
  Seconds tuning_time{0};       ///< simulated wall time of the whole DTA

  /// Exact JSON round trip (doubles preserved bitwise) so the measurement
  /// store can replay a whole design-time analysis without re-simulating.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static DtaResult from_json(const Json& j);
};

/// The paper's contribution: a PTF tuning plugin that tunes OpenMP thread
/// count, core frequency and uncore frequency per significant region, using
/// the neural-network energy model to collapse the frequency search to one
/// prediction plus a 3x3 neighborhood verification (Secs. III and IV).
class DvfsUfsPlugin final : public ptf::TuningPlugin {
 public:
  struct Options {
    PluginConfig config;
    ptf::EngineOptions engine;
  };

  /// `energy_model` must be trained; it is not owned.
  DvfsUfsPlugin(const model::EnergyModel& energy_model, Options options = {});

  // ptf::TuningPlugin:
  [[nodiscard]] std::string_view name() const override {
    return "dvfs_ufs_omp";
  }
  void initialize(ptf::PluginContext& ctx) override;
  [[nodiscard]] instr::InstrumentationFilter instrumentation_filter()
      const override;
  [[nodiscard]] SystemConfig scenario_base() const override;
  [[nodiscard]] bool has_next_tuning_step() const override;
  [[nodiscard]] std::vector<ptf::Scenario> create_scenarios() override;
  void process_results(
      const std::vector<ptf::ScenarioResult>& results) override;
  void finalize() override;

  /// Convenience: run the full DTA on `app`/`node` and return the result.
  DtaResult run_dta(const workload::Benchmark& app,
                    hwsim::NodeSimulator& node);

  /// Result of the last completed DTA.
  [[nodiscard]] const DtaResult& result() const { return result_; }

 private:
  enum class Step { kThreads = 0, kFrequencies = 1, kDone = 2 };

  const model::EnergyModel& energy_model_;
  Options options_;
  std::unique_ptr<ptf::TuningObjective> objective_;

  // DTA state.
  hwsim::NodeSimulator* node_ = nullptr;
  const workload::Benchmark* app_ = nullptr;
  instr::InstrumentationFilter filter_;
  Step step_ = Step::kThreads;
  DtaResult result_;
};

}  // namespace ecotune::core
