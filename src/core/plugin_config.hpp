#pragma once

#include <string>

#include "common/json.hpp"
#include "common/units.hpp"

namespace ecotune::core {

/// Configuration of the DVFS/UFS tuning plugin, normally produced by the
/// pre-processing step (readex-dyn-detect writes significant regions and the
/// OpenMP thread range into a configuration file, paper Sec. III-A/B).
struct PluginConfig {
  /// Name of the manually annotated phase region.
  std::string phase_region = "PHASE";
  /// Significant-region threshold (100 ms: energy measurement delay and
  /// frequency-switching latency must be negligible, paper Sec. III-A).
  Seconds significance_threshold{0.1};
  /// scorep-autofilter granularity: finer regions lose instrumentation.
  Seconds autofilter_granularity{1e-3};
  /// OpenMP thread search: lower bound and step (upper bound = core count).
  int omp_lower = 12;
  int omp_step = 4;
  /// Radius (in grid steps) of the reduced frequency search space around the
  /// model's recommendation (paper uses the immediate neighbors: radius 1,
  /// giving the 3x3 = 9 verification scenarios).
  int neighborhood_radius = 1;
  /// Tuning objective name ("energy", "cpu_energy", "edp", "ed2p", "tco").
  std::string objective = "energy";
  /// Per-region model-based prediction (the paper's Sec. VI outlook):
  /// collect counters and predict frequencies for every significant region
  /// individually instead of once for the phase region. Regions with very
  /// different best configurations (e.g. I/O-like regions) become reachable
  /// at the cost of extra analysis runs and a larger verification space.
  bool per_region_prediction = false;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static PluginConfig from_json(const Json& j);
};

}  // namespace ecotune::core
