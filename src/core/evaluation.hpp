#pragma once

#include <string>

#include "baseline/static_tuner.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "hwsim/node.hpp"
#include "model/energy_model.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::core {

/// One row of the paper's Table VI: static and dynamic tuning savings
/// relative to the default configuration (positive = savings; time/
/// performance columns are negative when tuning slows the run down).
struct SavingsRow {
  std::string benchmark;

  SystemConfig static_config;             ///< Table V column
  double static_job_energy_pct = 0.0;     ///< sacct node energy
  double static_cpu_energy_pct = 0.0;     ///< measure-rapl CPU energy
  double static_time_pct = 0.0;

  double dynamic_job_energy_pct = 0.0;
  double dynamic_cpu_energy_pct = 0.0;
  double dynamic_time_pct = 0.0;
  /// Time change attributable purely to running regions at tuned
  /// configurations (Table VI "performance reduction config setting").
  double perf_reduction_config_pct = 0.0;
  /// Time change attributable to DVFS/UFS switching + Score-P probes
  /// (Table VI "overhead DVFS/UFS/Score-P").
  double overhead_pct = 0.0;

  long dynamic_switches = 0;
  DtaResult dta;  ///< the design-time analysis behind the dynamic numbers

  /// Exact JSON round trip (doubles preserved bitwise) for the measurement
  /// store's per-benchmark row cache.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static SavingsRow from_json(const Json& j);
};

/// Options of the evaluation protocol.
struct SavingsOptions {
  /// Runs to average per measurement (paper: "averaged over five runs").
  int repeats = 5;
  /// Static-search configuration (full grid by default).
  baseline::StaticTunerOptions static_search;
  /// DTA plugin options.
  DvfsUfsPlugin::Options plugin;
  /// Concurrent per-benchmark rows in evaluate_all(), each on its own node
  /// clone (1 = serial, 0 = hardware concurrency). Row output is identical
  /// for any value.
  int jobs = 1;
  /// Optional persistent measurement store (not owned). evaluate_all()
  /// answers whole benchmark rows from a previous session when benchmark,
  /// protocol options, trained model, and node-state fingerprint match; the
  /// constructor also threads the store into the inner static search and
  /// DTA engine so even a cold row reuses cached sweeps. Jobs-invariant.
  store::MeasurementStore* store = nullptr;
};

/// Reproduces the paper's Sec. V-D measurement protocol on one node:
///  1. default run (uninstrumented, 24 threads, 2.5|3.0 GHz),
///  2. best static configuration (Table V search) and its savings,
///  3. full DTA with the tuning plugin, then a production run under RRL,
///     with the time loss decomposed into configuration effect and
///     switching/instrumentation overhead.
/// Job energy comes from simulated sacct, CPU energy from measure-rapl.
class SavingsEvaluator {
 public:
  SavingsEvaluator(hwsim::NodeSimulator& node,
                   const model::EnergyModel& energy_model,
                   SavingsOptions options = {});

  [[nodiscard]] SavingsRow evaluate(const workload::Benchmark& app);

  /// Evaluates one row per benchmark, rows concurrently on per-row node
  /// clones whose noise streams are keyed by (row index, benchmark name).
  /// Row order matches `apps`; output is identical for any `jobs` value.
  [[nodiscard]] std::vector<SavingsRow> evaluate_all(
      const std::vector<workload::Benchmark>& apps);

 private:
  struct Measured {
    double job_energy = 0.0;
    double cpu_energy = 0.0;
    double time = 0.0;
  };
  /// Averaged uninstrumented run at `config`.
  Measured measure_static(const workload::Benchmark& app,
                          const SystemConfig& config);

  hwsim::NodeSimulator& node_;
  const model::EnergyModel& energy_model_;
  SavingsOptions options_;
  long evaluate_calls_ = 0;  ///< decorrelates rows across evaluate_all()s
};

}  // namespace ecotune::core
