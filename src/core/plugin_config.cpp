#include "core/plugin_config.hpp"

namespace ecotune::core {

Json PluginConfig::to_json() const {
  Json j = Json::object();
  j["phase_region"] = phase_region;
  j["significance_threshold_ms"] = significance_threshold.value() * 1e3;
  j["autofilter_granularity_ms"] = autofilter_granularity.value() * 1e3;
  j["omp_lower"] = omp_lower;
  j["omp_step"] = omp_step;
  j["neighborhood_radius"] = neighborhood_radius;
  j["objective"] = objective;
  j["per_region_prediction"] = per_region_prediction;
  return j;
}

PluginConfig PluginConfig::from_json(const Json& j) {
  PluginConfig c;
  if (j.contains("phase_region")) c.phase_region = j.at("phase_region").as_string();
  if (j.contains("significance_threshold_ms"))
    c.significance_threshold =
        Seconds(j.at("significance_threshold_ms").as_number() / 1e3);
  if (j.contains("autofilter_granularity_ms"))
    c.autofilter_granularity =
        Seconds(j.at("autofilter_granularity_ms").as_number() / 1e3);
  if (j.contains("omp_lower")) c.omp_lower = j.at("omp_lower").as_int();
  if (j.contains("omp_step")) c.omp_step = j.at("omp_step").as_int();
  if (j.contains("neighborhood_radius"))
    c.neighborhood_radius = j.at("neighborhood_radius").as_int();
  if (j.contains("objective")) c.objective = j.at("objective").as_string();
  if (j.contains("per_region_prediction"))
    c.per_region_prediction = j.at("per_region_prediction").as_bool();
  return c;
}

}  // namespace ecotune::core
