#include "hwsim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ecotune::hwsim {

double PerfModel::speedup(const KernelTraits& k, int threads) const {
  ensure(threads >= 1, "PerfModel::speedup: threads must be >= 1");
  const double p = std::clamp(k.parallel_fraction, 0.0, 1.0);
  const double amdahl = 1.0 / ((1.0 - p) + p / threads);
  const double contention =
      std::max(0.05, 1.0 - k.contention * (threads - 1));
  return std::max(1.0, amdahl * contention);
}

double PerfModel::bandwidth(UncoreFreq uncore, int threads) const {
  const double fu = uncore.as_ghz();
  // Normalize the saturation curves so that (max UFS, 24 threads) hits peak.
  const double fu_max = 3.0;
  const double t_max = 24.0;
  const double s_f = (fu / (fu + params_.bw_freq_half)) /
                     (fu_max / (fu_max + params_.bw_freq_half));
  const double s_t =
      (threads / (threads + params_.bw_threads_half)) /
      (t_max / (t_max + params_.bw_threads_half));
  return params_.peak_bandwidth * s_f * s_t;
}

PerfResult PerfModel::evaluate(const KernelTraits& k, int threads,
                               CoreFreq core, UncoreFreq uncore) const {
  ensure(core.valid() && uncore.valid(),
         "PerfModel::evaluate: frequencies must be set");
  PerfResult r;
  r.speedup = speedup(k, threads);

  const double fc_hz = core.as_hz();
  const double fu_hz = uncore.as_hz();

  r.work_cycles = k.total_instructions / k.ipc_peak;
  const double t_comp = r.work_cycles / (r.speedup * fc_hz);
  // L3/ring transfers proceed concurrently across the cores that issue
  // them, so the uncore latency component parallelizes like the compute.
  const double t_unc = k.uncore_cycles / (r.speedup * fu_hz);
  const double bw = bandwidth(uncore, threads);
  const double t_mem = k.dram_bytes / bw;

  const double a = std::clamp(k.overlap, 0.0, 1.0);
  const double serialized = t_comp + t_unc + t_mem;
  const double overlapped = std::max(t_comp, t_unc + t_mem);
  const double t_sync = k.sync_seconds_per_thread * threads;
  const double total = (1.0 - a) * serialized + a * overlapped + t_sync;

  r.compute_time = Seconds(t_comp);
  r.uncore_time = Seconds(t_unc);
  r.memory_time = Seconds(t_mem);
  r.sync_time = Seconds(t_sync);
  r.time = Seconds(total);
  r.achieved_bandwidth = k.dram_bytes / total;
  r.total_cycles = total * fc_hz * threads;
  r.stall_cycles = std::max(0.0, r.total_cycles - r.work_cycles);
  return r;
}

}  // namespace ecotune::hwsim
