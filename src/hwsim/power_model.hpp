#pragma once

#include "common/units.hpp"
#include "hwsim/cpu_spec.hpp"
#include "hwsim/kernel_traits.hpp"
#include "hwsim/perf_model.hpp"

namespace ecotune::hwsim {

/// Per-node manufacturing variability; the reason the paper normalizes
/// energies before training (Sec. IV-B, Figs. 2-3). Sampled once per node.
struct NodeVariability {
  double leakage_factor = 1.0;  ///< chip-to-chip static power spread
  double dynamic_factor = 1.0;  ///< effective-capacitance spread
  double base_offset_w = 0.0;   ///< board/fan/VR baseline spread (W)
};

/// Tunable constants of the analytic power model. Defaults are calibrated so
/// a fully loaded node draws ~330 W (node) / ~240 W (CPU+DRAM), matching the
/// Haswell-EP class of the paper's testbed.
struct PowerParams {
  double v0 = 0.65;   ///< core voltage intercept (V)
  double kv = 0.22;   ///< core voltage slope (V per GHz)
  double cdyn = 1.5;  ///< per-core dynamic power coefficient (W/(GHz*V^2))
  double core_leak = 1.0;     ///< per-core static power (W/V)
  double idle_activity = 0.06;///< activity factor of idle (unused) cores

  double vu0 = 0.70;  ///< uncore voltage intercept (V)
  double kvu = 0.22;  ///< uncore voltage slope (V per GHz)
  double cunc = 4.5;  ///< per-socket uncore dynamic coefficient (W/(GHz*V^2))
  double uncore_leak = 2.0;   ///< per-socket uncore static power (W/V)

  double dram_idle_per_socket = 8.0;  ///< W
  double dram_per_gbs = 0.35;         ///< W per GB/s of achieved bandwidth

  double node_base = 100.0;  ///< W, board + fans + NIC + SSD (HDEEM-visible)
};

/// Decomposed node power draw at one operating point.
struct PowerBreakdown {
  Watts core_dynamic{0};
  Watts core_static{0};
  Watts uncore{0};
  Watts dram{0};
  Watts node_base{0};

  /// RAPL-visible power (both packages + DRAM domain).
  [[nodiscard]] Watts cpu() const {
    return core_dynamic + core_static + uncore + dram;
  }
  /// HDEEM-visible node power.
  [[nodiscard]] Watts node() const { return cpu() + node_base; }
};

/// Analytic CMOS-style power model: affine V(f), dynamic ~ C V^2 f, static ~
/// leakage * V, uncore and DRAM domains, constant node baseline, all scaled
/// by per-node variability.
class PowerModel {
 public:
  explicit PowerModel(PowerParams params = {}) : params_(params) {}

  [[nodiscard]] const PowerParams& params() const { return params_; }

  [[nodiscard]] double core_voltage(CoreFreq f) const {
    return params_.v0 + params_.kv * f.as_ghz();
  }
  [[nodiscard]] double uncore_voltage(UncoreFreq f) const {
    return params_.vu0 + params_.kvu * f.as_ghz();
  }

  /// Power while `threads` cores execute a kernel with the given activity
  /// and achieved DRAM bandwidth (bytes/s).
  [[nodiscard]] PowerBreakdown evaluate(const CpuSpec& spec,
                                        const NodeVariability& node,
                                        const KernelTraits& k, int threads,
                                        CoreFreq core, UncoreFreq uncore,
                                        double achieved_bandwidth) const;

  /// Power of an idle node at the given frequencies.
  [[nodiscard]] PowerBreakdown idle(const CpuSpec& spec,
                                    const NodeVariability& node,
                                    CoreFreq core, UncoreFreq uncore) const;

 private:
  PowerParams params_;
};

}  // namespace ecotune::hwsim
