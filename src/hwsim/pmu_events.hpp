#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace ecotune::hwsim {

/// The 56 standardized PAPI preset events supported by the simulated
/// platform (paper Sec. IV-A: "Our experimental platform supports 56
/// standardized PAPI counters"). Names follow the real PAPI presets.
enum class PmuEvent : int {
  kL1_DCM,   ///< L1 data cache misses
  kL1_ICM,   ///< L1 instruction cache misses
  kL2_DCM,   ///< L2 data cache misses
  kL2_ICM,   ///< L2 instruction cache misses
  kL1_TCM,   ///< L1 total cache misses
  kL2_TCM,   ///< L2 total cache misses
  kL3_TCM,   ///< L3 total cache misses
  kL3_LDM,   ///< L3 load misses
  kTLB_DM,   ///< data TLB misses
  kTLB_IM,   ///< instruction TLB misses
  kL1_LDM,   ///< L1 load misses
  kL1_STM,   ///< L1 store misses
  kL2_LDM,   ///< L2 load misses
  kL2_STM,   ///< L2 store misses
  kSTL_ICY,  ///< cycles with no instruction issue
  kFUL_ICY,  ///< cycles with maximum instruction issue
  kSTL_CCY,  ///< cycles with no instruction completion
  kFUL_CCY,  ///< cycles with maximum instruction completion
  kBR_UCN,   ///< unconditional branch instructions
  kBR_CN,    ///< conditional branch instructions
  kBR_TKN,   ///< conditional branches taken
  kBR_NTK,   ///< conditional branches not taken (paper Table I)
  kBR_MSP,   ///< conditional branches mispredicted (paper Table I)
  kBR_PRC,   ///< conditional branches correctly predicted
  kTOT_INS,  ///< total instructions retired
  kLD_INS,   ///< load instructions (paper Table I)
  kSR_INS,   ///< store instructions (paper Table I)
  kBR_INS,   ///< branch instructions
  kRES_STL,  ///< cycles stalled on any resource (paper Table I)
  kTOT_CYC,  ///< total cycles
  kLST_INS,  ///< load/store instructions completed
  kL2_DCA,   ///< L2 data cache accesses
  kL3_DCA,   ///< L3 data cache accesses
  kL2_DCR,   ///< L2 data cache reads (paper Table I)
  kL3_DCR,   ///< L3 data cache reads
  kL2_DCW,   ///< L2 data cache writes
  kL3_DCW,   ///< L3 data cache writes
  kL2_ICH,   ///< L2 instruction cache hits
  kL2_ICA,   ///< L2 instruction cache accesses
  kL3_ICA,   ///< L3 instruction cache accesses
  kL2_ICR,   ///< L2 instruction cache reads (paper Table I)
  kL3_ICR,   ///< L3 instruction cache reads
  kL2_TCA,   ///< L2 total cache accesses
  kL3_TCA,   ///< L3 total cache accesses
  kL2_TCR,   ///< L2 total cache reads
  kL3_TCR,   ///< L3 total cache reads
  kL2_TCW,   ///< L2 total cache writes
  kL3_TCW,   ///< L3 total cache writes
  kFDV_INS,  ///< floating-point divide instructions
  kFP_OPS,   ///< floating-point operations
  kSP_OPS,   ///< single-precision FP operations
  kDP_OPS,   ///< double-precision FP operations
  kVEC_SP,   ///< single-precision vector instructions
  kVEC_DP,   ///< double-precision vector instructions
  kREF_CYC,  ///< reference clock cycles
  kFP_INS,   ///< floating-point instructions
  kCount     ///< number of preset events (56)
};

/// Number of preset events.
inline constexpr int kPmuEventCount = static_cast<int>(PmuEvent::kCount);

/// PAPI-style name, e.g. "PAPI_BR_NTK".
[[nodiscard]] std::string_view pmu_event_name(PmuEvent e);

/// Human-readable description.
[[nodiscard]] std::string_view pmu_event_description(PmuEvent e);

/// Lookup by PAPI-style name; nullopt if unknown.
[[nodiscard]] std::optional<PmuEvent> pmu_event_from_name(std::string_view n);

/// All preset events in enum order.
[[nodiscard]] const std::array<PmuEvent, kPmuEventCount>& all_pmu_events();

}  // namespace ecotune::hwsim
