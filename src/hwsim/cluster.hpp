#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "hwsim/node.hpp"

namespace ecotune::hwsim {

/// A set of simulated compute nodes sharing one CpuSpec but differing in
/// manufacturing variability -- the Taurus `haswell` partition in miniature.
/// Nodes are created lazily and owned by the cluster.
class Cluster {
 public:
  explicit Cluster(CpuSpec spec = haswell_ep_spec(),
                   std::uint64_t seed = 0x5eedULL, PerfParams perf = {},
                   PowerParams power = {});

  /// Returns node `id`, creating it (with id-derived variability) on first
  /// use. References remain valid for the cluster's lifetime.
  [[nodiscard]] NodeSimulator& node(int id);

  /// Simulates SLURM allocating "some node" for a job: round-robin over a
  /// small pool, so repeated jobs land on different hardware (the power-
  /// variability pitfall of paper Sec. IV-B).
  [[nodiscard]] NodeSimulator& allocate();

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t nodes_created() const { return nodes_.size(); }

  /// Size of the allocate() rotation pool.
  void set_pool_size(int n);

 private:
  CpuSpec spec_;
  std::uint64_t seed_;
  PerfParams perf_;
  PowerParams power_;
  Rng rng_;
  std::map<int, std::unique_ptr<NodeSimulator>> nodes_;
  int pool_size_ = 8;
  int next_alloc_ = 0;
};

}  // namespace ecotune::hwsim
