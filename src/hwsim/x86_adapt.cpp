#include "hwsim/x86_adapt.hpp"

namespace ecotune::hwsim {

Seconds X86Adapt::charge(Seconds latency) {
  node_.idle(latency);
  switch_time_ += latency;
  ++switch_count_;
  return latency;
}

Seconds X86Adapt::set_core_freq(int core, CoreFreq f) {
  if (node_.core_freq(core) == f) return Seconds(0);
  node_.set_core_freq(core, f);
  return charge(node_.spec().core_switch_latency);
}

Seconds X86Adapt::set_all_core_freqs(CoreFreq f) {
  bool changed = false;
  for (int c = 0; c < node_.spec().total_cores(); ++c) {
    if (node_.core_freq(c) != f) {
      node_.set_core_freq(c, f);
      changed = true;
    }
  }
  return changed ? charge(node_.spec().core_switch_latency) : Seconds(0);
}

Seconds X86Adapt::set_uncore_freq(int socket, UncoreFreq f) {
  if (node_.uncore_freq(socket) == f) return Seconds(0);
  node_.set_uncore_freq(socket, f);
  return charge(node_.spec().uncore_switch_latency);
}

Seconds X86Adapt::set_all_uncore_freqs(UncoreFreq f) {
  bool changed = false;
  for (int s = 0; s < node_.spec().sockets; ++s) {
    if (node_.uncore_freq(s) != f) {
      node_.set_uncore_freq(s, f);
      changed = true;
    }
  }
  return changed ? charge(node_.spec().uncore_switch_latency) : Seconds(0);
}

void X86Adapt::reset_accounting() {
  switch_time_ = Seconds(0);
  switch_count_ = 0;
}

}  // namespace ecotune::hwsim
