#pragma once

#include <array>

#include "hwsim/cpu_spec.hpp"
#include "hwsim/kernel_traits.hpp"
#include "hwsim/perf_model.hpp"
#include "hwsim/pmu_events.hpp"

namespace ecotune::hwsim {

/// Vector of all 56 preset counter values for one region execution.
using PmuCounts = std::array<double, kPmuEventCount>;

/// Derives all preset counter values from the latent kernel characteristics
/// and the execution-time model output. Values are exact (noise-free); the
/// measurement path (pmc::EventSet) adds per-read noise and enforces the
/// hardware limit on concurrently programmable counters.
class CounterModel {
 public:
  /// Computes every preset for one region execution.
  [[nodiscard]] static PmuCounts evaluate(const CpuSpec& spec,
                                          const KernelTraits& k, int threads,
                                          CoreFreq core, UncoreFreq uncore,
                                          const PerfResult& perf);

  /// Single event accessor (convenience over evaluate()).
  [[nodiscard]] static double value(PmuEvent e, const CpuSpec& spec,
                                    const KernelTraits& k, int threads,
                                    CoreFreq core, UncoreFreq uncore,
                                    const PerfResult& perf);
};

}  // namespace ecotune::hwsim
