#include "hwsim/cluster.hpp"

#include "common/error.hpp"

namespace ecotune::hwsim {

Cluster::Cluster(CpuSpec spec, std::uint64_t seed, PerfParams perf,
                 PowerParams power)
    : spec_(std::move(spec)),
      seed_(seed),
      perf_(perf),
      power_(power),
      rng_(seed) {}

NodeSimulator& Cluster::node(int id) {
  ensure(id >= 0, "Cluster::node: id must be non-negative");
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    it = nodes_
             .emplace(id, std::make_unique<NodeSimulator>(spec_, id, rng_,
                                                          perf_, power_))
             .first;
  }
  return *it->second;
}

NodeSimulator& Cluster::allocate() {
  NodeSimulator& n = node(next_alloc_);
  next_alloc_ = (next_alloc_ + 1) % pool_size_;
  return n;
}

void Cluster::set_pool_size(int n) {
  ensure(n > 0, "Cluster::set_pool_size: need at least one node");
  pool_size_ = n;
  next_alloc_ = next_alloc_ % n;
}

}  // namespace ecotune::hwsim
