#pragma once

#include "common/units.hpp"
#include "hwsim/node.hpp"

namespace ecotune::hwsim {

/// Software-controlled clock modulation (Intel T-states,
/// IA32_CLOCK_MODULATION): the core is duty-cycled between run and halt at
/// a fixed ratio while voltage and frequency stay put. The paper's
/// introduction lists it alongside DVFS as a user-controllable throttling
/// switch; it is well known to be strictly worse than DVFS for energy at
/// equal slowdown because the static/voltage term is not reduced.
///
/// Duty levels follow the hardware encoding: 16 steps from 6.25 % to 100 %.
class ClockModulation {
 public:
  static constexpr int kSteps = 16;  ///< duty = level / 16

  explicit ClockModulation(NodeSimulator& node) : node_(node) {}

  /// Sets the duty-cycle level (1..16; 16 = no modulation) for all cores.
  /// Charges the same MSR-write latency as a DVFS transition. Returns the
  /// charged latency (zero when unchanged).
  Seconds set_duty_level(int level);

  [[nodiscard]] int duty_level() const { return level_; }
  /// Effective duty fraction in (0, 1].
  [[nodiscard]] double duty() const {
    return static_cast<double>(level_) / kSteps;
  }

  /// Runs a kernel under the current modulation: the core makes progress
  /// only during the duty window, so execution time stretches by ~1/duty
  /// (with a small extra penalty for pipeline drain at every halt window),
  /// while core dynamic power scales with duty and everything else --
  /// static power at the *unreduced* voltage, uncore, DRAM idle, node base
  /// -- burns for the stretched duration.
  KernelRunResult run_kernel(const KernelTraits& k, int threads);

  /// Per-halt-window pipeline-drain inefficiency (fractional time added on
  /// top of the ideal 1/duty stretch at 50 % duty; scales with (1-duty)).
  static constexpr double kDrainPenalty = 0.06;

 private:
  NodeSimulator& node_;
  int level_ = kSteps;
};

}  // namespace ecotune::hwsim
