#pragma once

#include "common/units.hpp"
#include "hwsim/cpu_spec.hpp"
#include "hwsim/kernel_traits.hpp"

namespace ecotune::hwsim {

/// Tunable constants of the analytic execution-time model.
struct PerfParams {
  /// Peak DRAM bandwidth of the node with all threads and max uncore
  /// frequency, bytes/second (2-socket Haswell-EP STREAM-like).
  double peak_bandwidth = 110e9;
  /// Uncore-frequency half-saturation constant (GHz) of the bandwidth curve
  /// BW ~ f_u / (f_u + bw_freq_half), normalized to 1 at the max UFS point.
  double bw_freq_half = 1.0;
  /// Thread-concurrency half-saturation constant of the bandwidth curve.
  double bw_threads_half = 3.0;
};

/// Output of the execution-time model for one region execution (one phase
/// iteration's worth of work).
struct PerfResult {
  Seconds time{0};            ///< wall time of the region execution
  Seconds compute_time{0};    ///< core-bound component
  Seconds memory_time{0};     ///< DRAM-bound component
  Seconds uncore_time{0};     ///< L3/ring transfer component
  Seconds sync_time{0};       ///< barrier / fork-join component
  double achieved_bandwidth = 0.0;  ///< bytes/s actually drawn from DRAM
  double total_cycles = 0.0;        ///< core cycles summed over used cores
  double work_cycles = 0.0;         ///< cycles retiring instructions
  double stall_cycles = 0.0;        ///< cycles stalled on any resource
  double speedup = 1.0;             ///< achieved thread speedup
};

/// Roofline-with-overlap execution-time model (DESIGN.md Sec. 4):
///
///   T = (1-a)(Tc + Tu + Tm) + a * max(Tc, Tu + Tm) + t * sync
///
/// where Tc scales with core frequency and thread speedup, Tu with uncore
/// frequency, Tm with the uncore- and concurrency-dependent DRAM bandwidth,
/// and `a` is the kernel's compute/memory overlap factor. This reproduces the
/// qualitative DVFS/UFS response surfaces of the paper's Figs. 6 and 7.
class PerfModel {
 public:
  explicit PerfModel(PerfParams params = {}) : params_(params) {}

  [[nodiscard]] const PerfParams& params() const { return params_; }

  /// Thread speedup: Amdahl with a linear contention penalty.
  [[nodiscard]] double speedup(const KernelTraits& k, int threads) const;

  /// Achieved DRAM bandwidth at the given uncore frequency / concurrency.
  [[nodiscard]] double bandwidth(UncoreFreq uncore, int threads) const;

  /// Evaluates the model for one region execution.
  [[nodiscard]] PerfResult evaluate(const KernelTraits& k, int threads,
                                    CoreFreq core, UncoreFreq uncore) const;

 private:
  PerfParams params_;
};

}  // namespace ecotune::hwsim
