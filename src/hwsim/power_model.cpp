#include "hwsim/power_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ecotune::hwsim {

PowerBreakdown PowerModel::evaluate(const CpuSpec& spec,
                                    const NodeVariability& node,
                                    const KernelTraits& k, int threads,
                                    CoreFreq core, UncoreFreq uncore,
                                    double achieved_bandwidth) const {
  ensure(threads >= 0 && threads <= spec.total_cores(),
         "PowerModel::evaluate: thread count exceeds core count");
  const double v = core_voltage(core);
  const double vu = uncore_voltage(uncore);
  const double fc = core.as_ghz();
  const double fu = uncore.as_ghz();

  PowerBreakdown p;
  const double active = threads * k.activity;
  const double idle_cores = spec.total_cores() - threads;
  const double idle = idle_cores * params_.idle_activity;
  p.core_dynamic = Watts(node.dynamic_factor * params_.cdyn * (active + idle) *
                         v * v * fc);
  p.core_static =
      Watts(node.leakage_factor * spec.total_cores() * params_.core_leak * v);
  p.uncore = Watts(spec.sockets *
                   (node.dynamic_factor * params_.cunc * vu * vu * fu +
                    node.leakage_factor * params_.uncore_leak * vu));
  p.dram = Watts(spec.sockets * params_.dram_idle_per_socket +
                 params_.dram_per_gbs * achieved_bandwidth / 1e9);
  p.node_base = Watts(params_.node_base + node.base_offset_w);
  return p;
}

PowerBreakdown PowerModel::idle(const CpuSpec& spec,
                                const NodeVariability& node, CoreFreq core,
                                UncoreFreq uncore) const {
  KernelTraits idle_kernel;
  idle_kernel.activity = 0.0;  // active-thread term vanishes
  return evaluate(spec, node, idle_kernel, 0, core, uncore, 0.0);
}

}  // namespace ecotune::hwsim
