#pragma once

#include <string>

namespace ecotune::hwsim {

/// Architecture-independent description of one code region's work per phase
/// iteration. These are the latent "application characteristics" the paper's
/// PAPI counters observe; the simulator derives execution time, power and all
/// 56 preset counters from them.
///
/// Instruction-mix fields are fractions of `total_instructions`; cache miss
/// rates are per access of the previous level. Work is expressed as a
/// serial-equivalent total across all threads (the performance model divides
/// by the achieved speedup).
struct KernelTraits {
  /// Total retired instructions per phase iteration (all threads combined).
  double total_instructions = 1e9;
  /// Peak sustainable IPC per core when nothing stalls.
  double ipc_peak = 2.0;

  double load_fraction = 0.25;    ///< loads / instructions
  double store_fraction = 0.10;   ///< stores / instructions
  double branch_fraction = 0.12;  ///< branches / instructions
  double branch_conditional_fraction = 0.80;  ///< conditional / branches
  double branch_taken_rate = 0.55;   ///< taken / conditional branches
  double branch_miss_rate = 0.02;    ///< mispredicted / conditional branches

  double l1d_miss_rate = 0.04;  ///< L1D misses / (loads+stores)
  double l1i_miss_rate = 0.002; ///< L1I misses / instructions
  double l2_miss_rate = 0.30;   ///< L2 misses / L2 accesses
  double l3_miss_rate = 0.35;   ///< L3 misses / L3 accesses
  double tlb_d_rate = 5e-4;     ///< data TLB misses / (loads+stores)
  double tlb_i_rate = 2e-5;     ///< instruction TLB misses / instructions

  double fp_fraction = 0.30;      ///< FP arithmetic / instructions
  double fp_double_fraction = 0.9;///< double-precision share of FP
  double vector_fraction = 0.25;  ///< SIMD share of FP instructions
  double fp_div_fraction = 0.01;  ///< divides / FP instructions

  /// DRAM traffic per phase iteration in bytes (all threads).
  double dram_bytes = 0.5e9;
  /// Uncore (L3 + ring) transfer cycles per phase iteration; scales the
  /// latency component that makes UFS matter even for compute-bound codes.
  double uncore_cycles = 0.2e9;

  /// Amdahl parallel fraction of the region.
  double parallel_fraction = 0.99;
  /// Per-thread scaling penalty (shared-resource contention); speedup is
  /// multiplied by (1 - contention * (threads - 1)).
  double contention = 0.004;
  /// Synchronization (barrier/fork-join) cost added per thread, seconds.
  double sync_seconds_per_thread = 2e-5;
  /// Fraction of memory time that overlaps compute (0 = serialized,
  /// 1 = perfectly overlapped).
  double overlap = 0.7;

  /// Core switching-activity factor for dynamic power (0.5 idle-ish
  /// integer code, ~1.2 AVX-heavy).
  double activity = 1.0;
};

}  // namespace ecotune::hwsim
