#pragma once

#include <string>

#include "common/frequency.hpp"
#include "common/units.hpp"

namespace ecotune::hwsim {

/// Static description of the simulated compute node. Defaults model one
/// Taurus `haswell` node: 2x Intel Xeon E5-2680 v3 (12 cores each, no HT, no
/// Turbo), per-core DVFS 1.2-2.5 GHz, per-socket UFS 1.3-3.0 GHz (paper
/// Sec. V-A).
struct CpuSpec {
  std::string name = "Intel Xeon E5-2680 v3 (simulated Haswell-EP)";
  int sockets = 2;
  int cores_per_socket = 12;

  CoreFreqGrid core_grid{CoreFreq::mhz(1200), CoreFreq::mhz(2500), 100};
  UncoreFreqGrid uncore_grid{UncoreFreq::mhz(1300), UncoreFreq::mhz(3000),
                             100};

  /// Cluster default operating point for any job (paper Sec. V-D).
  CoreFreq default_core = CoreFreq::mhz(2500);
  UncoreFreq default_uncore = UncoreFreq::mhz(3000);

  /// Calibration point used for counter measurement and energy normalization
  /// (paper Sec. IV-A).
  CoreFreq calibration_core = CoreFreq::mhz(2000);
  UncoreFreq calibration_uncore = UncoreFreq::mhz(1500);

  /// DVFS transition latency per individual core (paper Sec. V-E: 21 us).
  Seconds core_switch_latency{21e-6};
  /// UFS transition latency per socket (paper Sec. V-E: 20 us).
  Seconds uncore_switch_latency{20e-6};

  /// Nominal TSC / reference clock used by REF_CYC.
  CoreFreq reference_clock = CoreFreq::mhz(2500);

  [[nodiscard]] int total_cores() const { return sockets * cores_per_socket; }
};

/// The default simulated platform (factory for readability at call sites).
[[nodiscard]] inline CpuSpec haswell_ep_spec() { return CpuSpec{}; }

}  // namespace ecotune::hwsim
