#include "hwsim/pmu_events.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace ecotune::hwsim {
namespace {

struct EventInfo {
  std::string_view name;
  std::string_view description;
};

constexpr std::array<EventInfo, kPmuEventCount> kInfo{{
    {"PAPI_L1_DCM", "Level 1 data cache misses"},
    {"PAPI_L1_ICM", "Level 1 instruction cache misses"},
    {"PAPI_L2_DCM", "Level 2 data cache misses"},
    {"PAPI_L2_ICM", "Level 2 instruction cache misses"},
    {"PAPI_L1_TCM", "Level 1 cache misses"},
    {"PAPI_L2_TCM", "Level 2 cache misses"},
    {"PAPI_L3_TCM", "Level 3 cache misses"},
    {"PAPI_L3_LDM", "Level 3 load misses"},
    {"PAPI_TLB_DM", "Data translation lookaside buffer misses"},
    {"PAPI_TLB_IM", "Instruction translation lookaside buffer misses"},
    {"PAPI_L1_LDM", "Level 1 load misses"},
    {"PAPI_L1_STM", "Level 1 store misses"},
    {"PAPI_L2_LDM", "Level 2 load misses"},
    {"PAPI_L2_STM", "Level 2 store misses"},
    {"PAPI_STL_ICY", "Cycles with no instruction issue"},
    {"PAPI_FUL_ICY", "Cycles with maximum instruction issue"},
    {"PAPI_STL_CCY", "Cycles with no instructions completed"},
    {"PAPI_FUL_CCY", "Cycles with maximum instructions completed"},
    {"PAPI_BR_UCN", "Unconditional branch instructions"},
    {"PAPI_BR_CN", "Conditional branch instructions"},
    {"PAPI_BR_TKN", "Conditional branch instructions taken"},
    {"PAPI_BR_NTK", "Conditional branch instructions not taken"},
    {"PAPI_BR_MSP", "Conditional branch instructions mispredicted"},
    {"PAPI_BR_PRC", "Conditional branch instructions correctly predicted"},
    {"PAPI_TOT_INS", "Instructions completed"},
    {"PAPI_LD_INS", "Load instructions"},
    {"PAPI_SR_INS", "Store instructions"},
    {"PAPI_BR_INS", "Branch instructions"},
    {"PAPI_RES_STL", "Cycles stalled on any resource"},
    {"PAPI_TOT_CYC", "Total cycles"},
    {"PAPI_LST_INS", "Load/store instructions completed"},
    {"PAPI_L2_DCA", "Level 2 data cache accesses"},
    {"PAPI_L3_DCA", "Level 3 data cache accesses"},
    {"PAPI_L2_DCR", "Level 2 data cache reads"},
    {"PAPI_L3_DCR", "Level 3 data cache reads"},
    {"PAPI_L2_DCW", "Level 2 data cache writes"},
    {"PAPI_L3_DCW", "Level 3 data cache writes"},
    {"PAPI_L2_ICH", "Level 2 instruction cache hits"},
    {"PAPI_L2_ICA", "Level 2 instruction cache accesses"},
    {"PAPI_L3_ICA", "Level 3 instruction cache accesses"},
    {"PAPI_L2_ICR", "Level 2 instruction cache reads"},
    {"PAPI_L3_ICR", "Level 3 instruction cache reads"},
    {"PAPI_L2_TCA", "Level 2 total cache accesses"},
    {"PAPI_L3_TCA", "Level 3 total cache accesses"},
    {"PAPI_L2_TCR", "Level 2 total cache reads"},
    {"PAPI_L3_TCR", "Level 3 total cache reads"},
    {"PAPI_L2_TCW", "Level 2 total cache writes"},
    {"PAPI_L3_TCW", "Level 3 total cache writes"},
    {"PAPI_FDV_INS", "Floating-point divide instructions"},
    {"PAPI_FP_OPS", "Floating-point operations"},
    {"PAPI_SP_OPS", "Single-precision floating-point operations"},
    {"PAPI_DP_OPS", "Double-precision floating-point operations"},
    {"PAPI_VEC_SP", "Single-precision vector/SIMD instructions"},
    {"PAPI_VEC_DP", "Double-precision vector/SIMD instructions"},
    {"PAPI_REF_CYC", "Reference clock cycles"},
    {"PAPI_FP_INS", "Floating-point instructions"},
}};

}  // namespace

std::string_view pmu_event_name(PmuEvent e) {
  const int i = static_cast<int>(e);
  ensure(i >= 0 && i < kPmuEventCount, "pmu_event_name: invalid event");
  return kInfo[static_cast<std::size_t>(i)].name;
}

std::string_view pmu_event_description(PmuEvent e) {
  const int i = static_cast<int>(e);
  ensure(i >= 0 && i < kPmuEventCount, "pmu_event_description: invalid event");
  return kInfo[static_cast<std::size_t>(i)].description;
}

std::optional<PmuEvent> pmu_event_from_name(std::string_view n) {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, PmuEvent>();
    for (int i = 0; i < kPmuEventCount; ++i)
      m->emplace(kInfo[static_cast<std::size_t>(i)].name,
                 static_cast<PmuEvent>(i));
    return m;
  }();
  auto it = map->find(n);
  if (it == map->end()) return std::nullopt;
  return it->second;
}

const std::array<PmuEvent, kPmuEventCount>& all_pmu_events() {
  static const auto events = [] {
    std::array<PmuEvent, kPmuEventCount> a{};
    for (int i = 0; i < kPmuEventCount; ++i) a[static_cast<std::size_t>(i)] =
        static_cast<PmuEvent>(i);
    return a;
  }();
  return events;
}

}  // namespace ecotune::hwsim
