#pragma once

#include "common/units.hpp"
#include "hwsim/node.hpp"

namespace ecotune::hwsim {

/// Low-level frequency-control interface modelled on the x86_adapt library
/// the paper uses (Schoene & Molka): writes "registers" on the node and
/// charges the documented transition latencies (21 us per core-domain
/// switch, 20 us per socket uncore switch) as idle time on the node's
/// simulated clock.
class X86Adapt {
 public:
  explicit X86Adapt(NodeSimulator& node) : node_(node) {}

  /// Sets one core's frequency; returns the charged latency.
  Seconds set_core_freq(int core, CoreFreq f);
  /// Sets all cores; MSR writes on distinct cores proceed concurrently, so
  /// one transition latency is charged for the whole gang.
  Seconds set_all_core_freqs(CoreFreq f);
  /// Sets one socket's uncore frequency; returns the charged latency.
  Seconds set_uncore_freq(int socket, UncoreFreq f);
  /// Sets both sockets (concurrent; one latency).
  Seconds set_all_uncore_freqs(UncoreFreq f);

  [[nodiscard]] CoreFreq core_freq(int core) const {
    return node_.core_freq(core);
  }
  [[nodiscard]] UncoreFreq uncore_freq(int socket) const {
    return node_.uncore_freq(socket);
  }

  /// Cumulative time spent in frequency transitions.
  [[nodiscard]] Seconds total_switch_time() const { return switch_time_; }
  /// Number of switch operations that actually changed a frequency.
  [[nodiscard]] long switch_count() const { return switch_count_; }
  /// Resets the overhead accounting.
  void reset_accounting();

 private:
  Seconds charge(Seconds latency);
  NodeSimulator& node_;
  Seconds switch_time_{0};
  long switch_count_ = 0;
};

}  // namespace ecotune::hwsim
