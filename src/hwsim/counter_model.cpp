#include "hwsim/counter_model.hpp"

#include <algorithm>

namespace ecotune::hwsim {

PmuCounts CounterModel::evaluate(const CpuSpec& spec, const KernelTraits& k,
                                 int threads, CoreFreq core,
                                 UncoreFreq uncore, const PerfResult& perf) {
  (void)threads;
  (void)uncore;
  PmuCounts c{};
  auto set = [&](PmuEvent e, double v) {
    c[static_cast<std::size_t>(static_cast<int>(e))] = std::max(0.0, v);
  };

  const double ins = k.total_instructions;
  const double loads = ins * k.load_fraction;
  const double stores = ins * k.store_fraction;
  const double lst = loads + stores;
  const double branches = ins * k.branch_fraction;
  const double br_cn = branches * k.branch_conditional_fraction;
  const double br_ucn = branches - br_cn;
  const double br_tkn = br_cn * k.branch_taken_rate;
  const double br_ntk = br_cn - br_tkn;
  const double br_msp = br_cn * k.branch_miss_rate;

  // Cache hierarchy: L1 misses feed L2, L2 misses feed L3, L3 misses feed
  // DRAM. Reads/writes split by the load/store mix.
  const double l1_ldm = loads * k.l1d_miss_rate;
  const double l1_stm = stores * k.l1d_miss_rate;
  const double l1_dcm = l1_ldm + l1_stm;
  const double l1_icm = ins * k.l1i_miss_rate;
  const double l2_dcr = l1_ldm;
  const double l2_dcw = l1_stm;
  const double l2_dca = l2_dcr + l2_dcw;
  const double l2_icr = l1_icm;
  const double l2_ica = l2_icr;
  const double l2_dcm = l2_dca * k.l2_miss_rate;
  const double l2_icm = l2_ica * k.l2_miss_rate;
  const double l2_ldm = l2_dcr * k.l2_miss_rate;
  const double l2_stm = l2_dcw * k.l2_miss_rate;
  const double l3_dca = l2_dcm;
  const double l3_ica = l2_icm;
  const double l3_dcr = l2_ldm;
  const double l3_dcw = l2_stm;
  const double l3_tca = l3_dca + l3_ica;
  // Tie L3 misses to actual DRAM traffic (64-byte lines) so the counter and
  // the bandwidth model stay consistent; keep the rate-derived value as a
  // floor for codes with streaming stores.
  const double l3_tcm = std::max(l3_tca * k.l3_miss_rate, k.dram_bytes / 64.0);
  const double l3_ldm =
      l3_tcm * (l3_dcr / std::max(1.0, l3_dcr + l3_dcw + l3_ica));

  // FP pipeline: FP_INS counts instructions, FP_OPS counts operations
  // (vector instructions retire multiple ops; AVX2 = 4 doubles / 8 floats).
  const double fp_ins = ins * k.fp_fraction;
  const double fp_dp_ins = fp_ins * k.fp_double_fraction;
  const double fp_sp_ins = fp_ins - fp_dp_ins;
  const double vec_dp = fp_dp_ins * k.vector_fraction;
  const double vec_sp = fp_sp_ins * k.vector_fraction;
  const double dp_ops = (fp_dp_ins - vec_dp) + vec_dp * 4.0;
  const double sp_ops = (fp_sp_ins - vec_sp) + vec_sp * 8.0;

  // Cycle accounting from the execution-time model.
  const double tot_cyc = perf.total_cycles;
  const double res_stl = perf.stall_cycles;
  const double ref_cyc =
      tot_cyc / core.as_ghz() * spec.reference_clock.as_ghz();

  set(PmuEvent::kTOT_INS, ins);
  set(PmuEvent::kLD_INS, loads);
  set(PmuEvent::kSR_INS, stores);
  set(PmuEvent::kLST_INS, lst);
  set(PmuEvent::kBR_INS, branches);
  set(PmuEvent::kBR_UCN, br_ucn);
  set(PmuEvent::kBR_CN, br_cn);
  set(PmuEvent::kBR_TKN, br_tkn);
  set(PmuEvent::kBR_NTK, br_ntk);
  set(PmuEvent::kBR_MSP, br_msp);
  set(PmuEvent::kBR_PRC, br_cn - br_msp);

  set(PmuEvent::kL1_LDM, l1_ldm);
  set(PmuEvent::kL1_STM, l1_stm);
  set(PmuEvent::kL1_DCM, l1_dcm);
  set(PmuEvent::kL1_ICM, l1_icm);
  set(PmuEvent::kL1_TCM, l1_dcm + l1_icm);
  set(PmuEvent::kL2_DCR, l2_dcr);
  set(PmuEvent::kL2_DCW, l2_dcw);
  set(PmuEvent::kL2_DCA, l2_dca);
  set(PmuEvent::kL2_ICR, l2_icr);
  set(PmuEvent::kL2_ICA, l2_ica);
  set(PmuEvent::kL2_ICH, l2_ica * (1.0 - k.l2_miss_rate));
  set(PmuEvent::kL2_DCM, l2_dcm);
  set(PmuEvent::kL2_ICM, l2_icm);
  set(PmuEvent::kL2_LDM, l2_ldm);
  set(PmuEvent::kL2_STM, l2_stm);
  set(PmuEvent::kL2_TCA, l2_dca + l2_ica);
  set(PmuEvent::kL2_TCR, l2_dcr + l2_icr);
  set(PmuEvent::kL2_TCW, l2_dcw);
  set(PmuEvent::kL2_TCM, l2_dcm + l2_icm);
  set(PmuEvent::kL3_DCA, l3_dca);
  set(PmuEvent::kL3_ICA, l3_ica);
  set(PmuEvent::kL3_DCR, l3_dcr);
  set(PmuEvent::kL3_DCW, l3_dcw);
  set(PmuEvent::kL3_ICR, l3_ica);
  set(PmuEvent::kL3_TCA, l3_tca);
  set(PmuEvent::kL3_TCR, l3_dcr + l3_ica);
  set(PmuEvent::kL3_TCW, l3_dcw);
  set(PmuEvent::kL3_TCM, l3_tcm);
  set(PmuEvent::kL3_LDM, l3_ldm);

  set(PmuEvent::kTLB_DM, lst * k.tlb_d_rate);
  set(PmuEvent::kTLB_IM, ins * k.tlb_i_rate);

  set(PmuEvent::kFP_INS, fp_ins);
  set(PmuEvent::kFDV_INS, fp_ins * k.fp_div_fraction);
  set(PmuEvent::kFP_OPS, sp_ops + dp_ops);
  set(PmuEvent::kSP_OPS, sp_ops);
  set(PmuEvent::kDP_OPS, dp_ops);
  set(PmuEvent::kVEC_SP, vec_sp);
  set(PmuEvent::kVEC_DP, vec_dp);

  set(PmuEvent::kTOT_CYC, tot_cyc);
  set(PmuEvent::kREF_CYC, ref_cyc);
  set(PmuEvent::kRES_STL, res_stl);
  // Issue/completion cycle structure, derived from the stall share.
  set(PmuEvent::kSTL_ICY, res_stl * 0.65);
  set(PmuEvent::kSTL_CCY, res_stl * 0.80);
  set(PmuEvent::kFUL_ICY, std::max(0.0, (tot_cyc - res_stl) * 0.30));
  set(PmuEvent::kFUL_CCY, std::max(0.0, (tot_cyc - res_stl) * 0.22));

  return c;
}

double CounterModel::value(PmuEvent e, const CpuSpec& spec,
                           const KernelTraits& k, int threads, CoreFreq core,
                           UncoreFreq uncore, const PerfResult& perf) {
  return evaluate(spec, k, threads, core, uncore,
                  perf)[static_cast<std::size_t>(static_cast<int>(e))];
}

}  // namespace ecotune::hwsim
