#include "hwsim/node.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace ecotune::hwsim {

NodeVariability draw_node_variability(const Rng& rng, int node_id) {
  Rng r = rng.fork("node-variability-" + std::to_string(node_id));
  NodeVariability v;
  v.leakage_factor = std::clamp(r.normal(1.0, 0.06), 0.85, 1.15);
  v.dynamic_factor = std::clamp(r.normal(1.0, 0.02), 0.94, 1.06);
  v.base_offset_w = std::clamp(r.normal(0.0, 4.0), -10.0, 10.0);
  return v;
}

NodeSimulator::NodeSimulator(CpuSpec spec, int node_id, const Rng& rng,
                             PerfParams perf_params, PowerParams power_params)
    : spec_(std::move(spec)),
      node_id_(node_id),
      var_(draw_node_variability(rng, node_id)),
      perf_(perf_params),
      power_(power_params),
      noise_(rng.fork("node-noise-" + std::to_string(node_id))),
      core_freq_(static_cast<std::size_t>(spec_.total_cores()),
                 spec_.default_core),
      uncore_freq_(static_cast<std::size_t>(spec_.sockets),
                   spec_.default_uncore) {}

NodeSimulator NodeSimulator::clone() const {
  NodeSimulator copy(*this);
  copy.listeners_.clear();
  return copy;
}

NodeSimulator NodeSimulator::clone(std::string_view noise_key) const {
  NodeSimulator copy = clone();
  copy.fork_noise(noise_key);
  return copy;
}

void NodeSimulator::set_core_freq(int core, CoreFreq f) {
  ensure(core >= 0 && core < spec_.total_cores(),
         "NodeSimulator::set_core_freq: bad core index");
  ensure(spec_.core_grid.contains(f),
         "NodeSimulator::set_core_freq: frequency not supported");
  core_freq_[static_cast<std::size_t>(core)] = f;
}

void NodeSimulator::set_all_core_freqs(CoreFreq f) {
  for (int c = 0; c < spec_.total_cores(); ++c) set_core_freq(c, f);
}

CoreFreq NodeSimulator::core_freq(int core) const {
  ensure(core >= 0 && core < spec_.total_cores(),
         "NodeSimulator::core_freq: bad core index");
  return core_freq_[static_cast<std::size_t>(core)];
}

void NodeSimulator::set_uncore_freq(int socket, UncoreFreq f) {
  ensure(socket >= 0 && socket < spec_.sockets,
         "NodeSimulator::set_uncore_freq: bad socket index");
  ensure(spec_.uncore_grid.contains(f),
         "NodeSimulator::set_uncore_freq: frequency not supported");
  uncore_freq_[static_cast<std::size_t>(socket)] = f;
}

void NodeSimulator::set_all_uncore_freqs(UncoreFreq f) {
  for (int s = 0; s < spec_.sockets; ++s) set_uncore_freq(s, f);
}

UncoreFreq NodeSimulator::uncore_freq(int socket) const {
  ensure(socket >= 0 && socket < spec_.sockets,
         "NodeSimulator::uncore_freq: bad socket index");
  return uncore_freq_[static_cast<std::size_t>(socket)];
}

CoreFreq NodeSimulator::effective_core_freq(int threads) const {
  ensure(threads >= 1 && threads <= spec_.total_cores(),
         "NodeSimulator::effective_core_freq: bad thread count");
  CoreFreq f = core_freq_[0];
  for (int c = 1; c < threads; ++c)
    f = std::min(f, core_freq_[static_cast<std::size_t>(c)]);
  return f;
}

KernelRunResult NodeSimulator::run_kernel(const KernelTraits& k, int threads) {
  ensure(threads >= 1 && threads <= spec_.total_cores(),
         "NodeSimulator::run_kernel: bad thread count");
  const CoreFreq fc = effective_core_freq(threads);
  // Uncore domains are switched in lockstep by the UFS parameter plugin; a
  // parallel kernel spanning both sockets sees the slower one.
  const UncoreFreq fu = *std::min_element(uncore_freq_.begin(),
                                          uncore_freq_.end());

  KernelRunResult r;
  r.perf = perf_.evaluate(k, threads, fc, fu);
  r.power = power_.evaluate(spec_, var_, k, threads, fc, fu,
                            r.perf.achieved_bandwidth);
  r.counters = CounterModel::evaluate(spec_, k, threads, fc, fu, r.perf);

  // Run-to-run OS jitter on time; power jitter is applied independently so
  // energy noise does not cancel.
  const double tj = jitter_ > 0 ? std::max(0.5, noise_.normal(1.0, jitter_))
                                : 1.0;
  const double pj = jitter_ > 0 ? std::max(0.5, noise_.normal(1.0, jitter_))
                                : 1.0;
  r.time = r.perf.time * tj;

  PowerBreakdown jittered = r.power;
  jittered.core_dynamic *= pj;
  jittered.uncore *= pj;
  r.node_energy = jittered.node() * r.time;
  r.cpu_energy = jittered.cpu() * r.time;

  emit(r.time, jittered);
  return r;
}

void NodeSimulator::idle(Seconds duration) {
  if (duration.value() <= 0) return;
  emit(duration, idle_power());
}

PowerBreakdown NodeSimulator::idle_power() const {
  const UncoreFreq fu =
      *std::min_element(uncore_freq_.begin(), uncore_freq_.end());
  return power_.idle(spec_, var_, core_freq_[0], fu);
}

void NodeSimulator::add_listener(PowerListener* l) {
  ensure(l != nullptr, "NodeSimulator::add_listener: null listener");
  listeners_.push_back(l);
}

void NodeSimulator::remove_listener(PowerListener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l),
                   listeners_.end());
}

void NodeSimulator::emit(Seconds duration, const PowerBreakdown& p) {
  now_ += duration;
  for (auto* l : listeners_) l->on_segment(duration, p.node(), p.cpu());
}

}  // namespace ecotune::hwsim
