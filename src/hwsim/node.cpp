#include "hwsim/node.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace ecotune::hwsim {

NodeVariability draw_node_variability(const Rng& rng, int node_id) {
  Rng r = rng.fork("node-variability-" + std::to_string(node_id));
  NodeVariability v;
  v.leakage_factor = std::clamp(r.normal(1.0, 0.06), 0.85, 1.15);
  v.dynamic_factor = std::clamp(r.normal(1.0, 0.02), 0.94, 1.06);
  v.base_offset_w = std::clamp(r.normal(0.0, 4.0), -10.0, 10.0);
  return v;
}

NodeSimulator::NodeSimulator(CpuSpec spec, int node_id, const Rng& rng,
                             PerfParams perf_params, PowerParams power_params)
    : spec_(std::move(spec)),
      node_id_(node_id),
      var_(draw_node_variability(rng, node_id)),
      perf_(perf_params),
      power_(power_params),
      noise_(rng.fork("node-noise-" + std::to_string(node_id))),
      core_freq_(static_cast<std::size_t>(spec_.total_cores()),
                 spec_.default_core),
      uncore_freq_(static_cast<std::size_t>(spec_.sockets),
                   spec_.default_uncore) {}

NodeSimulator NodeSimulator::clone() const {
  NodeSimulator copy(*this);
  copy.listeners_.clear();
  return copy;
}

NodeSimulator NodeSimulator::clone(std::string_view noise_key) const {
  NodeSimulator copy = clone();
  copy.fork_noise(noise_key);
  return copy;
}

void NodeSimulator::set_core_freq(int core, CoreFreq f) {
  ensure(core >= 0 && core < spec_.total_cores(),
         "NodeSimulator::set_core_freq: bad core index");
  ensure(spec_.core_grid.contains(f),
         "NodeSimulator::set_core_freq: frequency not supported");
  core_freq_[static_cast<std::size_t>(core)] = f;
}

void NodeSimulator::set_all_core_freqs(CoreFreq f) {
  for (int c = 0; c < spec_.total_cores(); ++c) set_core_freq(c, f);
}

CoreFreq NodeSimulator::core_freq(int core) const {
  ensure(core >= 0 && core < spec_.total_cores(),
         "NodeSimulator::core_freq: bad core index");
  return core_freq_[static_cast<std::size_t>(core)];
}

void NodeSimulator::set_uncore_freq(int socket, UncoreFreq f) {
  ensure(socket >= 0 && socket < spec_.sockets,
         "NodeSimulator::set_uncore_freq: bad socket index");
  ensure(spec_.uncore_grid.contains(f),
         "NodeSimulator::set_uncore_freq: frequency not supported");
  uncore_freq_[static_cast<std::size_t>(socket)] = f;
}

void NodeSimulator::set_all_uncore_freqs(UncoreFreq f) {
  for (int s = 0; s < spec_.sockets; ++s) set_uncore_freq(s, f);
}

UncoreFreq NodeSimulator::uncore_freq(int socket) const {
  ensure(socket >= 0 && socket < spec_.sockets,
         "NodeSimulator::uncore_freq: bad socket index");
  return uncore_freq_[static_cast<std::size_t>(socket)];
}

CoreFreq NodeSimulator::effective_core_freq(int threads) const {
  ensure(threads >= 1 && threads <= spec_.total_cores(),
         "NodeSimulator::effective_core_freq: bad thread count");
  CoreFreq f = core_freq_[0];
  for (int c = 1; c < threads; ++c)
    f = std::min(f, core_freq_[static_cast<std::size_t>(c)]);
  return f;
}

std::uint64_t NodeSimulator::state_fingerprint() const {
  Fingerprint fp;
  fp.add("spec.name", spec_.name)
      .add("spec.sockets", spec_.sockets)
      .add("spec.cores_per_socket", spec_.cores_per_socket)
      .add("spec.core_grid.min", spec_.core_grid.min().as_mhz())
      .add("spec.core_grid.max", spec_.core_grid.max().as_mhz())
      .add("spec.core_grid.step", spec_.core_grid.step_mhz())
      .add("spec.uncore_grid.min", spec_.uncore_grid.min().as_mhz())
      .add("spec.uncore_grid.max", spec_.uncore_grid.max().as_mhz())
      .add("spec.uncore_grid.step", spec_.uncore_grid.step_mhz())
      .add("spec.default_core", spec_.default_core.as_mhz())
      .add("spec.default_uncore", spec_.default_uncore.as_mhz())
      .add("spec.calibration_core", spec_.calibration_core.as_mhz())
      .add("spec.calibration_uncore", spec_.calibration_uncore.as_mhz())
      .add("spec.core_switch_latency", spec_.core_switch_latency.value())
      .add("spec.uncore_switch_latency", spec_.uncore_switch_latency.value())
      .add("spec.reference_clock", spec_.reference_clock.as_mhz());
  fp.add("node_id", node_id_)
      .add("var.leakage", var_.leakage_factor)
      .add("var.dynamic", var_.dynamic_factor)
      .add("var.base_offset", var_.base_offset_w);
  const PerfParams& pp = perf_.params();
  fp.add("perf.peak_bandwidth", pp.peak_bandwidth)
      .add("perf.bw_freq_half", pp.bw_freq_half)
      .add("perf.bw_threads_half", pp.bw_threads_half);
  const PowerParams& wp = power_.params();
  fp.add("power.v0", wp.v0)
      .add("power.kv", wp.kv)
      .add("power.cdyn", wp.cdyn)
      .add("power.core_leak", wp.core_leak)
      .add("power.idle_activity", wp.idle_activity)
      .add("power.vu0", wp.vu0)
      .add("power.kvu", wp.kvu)
      .add("power.cunc", wp.cunc)
      .add("power.uncore_leak", wp.uncore_leak)
      .add("power.dram_idle", wp.dram_idle_per_socket)
      .add("power.dram_per_gbs", wp.dram_per_gbs)
      .add("power.node_base", wp.node_base);
  fp.add("jitter", jitter_).add("now", now_.value());
  fp.add_digest("noise", noise_.state_hash());
  for (CoreFreq f : core_freq_) fp.add("core_freq", f.as_mhz());
  for (UncoreFreq f : uncore_freq_) fp.add("uncore_freq", f.as_mhz());
  return fp.digest();
}

KernelRunResult NodeSimulator::run_kernel(const KernelTraits& k, int threads) {
  ensure(threads >= 1 && threads <= spec_.total_cores(),
         "NodeSimulator::run_kernel: bad thread count");
  const CoreFreq fc = effective_core_freq(threads);
  // Uncore domains are switched in lockstep by the UFS parameter plugin; a
  // parallel kernel spanning both sockets sees the slower one.
  const UncoreFreq fu = *std::min_element(uncore_freq_.begin(),
                                          uncore_freq_.end());

  KernelRunResult r;
  r.perf = perf_.evaluate(k, threads, fc, fu);
  r.power = power_.evaluate(spec_, var_, k, threads, fc, fu,
                            r.perf.achieved_bandwidth);
  r.counters = CounterModel::evaluate(spec_, k, threads, fc, fu, r.perf);

  // Run-to-run OS jitter on time; power jitter is applied independently so
  // energy noise does not cancel.
  const double tj = jitter_ > 0 ? std::max(0.5, noise_.normal(1.0, jitter_))
                                : 1.0;
  const double pj = jitter_ > 0 ? std::max(0.5, noise_.normal(1.0, jitter_))
                                : 1.0;
  r.time = r.perf.time * tj;

  PowerBreakdown jittered = r.power;
  jittered.core_dynamic *= pj;
  jittered.uncore *= pj;
  r.node_energy = jittered.node() * r.time;
  r.cpu_energy = jittered.cpu() * r.time;

  emit(r.time, jittered);
  return r;
}

void NodeSimulator::idle(Seconds duration) {
  if (duration.value() <= 0) return;
  emit(duration, idle_power());
}

PowerBreakdown NodeSimulator::idle_power() const {
  const UncoreFreq fu =
      *std::min_element(uncore_freq_.begin(), uncore_freq_.end());
  return power_.idle(spec_, var_, core_freq_[0], fu);
}

void NodeSimulator::add_listener(PowerListener* l) {
  ensure(l != nullptr, "NodeSimulator::add_listener: null listener");
  listeners_.push_back(l);
}

void NodeSimulator::remove_listener(PowerListener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l),
                   listeners_.end());
}

void NodeSimulator::emit(Seconds duration, const PowerBreakdown& p) {
  now_ += duration;
  for (auto* l : listeners_) l->on_segment(duration, p.node(), p.cpu());
}

}  // namespace ecotune::hwsim
