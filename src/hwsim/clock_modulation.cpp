#include "hwsim/clock_modulation.hpp"

#include "common/error.hpp"

namespace ecotune::hwsim {

Seconds ClockModulation::set_duty_level(int level) {
  ensure(level >= 1 && level <= kSteps,
         "ClockModulation::set_duty_level: level must be in 1..16");
  if (level == level_) return Seconds(0);
  level_ = level;
  const Seconds latency = node_.spec().core_switch_latency;
  node_.idle(latency);
  return latency;
}

KernelRunResult ClockModulation::run_kernel(const KernelTraits& k,
                                            int threads) {
  if (level_ == kSteps) return node_.run_kernel(k, threads);

  // Unmodulated reference at the node's current DVFS/UFS state.
  KernelRunResult r = node_.run_kernel(k, threads);
  const double d = duty();
  // Compute progress only happens during the duty window; memory/uncore
  // phases continue during halt (outstanding requests drain), so only the
  // compute component stretches. Pipeline refill after every halt window
  // adds a further penalty growing with the halted share.
  const double stretch = 1.0 / d * (1.0 + kDrainPenalty * (1.0 - d) * 2.0);
  const double t_comp = r.perf.compute_time.value() * stretch;
  const double t_rest = r.perf.time.value() - r.perf.compute_time.value();
  const double new_time = t_comp + t_rest;
  const double time_ratio = new_time / r.perf.time.value();

  // Power: core dynamic scales with duty (clock gated during halt); core
  // static, uncore, DRAM-idle and node base are untouched -- this is what
  // makes modulation inferior to DVFS, which also lowers the voltage.
  PowerBreakdown p = r.power;
  p.core_dynamic *= d;
  const double dram_dynamic =
      p.dram.value() - node_.spec().sockets *
                           node_.power_model().params().dram_idle_per_socket;
  p.dram = Watts(p.dram.value() - dram_dynamic * (1.0 - 1.0 / time_ratio));

  // Replace the emitted segment's accounting: the node already advanced by
  // the unmodulated run; extend by the residual time at modulated power.
  const Seconds extra(new_time - r.perf.time.value());
  node_.idle(extra);  // clock advance; listeners see idle power for it

  r.time = Seconds(new_time);
  r.power = p;
  r.node_energy = p.node() * r.time;
  r.cpu_energy = p.cpu() * r.time;
  r.perf.time = Seconds(new_time);
  r.perf.compute_time = Seconds(t_comp);
  return r;
}

}  // namespace ecotune::hwsim
