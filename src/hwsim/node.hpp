#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hwsim/counter_model.hpp"
#include "hwsim/cpu_spec.hpp"
#include "hwsim/kernel_traits.hpp"
#include "hwsim/perf_model.hpp"
#include "hwsim/power_model.hpp"

namespace ecotune::hwsim {

/// Observer of the node's simulated power timeline. Energy monitors (HDEEM,
/// RAPL) subscribe to receive constant-power segments as simulated wall time
/// advances, and reconstruct measured energy with their own sampling
/// artifacts.
class PowerListener {
 public:
  virtual ~PowerListener() = default;
  /// Called for every segment of simulated time with (approximately)
  /// constant power draw.
  virtual void on_segment(Seconds duration, Watts node_power,
                          Watts cpu_power) = 0;
};

/// Result of executing one kernel (one region execution) on the node.
struct KernelRunResult {
  Seconds time{0};        ///< wall time including run-to-run jitter
  Joules node_energy{0};  ///< ground-truth node (HDEEM-domain) energy
  Joules cpu_energy{0};   ///< ground-truth CPU+DRAM (RAPL-domain) energy
  PerfResult perf;        ///< execution-time model breakdown
  PowerBreakdown power;   ///< power model breakdown
  PmuCounts counters;     ///< noise-free preset counter values
};

/// One simulated compute node: per-core DVFS state, per-socket UFS state,
/// per-node manufacturing variability, a simulated wall clock, and a power
/// timeline that energy monitors can observe.
///
/// The node is the single source of ground truth; everything the tuning
/// plugin "measures" flows through it.
class NodeSimulator {
 public:
  /// Creates node `node_id` with variability drawn from `rng` (typically the
  /// cluster seed forked by node id).
  NodeSimulator(CpuSpec spec, int node_id, const Rng& rng,
                PerfParams perf_params = {}, PowerParams power_params = {});

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] const NodeVariability& variability() const { return var_; }
  [[nodiscard]] const PerfModel& perf_model() const { return perf_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_; }

  /// Raw frequency state changes (no transition latency; use X86Adapt for
  /// latency-accounted switching).
  void set_core_freq(int core, CoreFreq f);
  void set_all_core_freqs(CoreFreq f);
  [[nodiscard]] CoreFreq core_freq(int core) const;
  void set_uncore_freq(int socket, UncoreFreq f);
  void set_all_uncore_freqs(UncoreFreq f);
  [[nodiscard]] UncoreFreq uncore_freq(int socket) const;
  /// Lowest core frequency among the first `threads` cores -- the effective
  /// clock of a gang-scheduled parallel region.
  [[nodiscard]] CoreFreq effective_core_freq(int threads) const;

  /// Executes a kernel with `threads` OpenMP threads at the current
  /// frequency state; advances the simulated clock and notifies listeners.
  KernelRunResult run_kernel(const KernelTraits& k, int threads);

  /// Advances the clock with the node idle (used for switching latencies and
  /// instrumentation overhead).
  void idle(Seconds duration);

  /// Simulated wall clock since node creation.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Ground-truth idle node power at current frequencies.
  [[nodiscard]] PowerBreakdown idle_power() const;

  void add_listener(PowerListener* l);
  void remove_listener(PowerListener* l);

  /// Relative stddev of run-to-run time/power jitter (OS noise). Tests can
  /// set it to zero for exact determinism.
  void set_jitter(double relative_stddev) { jitter_ = relative_stddev; }
  [[nodiscard]] double jitter() const { return jitter_; }

  /// Cheap value snapshot of the full node state (frequencies, clock,
  /// variability, noise stream) with NO listeners attached. The parallel
  /// sweep engines hand one clone to each task so concurrent evaluations
  /// cannot race on the shared clock/noise stream.
  [[nodiscard]] NodeSimulator clone() const;
  /// Clone whose noise stream is forked by `noise_key`. Keying the fork by
  /// task identity (not worker identity) is what makes parallel sweeps
  /// bitwise-deterministic for any job count.
  [[nodiscard]] NodeSimulator clone(std::string_view noise_key) const;

  /// Replaces the jitter stream with an independent substream. All clones of
  /// one node share noise state, so per-task streams must be re-keyed.
  void fork_noise(std::string_view key) { noise_ = noise_.fork(key); }

  /// Exact digest of everything a measurement on this node (or a clone of
  /// it) depends on: spec, node identity, manufacturing variability, model
  /// parameters, jitter level, the simulated clock, every frequency
  /// register, and the position of the noise stream. The measurement store
  /// folds this into cache keys so an entry recorded under one node state
  /// can never answer a query made under another.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  void emit(Seconds duration, const PowerBreakdown& p);

  CpuSpec spec_;
  int node_id_;
  NodeVariability var_;
  PerfModel perf_;
  PowerModel power_;
  Rng noise_;
  double jitter_ = 0.003;
  Seconds now_{0};
  std::vector<CoreFreq> core_freq_;
  std::vector<UncoreFreq> uncore_freq_;
  std::vector<PowerListener*> listeners_;
};

/// Draws NodeVariability for `node_id` from `rng` (exposed for tests).
[[nodiscard]] NodeVariability draw_node_variability(const Rng& rng,
                                                    int node_id);

}  // namespace ecotune::hwsim
