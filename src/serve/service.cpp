#include "serve/service.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "core/evaluation.hpp"
#include "store/measurement_store.hpp"
#include "workload/suite.hpp"

namespace ecotune::serve {
namespace {

/// Distinguishes "no such method" from caller-fault parameter errors so
/// handle() can map it to the dedicated error code.
struct UnknownMethodError : Error {
  using Error::Error;
};

/// The method vocabulary, sorted (stable "methods" listing).
Json method_list(bool debug) {
  Json::Array names{"dta", "evaluate", "methods", "ping", "predict", "stats",
                    "tune"};
  if (debug) names.emplace_back("sleep");
  return Json(std::move(names));
}

const std::string& required_string(const Json& params, const char* field) {
  ensure(params.contains(field) && params.at(field).is_string() &&
             !params.at(field).as_string().empty(),
         "params." + std::string(field) + ": non-empty string required");
  return params.at(field).as_string();
}

Json store_stats_json(store::MeasurementStore& store) {
  const store::StoreStats s = store.stats();
  Json j = Json::object();
  j["hits"] = static_cast<std::int64_t>(s.hits);
  j["misses"] = static_cast<std::int64_t>(s.misses);
  j["invalidated"] = static_cast<std::int64_t>(s.invalidated);
  j["rejected"] = static_cast<std::int64_t>(s.rejected);
  j["writes"] = static_cast<std::int64_t>(s.writes);
  j["entries"] = store.size();
  j["shards"] = store.shard_count();
  j["mode"] = std::string(store::to_string(store.mode()));
  return j;
}

}  // namespace

TuningService::TuningService(ServiceConfig config)
    : config_(std::move(config)),
      session_([&] {
        api::SessionConfig sc = config_.session;
        // Namespace daemon store entries away from the batch drivers'
        // when they share one cache directory.
        if (sc.scope().empty()) sc.scope("serve");
        return sc;
      }()) {
  // Train the shared model and build both nodes before any concurrent
  // handle(): the _shared entry points require (and assume) a warmed-up
  // session.
  session_.warmup();
}

std::string TuningService::request_key(const RpcRequest& req) {
  if (req.params.contains("key") && req.params.at("key").is_string() &&
      !req.params.at("key").as_string().empty()) {
    return req.tenant + "/" + req.method + "/" +
           req.params.at("key").as_string();
  }
  // Canonical params digest: Json objects dump with sorted keys, so two
  // textually different but semantically identical requests share a key.
  Fingerprint fp;
  fp.add("tenant", req.tenant)
      .add("method", req.method)
      .add("params", req.params.dump(-1));
  return req.tenant + "/" + req.method + "/" + Fingerprint::to_hex(fp.digest());
}

Json TuningService::handle(const Json& frame) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string tenant = "default";
  Json response;
  try {
    const RpcRequest req = RpcRequest::from_frame(frame);
    tenant = req.tenant;
    response = ok_response(req.id, dispatch(req));
  } catch (const UnknownMethodError& e) {
    const Json id = frame.is_object() && frame.contains("id") ? frame.at("id")
                                                              : Json();
    response = error_response(id, "unknown_method", e.what());
  } catch (const ConfigError& e) {
    // Unknown benchmark/tuner/objective names and malformed params are the
    // caller's fault; say so instead of "internal".
    const Json id = frame.is_object() && frame.contains("id") ? frame.at("id")
                                                              : Json();
    response = error_response(id, "bad_request", e.what());
  } catch (const Error& e) {
    const Json id = frame.is_object() && frame.contains("id") ? frame.at("id")
                                                              : Json();
    response = error_response(id, "bad_request", e.what());
  } catch (const std::exception& e) {
    const Json id = frame.is_object() && frame.contains("id") ? frame.at("id")
                                                              : Json();
    response = error_response(id, "internal", e.what());
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  stats_.record(tenant, response.at("ok").as_bool(), elapsed.count());
  return response;
}

Json TuningService::dispatch(const RpcRequest& req) {
  const Json& params = req.params;
  if (req.method == "ping") {
    Json j = Json::object();
    j["pong"] = true;
    return j;
  }
  if (req.method == "methods") {
    Json j = Json::object();
    j["methods"] = method_list(config_.enable_debug_methods);
    j["benchmarks"] = [] {
      Json::Array names;
      for (const auto& n : workload::BenchmarkSuite::names())
        names.emplace_back(n);
      return Json(std::move(names));
    }();
    return j;
  }
  if (req.method == "predict") {
    ensure(params.contains("counter_rates") &&
               params.at("counter_rates").is_object(),
           "params.counter_rates: object of counter-name -> rate required");
    std::map<std::string, double> rates;
    for (const auto& [name, value] : params.at("counter_rates").as_object()) {
      ensure(value.is_number(),
             "params.counter_rates." + name + ": number required");
      rates[name] = value.as_number();
    }
    const auto rec =
        session_.model().recommend(rates, session_.config().spec());
    Json j = Json::object();
    j["cf_mhz"] = rec.cf.as_mhz();
    j["ucf_mhz"] = rec.ucf.as_mhz();
    j["predicted_normalized_energy"] = rec.predicted_normalized_energy;
    return j;
  }
  if (req.method == "tune") {
    const std::string& benchmark = required_string(params, "benchmark");
    const std::string& tuner = required_string(params, "tuner");
    std::string objective;
    if (params.contains("objective"))
      objective = params.at("objective").as_string();
    const TuningOutcome outcome =
        session_.tune_shared(tuner, workload::BenchmarkSuite::by_name(benchmark),
                             objective, request_key(req));
    return outcome.to_json();
  }
  if (req.method == "dta") {
    const std::string& benchmark = required_string(params, "benchmark");
    const api::DtaReport report =
        session_.run_dta_shared(benchmark, request_key(req));
    // The PR 5 report-document shape (api::JsonReportSink): one daemon
    // response is one single-report document.
    Json doc = Json::object();
    doc["schema"] = "ecotune.dta.v1";
    Json::Array reports;
    reports.push_back(report.to_json());
    doc["reports"] = Json(std::move(reports));
    return doc;
  }
  if (req.method == "evaluate") {
    const std::string& benchmark = required_string(params, "benchmark");
    const core::SavingsRow row = session_.evaluate_savings_shared(
        workload::BenchmarkSuite::by_name(benchmark), request_key(req));
    Json j = Json::object();
    j["row"] = row.to_json();
    return j;
  }
  if (req.method == "stats") {
    Json j = stats_.snapshot(queue_depth());
    j["store"] = store_stats_json(session_.store());
    return j;
  }
  if (config_.enable_debug_methods && req.method == "sleep") {
    ensure(params.contains("ms") && params.at("ms").is_number() &&
               params.at("ms").as_number() >= 0,
           "params.ms: non-negative number required");
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        params.at("ms").as_number()));
    Json j = Json::object();
    j["slept_ms"] = params.at("ms").as_number();
    return j;
  }
  throw UnknownMethodError("unknown method '" + req.method + "'");
}

}  // namespace ecotune::serve
