#include "serve/service_stats.hpp"

#include <algorithm>
#include <cstdint>

namespace ecotune::serve {
namespace {

/// Nearest-rank quantile over a sorted sample vector.
double quantile_ms(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
  return sorted_seconds[std::min(rank, sorted_seconds.size() - 1)] * 1000.0;
}

Json bucket_json(long requests, long ok, long errors) {
  Json j = Json::object();
  j["requests"] = static_cast<std::int64_t>(requests);
  j["ok"] = static_cast<std::int64_t>(ok);
  j["errors"] = static_cast<std::int64_t>(errors);
  return j;
}

}  // namespace

void ServiceStats::record(const std::string& tenant, bool ok,
                          double service_seconds) {
  const MutexLock lock(mutex_);
  auto bump = [ok](Bucket& b) {
    ++b.requests;
    if (ok) {
      ++b.ok;
    } else {
      ++b.errors;
    }
  };
  bump(aggregate_);
  bump(tenants_[tenant]);
  if (samples_.size() < max_samples_) {
    samples_.push_back(service_seconds);
  } else {
    samples_[sample_cursor_] = service_seconds;
  }
  sample_cursor_ = (sample_cursor_ + 1) % max_samples_;
}

Json ServiceStats::snapshot(long queue_depth) const {
  Json j = Json::object();
  std::vector<double> sorted;
  {
    const MutexLock lock(mutex_);
    j["aggregate"] =
        bucket_json(aggregate_.requests, aggregate_.ok, aggregate_.errors);
    Json tenants = Json::object();
    for (const auto& [name, b] : tenants_)
      tenants[name] = bucket_json(b.requests, b.ok, b.errors);
    j["tenants"] = std::move(tenants);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  Json timing = Json::object();
  timing["p50_ms"] = quantile_ms(sorted, 0.50);
  timing["p99_ms"] = quantile_ms(sorted, 0.99);
  timing["samples"] = sorted.size();
  j["aggregate"]["service_time"] = std::move(timing);
  j["queue_depth"] = static_cast<std::int64_t>(queue_depth);
  return j;
}

}  // namespace ecotune::serve
