#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace ecotune::serve {

/// Per-tenant and aggregate request accounting for the tuning service,
/// safe to update from every worker and to snapshot concurrently from the
/// "stats" endpoint. Service times feed a bounded recent-sample ring from
/// which snapshot() derives p50/p99 (over at most `max_samples` recent
/// requests, so the quantiles track current behavior and memory stays
/// bounded no matter how long the daemon lives).
///
/// Wall-clock times are observability only: they never feed any response
/// payload of the deterministic methods, so the service's byte-identity
/// contract is untouched by timing jitter.
class ServiceStats {
 public:
  explicit ServiceStats(std::size_t max_samples = 4096)
      : max_samples_(max_samples == 0 ? 1 : max_samples) {}

  /// Records one finished request (ok or answered with an error response).
  void record(const std::string& tenant, bool ok, double service_seconds)
      ECOTUNE_EXCLUDES(mutex_);

  /// Snapshot document:
  ///   {"aggregate": {"requests": N, "ok": N, "errors": N,
  ///                  "service_time": {"p50_ms":..., "p99_ms":...,
  ///                                   "samples": N}},
  ///    "tenants": {"<tenant>": {"requests":..., "ok":..., "errors":...}},
  ///    "queue_depth": <caller-supplied gauge>}
  [[nodiscard]] Json snapshot(long queue_depth) const ECOTUNE_EXCLUDES(mutex_);

 private:
  struct Bucket {
    long requests = 0;
    long ok = 0;
    long errors = 0;
  };

  std::size_t max_samples_;
  mutable Mutex mutex_;
  Bucket aggregate_ ECOTUNE_GUARDED_BY(mutex_);
  std::map<std::string, Bucket> tenants_ ECOTUNE_GUARDED_BY(mutex_);
  /// Ring buffer of recent service times (seconds), cursor wraps.
  std::vector<double> samples_ ECOTUNE_GUARDED_BY(mutex_);
  std::size_t sample_cursor_ ECOTUNE_GUARDED_BY(mutex_) = 0;
};

}  // namespace ecotune::serve
