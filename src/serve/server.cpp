#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace ecotune::serve {
namespace {

/// Write end of the serving Server's self-pipe; the only state a signal
/// handler may touch (lock-free atomic + write(2) are async-signal-safe).
/// One daemon per process: a second concurrent serve() would take over the
/// handlers, which is the ordinary sigaction last-in-wins semantic.
std::atomic<int> g_wake_fd{-1};

void wake_signal_handler(int /*signum*/) {
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t ignored = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(TuningService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void Server::bind_and_listen() {
  ensure(listen_fd_ < 0, "Server: bind_and_listen() called twice");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ensure(socket_path_.size() < sizeof(addr.sun_path),
         "Server: socket path too long for AF_UNIX (" +
             std::to_string(socket_path_.size()) + " bytes): " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ensure(fd >= 0, "Server: socket(): " + errno_text());
  // A previous daemon that crashed leaves its socket file behind; binding
  // over it is the expected restart path.
  ::unlink(socket_path_.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = errno_text();
    ::close(fd);
    throw Error("Server: bind(" + socket_path_ + "): " + reason);
  }
  if (::listen(fd, 128) != 0) {
    const std::string reason = errno_text();
    ::close(fd);
    ::unlink(socket_path_.c_str());
    throw Error("Server: listen(" + socket_path_ + "): " + reason);
  }
  set_nonblocking(fd);
  listen_fd_ = fd;

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    const std::string reason = errno_text();
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    throw Error("Server: pipe(): " + reason);
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);
  wake_fds_[0] = pipe_fds[0];
  wake_fds_[1] = pipe_fds[1];
}

void Server::request_stop() {
  const int fd = wake_fds_[1];
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t ignored = ::write(fd, &byte, 1);
  }
}

void Server::serve() {
  ensure(listen_fd_ >= 0, "Server::serve: call bind_and_listen() first");
  // Route SIGINT/SIGTERM through the self-pipe for the duration; the old
  // dispositions come back on return so embedding tests do not leak them.
  g_wake_fd.store(wake_fds_[1]);
  struct sigaction sa {};
  sa.sa_handler = &wake_signal_handler;
  sigemptyset(&sa.sa_mask);
  struct sigaction old_int {};
  struct sigaction old_term {};
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);

  const int workers = resolve_jobs(service_.config().workers);
  log::info("serve") << "listening on " << socket_path_ << " (workers="
                     << workers << ", queue_limit="
                     << service_.config().queue_limit << ")";
  {
    // Task 0 is the listener, tasks 1..workers the request workers; all
    // concurrency routes through common/parallel (no raw threads here).
    ThreadPool pool(workers + 1);
    pool.run(static_cast<std::size_t>(workers) + 1, [this](std::size_t task) {
      // Loops keep exceptions to themselves; anything escaping here would
      // abort the whole pool batch, so turn it into a stop request instead.
      try {
        if (task == 0) {
          io_loop();
        } else {
          worker_loop();
        }
      } catch (const std::exception& e) {
        log::error("serve") << (task == 0 ? "listener" : "worker")
                            << " failed: " << e.what();
        request_stop();
        const MutexLock lock(queue_mutex_);
        draining_ = true;
      }
    });
  }

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  g_wake_fd.store(-1);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = -1;
  wake_fds_[1] = -1;
  ::unlink(socket_path_.c_str());
  log::info("serve") << "drained and stopped";
}

void Server::io_loop() {
  std::map<int, std::shared_ptr<Connection>> conns;
  bool stopping = false;
  while (!stopping) {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 2);
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back(pollfd{fd, POLLIN, 0});

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // next pass reads the wake byte
      throw Error("Server: poll(): " + errno_text());
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain_buf[64];
      while (::read(wake_fds_[0], drain_buf, sizeof drain_buf) > 0) {
      }
      stopping = true;
      continue;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;  // EAGAIN or a transient accept failure
        set_nonblocking(client);
        conns.emplace(client,
                      std::make_shared<Connection>(
                          client, service_.config().max_frame_bytes));
        log::debug("serve") << "accepted connection fd " << client;
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const auto it = conns.find(fds[i].fd);
      if (it == conns.end()) continue;
      if (!service_readable(it->second)) {
        {
          const MutexLock lock(it->second->write_mutex);
          it->second->open = false;
        }
        conns.erase(it);
      }
    }
  }

  // Graceful drain: stop accepting and reading, then let the workers
  // answer everything already queued. Jobs hold their connection alive, so
  // dropping the io references here closes each fd only after its last
  // response went out.
  {
    const MutexLock lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  log::info("serve") << "stop requested; draining "
                     << service_.queue_depth() << " queued request(s)";
  conns.clear();
}

bool Server::service_readable(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->decoder.feed(buf, static_cast<std::size_t>(n));
      try {
        while (auto frame = conn->decoder.next())
          submit_frame(conn, std::move(*frame));
      } catch (const Error& e) {
        // Corrupt framing leaves no recoverable message boundary: reject
        // loudly, answer best-effort, and drop the connection.
        log::error("serve") << "dropping connection fd " << conn->fd << ": "
                            << e.what();
        write_frame(*conn, error_response(Json(), "bad_request", e.what()));
        return false;
      }
      continue;
    }
    if (n == 0) {
      if (!conn->decoder.idle()) {
        log::error("serve") << "connection fd " << conn->fd
                            << " closed mid-frame with "
                            << conn->decoder.buffered()
                            << " undecoded byte(s) (truncated frame)";
      }
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    log::warn("serve") << "recv(fd " << conn->fd << "): " << errno_text();
    return false;
  }
}

void Server::submit_frame(const std::shared_ptr<Connection>& conn,
                          Json frame) {
  // Queue admission only peeks at id/tenant/timeout_ms; full request
  // validation (and its error responses) happens in handle() on a worker.
  Json id;
  std::string tenant = "default";
  double timeout_ms = service_.config().default_timeout_ms;
  if (frame.is_object()) {
    if (frame.contains("id")) id = frame.at("id");
    if (frame.contains("tenant") && frame.at("tenant").is_string() &&
        !frame.at("tenant").as_string().empty()) {
      tenant = frame.at("tenant").as_string();
    }
    if (frame.contains("timeout_ms") && frame.at("timeout_ms").is_number() &&
        frame.at("timeout_ms").as_number() > 0) {
      timeout_ms = frame.at("timeout_ms").as_number();
    }
  }
  Job job;
  job.conn = conn;
  job.frame = std::move(frame);
  job.id = id;
  job.tenant = tenant;
  job.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  if (!enqueue(std::move(job))) {
    service_.stats().record(tenant, false, 0.0);
    write_frame(*conn,
                error_response(
                    id, "overloaded",
                    "request queue is full (" +
                        std::to_string(service_.config().queue_limit) +
                        " waiting); retry later"));
  }
}

bool Server::enqueue(Job job) {
  {
    const MutexLock lock(queue_mutex_);
    if (draining_ || queue_.size() >= service_.config().queue_limit)
      return false;
    queue_.push_back(std::move(job));
    service_.set_queue_depth(static_cast<long>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      // Explicit predicate loop around the wait (the common/parallel
      // idiom): the analysis sees every guarded read under the lock.
      MutexLock lock(queue_mutex_);
      while (queue_.empty() && !draining_) queue_cv_.wait(lock);
      if (queue_.empty()) return;  // draining and nothing left to answer
      job = std::move(queue_.front());
      queue_.pop_front();
      service_.set_queue_depth(static_cast<long>(queue_.size()));
    }
    Json response;
    if (std::chrono::steady_clock::now() >= job.deadline) {
      response = error_response(job.id, "timeout",
                                "request expired while queued (deadline "
                                "passed before a worker picked it up)");
      service_.stats().record(job.tenant, false, 0.0);
    } else {
      response = service_.handle(job.frame);
    }
    write_frame(*job.conn, response);
  }
}

void Server::write_frame(Connection& conn, const Json& response) {
  const std::string frame = encode_frame(response);
  const MutexLock lock(conn.write_mutex);
  if (!conn.open) return;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(conn.fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Nonblocking fd with a slow reader: wait briefly for writability so
      // a burst of responses is not dropped on a full socket buffer.
      pollfd pfd{conn.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) > 0) continue;
    }
    log::warn("serve") << "send(fd " << conn.fd << "): " << errno_text()
                       << "; dropping response";
    conn.open = false;
    return;
  }
}

}  // namespace ecotune::serve
