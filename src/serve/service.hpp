#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "api/session.hpp"
#include "common/json.hpp"
#include "serve/protocol.hpp"
#include "serve/service_stats.hpp"

namespace ecotune::serve {

/// Configuration of one TuningService instance.
struct ServiceConfig {
  /// The shared Session every tenant's requests run against (one trained
  /// model, one measurement store). scope defaults to "serve" when empty so
  /// daemon entries never cross-invalidate driver entries in a shared
  /// cache directory.
  api::SessionConfig session;
  /// Concurrent request workers (0 = hardware concurrency).
  int workers = 0;
  /// Bound on queued-but-unclaimed requests; one more arriving is answered
  /// with an "overloaded" error immediately (backpressure, never deadlock).
  std::size_t queue_limit = 256;
  /// Queue-wait deadline applied when a request carries no timeout_ms.
  double default_timeout_ms = 30000;
  /// Per-frame byte ceiling on the wire.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Enables the test-only "sleep" method (deterministic queue pressure in
  /// the backpressure tests); production daemons leave this off.
  bool enable_debug_methods = false;
};

/// The transport-independent core of ecotune_serve: owns the shared
/// api::Session (warmup() runs in the constructor, so the model trains
/// exactly once, before any concurrency) and dispatches one decoded
/// request frame per handle() call.
///
/// Concurrency & determinism contract: handle() is safe to call from many
/// threads at once. Every compute method runs on a private request-keyed
/// clone of the session's tuning node (Session::*_shared), and the request
/// key is derived purely from (tenant, method, params) -- so a response is
/// a pure function of the request and the service configuration, bitwise
/// identical whether it is served concurrently, serially, or after a
/// restart (warm restarts replay whole results from the measurement
/// store). The "stats" method is the deliberate exception: it reports live
/// counters and wall-clock quantiles.
///
/// Methods: ping, methods, predict, tune, dta, evaluate, stats (and sleep
/// when enable_debug_methods). handle() never throws -- every failure maps
/// to an error response (bad_request, unknown_method, internal).
class TuningService {
 public:
  explicit TuningService(ServiceConfig config);

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Dispatches one decoded request frame and returns the response frame.
  [[nodiscard]] Json handle(const Json& frame);

  /// The stable request key handle() derives for a request without an
  /// explicit params["key"]: "<tenant>/<method>/<fnv-hex of canonical
  /// params>". Exposed so tests can address the same store entries.
  [[nodiscard]] static std::string request_key(const RpcRequest& req);

  [[nodiscard]] api::Session& session() { return session_; }
  [[nodiscard]] ServiceStats& stats() { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Queue-depth gauge surfaced by the "stats" method; the socket server
  /// maintains it (enqueue/dequeue), a transportless service leaves it 0.
  void set_queue_depth(long depth) { queue_depth_.store(depth); }
  [[nodiscard]] long queue_depth() const { return queue_depth_.load(); }

 private:
  [[nodiscard]] Json dispatch(const RpcRequest& req);

  ServiceConfig config_;
  api::Session session_;
  ServiceStats stats_;
  std::atomic<long> queue_depth_{0};
};

}  // namespace ecotune::serve
