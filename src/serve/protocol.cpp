#include "serve/protocol.hpp"

#include <cstdint>

#include "common/error.hpp"

namespace ecotune::serve {
namespace {

constexpr std::size_t kHeaderBytes = 4;

std::uint32_t read_be32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

std::string encode_frame(const Json& payload) {
  const std::string body = payload.dump(-1);
  std::string frame;
  frame.reserve(kHeaderBytes + body.size());
  const auto size = static_cast<std::uint32_t>(body.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame += body;
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<Json> FrameDecoder::next() {
  if (buffer_.size() < kHeaderBytes) return std::nullopt;
  const std::size_t body_size = read_be32(buffer_.data());
  if (body_size == 0) {
    throw Error("rpc frame: zero-length body (empty frames are malformed)");
  }
  if (body_size > max_frame_bytes_) {
    // Reject before buffering the body: the length may be garbage (e.g. a
    // peer speaking a different protocol), and honoring it would let one
    // connection allocate an arbitrary amount of memory.
    throw Error("rpc frame: declared body of " + std::to_string(body_size) +
                " bytes exceeds the " + std::to_string(max_frame_bytes_) +
                "-byte frame limit (garbage or oversized frame)");
  }
  if (buffer_.size() < kHeaderBytes + body_size) return std::nullopt;
  Json frame;
  try {
    frame = Json::parse(buffer_.substr(kHeaderBytes, body_size));
  } catch (const std::exception& e) {
    throw Error("rpc frame: body is not valid JSON (" + std::string(e.what()) +
                ")");
  }
  buffer_.erase(0, kHeaderBytes + body_size);
  return frame;
}

RpcRequest RpcRequest::from_frame(const Json& frame) {
  ensure(frame.is_object(), "rpc request: frame is not a JSON object");
  if (frame.contains("schema")) {
    ensure(frame.at("schema").is_string() &&
               frame.at("schema").as_string() == kRpcSchema,
           "rpc request: unsupported schema (expected '" +
               std::string(kRpcSchema) + "')");
  }
  RpcRequest req;
  if (frame.contains("id")) req.id = frame.at("id");
  ensure(frame.contains("method") && frame.at("method").is_string() &&
             !frame.at("method").as_string().empty(),
         "rpc request: missing or empty 'method'");
  req.method = frame.at("method").as_string();
  if (frame.contains("tenant")) {
    ensure(frame.at("tenant").is_string() &&
               !frame.at("tenant").as_string().empty(),
           "rpc request: 'tenant' must be a non-empty string");
    req.tenant = frame.at("tenant").as_string();
  }
  if (frame.contains("params")) {
    ensure(frame.at("params").is_object(),
           "rpc request: 'params' must be an object");
    req.params = frame.at("params");
  }
  if (frame.contains("timeout_ms")) {
    ensure(frame.at("timeout_ms").is_number() &&
               frame.at("timeout_ms").as_number() >= 0,
           "rpc request: 'timeout_ms' must be a non-negative number");
    req.timeout_ms = frame.at("timeout_ms").as_number();
  }
  return req;
}

Json ok_response(const Json& id, Json result) {
  Json j = Json::object();
  j["schema"] = std::string(kRpcSchema);
  j["id"] = id;
  j["ok"] = true;
  j["result"] = std::move(result);
  return j;
}

Json error_response(const Json& id, std::string_view code,
                    std::string_view message) {
  Json j = Json::object();
  j["schema"] = std::string(kRpcSchema);
  j["id"] = id;
  j["ok"] = false;
  Json err = Json::object();
  err["code"] = std::string(code);
  err["message"] = std::string(message);
  j["error"] = std::move(err);
  return j;
}

}  // namespace ecotune::serve
