#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace ecotune::serve {

/// AF_UNIX stream-socket front end for a TuningService: accepts any number
/// of client connections, decodes length-prefixed request frames, and
/// multiplexes them onto the service through a bounded queue drained by a
/// common/parallel ThreadPool (one pool task runs the poll()-based
/// accept/listener loop, the rest are request workers -- no raw threads).
///
/// Robustness contract:
///  - bounded queue: when `queue_limit` requests are already waiting, a new
///    request is answered immediately with an "overloaded" error (reject,
///    never deadlock);
///  - per-request timeouts: a request still queued past its deadline
///    (params timeout_ms, else the service default) is answered with a
///    "timeout" error instead of being executed; compute is not preempted
///    once a worker picked the request up;
///  - malformed frames (bad length prefix, non-JSON body) are rejected
///    loudly -- error logged, best-effort error frame written -- and the
///    connection is dropped, since a corrupt stream has no recoverable
///    frame boundary; shape errors inside a valid frame only fail that
///    request;
///  - graceful drain: SIGINT/SIGTERM (or request_stop()) stops accepting
///    and reading, every already-queued and in-flight request still gets
///    its response, then serve() returns.
class Server {
 public:
  /// `service` must outlive the server. The socket path is created by
  /// bind_and_listen() (any stale file at that path is unlinked first) and
  /// removed again when serve() returns.
  Server(TuningService& service, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates, binds, and listens on the AF_UNIX socket; throws
  /// ecotune::Error on any socket failure (path too long, bind refused).
  void bind_and_listen();

  /// Blocks serving requests until a stop is requested; installs
  /// SIGINT/SIGTERM handlers for the duration (restored on return) and
  /// drains gracefully. Requires bind_and_listen().
  void serve();

  /// Requests a graceful stop; callable from any thread and
  /// async-signal-safe (one byte down the wake pipe).
  void request_stop();

  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

 private:
  /// Per-connection state. The fd closes when the last reference drops, so
  /// a worker holding a job can never write into a recycled descriptor.
  struct Connection {
    explicit Connection(int fd_in, std::size_t max_frame_bytes)
        : fd(fd_in), decoder(max_frame_bytes) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    const int fd;
    FrameDecoder decoder;  ///< io-loop only
    /// Serializes response frames (workers and the io loop both write) and
    /// gates writes after close.
    Mutex write_mutex;
    bool open ECOTUNE_GUARDED_BY(write_mutex) = true;
  };

  /// One queued request.
  struct Job {
    std::shared_ptr<Connection> conn;
    Json frame;
    Json id;             ///< echoed in queue-side error responses
    std::string tenant;  ///< stats bucket for queue-side errors
    std::chrono::steady_clock::time_point deadline;
  };

  void io_loop();
  void worker_loop();
  /// Drains readable bytes of one connection; returns false when the
  /// connection must be dropped (EOF, error, malformed frame).
  [[nodiscard]] bool service_readable(const std::shared_ptr<Connection>& conn);
  /// Parses one decoded frame into a Job and queues it (or answers
  /// overloaded/bad_request immediately).
  void submit_frame(const std::shared_ptr<Connection>& conn, Json frame);
  [[nodiscard]] bool enqueue(Job job) ECOTUNE_EXCLUDES(queue_mutex_);
  /// Writes one framed response; serialized per connection, silently
  /// dropped when the peer is gone.
  void write_frame(Connection& conn, const Json& response);

  TuningService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written

  Mutex queue_mutex_;
  /// _any variant: waits on the annotated MutexLock (BasicLockable), the
  /// same idiom as common/parallel's ThreadPool.
  std::condition_variable_any queue_cv_;
  std::deque<Job> queue_ ECOTUNE_GUARDED_BY(queue_mutex_);
  bool draining_ ECOTUNE_GUARDED_BY(queue_mutex_) = false;
};

}  // namespace ecotune::serve
