#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.hpp"

namespace ecotune::serve {

/// Wire schema identifier stamped on every response (and accepted, when
/// present, on requests). Bump on any incompatible protocol change.
inline constexpr std::string_view kRpcSchema = "ecotune.rpc.v1";

/// Hard per-frame size ceiling. A length prefix beyond this is rejected as
/// malformed before any allocation: a stray client writing raw bytes at the
/// socket must not make the daemon reserve gigabytes.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;  // 8 MiB

/// Frames a payload for the wire: 4-byte big-endian byte length followed by
/// the compact (single-line) JSON dump. Length-prefixed rather than
/// newline-delimited so payloads stay free to contain anything JSON can.
[[nodiscard]] std::string encode_frame(const Json& payload);

/// Incremental decoder for the inbound byte stream of one connection.
///
/// feed() appends raw bytes; next() yields complete frames in arrival
/// order. Malformed input -- an oversized or empty length prefix, or a
/// body that is not valid JSON -- throws ecotune::Error with a diagnostic
/// naming the offending size or parse failure; the connection owner is
/// expected to answer with a protocol error and drop the connection, since
/// a corrupted stream has no recoverable frame boundary.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the wire.
  void feed(const char* data, std::size_t size);

  /// Returns the next complete frame, or nullopt if more bytes are needed.
  /// Throws ecotune::Error on malformed input (see class comment).
  [[nodiscard]] std::optional<Json> next();

  /// True when no partial frame is pending -- the clean-EOF condition. A
  /// peer that disconnects while idle() is false truncated a frame.
  [[nodiscard]] bool idle() const { return buffer_.empty(); }

  /// Bytes currently buffered (diagnostics).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

/// One parsed request of the ecotune.rpc.v1 protocol:
///   {"id": <any>, "tenant": "team-a", "method": "tune",
///    "params": {...}, "timeout_ms": 30000}
/// Only "method" is required. "id" is echoed verbatim in the response (null
/// if absent); "tenant" defaults to "default"; "params" defaults to {};
/// "timeout_ms" (0 = the service default) bounds the time the request may
/// wait in the daemon's queue before it is answered with a timeout error.
struct RpcRequest {
  Json id;
  std::string tenant = "default";
  std::string method;
  Json params = Json::object();
  double timeout_ms = 0;

  /// Parses and validates a decoded frame; throws ecotune::Error with a
  /// field-naming message on any shape violation (non-object frame, absent
  /// or empty method, wrong field types, mismatched "schema").
  [[nodiscard]] static RpcRequest from_frame(const Json& frame);
};

/// {"schema": "ecotune.rpc.v1", "id": <id>, "ok": true, "result": <result>}
[[nodiscard]] Json ok_response(const Json& id, Json result);

/// {"schema": ..., "id": <id>, "ok": false,
///  "error": {"code": "...", "message": "..."}}
/// Codes in use: bad_request, unknown_method, overloaded, timeout, internal.
[[nodiscard]] Json error_response(const Json& id, std::string_view code,
                                  std::string_view message);

}  // namespace ecotune::serve
