#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/units.hpp"
#include "instr/profile.hpp"

namespace ecotune::readex {

/// One region that qualified as significant (mean execution time above the
/// threshold, paper Sec. III-A).
struct SignificantRegion {
  std::string name;
  Seconds mean_time{0};
  long count = 0;
  /// Share of phase time spent in this region.
  double weight = 0.0;
  /// Intra-phase execution-time variation (max-min over mean).
  double variation = 0.0;
};

/// Output of readex-dyn-detect: the significant regions plus dynamism
/// metrics, convertible into the tuning plugin's configuration file.
struct DynDetectReport {
  std::vector<SignificantRegion> significant;
  std::vector<std::string> insignificant;
  Seconds threshold{0.1};
  Seconds phase_mean_time{0};
  /// Inter-region dynamism: spread of per-region compute weights; high
  /// values indicate region-level tuning potential.
  double inter_region_dynamism = 0.0;

  [[nodiscard]] bool is_significant(const std::string& region) const;

  /// Serializes the plugin configuration file (significant regions, phase
  /// region name, OpenMP thread range defaults).
  [[nodiscard]] Json to_config_file() const;
};

/// The readex-dyn-detect tool: classifies profiled regions by the 100 ms
/// significance threshold chosen so that HDEEM's measurement delay and the
/// DVFS/UFS switching latencies stay negligible (paper Sec. III-A).
[[nodiscard]] DynDetectReport readex_dyn_detect(
    const instr::CallTreeProfile& profile, Seconds threshold = Seconds(0.1));

}  // namespace ecotune::readex
