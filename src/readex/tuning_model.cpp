#include "readex/tuning_model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ecotune::readex {

void TuningModel::add_region(const std::string& region,
                             const SystemConfig& config) {
  ensure(!classifier_.contains(region),
         "TuningModel::add_region: region '" + region + "' already present");
  // Group: reuse the scenario with an identical configuration if any.
  auto it = std::find_if(scenarios_.begin(), scenarios_.end(),
                         [&](const TmScenario& s) {
                           return s.config == config;
                         });
  if (it == scenarios_.end()) {
    TmScenario s;
    s.id = static_cast<int>(scenarios_.size());
    s.config = config;
    scenarios_.push_back(std::move(s));
    it = std::prev(scenarios_.end());
  }
  it->regions.push_back(region);
  classifier_.emplace(region, it->id);
  region_order_.push_back(region);
}

std::optional<SystemConfig> TuningModel::lookup(
    const std::string& region) const {
  auto it = classifier_.find(region);
  if (it == classifier_.end()) return std::nullopt;
  return scenarios_[static_cast<std::size_t>(it->second)].config;
}

int TuningModel::scenario_id(const std::string& region) const {
  auto it = classifier_.find(region);
  return it == classifier_.end() ? -1 : it->second;
}

std::vector<std::string> TuningModel::regions() const { return region_order_; }

Json TuningModel::to_json() const {
  Json j = Json::object();
  Json scenarios = Json::array();
  for (const auto& s : scenarios_) {
    Json sj = Json::object();
    sj["id"] = s.id;
    sj["threads"] = s.config.threads;
    sj["core_freq_mhz"] = s.config.core.as_mhz();
    sj["uncore_freq_mhz"] = s.config.uncore.as_mhz();
    Json regions = Json::array();
    for (const auto& r : s.regions) regions.push_back(r);
    sj["regions"] = std::move(regions);
    scenarios.push_back(std::move(sj));
  }
  j["scenarios"] = std::move(scenarios);
  return j;
}

TuningModel TuningModel::from_json(const Json& j) {
  TuningModel m;
  for (const auto& sj : j.at("scenarios").as_array()) {
    SystemConfig c;
    c.threads = sj.at("threads").as_int();
    c.core = CoreFreq::mhz(sj.at("core_freq_mhz").as_int());
    c.uncore = UncoreFreq::mhz(sj.at("uncore_freq_mhz").as_int());
    for (const auto& r : sj.at("regions").as_array())
      m.add_region(r.as_string(), c);
  }
  return m;
}

void TuningModel::save(const std::string& path) const {
  std::ofstream os(path);
  ensure(os.good(), "TuningModel::save: cannot open '" + path + "'");
  os << to_json().dump(2) << '\n';
  ensure(os.good(), "TuningModel::save: write failed");
}

TuningModel TuningModel::load(const std::string& path) {
  std::ifstream is(path);
  ensure(is.good(), "TuningModel::load: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  return from_json(Json::parse(buf.str()));
}

}  // namespace ecotune::readex
