#include "readex/rrl.hpp"

namespace ecotune::readex {

Rrl::Rrl(const TuningModel& model, instr::ExecutionContext& ctx)
    : model_(model), ctx_(ctx), pcps_(instr::default_pcps()) {}

void Rrl::on_enter(const instr::RegionEnter& e) {
  if (e.type == instr::RegionType::kPhase) return;
  ++lookups_;
  const auto config = model_.lookup(std::string(e.region));
  if (!config) return;
  if (*config == ctx_.current()) return;
  // Apply through the PCP stack (OpenMPTP, cpu_freq, uncore_freq).
  Seconds overhead{0};
  for (const auto& pcp : pcps_) {
    if (pcp->name() == "OpenMPTP") {
      overhead += pcp->set(ctx_, config->threads);
    } else if (pcp->name() == "cpu_freq") {
      overhead += pcp->set(ctx_, config->core.as_mhz());
    } else if (pcp->name() == "uncore_freq") {
      overhead += pcp->set(ctx_, config->uncore.as_mhz());
    }
  }
  if (overhead.value() > 0) {
    ++switches_;
    switch_overhead_ += overhead;
  }
}

RatResult run_with_rrl(const workload::Benchmark& app,
                       hwsim::NodeSimulator& node, const TuningModel& model,
                       const instr::InstrumentationFilter& filter,
                       const SystemConfig& initial) {
  instr::ExecutionContext ctx(node);
  ctx.apply(initial);
  Rrl rrl(model, ctx);
  instr::ScorepRuntime runtime(app, filter);
  runtime.add_listener(&rrl);
  RatResult result;
  result.run = runtime.execute(ctx);
  result.switches = rrl.switches();
  result.switch_overhead = rrl.switch_overhead();
  result.lookups = rrl.lookups();
  return result;
}

}  // namespace ecotune::readex
