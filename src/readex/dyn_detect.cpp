#include "readex/dyn_detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ecotune::readex {

bool DynDetectReport::is_significant(const std::string& region) const {
  return std::any_of(significant.begin(), significant.end(),
                     [&](const SignificantRegion& s) {
                       return s.name == region;
                     });
}

Json DynDetectReport::to_config_file() const {
  Json j = Json::object();
  j["phase_region"] = "PHASE";
  j["significance_threshold_ms"] = threshold.value() * 1e3;
  Json regions = Json::array();
  for (const auto& s : significant) {
    Json r = Json::object();
    r["name"] = s.name;
    r["mean_time_ms"] = s.mean_time.value() * 1e3;
    r["weight"] = s.weight;
    regions.push_back(std::move(r));
  }
  j["significant_regions"] = std::move(regions);
  Json omp = Json::object();
  omp["lower"] = 12;
  omp["step"] = 4;
  j["omp_threads"] = std::move(omp);
  return j;
}

DynDetectReport readex_dyn_detect(const instr::CallTreeProfile& profile,
                                  Seconds threshold) {
  DynDetectReport report;
  report.threshold = threshold;
  const long phases = profile.phase_count();
  ensure(phases > 0, "readex_dyn_detect: profile has no phase region");
  report.phase_mean_time =
      profile.phase_time() / static_cast<double>(phases);

  double weight_sum_sq = 0.0;
  double weight_sum = 0.0;
  for (const auto& s : profile.all()) {
    if (s.type == instr::RegionType::kPhase) continue;
    if (s.mean_time() >= threshold) {
      SignificantRegion sig;
      sig.name = s.name;
      sig.mean_time = s.mean_time();
      sig.count = s.count;
      sig.weight = report.phase_mean_time.value() > 0
                       ? s.total_time.value() /
                             profile.phase_time().value()
                       : 0.0;
      sig.variation = s.time_spread();
      weight_sum += sig.weight;
      weight_sum_sq += sig.weight * sig.weight;
      report.significant.push_back(std::move(sig));
    } else {
      report.insignificant.push_back(s.name);
    }
  }
  // Inter-region dynamism: 0 when one region dominates, approaching 1 when
  // phase time is spread over many regions (normalized inverse Herfindahl).
  if (weight_sum > 0 && report.significant.size() > 1) {
    const double herfindahl =
        weight_sum_sq / (weight_sum * weight_sum);
    const double n = static_cast<double>(report.significant.size());
    report.inter_region_dynamism =
        (1.0 - herfindahl) / (1.0 - 1.0 / n);
  }
  return report;
}

}  // namespace ecotune::readex
