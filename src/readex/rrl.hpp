#pragma once

#include <memory>
#include <string>
#include <vector>

#include "instr/pcp.hpp"
#include "instr/region_events.hpp"
#include "instr/scorep_runtime.hpp"
#include "readex/tuning_model.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::readex {

/// The READEX Runtime Library: loads a tuning model and, at every
/// significant-region enter, switches the system configuration to the
/// region's scenario through the Parameter Control Plugins (paper Sec. V-D,
/// Runtime Application Tuning). Regions not present in the model keep the
/// last applied configuration.
class Rrl final : public instr::RegionListener {
 public:
  /// `ctx` must outlive the Rrl; switching is accounted on it.
  Rrl(const TuningModel& model, instr::ExecutionContext& ctx);

  // instr::RegionListener:
  void on_enter(const instr::RegionEnter& e) override;

  /// Number of region enters that caused an actual configuration change.
  [[nodiscard]] long switches() const { return switches_; }
  /// Total DVFS/UFS/thread switching overhead charged.
  [[nodiscard]] Seconds switch_overhead() const { return switch_overhead_; }
  /// Region enters observed (significant-region lookups).
  [[nodiscard]] long lookups() const { return lookups_; }

 private:
  const TuningModel& model_;
  instr::ExecutionContext& ctx_;
  std::vector<std::unique_ptr<instr::Pcp>> pcps_;
  long switches_ = 0;
  long lookups_ = 0;
  Seconds switch_overhead_{0};
};

/// Result of a production run under RRL control.
struct RatResult {
  instr::AppRunResult run;     ///< run totals (instrumented, switched)
  long switches = 0;           ///< configuration changes performed
  Seconds switch_overhead{0};  ///< time spent switching
  long lookups = 0;            ///< region enters seen by RRL
};

/// Convenience: execute a production run of `app` on `node` under RRL
/// control with the given tuning model. `filter` should instrument exactly
/// the significant regions plus the phase (as DTA configured it).
[[nodiscard]] RatResult run_with_rrl(const workload::Benchmark& app,
                                     hwsim::NodeSimulator& node,
                                     const TuningModel& model,
                                     const instr::InstrumentationFilter& filter,
                                     const SystemConfig& initial);

}  // namespace ecotune::readex
