#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"

namespace ecotune::readex {

/// One scenario of the tuning model: a best-found configuration shared by
/// all regions the classifier maps to it (the System-Scenario methodology of
/// paper Sec. I/III-D).
struct TmScenario {
  int id = 0;
  SystemConfig config;
  std::vector<std::string> regions;
};

/// The READEX tuning model: the design-time analysis product consumed by the
/// RRL at production time. Regions with identical best configurations are
/// grouped into scenarios to avoid needless dynamic switching.
class TuningModel {
 public:
  /// Registers a region with its best-found configuration; regions with the
  /// same configuration share one scenario.
  void add_region(const std::string& region, const SystemConfig& config);

  /// Scenario lookup through the classifier; nullopt for unknown regions.
  [[nodiscard]] std::optional<SystemConfig> lookup(
      const std::string& region) const;
  /// Scenario id for a region; -1 when unknown.
  [[nodiscard]] int scenario_id(const std::string& region) const;

  [[nodiscard]] const std::vector<TmScenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] std::size_t region_count() const { return classifier_.size(); }

  /// All region names in insertion order.
  [[nodiscard]] std::vector<std::string> regions() const;

  /// JSON serialization (the file RRL loads via SCOREP_RRL_TMM_PATH).
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static TuningModel from_json(const Json& j);
  void save(const std::string& path) const;
  [[nodiscard]] static TuningModel load(const std::string& path);

 private:
  std::vector<TmScenario> scenarios_;
  /// The classifier: maps each region onto a unique scenario (paper
  /// Sec. III-D).
  std::map<std::string, int> classifier_;
  std::vector<std::string> region_order_;
};

}  // namespace ecotune::readex
