#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "hwsim/node.hpp"
#include "ptf/objectives.hpp"
#include "ptf/tuner.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::baseline {

/// Options of the exhaustive per-region search.
struct ExhaustiveTunerOptions {
  std::vector<int> thread_counts{12, 16, 20, 24};
  int cf_stride = 1;
  int ucf_stride = 1;
  /// Concurrent full-application runs, each on its own node clone
  /// (1 = serial, 0 = hardware concurrency); output is identical for any
  /// value.
  int jobs = 1;
  /// Optional persistent measurement store (not owned): answers individual
  /// configuration runs from a previous session when benchmark, config, and
  /// node-state fingerprint match. Jobs-invariant by construction.
  store::MeasurementStore* store = nullptr;
  /// Optional store task-key namespace ("exhaustive/<app>/<key_scope>/...");
  /// see StaticTunerOptions::key_scope.
  std::string key_scope;
};

/// Search result with both the actual simulated cost and the paper's cost
/// formula for the approach of Sourouri et al. [7] (n x k x l x m full
/// application runs, Sec. V-C).
struct ExhaustiveTuningResult {
  std::map<std::string, SystemConfig> region_best;
  SystemConfig app_best;
  long runs = 0;                 ///< full application runs performed
  Seconds search_time{0};        ///< simulated wall time of the search
  double formula_runs = 0;       ///< n * k * l * m (paper's accounting)
  Seconds formula_time{0};       ///< formula_runs * t(one run)
};

/// The exhaustive dynamic-tuning baseline (Sourouri et al., SC'17): every
/// region is manually instrumented and the full (threads x CF x UCF) space
/// is searched with whole-application runs -- no significant-region
/// filtering, no model-based search-space reduction. Used for the
/// tuning-time comparison of paper Sec. V-C.
class ExhaustiveTuner final : public Tuner {
 public:
  ExhaustiveTuner(hwsim::NodeSimulator& node,
                  ExhaustiveTunerOptions options = {});

  [[nodiscard]] ExhaustiveTuningResult tune(
      const workload::Benchmark& app,
      const ptf::TuningObjective& objective = ptf::EnergyObjective{});

  /// Tuner interface: same search, strategy-agnostic outcome (best config =
  /// the whole-app winner; region_best carries the per-region winners).
  [[nodiscard]] std::string_view name() const override { return "exhaustive"; }
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request) override;

 private:
  hwsim::NodeSimulator& node_;
  ExhaustiveTunerOptions options_;
  long tune_calls_ = 0;  ///< decorrelates noise across tune() calls
};

}  // namespace ecotune::baseline
