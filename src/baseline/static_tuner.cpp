#include "baseline/static_tuner.hpp"

#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "instr/scorep_runtime.hpp"
#include "store/measurement_store.hpp"

namespace ecotune::baseline {

StaticTuner::StaticTuner(hwsim::NodeSimulator& node,
                         StaticTunerOptions options)
    : node_(node), options_(options) {}

StaticTuningResult StaticTuner::tune(const workload::Benchmark& app,
                                     const ptf::TuningObjective& objective) {
  const auto& spec = node_.spec();
  const workload::Benchmark short_app =
      app.with_iterations(options_.phase_iterations);

  // Materialize the searched lattice in sweep order (threads, CF, UCF).
  std::vector<SystemConfig> configs;
  for (int threads : options_.thread_counts) {
    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        configs.push_back(SystemConfig{threads, spec.core_grid.at(ci),
                                       spec.uncore_grid.at(ui)});
      }
    }
  }
  ensure(!configs.empty(), "StaticTuner::tune: empty search space");

  // Evaluate every configuration on its own node clone with jitter keyed
  // by (tune() call, config index), so the sweep parallelizes without
  // changing any result and repeated tune() calls draw fresh noise.
  const long call_tag = tune_calls_++;
  struct Evaluated {
    StaticPoint point;
    Seconds elapsed{0};
  };
  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", node_.state_fingerprint())
        .add_digest("app", short_app.fingerprint_digest());
  }
  const auto evaluated = parallel_map_ordered(
      configs.size(),
      [&](std::size_t i) {
        const std::string noise_key = "static-tuner-" +
                                      std::to_string(call_tag) + "-" +
                                      std::to_string(i);
        Evaluated e;
        e.point.config = configs[i];

        store::MeasurementKey cache_key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("noise_key", noise_key).add("config", configs[i]);
          cache_key.task =
              "static/" + app.name() +
              (options_.key_scope.empty() ? "" : "/" + options_.key_scope) +
              "/" + noise_key;
          cache_key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(cache_key)) {
            try {
              Evaluated cached = e;
              cached.point.node_energy =
                  Joules(hit->at("node_energy").as_number());
              cached.point.cpu_energy =
                  Joules(hit->at("cpu_energy").as_number());
              cached.point.time = Seconds(hit->at("time").as_number());
              cached.elapsed = Seconds(hit->at("elapsed").as_number());
              return cached;
            } catch (const std::exception& ex) {
              log::error("store")
                  << "undecodable cache payload for '" << cache_key.task
                  << "' (" << ex.what() << "); re-simulating";
            }
          }
        }

        hwsim::NodeSimulator node = node_.clone(noise_key);
        const Seconds t0 = node.now();
        const auto run =
            instr::run_uninstrumented(short_app, node, e.point.config);
        e.point.node_energy = run.node_energy;
        e.point.cpu_energy = run.cpu_energy;
        e.point.time = run.wall_time;
        e.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json payload = Json::object();
          payload["node_energy"] = e.point.node_energy.value();
          payload["cpu_energy"] = e.point.cpu_energy.value();
          payload["time"] = e.point.time.value();
          payload["elapsed"] = e.elapsed.value();
          cache->insert(cache_key, payload);
        }
        return e;
      },
      options_.jobs);

  // Ordered reduce in sweep order: first strict improvement wins, exactly
  // as the serial loop selected.
  StaticTuningResult result;
  double best_score = std::numeric_limits<double>::max();
  Seconds total{0};
  for (const auto& e : evaluated) {
    ++result.runs;
    ptf::Measurement m;
    m.node_energy = e.point.node_energy;
    m.cpu_energy = e.point.cpu_energy;
    m.time = e.point.time;
    m.count = 1;
    const double score = objective.evaluate(m);
    if (score < best_score) {
      best_score = score;
      result.best = e.point.config;
      result.best_point = e.point;
    }
    result.evaluated.push_back(e.point);
    total += e.elapsed;
  }
  result.search_time = total;
  // The clones consumed simulated time off the parent's timeline; put it
  // back so downstream accounting (now() deltas) stays meaningful.
  node_.idle(total);
  return result;
}

TuningOutcome StaticTuner::tune(const TuningRequest& request) {
  const auto objective = ptf::make_objective(request.objective);
  const StaticTuningResult result = tune(request.app, *objective);
  TuningOutcome out;
  out.tuner = std::string(name());
  out.objective = std::string(objective->name());
  out.best = result.best;
  out.scenarios_evaluated = result.runs;
  out.app_runs = result.runs;
  out.tuning_time = result.search_time;
  out.best_measurement.node_energy = result.best_point.node_energy;
  out.best_measurement.cpu_energy = result.best_point.cpu_energy;
  out.best_measurement.time = result.best_point.time;
  out.best_measurement.count = 1;
  return out;
}

}  // namespace ecotune::baseline
