#include "baseline/static_tuner.hpp"

#include <limits>

#include "common/error.hpp"
#include "instr/scorep_runtime.hpp"

namespace ecotune::baseline {

StaticTuner::StaticTuner(hwsim::NodeSimulator& node,
                         StaticTunerOptions options)
    : node_(node), options_(options) {}

StaticTuningResult StaticTuner::tune(const workload::Benchmark& app,
                                     const ptf::TuningObjective& objective) {
  const auto& spec = node_.spec();
  const workload::Benchmark short_app =
      app.with_iterations(options_.phase_iterations);

  StaticTuningResult result;
  double best_score = std::numeric_limits<double>::max();
  const Seconds t0 = node_.now();

  for (int threads : options_.thread_counts) {
    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        StaticPoint p;
        p.config = SystemConfig{threads, spec.core_grid.at(ci),
                                spec.uncore_grid.at(ui)};
        const auto run =
            instr::run_uninstrumented(short_app, node_, p.config);
        p.node_energy = run.node_energy;
        p.cpu_energy = run.cpu_energy;
        p.time = run.wall_time;
        ++result.runs;

        ptf::Measurement m;
        m.node_energy = p.node_energy;
        m.cpu_energy = p.cpu_energy;
        m.time = p.time;
        m.count = 1;
        const double score = objective.evaluate(m);
        if (score < best_score) {
          best_score = score;
          result.best = p.config;
          result.best_point = p;
        }
        result.evaluated.push_back(std::move(p));
      }
    }
  }
  result.search_time = node_.now() - t0;
  ensure(result.runs > 0, "StaticTuner::tune: empty search space");
  return result;
}

}  // namespace ecotune::baseline
