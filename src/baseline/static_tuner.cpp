#include "baseline/static_tuner.hpp"

#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "instr/scorep_runtime.hpp"

namespace ecotune::baseline {

StaticTuner::StaticTuner(hwsim::NodeSimulator& node,
                         StaticTunerOptions options)
    : node_(node), options_(options) {}

StaticTuningResult StaticTuner::tune(const workload::Benchmark& app,
                                     const ptf::TuningObjective& objective) {
  const auto& spec = node_.spec();
  const workload::Benchmark short_app =
      app.with_iterations(options_.phase_iterations);

  // Materialize the searched lattice in sweep order (threads, CF, UCF).
  std::vector<SystemConfig> configs;
  for (int threads : options_.thread_counts) {
    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        configs.push_back(SystemConfig{threads, spec.core_grid.at(ci),
                                       spec.uncore_grid.at(ui)});
      }
    }
  }
  ensure(!configs.empty(), "StaticTuner::tune: empty search space");

  // Evaluate every configuration on its own node clone with jitter keyed
  // by (tune() call, config index), so the sweep parallelizes without
  // changing any result and repeated tune() calls draw fresh noise.
  const long call_tag = tune_calls_++;
  struct Evaluated {
    StaticPoint point;
    Seconds elapsed{0};
  };
  const auto evaluated = parallel_map_ordered(
      configs.size(),
      [&](std::size_t i) {
        hwsim::NodeSimulator node =
            node_.clone("static-tuner-" + std::to_string(call_tag) + "-" +
                        std::to_string(i));
        const Seconds t0 = node.now();
        Evaluated e;
        e.point.config = configs[i];
        const auto run =
            instr::run_uninstrumented(short_app, node, e.point.config);
        e.point.node_energy = run.node_energy;
        e.point.cpu_energy = run.cpu_energy;
        e.point.time = run.wall_time;
        e.elapsed = node.now() - t0;
        return e;
      },
      options_.jobs);

  // Ordered reduce in sweep order: first strict improvement wins, exactly
  // as the serial loop selected.
  StaticTuningResult result;
  double best_score = std::numeric_limits<double>::max();
  Seconds total{0};
  for (const auto& e : evaluated) {
    ++result.runs;
    ptf::Measurement m;
    m.node_energy = e.point.node_energy;
    m.cpu_energy = e.point.cpu_energy;
    m.time = e.point.time;
    m.count = 1;
    const double score = objective.evaluate(m);
    if (score < best_score) {
      best_score = score;
      result.best = e.point.config;
      result.best_point = e.point;
    }
    result.evaluated.push_back(e.point);
    total += e.elapsed;
  }
  result.search_time = total;
  // The clones consumed simulated time off the parent's timeline; put it
  // back so downstream accounting (now() deltas) stays meaningful.
  node_.idle(total);
  return result;
}

}  // namespace ecotune::baseline
