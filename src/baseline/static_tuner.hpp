#pragma once

#include <vector>

#include "common/config.hpp"
#include "hwsim/node.hpp"
#include "ptf/objectives.hpp"
#include "ptf/tuner.hpp"
#include "workload/benchmark.hpp"

namespace ecotune::store {
class MeasurementStore;
}

namespace ecotune::baseline {

/// Options of the whole-application (static) configuration search.
struct StaticTunerOptions {
  std::vector<int> thread_counts{12, 16, 20, 24};
  /// Stride over the frequency grids (1 = exhaustive, paper Table V).
  int cf_stride = 1;
  int ucf_stride = 1;
  /// Search runs use shortened phase loops.
  int phase_iterations = 2;
  /// Concurrent configuration evaluations, each on its own node clone
  /// (1 = serial, 0 = hardware concurrency). Results are identical for any
  /// value: per-config jitter streams are keyed by sweep index and the
  /// winner is reduced in sweep order.
  int jobs = 1;
  /// Optional persistent measurement store (not owned): answers individual
  /// configuration evaluations from a previous session when benchmark,
  /// config, and node-state fingerprint match. Jobs-invariant.
  store::MeasurementStore* store = nullptr;
  /// Optional store task-key namespace ("static/<app>/<key_scope>/...").
  /// Concurrent searches over the same benchmark (service requests, rows of
  /// one evaluation) must carry distinct scopes or their per-config entries
  /// collide on identical task ids and ping-pong-invalidate each other.
  std::string key_scope;
};

/// One evaluated configuration.
struct StaticPoint {
  SystemConfig config;
  Joules node_energy{0};
  Joules cpu_energy{0};
  Seconds time{0};
};

/// Search result.
struct StaticTuningResult {
  SystemConfig best;
  StaticPoint best_point;
  long runs = 0;
  Seconds search_time{0};
  std::vector<StaticPoint> evaluated;  ///< every point, search order
};

/// The static-tuning baseline of paper Sec. V-D / Table V: run the whole
/// (uninstrumented) application at every (threads, CF, UCF) combination and
/// keep the configuration minimizing the objective. The best static
/// configuration equals the best phase-region configuration.
class StaticTuner final : public Tuner {
 public:
  StaticTuner(hwsim::NodeSimulator& node, StaticTunerOptions options = {});

  [[nodiscard]] StaticTuningResult tune(
      const workload::Benchmark& app,
      const ptf::TuningObjective& objective = ptf::EnergyObjective{});

  /// Tuner interface: runs the same search and reports the strategy-agnostic
  /// outcome (best config = the winning static point).
  [[nodiscard]] std::string_view name() const override { return "static"; }
  [[nodiscard]] TuningOutcome tune(const TuningRequest& request) override;

 private:
  hwsim::NodeSimulator& node_;
  StaticTunerOptions options_;
  long tune_calls_ = 0;  ///< decorrelates noise across tune() calls
};

}  // namespace ecotune::baseline
