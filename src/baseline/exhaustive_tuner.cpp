#include "baseline/exhaustive_tuner.hpp"

#include <limits>

#include "common/error.hpp"
#include "instr/scorep_runtime.hpp"

namespace ecotune::baseline {
namespace {

/// Collects per-region measurements of one manually instrumented run.
class RegionCollector final : public instr::RegionListener {
 public:
  void on_exit(const instr::RegionExit& e) override {
    if (e.type == instr::RegionType::kPhase) return;
    auto& m = measurements_[std::string(e.region)];
    m.node_energy += e.node_energy;
    m.cpu_energy += e.cpu_energy;
    m.time += e.duration();
    m.count += 1;
  }

  [[nodiscard]] const std::map<std::string, ptf::Measurement>& measurements()
      const {
    return measurements_;
  }

 private:
  std::map<std::string, ptf::Measurement> measurements_;
};

}  // namespace

ExhaustiveTuner::ExhaustiveTuner(hwsim::NodeSimulator& node,
                                 ExhaustiveTunerOptions options)
    : node_(node), options_(options) {}

ExhaustiveTuningResult ExhaustiveTuner::tune(
    const workload::Benchmark& app, const ptf::TuningObjective& objective) {
  const auto& spec = node_.spec();
  ExhaustiveTuningResult result;

  std::map<std::string, double> best_scores;
  double best_app_score = std::numeric_limits<double>::max();
  const Seconds t0 = node_.now();
  Seconds one_run_time{0};

  for (int threads : options_.thread_counts) {
    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        const SystemConfig config{threads, spec.core_grid.at(ci),
                                  spec.uncore_grid.at(ui)};
        // Manual instrumentation of every region (Sourouri et al. annotate
        // each region by hand): full instrumentation, full application run.
        instr::ExecutionContext ctx(node_);
        ctx.apply(config);
        RegionCollector collector;
        instr::ScorepRuntime runtime(
            app, instr::InstrumentationFilter::instrument_all());
        runtime.add_listener(&collector);
        const auto run = runtime.execute(ctx);
        ++result.runs;
        if (one_run_time.value() == 0) one_run_time = run.wall_time;

        ptf::Measurement app_m;
        app_m.node_energy = run.node_energy;
        app_m.cpu_energy = run.cpu_energy;
        app_m.time = run.wall_time;
        app_m.count = 1;
        if (objective.evaluate(app_m) < best_app_score) {
          best_app_score = objective.evaluate(app_m);
          result.app_best = config;
        }

        for (const auto& [region, m] : collector.measurements()) {
          const double score = objective.evaluate(m);
          auto it = best_scores.find(region);
          if (it == best_scores.end() || score < it->second) {
            best_scores[region] = score;
            result.region_best[region] = config;
          }
        }
      }
    }
  }
  result.search_time = node_.now() - t0;
  ensure(result.runs > 0, "ExhaustiveTuner::tune: empty search space");

  // Paper formula: n regions x k x l x m configurations, one full run each.
  const double n = static_cast<double>(result.region_best.size());
  const double klm = static_cast<double>(result.runs);
  result.formula_runs = n * klm;
  result.formula_time = one_run_time * result.formula_runs;
  return result;
}

}  // namespace ecotune::baseline
