#include "baseline/exhaustive_tuner.hpp"

#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "instr/scorep_runtime.hpp"
#include "store/measurement_store.hpp"

namespace ecotune::baseline {
namespace {

/// Collects per-region measurements of one manually instrumented run.
class RegionCollector final : public instr::RegionListener {
 public:
  void on_exit(const instr::RegionExit& e) override {
    if (e.type == instr::RegionType::kPhase) return;
    auto& m = measurements_[std::string(e.region)];
    m.node_energy += e.node_energy;
    m.cpu_energy += e.cpu_energy;
    m.time += e.duration();
    m.count += 1;
  }

  [[nodiscard]] const std::map<std::string, ptf::Measurement>& measurements()
      const {
    return measurements_;
  }

 private:
  std::map<std::string, ptf::Measurement> measurements_;
};

}  // namespace

ExhaustiveTuner::ExhaustiveTuner(hwsim::NodeSimulator& node,
                                 ExhaustiveTunerOptions options)
    : node_(node), options_(options) {}

ExhaustiveTuningResult ExhaustiveTuner::tune(
    const workload::Benchmark& app, const ptf::TuningObjective& objective) {
  const auto& spec = node_.spec();

  // The full (threads x CF x UCF) lattice in sweep order.
  std::vector<SystemConfig> configs;
  for (int threads : options_.thread_counts) {
    for (std::size_t ci = 0; ci < spec.core_grid.size();
         ci += static_cast<std::size_t>(options_.cf_stride)) {
      for (std::size_t ui = 0; ui < spec.uncore_grid.size();
           ui += static_cast<std::size_t>(options_.ucf_stride)) {
        configs.push_back(SystemConfig{threads, spec.core_grid.at(ci),
                                       spec.uncore_grid.at(ui)});
      }
    }
  }
  ensure(!configs.empty(), "ExhaustiveTuner::tune: empty search space");

  // Manual instrumentation of every region (Sourouri et al. annotate each
  // region by hand): full instrumentation, full application run. Each
  // configuration runs on a node clone with jitter keyed by (tune() call,
  // config index) so the sweep parallelizes deterministically and repeated
  // tune() calls draw fresh noise.
  const long call_tag = tune_calls_++;
  struct RunOutcome {
    ptf::Measurement app;
    std::map<std::string, ptf::Measurement> regions;
    Seconds wall_time{0};
    Seconds elapsed{0};
  };
  store::MeasurementStore* cache =
      options_.store != nullptr && options_.store->enabled() ? options_.store
                                                             : nullptr;
  Fingerprint base_fp;
  if (cache != nullptr) {
    base_fp.add_digest("node", node_.state_fingerprint())
        .add_digest("app", app.fingerprint_digest());
  }
  const auto outcomes = parallel_map_ordered(
      configs.size(),
      [&](std::size_t i) {
        const std::string noise_key = "exhaustive-tuner-" +
                                      std::to_string(call_tag) + "-" +
                                      std::to_string(i);
        store::MeasurementKey cache_key;
        if (cache != nullptr) {
          Fingerprint fp = base_fp;
          fp.add("noise_key", noise_key).add("config", configs[i]);
          cache_key.task =
              "exhaustive/" + app.name() +
              (options_.key_scope.empty() ? "" : "/" + options_.key_scope) +
              "/" + noise_key;
          cache_key.fingerprint = fp.digest();
          if (const auto hit = cache->lookup(cache_key)) {
            try {
              RunOutcome out;
              out.app = ptf::measurement_from_json(hit->at("app"));
              for (const auto& [region, m] : hit->at("regions").as_object())
                out.regions[region] = ptf::measurement_from_json(m);
              // Every fully instrumented run measures all of the app's
              // regions; fewer means the payload is from another schema.
              ensure(out.regions.size() == app.regions().size(),
                     "payload covers a different region set");
              out.wall_time = Seconds(hit->at("wall_time").as_number());
              out.elapsed = Seconds(hit->at("elapsed").as_number());
              return out;
            } catch (const std::exception& e) {
              log::error("store")
                  << "undecodable cache payload for '" << cache_key.task
                  << "' (" << e.what() << "); re-simulating";
            }
          }
        }

        hwsim::NodeSimulator node = node_.clone(noise_key);
        const Seconds t0 = node.now();
        instr::ExecutionContext ctx(node);
        ctx.apply(configs[i]);
        RegionCollector collector;
        instr::ScorepRuntime runtime(
            app, instr::InstrumentationFilter::instrument_all());
        runtime.add_listener(&collector);
        const auto run = runtime.execute(ctx);

        RunOutcome out;
        out.app.node_energy = run.node_energy;
        out.app.cpu_energy = run.cpu_energy;
        out.app.time = run.wall_time;
        out.app.count = 1;
        out.regions = collector.measurements();
        out.wall_time = run.wall_time;
        out.elapsed = node.now() - t0;

        if (cache != nullptr) {
          Json payload = Json::object();
          payload["app"] = ptf::to_json(out.app);
          Json regions = Json::object();
          for (const auto& [region, m] : out.regions)
            regions[region] = ptf::to_json(m);
          payload["regions"] = std::move(regions);
          payload["wall_time"] = out.wall_time.value();
          payload["elapsed"] = out.elapsed.value();
          cache->insert(cache_key, payload);
        }
        return out;
      },
      options_.jobs);

  // Ordered reduce in sweep order (first strict improvement wins).
  ExhaustiveTuningResult result;
  std::map<std::string, double> best_scores;
  double best_app_score = std::numeric_limits<double>::max();
  Seconds one_run_time{0};
  Seconds total{0};
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& out = outcomes[i];
    ++result.runs;
    if (one_run_time.value() == 0) one_run_time = out.wall_time;
    if (objective.evaluate(out.app) < best_app_score) {
      best_app_score = objective.evaluate(out.app);
      result.app_best = configs[i];
    }
    for (const auto& [region, m] : out.regions) {
      const double score = objective.evaluate(m);
      auto it = best_scores.find(region);
      if (it == best_scores.end() || score < it->second) {
        best_scores[region] = score;
        result.region_best[region] = configs[i];
      }
    }
    total += out.elapsed;
  }
  result.search_time = total;
  node_.idle(total);

  // Paper formula: n regions x k x l x m configurations, one full run each.
  const double n = static_cast<double>(result.region_best.size());
  const double klm = static_cast<double>(result.runs);
  result.formula_runs = n * klm;
  result.formula_time = one_run_time * result.formula_runs;
  return result;
}

TuningOutcome ExhaustiveTuner::tune(const TuningRequest& request) {
  const auto objective = ptf::make_objective(request.objective);
  const ExhaustiveTuningResult result = tune(request.app, *objective);
  TuningOutcome out;
  out.tuner = std::string(name());
  out.objective = std::string(objective->name());
  out.best = result.app_best;
  out.region_best = result.region_best;
  out.scenarios_evaluated = result.runs;
  out.app_runs = result.runs;
  out.tuning_time = result.search_time;
  return out;
}

}  // namespace ecotune::baseline
