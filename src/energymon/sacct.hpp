#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hwsim/node.hpp"

namespace ecotune::energymon {

/// Post-mortem job record, as `sacct --format=JobID,Elapsed,ConsumedEnergy`
/// would report it on the paper's system.
struct JobRecord {
  std::string job_name;
  int node_id = 0;
  Seconds elapsed{0};
  Joules consumed_energy{0};  ///< node (HDEEM-fed) energy
};

/// Simulated SLURM accounting: brackets a "job" on one node and records wall
/// time and node energy, queryable afterwards (paper Sec. V-D measures job
/// energy and time via sacct).
class Sacct final : public hwsim::PowerListener {
 public:
  explicit Sacct(hwsim::NodeSimulator& node);
  ~Sacct() override;
  Sacct(const Sacct&) = delete;
  Sacct& operator=(const Sacct&) = delete;

  /// Starts accounting a job.
  void job_start(std::string job_name);
  /// Ends the job and stores its record.
  JobRecord job_end();

  /// All completed job records, oldest first.
  [[nodiscard]] const std::vector<JobRecord>& records() const {
    return records_;
  }
  /// Most recent record for `job_name`, if any.
  [[nodiscard]] std::optional<JobRecord> query(
      const std::string& job_name) const;

  // PowerListener:
  void on_segment(Seconds duration, Watts node_power, Watts cpu_power) override;

 private:
  hwsim::NodeSimulator& node_;
  std::vector<JobRecord> records_;
  bool active_ = false;
  std::string current_name_;
  Joules acc_energy_{0};
  Seconds acc_time_{0};
};

}  // namespace ecotune::energymon
