#include "energymon/hdeem.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace ecotune::energymon {

Hdeem::Hdeem(hwsim::NodeSimulator& node, Params params)
    : node_(node),
      params_(params),
      rng_(Rng(0x48444545ULL)
               .fork("hdeem-node-" + std::to_string(node.node_id()))) {
  node_.add_listener(this);
}

Hdeem::~Hdeem() { node_.remove_listener(this); }

void Hdeem::start() {
  ensure(!armed_, "Hdeem::start: measurement already running");
  armed_ = true;
  const double delay = std::max(
      0.0, rng_.normal(params_.start_delay.value(),
                       params_.start_delay_jitter.value()));
  window_open_ = node_.now() + Seconds(delay);
  window_started_ = node_.now();
  acc_ = Joules(0);
  acc_time_ = Seconds(0);
}

Joules Hdeem::stop() {
  ensure(armed_, "Hdeem::stop: no measurement running");
  armed_ = false;
  // Quantize the acquisition window to whole samples: the FPGA only reports
  // complete sample periods.
  const double period = 1.0 / params_.sample_rate_hz;
  const double t = acc_time_.value();
  const long samples = static_cast<long>(std::floor(t / period));
  const double covered = samples * period;
  const double fraction = t > 0 ? covered / t : 0.0;
  double e = acc_.value() * fraction;
  if (params_.relative_noise > 0)
    e *= std::max(0.0, rng_.normal(1.0, params_.relative_noise));
  return Joules(e);
}

void Hdeem::on_segment(Seconds duration, Watts node_power, Watts /*cpu*/) {
  total_ += node_power * duration;
  observed_ += duration;
  if (!armed_) return;
  // The node clock was already advanced; reconstruct the segment interval.
  const Seconds end = node_.now();
  const Seconds begin = end - duration;
  const double from = std::max(begin.value(), window_open_.value());
  const double to = end.value();
  if (to <= from) return;
  acc_ += node_power * Seconds(to - from);
  acc_time_ += Seconds(to - from);
}

}  // namespace ecotune::energymon
