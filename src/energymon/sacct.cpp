#include "energymon/sacct.hpp"

#include "common/error.hpp"

namespace ecotune::energymon {

Sacct::Sacct(hwsim::NodeSimulator& node) : node_(node) {
  node_.add_listener(this);
}

Sacct::~Sacct() { node_.remove_listener(this); }

void Sacct::job_start(std::string job_name) {
  ensure(!active_, "Sacct::job_start: a job is already being accounted");
  active_ = true;
  current_name_ = std::move(job_name);
  acc_energy_ = Joules(0);
  acc_time_ = Seconds(0);
}

JobRecord Sacct::job_end() {
  ensure(active_, "Sacct::job_end: no active job");
  active_ = false;
  JobRecord rec;
  rec.job_name = current_name_;
  rec.node_id = node_.node_id();
  rec.elapsed = acc_time_;
  rec.consumed_energy = acc_energy_;
  records_.push_back(rec);
  return rec;
}

std::optional<JobRecord> Sacct::query(const std::string& job_name) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (it->job_name == job_name) return *it;
  return std::nullopt;
}

void Sacct::on_segment(Seconds duration, Watts node_power, Watts /*cpu*/) {
  if (!active_) return;
  acc_energy_ += node_power * duration;
  acc_time_ += duration;
}

}  // namespace ecotune::energymon
