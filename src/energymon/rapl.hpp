#pragma once

#include "common/units.hpp"
#include "hwsim/node.hpp"

namespace ecotune::energymon {

/// Simulated Intel RAPL energy interface for the CPU (package + DRAM)
/// domain: a cumulative counter in 15.3 uJ units that the PCU refreshes
/// roughly every millisecond and that wraps around at 32 bits -- exactly the
/// artifacts tools like `measure-rapl` must handle.
struct RaplParams {
  double energy_unit_j = 15.3e-6;  ///< MSR_RAPL_POWER_UNIT energy LSB
  Seconds update_period{1e-3};     ///< PCU refresh interval
  bool wraparound = true;          ///< emulate the 32-bit counter wrap
};

class Rapl final : public hwsim::PowerListener {
 public:
  using Params = RaplParams;

  explicit Rapl(hwsim::NodeSimulator& node, Params params = RaplParams{});
  ~Rapl() override;
  Rapl(const Rapl&) = delete;
  Rapl& operator=(const Rapl&) = delete;

  /// Raw counter read: units of `energy_unit_j`, refreshed at the last
  /// update-period boundary, 32-bit wrapped.
  [[nodiscard]] std::uint64_t read_counter() const;

  /// Energy represented by a counter delta, handling one wrap.
  [[nodiscard]] Joules delta_energy(std::uint64_t before,
                                    std::uint64_t after) const;

  /// Ground-truth cumulative CPU energy (for tests).
  [[nodiscard]] Joules exact_total() const { return exact_; }

  // PowerListener:
  void on_segment(Seconds duration, Watts node_power, Watts cpu_power) override;

 private:
  hwsim::NodeSimulator& node_;
  Params params_;
  Joules exact_{0};           ///< exact integral of CPU power
  Joules at_last_update_{0};  ///< integral at the last PCU refresh
  Seconds clock_{0};          ///< observed time
  long long last_boundary_ = 0;  ///< index of the last committed refresh
};

/// The paper's lightweight `measure-rapl` runtime tool: brackets a run with
/// counter reads and reports the CPU energy delta.
class MeasureRapl {
 public:
  explicit MeasureRapl(Rapl& rapl) : rapl_(rapl) {}
  void start() { begin_ = rapl_.read_counter(); }
  [[nodiscard]] Joules stop() const {
    return rapl_.delta_energy(begin_, rapl_.read_counter());
  }

 private:
  Rapl& rapl_;
  std::uint64_t begin_ = 0;
};

}  // namespace ecotune::energymon
