#pragma once

#include <optional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hwsim/node.hpp"

namespace ecotune::energymon {

/// Simulated High Definition Energy Efficiency Monitoring (HDEEM)
/// infrastructure (Hackenberg et al.): FPGA-based node-power sampling at
/// 1 kSa/s with an ~5 ms measurement start delay. The start delay is the
/// reason the paper requires significant regions to run >100 ms.
///
/// Subscribe to a NodeSimulator, then bracket work with start()/stop() to
/// obtain a measured energy; `total_energy()` gives the free-running
/// accumulator (used for whole-job accounting).
struct HdeemParams {
  double sample_rate_hz = 1000.0;   ///< 1 kSa/s (paper Sec. III-B)
  Seconds start_delay{5e-3};        ///< mean measurement start delay
  Seconds start_delay_jitter{1e-3}; ///< stddev of the start delay
  double relative_noise = 0.004;    ///< calibration error per measurement
};

class Hdeem final : public hwsim::PowerListener {
 public:
  using Params = HdeemParams;

  /// Attaches to `node` for its lifetime (unsubscribes on destruction).
  explicit Hdeem(hwsim::NodeSimulator& node, Params params = HdeemParams{});
  ~Hdeem() override;
  Hdeem(const Hdeem&) = delete;
  Hdeem& operator=(const Hdeem&) = delete;

  /// Begins a measurement; actual acquisition starts after the start delay.
  void start();
  /// Ends the measurement and returns the measured (sampled, noisy) energy.
  [[nodiscard]] Joules stop();
  /// True between start() and stop().
  [[nodiscard]] bool running() const { return armed_; }

  /// Free-running node-energy accumulator since attach (exact integral, as
  /// the FPGA accumulates continuously).
  [[nodiscard]] Joules total_energy() const { return total_; }
  /// Wall time observed since attach.
  [[nodiscard]] Seconds total_time() const { return observed_; }

  // PowerListener:
  void on_segment(Seconds duration, Watts node_power, Watts cpu_power) override;

 private:
  hwsim::NodeSimulator& node_;
  Params params_;
  Rng rng_;
  Joules total_{0};
  Seconds observed_{0};

  bool armed_ = false;
  Seconds window_open_{0};   ///< acquisition begins at this sim time
  Seconds window_started_{0};///< time the window actually opened
  Joules acc_{0};            ///< energy accumulated inside the window
  Seconds acc_time_{0};      ///< time accumulated inside the window
};

}  // namespace ecotune::energymon
