#include "energymon/rapl.hpp"

#include <cmath>

namespace ecotune::energymon {

Rapl::Rapl(hwsim::NodeSimulator& node, Params params)
    : node_(node), params_(params) {
  node_.add_listener(this);
}

Rapl::~Rapl() { node_.remove_listener(this); }

void Rapl::on_segment(Seconds duration, Watts /*node*/, Watts cpu_power) {
  // Commit the accumulator at the last PCU refresh boundary this segment
  // crosses (O(1) per segment; power is constant within a segment, so the
  // boundary value interpolates exactly).
  const double period = params_.update_period.value();
  const double p = cpu_power.value();
  const double t1 = clock_.value() + duration.value();
  exact_ += Joules(p * duration.value());
  const auto boundary = static_cast<long long>(std::floor(t1 / period));
  if (boundary > last_boundary_) {
    const double past_boundary = t1 - static_cast<double>(boundary) * period;
    at_last_update_ = exact_ - Joules(p * std::max(0.0, past_boundary));
    last_boundary_ = boundary;
  }
  clock_ = Seconds(t1);
}

std::uint64_t Rapl::read_counter() const {
  const auto units = static_cast<std::uint64_t>(
      at_last_update_.value() / params_.energy_unit_j);
  return params_.wraparound ? (units & 0xFFFFFFFFULL) : units;
}

Joules Rapl::delta_energy(std::uint64_t before, std::uint64_t after) const {
  std::uint64_t delta = 0;
  if (after >= before) {
    delta = after - before;
  } else {
    // One 32-bit wrap (a Haswell package at ~150 W wraps every ~12 h, so a
    // single wrap is the realistic case).
    delta = (0x100000000ULL - before) + after;
  }
  return Joules(static_cast<double>(delta) * params_.energy_unit_j);
}

}  // namespace ecotune::energymon
