# Configure-against-installed-tree check for the exported ecotune package.
#
# Installs the already-built tree into a scratch prefix, then configures,
# builds, and runs the tiny out-of-tree consumer project
# (tests/package_consumer) against it via find_package(ecotune). Fails when
#   - the install itself fails,
#   - find_package(ecotune) does not resolve from the prefix,
#   - the consumer fails to build or link, or
#   - the consumer binary does not run successfully.
#
# Usage:
#   cmake -DBUILD_DIR=<build tree> -DCONSUMER_DIR=<consumer project>
#         -DWORK_DIR=<scratch dir> [-DCXX_COMPILER=<c++>]
#         -P package_check.cmake

if(NOT DEFINED BUILD_DIR OR NOT DEFINED CONSUMER_DIR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "package_check: BUILD_DIR, CONSUMER_DIR and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(prefix "${WORK_DIR}/prefix")

execute_process(
  COMMAND "${CMAKE_COMMAND}" --install "${BUILD_DIR}" --prefix "${prefix}"
  OUTPUT_FILE "${WORK_DIR}/install.log"
  ERROR_FILE "${WORK_DIR}/install.log"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "package_check: cmake --install failed (rc=${rc}); see "
    "${WORK_DIR}/install.log")
endif()

set(configure_args
  -S "${CONSUMER_DIR}" -B "${WORK_DIR}/consumer-build"
  -DCMAKE_PREFIX_PATH=${prefix}
  -DCMAKE_BUILD_TYPE=Release)
if(DEFINED CXX_COMPILER)
  list(APPEND configure_args -DCMAKE_CXX_COMPILER=${CXX_COMPILER})
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" ${configure_args}
  OUTPUT_FILE "${WORK_DIR}/configure.log"
  ERROR_FILE "${WORK_DIR}/configure.log"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "package_check: find_package(ecotune) configure failed (rc=${rc}); see "
    "${WORK_DIR}/configure.log")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORK_DIR}/consumer-build"
  OUTPUT_FILE "${WORK_DIR}/build.log"
  ERROR_FILE "${WORK_DIR}/build.log"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "package_check: consumer build failed (rc=${rc}); see "
    "${WORK_DIR}/build.log")
endif()

execute_process(
  COMMAND "${WORK_DIR}/consumer-build/consumer"
  OUTPUT_VARIABLE consumer_out
  ERROR_VARIABLE consumer_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "package_check: consumer binary failed (rc=${rc}):\n${consumer_out}")
endif()
if(NOT consumer_out MATCHES "ecotune installed OK")
  message(FATAL_ERROR
    "package_check: unexpected consumer output:\n${consumer_out}")
endif()

message(STATUS "package_check: installed-tree consumer built and ran:\n"
  "${consumer_out}")
