#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/frequency.hpp"
#include "common/units.hpp"

namespace ecotune {
namespace {

TEST(Quantity, ArithmeticAndComparison) {
  const Joules a(10.0);
  const Joules b(2.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(Joules(10.0), a);
}

TEST(Quantity, CompoundAssignment) {
  Joules e(1.0);
  e += Joules(2.0);
  e -= Joules(0.5);
  e *= 4.0;
  e /= 2.0;
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Quantity, CrossUnitPhysics) {
  const Watts p(250.0);
  const Seconds t(4.0);
  EXPECT_DOUBLE_EQ((p * t).value(), 1000.0);
  EXPECT_DOUBLE_EQ((t * p).value(), 1000.0);
  EXPECT_DOUBLE_EQ((Joules(1000.0) / t).value(), 250.0);
  EXPECT_DOUBLE_EQ((Joules(1000.0) / p).value(), 4.0);
}

TEST(FreqT, ConstructionAndConversion) {
  const CoreFreq f = CoreFreq::mhz(2400);
  EXPECT_EQ(f.as_mhz(), 2400);
  EXPECT_DOUBLE_EQ(f.as_ghz(), 2.4);
  EXPECT_DOUBLE_EQ(f.as_hz(), 2.4e9);
  EXPECT_EQ(CoreFreq::ghz(2.4), f);
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(CoreFreq{}.valid());
}

TEST(FreqT, GhzRounding) {
  EXPECT_EQ(CoreFreq::ghz(1.2999999).as_mhz(), 1300);
  EXPECT_EQ(CoreFreq::ghz(2.0000001).as_mhz(), 2000);
}

TEST(FreqT, Formatting) {
  std::ostringstream os;
  os << UncoreFreq::mhz(1700);
  EXPECT_EQ(os.str(), "1.7GHz");
  EXPECT_EQ(to_string(CoreFreq::mhz(2500)), "2.5GHz");
}

TEST(FreqT, Hashable) {
  std::unordered_set<CoreFreq> set;
  set.insert(CoreFreq::mhz(1200));
  set.insert(CoreFreq::mhz(1200));
  set.insert(CoreFreq::mhz(1300));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FrequencyGrid, BasicProperties) {
  const CoreFreqGrid grid(CoreFreq::mhz(1200), CoreFreq::mhz(2500), 100);
  EXPECT_EQ(grid.size(), 14u);
  EXPECT_EQ(grid.at(0), CoreFreq::mhz(1200));
  EXPECT_EQ(grid.at(13), CoreFreq::mhz(2500));
  EXPECT_TRUE(grid.contains(CoreFreq::mhz(1800)));
  EXPECT_FALSE(grid.contains(CoreFreq::mhz(1850)));
  EXPECT_FALSE(grid.contains(CoreFreq::mhz(2600)));
  EXPECT_EQ(grid.index_of(CoreFreq::mhz(1500)), 3u);
}

TEST(FrequencyGrid, RejectsInvalidConstruction) {
  EXPECT_THROW(CoreFreqGrid(CoreFreq::mhz(2000), CoreFreq::mhz(1000), 100),
               PreconditionError);
  EXPECT_THROW(CoreFreqGrid(CoreFreq::mhz(1000), CoreFreq::mhz(2050), 100),
               PreconditionError);
  EXPECT_THROW(CoreFreqGrid(CoreFreq::mhz(1000), CoreFreq::mhz(2000), 0),
               PreconditionError);
}

TEST(FrequencyGrid, ClampSnapsToNearest) {
  const CoreFreqGrid grid(CoreFreq::mhz(1200), CoreFreq::mhz(2500), 100);
  EXPECT_EQ(grid.clamp(CoreFreq::mhz(100)), CoreFreq::mhz(1200));
  EXPECT_EQ(grid.clamp(CoreFreq::mhz(9999)), CoreFreq::mhz(2500));
  EXPECT_EQ(grid.clamp(CoreFreq::mhz(1849)), CoreFreq::mhz(1800));
  EXPECT_EQ(grid.clamp(CoreFreq::mhz(1851)), CoreFreq::mhz(1900));
}

TEST(FrequencyGrid, NeighborhoodInterior) {
  const UncoreFreqGrid grid(UncoreFreq::mhz(1300), UncoreFreq::mhz(3000),
                            100);
  const auto n = grid.neighborhood(UncoreFreq::mhz(2100), 1);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], UncoreFreq::mhz(2000));
  EXPECT_EQ(n[1], UncoreFreq::mhz(2100));
  EXPECT_EQ(n[2], UncoreFreq::mhz(2200));
}

TEST(FrequencyGrid, NeighborhoodClampedAtEdges) {
  const UncoreFreqGrid grid(UncoreFreq::mhz(1300), UncoreFreq::mhz(3000),
                            100);
  const auto lo = grid.neighborhood(UncoreFreq::mhz(1300), 1);
  ASSERT_EQ(lo.size(), 2u);
  EXPECT_EQ(lo[0], UncoreFreq::mhz(1300));
  const auto hi = grid.neighborhood(UncoreFreq::mhz(3000), 2);
  ASSERT_EQ(hi.size(), 3u);
  EXPECT_EQ(hi.back(), UncoreFreq::mhz(3000));
}

// Property sweep: every grid point round-trips through index_of/at and is
// its own clamp.
class GridRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GridRoundTrip, IndexAndClampRoundTrip) {
  const CoreFreqGrid grid(CoreFreq::mhz(1200), CoreFreq::mhz(2500), 100);
  const auto f = CoreFreq::mhz(GetParam());
  EXPECT_EQ(grid.at(grid.index_of(f)), f);
  EXPECT_EQ(grid.clamp(f), f);
}

INSTANTIATE_TEST_SUITE_P(AllCoreFreqs, GridRoundTrip,
                         ::testing::Range(1200, 2600, 100));

}  // namespace
}  // namespace ecotune
