#include <gtest/gtest.h>

#include "hwsim/counter_model.hpp"
#include "hwsim/perf_model.hpp"

namespace ecotune::hwsim {
namespace {

class CounterModelTest : public ::testing::Test {
 protected:
  CounterModelTest() {
    traits_.total_instructions = 1e10;
    traits_.ipc_peak = 2.0;
    traits_.load_fraction = 0.3;
    traits_.store_fraction = 0.1;
    traits_.branch_fraction = 0.12;
    traits_.dram_bytes = 2e9;
    perf_ = PerfModel{}.evaluate(traits_, 24, CoreFreq::mhz(2000),
                                 UncoreFreq::mhz(1500));
    counts_ = CounterModel::evaluate(spec_, traits_, 24, CoreFreq::mhz(2000),
                                     UncoreFreq::mhz(1500), perf_);
  }

  double at(PmuEvent e) const {
    return counts_[static_cast<std::size_t>(static_cast<int>(e))];
  }

  CpuSpec spec_ = haswell_ep_spec();
  KernelTraits traits_;
  PerfResult perf_;
  PmuCounts counts_;
};

TEST_F(CounterModelTest, InstructionMixIdentities) {
  EXPECT_DOUBLE_EQ(at(PmuEvent::kTOT_INS), 1e10);
  EXPECT_DOUBLE_EQ(at(PmuEvent::kLD_INS), 3e9);
  EXPECT_DOUBLE_EQ(at(PmuEvent::kSR_INS), 1e9);
  EXPECT_DOUBLE_EQ(at(PmuEvent::kLST_INS),
                   at(PmuEvent::kLD_INS) + at(PmuEvent::kSR_INS));
  EXPECT_DOUBLE_EQ(at(PmuEvent::kBR_INS), 1.2e9);
}

TEST_F(CounterModelTest, BranchDecomposition) {
  EXPECT_NEAR(at(PmuEvent::kBR_CN) + at(PmuEvent::kBR_UCN),
              at(PmuEvent::kBR_INS), 1.0);
  EXPECT_NEAR(at(PmuEvent::kBR_TKN) + at(PmuEvent::kBR_NTK),
              at(PmuEvent::kBR_CN), 1.0);
  EXPECT_NEAR(at(PmuEvent::kBR_MSP) + at(PmuEvent::kBR_PRC),
              at(PmuEvent::kBR_CN), 1.0);
  EXPECT_GT(at(PmuEvent::kBR_PRC), at(PmuEvent::kBR_MSP));
}

TEST_F(CounterModelTest, CacheHierarchyIsMonotone) {
  // Misses shrink level by level.
  EXPECT_GE(at(PmuEvent::kL1_TCM), at(PmuEvent::kL2_TCM));
  EXPECT_GE(at(PmuEvent::kLST_INS), at(PmuEvent::kL1_DCM));
  // Accesses at L2 equal misses at L1.
  EXPECT_NEAR(at(PmuEvent::kL2_DCA),
              at(PmuEvent::kL1_LDM) + at(PmuEvent::kL1_STM), 1.0);
  EXPECT_NEAR(at(PmuEvent::kL2_TCA),
              at(PmuEvent::kL2_DCA) + at(PmuEvent::kL2_ICA), 1.0);
}

TEST_F(CounterModelTest, L3MissesTiedToDramTraffic) {
  // 2e9 bytes / 64-byte lines = 31.25e6 line fills at least.
  EXPECT_GE(at(PmuEvent::kL3_TCM), 2e9 / 64.0 - 1.0);
}

TEST_F(CounterModelTest, CycleAccounting) {
  EXPECT_NEAR(at(PmuEvent::kTOT_CYC), perf_.total_cycles, 1.0);
  EXPECT_NEAR(at(PmuEvent::kRES_STL), perf_.stall_cycles, 1.0);
  EXPECT_LE(at(PmuEvent::kSTL_ICY), at(PmuEvent::kRES_STL));
  // REF_CYC at the 2.5 GHz reference clock vs TOT_CYC at 2.0 GHz.
  EXPECT_NEAR(at(PmuEvent::kREF_CYC) / at(PmuEvent::kTOT_CYC), 2.5 / 2.0,
              1e-9);
}

TEST_F(CounterModelTest, FpOpsExceedFpInstructionsWithVectors) {
  EXPECT_GT(at(PmuEvent::kFP_OPS),
            at(PmuEvent::kFP_INS) * 0.99);  // vector ops multiply
  EXPECT_NEAR(at(PmuEvent::kSP_OPS) + at(PmuEvent::kDP_OPS),
              at(PmuEvent::kFP_OPS), 1.0);
}

TEST_F(CounterModelTest, AllCountersNonNegative) {
  for (double v : counts_) EXPECT_GE(v, 0.0);
}

TEST(PmuEvents, ExactlyFiftySixPresets) {
  EXPECT_EQ(kPmuEventCount, 56);
  EXPECT_EQ(all_pmu_events().size(), 56u);
}

TEST(PmuEvents, NamesRoundTrip) {
  for (auto e : all_pmu_events()) {
    const auto name = pmu_event_name(e);
    EXPECT_TRUE(name.rfind("PAPI_", 0) == 0) << name;
    const auto back = pmu_event_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, e);
    EXPECT_FALSE(pmu_event_description(e).empty());
  }
  EXPECT_FALSE(pmu_event_from_name("PAPI_NOT_A_COUNTER").has_value());
}

TEST(PmuEvents, PaperTableOneCountersExist) {
  for (const char* name : {"PAPI_BR_NTK", "PAPI_LD_INS", "PAPI_L2_ICR",
                           "PAPI_BR_MSP", "PAPI_RES_STL", "PAPI_SR_INS",
                           "PAPI_L2_DCR"}) {
    EXPECT_TRUE(pmu_event_from_name(name).has_value()) << name;
  }
}

// Property: counter values at the calibration point do not depend on which
// frequencies the kernel executes at later (they are application
// characteristics); the cycle counters are the documented exception.
class CounterFreqInvariance
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CounterFreqInvariance, MixCountersFrequencyInvariant) {
  const auto [cf_mhz, ucf_mhz] = GetParam();
  KernelTraits k;
  k.total_instructions = 1e9;
  const CpuSpec spec = haswell_ep_spec();
  const PerfModel pm;
  const auto perf_a = pm.evaluate(k, 24, CoreFreq::mhz(cf_mhz),
                                  UncoreFreq::mhz(ucf_mhz));
  const auto perf_b =
      pm.evaluate(k, 24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500));
  const auto a = CounterModel::evaluate(spec, k, 24, CoreFreq::mhz(cf_mhz),
                                        UncoreFreq::mhz(ucf_mhz), perf_a);
  const auto b = CounterModel::evaluate(spec, k, 24, CoreFreq::mhz(2000),
                                        UncoreFreq::mhz(1500), perf_b);
  for (auto e : {PmuEvent::kTOT_INS, PmuEvent::kLD_INS, PmuEvent::kSR_INS,
                 PmuEvent::kBR_NTK, PmuEvent::kBR_MSP, PmuEvent::kL2_DCR,
                 PmuEvent::kL2_ICR}) {
    const auto i = static_cast<std::size_t>(static_cast<int>(e));
    EXPECT_DOUBLE_EQ(a[i], b[i]) << pmu_event_name(e);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FrequencyPairs, CounterFreqInvariance,
    ::testing::Values(std::pair{1200, 1300}, std::pair{1800, 2200},
                      std::pair{2500, 3000}, std::pair{2500, 1300},
                      std::pair{1200, 3000}));

}  // namespace
}  // namespace ecotune::hwsim
