#include <gtest/gtest.h>

#include "hwsim/node.hpp"
#include "pmc/counter_sampler.hpp"
#include "pmc/event_set.hpp"

namespace ecotune::pmc {
namespace {

using hwsim::PmuEvent;

TEST(EventSet, EnforcesHardwareCounterLimit) {
  EventSet set;
  set.add(PmuEvent::kTOT_INS);
  set.add(PmuEvent::kLD_INS);
  set.add(PmuEvent::kSR_INS);
  set.add(PmuEvent::kBR_MSP);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_THROW(set.add(PmuEvent::kTOT_CYC), PreconditionError);
}

TEST(EventSet, RejectsDuplicates) {
  EventSet set;
  set.add(PmuEvent::kTOT_INS);
  EXPECT_THROW(set.add(PmuEvent::kTOT_INS), PreconditionError);
}

TEST(EventSet, ConstructorValidates) {
  EXPECT_NO_THROW(EventSet({PmuEvent::kTOT_INS, PmuEvent::kLD_INS}));
  EXPECT_THROW(EventSet({PmuEvent::kTOT_INS, PmuEvent::kLD_INS,
                         PmuEvent::kSR_INS, PmuEvent::kBR_MSP,
                         PmuEvent::kTOT_CYC}),
               PreconditionError);
}

TEST(EventSet, MultiplexScheduleCoversAllEventsOnce) {
  std::vector<PmuEvent> events(hwsim::all_pmu_events().begin(),
                               hwsim::all_pmu_events().end());
  const auto schedule = multiplex_schedule(events);
  EXPECT_EQ(schedule.size(), 14u);  // 56 / 4
  std::size_t total = 0;
  for (const auto& set : schedule) {
    EXPECT_LE(set.size(),
              static_cast<std::size_t>(EventSet::kMaxHardwareCounters));
    total += set.size();
  }
  EXPECT_EQ(total, events.size());
}

TEST(EventSet, MultiplexScheduleForPaperSevenNeedsTwoRuns) {
  std::vector<PmuEvent> seven{
      PmuEvent::kBR_NTK, PmuEvent::kLD_INS,  PmuEvent::kL2_ICR,
      PmuEvent::kBR_MSP, PmuEvent::kRES_STL, PmuEvent::kSR_INS,
      PmuEvent::kL2_DCR};
  const auto schedule = multiplex_schedule(seven);
  EXPECT_EQ(schedule.size(), 2u);
  EXPECT_EQ(CounterSampler::runs_required(seven.size()), 2);
  EXPECT_EQ(CounterSampler::runs_required(56), 14);
}

TEST(CounterSampler, NoiselessSamplingIsExact) {
  hwsim::PmuCounts truth{};
  truth[static_cast<std::size_t>(static_cast<int>(PmuEvent::kTOT_INS))] =
      1e9;
  CounterSampler sampler(Rng(1), 0.0);
  const auto r = sampler.sample(EventSet({PmuEvent::kTOT_INS}), truth);
  EXPECT_DOUBLE_EQ(r.at(PmuEvent::kTOT_INS), 1e9);
}

TEST(CounterSampler, NoiseIsSmallAndUnbiased) {
  hwsim::PmuCounts truth{};
  const auto idx =
      static_cast<std::size_t>(static_cast<int>(PmuEvent::kLD_INS));
  truth[idx] = 1e8;
  CounterSampler sampler(Rng(2), 0.01);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    sum += sampler.sample(EventSet({PmuEvent::kLD_INS}), truth)
               .at(PmuEvent::kLD_INS);
  EXPECT_NEAR(sum / n / 1e8, 1.0, 0.002);
}

TEST(CounterSampler, CollectMultiplexedMergesAllEvents) {
  hwsim::PmuCounts truth{};
  for (std::size_t i = 0; i < truth.size(); ++i)
    truth[i] = static_cast<double>(i + 1) * 1000.0;

  std::vector<PmuEvent> events(hwsim::all_pmu_events().begin(),
                               hwsim::all_pmu_events().end());
  CounterSampler sampler(Rng(3), 0.0);
  int runs = 0;
  const auto merged = sampler.collect_multiplexed(
      events,
      [&] {
        ++runs;
        return truth;
      },
      /*repeats=*/2);
  EXPECT_EQ(runs, 14 * 2);
  EXPECT_EQ(merged.size(), events.size());
  for (auto e : events) {
    const auto i = static_cast<std::size_t>(static_cast<int>(e));
    EXPECT_DOUBLE_EQ(merged.at(e), truth[i]);
  }
}

}  // namespace
}  // namespace ecotune::pmc
