// Exercises the installed public API surface: construct a Session (opens
// the disabled store, resolves the jobs policy) and touch the workload
// suite. Kept deliberately cheap -- the point is that headers resolve and
// the whole static-library stack links from an installed tree.
#include <iostream>

#include "api/report.hpp"
#include "api/session.hpp"

int main() {
  ecotune::api::Session session(
      ecotune::api::SessionConfig{}.seed(1).jobs(1).objective("energy"));
  const auto names = ecotune::workload::BenchmarkSuite::names();
  if (names.empty() || session.jobs() != 1 || session.has_model()) return 1;
  std::cout << "ecotune installed OK: " << names.size()
            << " benchmarks, jobs=" << session.jobs() << '\n';
  return 0;
}
