// Tuning-service coverage: the ecotune.rpc.v1 wire protocol (framing,
// request validation, response shapes), the concurrent TuningService
// dispatch (byte-identity to serial execution under >= 64 in-flight
// requests), the AF_UNIX Server (backpressure, queue timeouts, malformed
// frames, graceful drain), and the sharded MeasurementStore's equivalence
// contract (shard count never changes results or warm-restart identity).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/service_stats.hpp"
#include "store/measurement_store.hpp"

namespace ecotune {
namespace {

namespace fs = std::filesystem;
using serve::FrameDecoder;
using serve::RpcRequest;

/// Fresh temp directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("ecotune_serve_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string sock() const {
    return (fs::path(path_) / "s.sock").string();
  }

 private:
  std::string path_;
};

Json make_request(const std::string& method, Json params,
                  std::int64_t id = 0,
                  const std::string& tenant = "default") {
  Json frame = Json::object();
  frame["schema"] = std::string(serve::kRpcSchema);
  frame["id"] = id;
  frame["tenant"] = tenant;
  frame["method"] = method;
  frame["params"] = std::move(params);
  return frame;
}

Json tune_params(const std::string& benchmark, const std::string& tuner) {
  Json params = Json::object();
  params["benchmark"] = benchmark;
  params["tuner"] = tuner;
  return params;
}

/// A full counter-rate signature for the paper's seven feature events (the
/// model rejects predict requests with missing counters).
Json predict_params(double scale) {
  Json rates = Json::object();
  for (const char* name :
       {"PAPI_BR_NTK", "PAPI_LD_INS", "PAPI_L2_ICR", "PAPI_BR_MSP",
        "PAPI_RES_STL", "PAPI_SR_INS", "PAPI_L2_DCR"}) {
    rates[name] = 1.0e8 * scale;
  }
  Json params = Json::object();
  params["counter_rates"] = std::move(rates);
  return params;
}

/// One shared warmed-up service for the dispatch tests (training runs
/// once); store off, so every compute request actually computes -- which
/// is exactly what the serial-vs-concurrent byte-identity tests need.
serve::TuningService& shared_service() {
  static serve::TuningService* service = [] {
    serve::ServiceConfig config;
    config.session = api::SessionConfig{}.seed(42).epochs(2);
    config.enable_debug_methods = true;
    return new serve::TuningService(std::move(config));
  }();
  return *service;
}

// --- Protocol: framing ----------------------------------------------------

TEST(ServeProtocol, FrameRoundTripsThroughDecoder) {
  const Json frame = make_request("ping", Json::object(), 7, "alice");
  const std::string wire = serve::encode_frame(frame);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dump(-1), frame.dump(-1));
  EXPECT_TRUE(decoder.idle());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeProtocol, DecoderReassemblesByteAtATime) {
  const Json frame = make_request("stats", Json::object(), 3);
  const std::string wire = serve::encode_frame(frame);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.data() + i, 1);
    EXPECT_FALSE(decoder.next().has_value()) << "complete too early at " << i;
  }
  decoder.feed(wire.data() + wire.size() - 1, 1);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dump(-1), frame.dump(-1));
}

TEST(ServeProtocol, DecoderSplitsConcatenatedFrames) {
  const Json a = make_request("ping", Json::object(), 1);
  const Json b = make_request("methods", Json::object(), 2);
  const std::string wire = serve::encode_frame(a) + serve::encode_frame(b);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  ASSERT_TRUE(decoder.next().has_value());
  const auto second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->dump(-1), b.dump(-1));
}

TEST(ServeProtocol, TruncatedFrameStaysPendingNotError) {
  const std::string wire =
      serve::encode_frame(make_request("ping", Json::object()));
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size() - 3);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.idle());
  EXPECT_GT(decoder.buffered(), 0u);
}

TEST(ServeProtocol, ZeroLengthFrameIsRejected) {
  const char zeros[4] = {0, 0, 0, 0};
  FrameDecoder decoder;
  decoder.feed(zeros, sizeof zeros);
  EXPECT_THROW((void)decoder.next(), Error);
}

TEST(ServeProtocol, OversizedFrameIsRejectedBeforeBuffering) {
  // A 4-byte prefix claiming ~4 GiB must be refused from the length alone.
  const char huge[4] = {'\x7f', '\xff', '\xff', '\xff'};
  FrameDecoder decoder;
  decoder.feed(huge, sizeof huge);
  EXPECT_THROW((void)decoder.next(), Error);
}

TEST(ServeProtocol, GarbageBodyIsRejected) {
  const char wire[7] = {0, 0, 0, 3, 'x', 'y', 'z'};
  FrameDecoder decoder;
  decoder.feed(wire, sizeof wire);
  EXPECT_THROW((void)decoder.next(), Error);
}

// --- Protocol: request/response shapes ------------------------------------

TEST(ServeProtocol, RequestDefaultsAndFields) {
  Json frame = Json::object();
  frame["method"] = std::string("ping");
  const RpcRequest minimal = RpcRequest::from_frame(frame);
  EXPECT_EQ(minimal.tenant, "default");
  EXPECT_EQ(minimal.method, "ping");
  EXPECT_EQ(minimal.timeout_ms, 0.0);

  const RpcRequest full = RpcRequest::from_frame(
      make_request("tune", tune_params("Lulesh", "static"), 9, "alice"));
  EXPECT_EQ(full.tenant, "alice");
  EXPECT_EQ(static_cast<std::int64_t>(full.id.as_number()), 9);
  EXPECT_EQ(full.params.at("benchmark").as_string(), "Lulesh");
}

TEST(ServeProtocol, RequestValidationRejectsBadShapes) {
  EXPECT_THROW((void)RpcRequest::from_frame(Json("not an object")), Error);
  EXPECT_THROW((void)RpcRequest::from_frame(Json::object()), Error);  // no method
  Json bad_schema = make_request("ping", Json::object());
  bad_schema["schema"] = std::string("ecotune.rpc.v999");
  EXPECT_THROW((void)RpcRequest::from_frame(bad_schema), Error);
  Json bad_tenant = make_request("ping", Json::object());
  bad_tenant["tenant"] = 7;
  EXPECT_THROW((void)RpcRequest::from_frame(bad_tenant), Error);
  Json bad_timeout = make_request("ping", Json::object());
  bad_timeout["timeout_ms"] = -1.0;
  EXPECT_THROW((void)RpcRequest::from_frame(bad_timeout), Error);
}

TEST(ServeProtocol, ResponseShapes) {
  const Json ok = serve::ok_response(Json(std::int64_t{4}), Json::object());
  EXPECT_EQ(ok.at("schema").as_string(), serve::kRpcSchema);
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_TRUE(ok.contains("result"));
  const Json err = serve::error_response(Json(), "overloaded", "queue full");
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(err.at("error").at("message").as_string(), "queue full");
}

// --- TuningService dispatch ------------------------------------------------

TEST(ServeService, PingAndMethods) {
  auto& service = shared_service();
  const Json pong = service.handle(make_request("ping", Json::object()));
  ASSERT_TRUE(pong.at("ok").as_bool()) << pong.dump(-1);
  EXPECT_TRUE(pong.at("result").at("pong").as_bool());

  const Json methods = service.handle(make_request("methods", Json::object()));
  ASSERT_TRUE(methods.at("ok").as_bool());
  const auto& names = methods.at("result").at("methods").as_array();
  EXPECT_GE(names.size(), 7u);
  EXPECT_FALSE(methods.at("result").at("benchmarks").as_array().empty());
}

TEST(ServeService, ErrorCodesDistinguishCallerFaults) {
  auto& service = shared_service();
  const Json unknown = service.handle(make_request("nosuch", Json::object()));
  EXPECT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").at("code").as_string(), "unknown_method");

  const Json bad_bench =
      service.handle(make_request("tune", tune_params("NoSuchApp", "static")));
  EXPECT_FALSE(bad_bench.at("ok").as_bool());
  EXPECT_EQ(bad_bench.at("error").at("code").as_string(), "bad_request");

  Json no_rates = make_request("predict", Json::object());
  const Json bad_predict = service.handle(no_rates);
  EXPECT_FALSE(bad_predict.at("ok").as_bool());
  EXPECT_EQ(bad_predict.at("error").at("code").as_string(), "bad_request");

  // A non-object frame still yields a well-formed error response.
  const Json not_object = service.handle(Json(3.14));
  EXPECT_FALSE(not_object.at("ok").as_bool());
  EXPECT_EQ(not_object.at("error").at("code").as_string(), "bad_request");
}

TEST(ServeService, PredictReturnsGridRecommendation) {
  auto& service = shared_service();
  const Json response =
      service.handle(make_request("predict", predict_params(1.0)));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump(-1);
  const Json& result = response.at("result");
  EXPECT_GT(result.at("cf_mhz").as_number(), 0.0);
  EXPECT_GT(result.at("ucf_mhz").as_number(), 0.0);
  EXPECT_TRUE(result.contains("predicted_normalized_energy"));
}

TEST(ServeService, RequestKeyIsCanonicalAndTenantScoped) {
  const RpcRequest alice = RpcRequest::from_frame(
      make_request("tune", tune_params("Lulesh", "static"), 1, "alice"));
  const RpcRequest alice_again = RpcRequest::from_frame(
      make_request("tune", tune_params("Lulesh", "static"), 99, "alice"));
  const RpcRequest bob = RpcRequest::from_frame(
      make_request("tune", tune_params("Lulesh", "static"), 1, "bob"));
  // Same tenant+method+params -> same key (the id is delivery metadata);
  // another tenant gets its own key (isolated store namespace).
  EXPECT_EQ(serve::TuningService::request_key(alice),
            serve::TuningService::request_key(alice_again));
  EXPECT_NE(serve::TuningService::request_key(alice),
            serve::TuningService::request_key(bob));

  Json keyed = make_request("tune", tune_params("Lulesh", "static"));
  keyed["params"]["key"] = std::string("job-17");
  const RpcRequest explicit_key = RpcRequest::from_frame(keyed);
  EXPECT_EQ(serve::TuningService::request_key(explicit_key),
            "default/tune/job-17");
}

TEST(ServeService, RepeatedRequestIsByteIdentical) {
  auto& service = shared_service();
  const Json frame = make_request("tune", tune_params("EP", "static"));
  EXPECT_EQ(service.handle(frame).dump(-1), service.handle(frame).dump(-1));
}

TEST(ServeService, DtaReturnsReportDocument) {
  auto& service = shared_service();
  Json params = Json::object();
  params["benchmark"] = std::string("EP");
  const Json response = service.handle(make_request("dta", params));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump(-1);
  EXPECT_EQ(response.at("result").at("schema").as_string(), "ecotune.dta.v1");
  EXPECT_EQ(response.at("result").at("reports").as_array().size(), 1u);
}

TEST(ServeService, ConcurrentResponsesAreByteIdenticalToSerial) {
  auto& service = shared_service();
  // >= 64 distinct in-flight requests: tenants x benchmarks x tuners plus
  // predict/ping traffic mixed in.
  const std::vector<std::string> tenants = {"alice", "bob", "carol", "dave"};
  const std::vector<std::string> benchmarks = {"EP", "IS", "Lulesh", "CoMD"};
  const std::vector<std::string> strategies = {"static", "ondemand",
                                               "conservative"};
  std::vector<Json> frames;
  std::int64_t id = 0;
  for (const auto& tenant : tenants) {
    for (const auto& benchmark : benchmarks) {
      for (const auto& tuner : strategies) {
        frames.push_back(make_request("tune", tune_params(benchmark, tuner),
                                      id++, tenant));
      }
      frames.push_back(make_request(
          "predict", predict_params(1.0 + 0.01 * static_cast<double>(id)),
          id, tenant));
      ++id;
    }
  }
  while (frames.size() < 64)
    frames.push_back(make_request("ping", Json::object(), id++));
  ASSERT_GE(frames.size(), 64u);

  std::vector<std::string> serial(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    serial[i] = service.handle(frames[i]).dump(-1);

  // All 64+ requests genuinely in flight at once: one thread each, held at
  // a start barrier. (Raw threads are fine in tests; product code routes
  // through common/parallel.)
  std::vector<std::string> concurrent(frames.size());
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    threads.emplace_back([&, i] {
      while (!start.load()) std::this_thread::yield();
      concurrent[i] = service.handle(frames[i]).dump(-1);
    });
  }
  start.store(true);
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < frames.size(); ++i)
    EXPECT_EQ(concurrent[i], serial[i]) << "request " << i << " diverged";
}

TEST(ServeService, StatsSnapshotTracksTenantsAndTiming) {
  auto& service = shared_service();
  (void)service.handle(make_request("ping", Json::object(), 0, "alice"));
  const Json response = service.handle(make_request("stats", Json::object()));
  ASSERT_TRUE(response.at("ok").as_bool());
  const Json& result = response.at("result");
  EXPECT_GT(result.at("aggregate").at("requests").as_number(), 0.0);
  EXPECT_TRUE(result.at("aggregate").at("service_time").contains("p50_ms"));
  EXPECT_TRUE(result.at("aggregate").at("service_time").contains("p99_ms"));
  EXPECT_TRUE(result.at("tenants").contains("alice"));
  EXPECT_TRUE(result.contains("queue_depth"));
  // This fixture runs storeless: the store section reports mode=off with
  // zero shards (open() is what creates the sharded index).
  EXPECT_EQ(result.at("store").at("mode").as_string(), "off");
  EXPECT_EQ(result.at("store").at("shards").as_number(), 0.0);
}

TEST(ServeStats, ConcurrentRecordAndSnapshotStayConsistent) {
  serve::ServiceStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i)
        stats.record("tenant-" + std::to_string(t), i % 2 == 0, 0.001);
    });
  }
  threads.emplace_back([&stats] {
    for (int i = 0; i < 200; ++i) {
      const Json snap = stats.snapshot(0);
      const double requests = snap.at("aggregate").at("requests").as_number();
      const double ok = snap.at("aggregate").at("ok").as_number();
      const double errors = snap.at("aggregate").at("errors").as_number();
      EXPECT_EQ(requests, ok + errors);  // consistent under the lock
    }
  });
  for (auto& t : threads) t.join();
  const Json final_snap = stats.snapshot(0);
  EXPECT_EQ(final_snap.at("aggregate").at("requests").as_number(),
            static_cast<double>(kThreads * kPerThread));
}

// --- AF_UNIX server --------------------------------------------------------

/// Minimal blocking test client speaking ecotune.rpc.v1.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The server thread may still be between bind and accept; the backlog
    // makes connect succeed as soon as listen() ran.
    for (int attempt = 0; attempt < 250; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  void send_frame(const Json& frame) { send_bytes(serve::encode_frame(frame)); }

  void send_bytes(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GE(n, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Blocks for the next response frame; nullopt on EOF.
  std::optional<Json> read_response() {
    char buf[4096];
    for (;;) {
      if (auto frame = decoder_.next()) return frame;
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return std::nullopt;
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  std::vector<Json> read_responses(std::size_t count) {
    std::vector<Json> out;
    while (out.size() < count) {
      auto frame = read_response();
      if (!frame.has_value()) break;
      out.push_back(std::move(*frame));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_;
};

/// Serves `service` on a background thread for one test.
class ServerFixture {
 public:
  ServerFixture(serve::TuningService& service, const std::string& sock_path)
      : server_(service, sock_path) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { server_.serve(); });
  }
  ~ServerFixture() { stop(); }
  serve::Server& server() { return server_; }
  void stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

 private:
  serve::Server server_;
  std::thread thread_;
};

TEST(ServeServer, EndToEndRoundTripAndCleanShutdown) {
  TempDir dir("e2e");
  fs::create_directories(dir.path());
  auto& service = shared_service();
  ServerFixture fixture(service, dir.sock());
  {
    TestClient client(dir.sock());
    ASSERT_TRUE(client.connected());
    client.send_frame(make_request("ping", Json::object(), 1));
    client.send_frame(make_request("tune", tune_params("EP", "static"), 2));
    const auto responses = client.read_responses(2);
    ASSERT_EQ(responses.size(), 2u);
    for (const auto& r : responses)
      EXPECT_TRUE(r.at("ok").as_bool()) << r.dump(-1);
    // The socket answer must be bitwise the in-process answer.
    const Json direct =
        service.handle(make_request("tune", tune_params("EP", "static"), 2));
    const Json& over_socket =
        static_cast<std::int64_t>(responses[0].at("id").as_number()) == 2
            ? responses[0]
            : responses[1];
    EXPECT_EQ(over_socket.dump(-1), direct.dump(-1));
  }
  fixture.stop();
  EXPECT_FALSE(fs::exists(dir.sock())) << "socket file must be unlinked";
}

TEST(ServeServer, MalformedFrameIsRejectedAndConnectionDropped) {
  TempDir dir("garbage");
  fs::create_directories(dir.path());
  ServerFixture fixture(shared_service(), dir.sock());
  {
    TestClient client(dir.sock());
    ASSERT_TRUE(client.connected());
    // Length prefix claiming ~2 GiB: rejected from the header alone.
    client.send_bytes(std::string("\x7f\xff\xff\xff", 4));
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->at("ok").as_bool());
    EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
    EXPECT_FALSE(client.read_response().has_value()) << "expected EOF";
  }
  // The daemon survives; a fresh connection still works.
  TestClient again(dir.sock());
  ASSERT_TRUE(again.connected());
  again.send_frame(make_request("ping", Json::object(), 5));
  const auto pong = again.read_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("ok").as_bool());
}

/// Single-worker service with a tiny queue for the robustness tests; the
/// debug "sleep" method holds the one worker busy deterministically.
serve::TuningService& tiny_queue_service() {
  static serve::TuningService* service = [] {
    serve::ServiceConfig config;
    config.session = api::SessionConfig{}.seed(42).epochs(1);
    config.workers = 1;
    config.queue_limit = 1;
    config.enable_debug_methods = true;
    return new serve::TuningService(std::move(config));
  }();
  return *service;
}

Json sleep_request(double ms, std::int64_t id) {
  Json params = Json::object();
  params["ms"] = ms;
  return make_request("sleep", params, id);
}

TEST(ServeServer, FullQueueAnswersOverloadedInsteadOfBlocking) {
  TempDir dir("overload");
  fs::create_directories(dir.path());
  ServerFixture fixture(tiny_queue_service(), dir.sock());
  TestClient client(dir.sock());
  ASSERT_TRUE(client.connected());
  // Busy the single worker, fill the one queue slot, then a burst: the
  // burst must be answered immediately with overloaded errors -- never
  // deadlock, never silent drop.
  constexpr int kBurst = 8;
  client.send_frame(sleep_request(400, 0));
  client.send_frame(sleep_request(400, 1));
  for (int i = 0; i < kBurst; ++i)
    client.send_frame(make_request("ping", Json::object(), 2 + i));
  const auto responses = client.read_responses(2 + kBurst);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(2 + kBurst));
  int overloaded = 0;
  for (const auto& r : responses) {
    if (!r.at("ok").as_bool() &&
        r.at("error").at("code").as_string() == "overloaded") {
      ++overloaded;
    }
  }
  EXPECT_GE(overloaded, 1) << "burst against a full queue must shed load";
}

TEST(ServeServer, QueuedRequestPastDeadlineTimesOut) {
  TempDir dir("timeout");
  fs::create_directories(dir.path());
  ServerFixture fixture(tiny_queue_service(), dir.sock());
  TestClient client(dir.sock());
  ASSERT_TRUE(client.connected());
  client.send_frame(sleep_request(300, 0));
  // Let the single worker pick the sleep up first -- the queue slot must
  // be free so the doomed request is *queued* (and expires there) rather
  // than shed as overloaded.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Json doomed = make_request("ping", Json::object(), 1);
  doomed["timeout_ms"] = 1.0;
  client.send_frame(doomed);
  const auto responses = client.read_responses(2);
  ASSERT_EQ(responses.size(), 2u);
  const Json& second =
      static_cast<std::int64_t>(responses[0].at("id").as_number()) == 1
          ? responses[0]
          : responses[1];
  EXPECT_FALSE(second.at("ok").as_bool());
  EXPECT_EQ(second.at("error").at("code").as_string(), "timeout");
}

TEST(ServeServer, GracefulStopDrainsQueuedRequests) {
  TempDir dir("drain");
  fs::create_directories(dir.path());
  serve::ServiceConfig config;
  config.session = api::SessionConfig{}.seed(42).epochs(1);
  config.workers = 1;
  config.queue_limit = 64;
  config.enable_debug_methods = true;
  serve::TuningService service(std::move(config));
  ServerFixture fixture(service, dir.sock());
  TestClient client(dir.sock());
  ASSERT_TRUE(client.connected());
  constexpr int kQueued = 5;
  client.send_frame(sleep_request(200, 0));
  for (int i = 1; i <= kQueued; ++i)
    client.send_frame(make_request("ping", Json::object(), i));
  // Give the listener a beat to queue everything, then stop mid-sleep:
  // every already-accepted request must still be answered before EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fixture.server().request_stop();
  const auto responses = client.read_responses(1 + kQueued);
  EXPECT_EQ(responses.size(), static_cast<std::size_t>(1 + kQueued));
  for (const auto& r : responses)
    EXPECT_TRUE(r.at("ok").as_bool()) << r.dump(-1);
  EXPECT_FALSE(client.read_response().has_value()) << "expected EOF";
  fixture.stop();
}

// --- Sharded measurement store ---------------------------------------------

/// Built by append (not operator+ on a literal) to sidestep GCC 12's
/// -Wrestrict false positive on "lit" + std::to_string(...).
std::string stress_task(int thread, int index) {
  std::string task = "t";
  task += std::to_string(thread);
  task += "/task-";
  task += std::to_string(index);
  return task;
}

Json payload_for(int i) {
  Json payload = Json::object();
  payload["value"] = 0.5 + static_cast<double>(i);
  payload["tag"] = "entry-" + std::to_string(i);
  return payload;
}

TEST(ServeShardedStore, ShardCountNeverChangesLookupResults) {
  TempDir dir("shards_equiv");
  constexpr int kEntries = 64;
  {
    store::MeasurementStore writer;
    writer.open(dir.path(), store::StoreMode::kReadWrite, {}, 4);
    EXPECT_EQ(writer.shard_count(), 4u);
    for (int i = 0; i < kEntries; ++i) {
      writer.insert({"task-" + std::to_string(i),
                     static_cast<std::uint64_t>(1000 + i)},
                    payload_for(i));
    }
    EXPECT_EQ(writer.size(), static_cast<std::size_t>(kEntries));
  }
  // Reload the same file under different shard counts: identical answers,
  // identical counter totals, for every key.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{16}}) {
    store::MeasurementStore reader;
    reader.open(dir.path(), store::StoreMode::kReadOnly, {}, shards);
    EXPECT_EQ(reader.shard_count(), shards);
    EXPECT_EQ(reader.size(), static_cast<std::size_t>(kEntries));
    for (int i = 0; i < kEntries; ++i) {
      const auto hit = reader.lookup({"task-" + std::to_string(i),
                                      static_cast<std::uint64_t>(1000 + i)});
      ASSERT_TRUE(hit.has_value()) << "shards=" << shards << " i=" << i;
      EXPECT_EQ(hit->dump(-1), payload_for(i).dump(-1));
    }
    const auto miss = reader.lookup({"task-0", 999});  // stale fingerprint
    EXPECT_FALSE(miss.has_value());
    const store::StoreStats stats = reader.stats();
    EXPECT_EQ(stats.hits, kEntries);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.invalidated, 1);
  }
}

TEST(ServeShardedStore, DefaultShardCountAndOffModeBehavior) {
  TempDir dir("shards_default");
  store::MeasurementStore store;
  store.open(dir.path(), store::StoreMode::kReadWrite);
  EXPECT_EQ(store.shard_count(), store::MeasurementStore::kDefaultShardCount);

  store::MeasurementStore off;  // never opened: lookups miss quietly
  EXPECT_FALSE(off.lookup({"task", 1}).has_value());
  EXPECT_EQ(off.stats().hits, 0);
}

TEST(ServeShardedStore, ConcurrentInsertAndLookupKeepCountersExact) {
  TempDir dir("shards_stress");
  store::MeasurementStore store;
  store.open(dir.path(), store::StoreMode::kReadWrite, {}, 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string task = stress_task(t, i);
        const auto fp = static_cast<std::uint64_t>(t * kPerThread + i);
        store.insert({task, fp}, payload_for(i));
        const auto hit = store.lookup({task, fp});
        EXPECT_TRUE(hit.has_value());
      }
    });
  }
  // Concurrent stats polling must always see consistent snapshots.
  threads.emplace_back([&store] {
    for (int i = 0; i < 200; ++i) {
      const store::StoreStats s = store.stats();
      EXPECT_GE(s.hits, 0);
      EXPECT_GE(s.writes, 0);
      (void)store.summary();
    }
  });
  for (auto& t : threads) t.join();
  const store::StoreStats s = store.stats();
  EXPECT_EQ(s.hits, static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.writes, static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kThreads) * kPerThread);

  // Warm-restart identity across a different shard count: everything the
  // concurrent run wrote reloads and hits.
  store::MeasurementStore reloaded;
  reloaded.open(dir.path(), store::StoreMode::kReadOnly, {}, 16);
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string task = stress_task(t, i);
      const auto fp = static_cast<std::uint64_t>(t * kPerThread + i);
      ASSERT_TRUE(reloaded.lookup({task, fp}).has_value());
    }
  }
  EXPECT_EQ(reloaded.stats().misses, 0);
}

}  // namespace
}  // namespace ecotune
