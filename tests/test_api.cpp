// Tests of the public api::Session facade and its report sinks:
//  - Session::run_dta must equal the legacy hand-wired driver stack
//    bit-for-bit (same seeds, same wiring, compared via the exact JSON
//    round-trip of core::DtaResult),
//  - the TextReportSink must render the legacy driver format byte for byte,
//  - the JsonReportSink document must round-trip through common/json,
//  - run_dta_campaign must be jobs-invariant and warm-restart from the
//    measurement store with zero misses,
//  - the shared strict CLI integer parsing must reject garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>

#include "api/report.hpp"
#include "api/session.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"

namespace ecotune {
namespace {

// Reduced-cost but end-to-end configuration: single thread count, coarse
// frequency grid, one epoch. Everything below shares it so the legacy and
// Session stacks are compared on identical protocols.
model::AcquisitionOptions tiny_acquisition() {
  model::AcquisitionOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 4;
  opts.ucf_stride = 4;
  opts.phase_iterations = 1;
  return opts;
}

api::SessionConfig tiny_config() {
  return api::SessionConfig{}.seed(77).epochs(1).acquisition(
      tiny_acquisition());
}

// Trained once per test binary; sessions that do not need to exercise the
// training path inject it via use_model().
const model::EnergyModel& tiny_model() {
  static const model::EnergyModel trained = [] {
    api::Session session(tiny_config().jobs(0));
    return session.train_model();
  }();
  return trained;
}

const api::DtaReport& shared_report() {
  static const api::DtaReport report = [] {
    api::Session session(tiny_config().jobs(2));
    session.use_model(tiny_model());
    return session.run_dta(
        workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3));
  }();
  return report;
}

TEST(ApiSession, RunDtaMatchesHandWiredLegacyStack) {
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3);

  // The legacy wiring every driver used to repeat by hand (the pre-Session
  // ecotune_dta main, at this test's reduced protocol).
  hwsim::NodeSimulator train_node(hwsim::haswell_ep_spec(), 0, Rng(77));
  train_node.set_jitter(0.002);
  model::AcquisitionOptions acq_opts = tiny_acquisition();
  acq_opts.jobs = 1;
  model::DataAcquisition acq(train_node, acq_opts);
  model::EnergyModelConfig model_cfg;
  model_cfg.jobs = 1;
  model::EnergyModel energy_model(model_cfg);
  energy_model.train(acq.acquire(workload::BenchmarkSuite::training_set()),
                     1);

  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 1, Rng(78));
  node.set_jitter(0.002);
  core::DvfsUfsPlugin plugin(energy_model, {});
  const core::DtaResult legacy = plugin.run_dta(app, node);

  // The Session path, same seeds and protocol.
  api::Session session(tiny_config().jobs(1));
  const api::DtaReport report = session.run_dta(app);

  // Exact JSON round trip preserves doubles bitwise, so dump equality is
  // bit-for-bit equality of the full analysis result.
  EXPECT_EQ(report.result.to_json().dump(-1), legacy.to_json().dump(-1));
}

TEST(ApiReport, TextSinkRendersLegacyDriverFormat) {
  const api::DtaReport& report = shared_report();
  const core::DtaResult& result = report.result;

  // The pre-Session ecotune_dta print block, verbatim.
  std::ostringstream expected;
  expected << "training energy model (1 epochs)...\n";
  expected << "\n=== " << report.benchmark << " (" << report.objective
           << " objective) ===\n"
           << "significant regions : "
           << result.dyn_report.significant.size() << '\n'
           << "phase threads       : " << result.phase_threads << '\n'
           << "model recommendation: "
           << to_string(result.recommendation.cf) << '|'
           << to_string(result.recommendation.ucf) << '\n'
           << "phase best          : " << to_string(result.phase_best)
           << '\n'
           << "experiments         : " << result.thread_scenarios << " + "
           << result.analysis_runs << " + " << result.frequency_scenarios
           << " in " << result.app_runs << " app runs ("
           << TextTable::num(result.tuning_time.value(), 1)
           << " s simulated)\n\n";
  TextTable table("per-region configuration");
  table.header({"region", "threads", "CF", "UCF", "scenario"});
  for (const auto& sig : result.dyn_report.significant) {
    const auto it = result.region_best.find(sig.name);
    if (it == result.region_best.end()) continue;
    table.row({sig.name, std::to_string(it->second.threads),
               to_string(it->second.core), to_string(it->second.uncore),
               std::to_string(result.tuning_model.scenario_id(sig.name))});
  }
  table.print(expected);
  expected << "\ntuning model written to out.json\n";

  std::ostringstream got;
  api::TextReportSink sink(got);
  sink.training_started(1);
  sink.dta(report);
  sink.model_written(report.benchmark, "out.json");
  sink.close();
  EXPECT_EQ(got.str(), expected.str());
}

TEST(ApiReport, JsonSinkRoundTripsThroughCommonJson) {
  const api::DtaReport& report = shared_report();

  std::ostringstream os;
  api::JsonReportSink sink(os);
  sink.training_started(1);  // must not leak progress chatter into JSON
  sink.dta(report);
  sink.model_written(report.benchmark, "out.json");
  sink.close();

  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "ecotune.dta.v1");
  const auto& reports = doc.at("reports").as_array();
  ASSERT_EQ(reports.size(), 1u);
  const Json& r = reports.front();
  EXPECT_EQ(r.at("benchmark").as_string(), report.benchmark);
  EXPECT_EQ(r.at("objective").as_string(), report.objective);
  EXPECT_EQ(r.at("tuning_model_path").as_string(), "out.json");
  EXPECT_EQ(r.at("phase_threads").as_int(), report.result.phase_threads);
  EXPECT_EQ(r.at("significant_regions").as_array().size(),
            report.result.dyn_report.significant.size());

  // The embedded DtaResult rehydrates bit-exactly.
  const core::DtaResult rehydrated =
      core::DtaResult::from_json(r.at("result"));
  EXPECT_EQ(rehydrated.to_json().dump(-1),
            report.result.to_json().dump(-1));

  // Compact (indent < 0) form parses too.
  std::ostringstream compact;
  api::JsonReportSink compact_sink(compact, -1);
  compact_sink.dta(report);
  compact_sink.close();
  EXPECT_EQ(Json::parse(compact.str()).at("reports").as_array().size(), 1u);
}

TEST(ApiSession, CampaignIsJobsInvariant) {
  const std::vector<workload::Benchmark> apps = {
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(2),
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(2),
      workload::BenchmarkSuite::by_name("miniMD").with_iterations(2)};

  api::Session serial(tiny_config().jobs(1));
  serial.use_model(tiny_model());
  api::Session parallel(tiny_config().jobs(3));
  parallel.use_model(tiny_model());

  const api::CampaignReport c1 = serial.run_dta_campaign(apps);
  const api::CampaignReport c3 = parallel.run_dta_campaign(apps);
  ASSERT_EQ(c1.reports.size(), apps.size());
  EXPECT_EQ(c1.to_json().dump(-1), c3.to_json().dump(-1));
}

TEST(ApiSession, CampaignWarmRestartsFromStoreWithZeroMisses) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ecotune_api_campaign")
          .string();
  std::filesystem::remove_all(dir);
  const std::vector<workload::Benchmark> apps = {
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(2),
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(2)};

  api::Session cold(tiny_config().jobs(2).cache(dir).scope("test_api"));
  cold.use_model(tiny_model());
  const api::CampaignReport cold_report = cold.run_dta_campaign(apps);

  api::Session warm(tiny_config().jobs(3).cache(dir).scope("test_api"));
  warm.use_model(tiny_model());
  const api::CampaignReport warm_report = warm.run_dta_campaign(apps);

  EXPECT_EQ(warm_report.to_json().dump(-1), cold_report.to_json().dump(-1));
  // Every whole-DTA row must answer from the store.
  EXPECT_EQ(warm.store().stats().misses, 0);
  EXPECT_EQ(warm.store().stats().hits,
            static_cast<long>(apps.size()));
  std::filesystem::remove_all(dir);
}

TEST(ApiSession, SeedConventionAndOverrides) {
  EXPECT_EQ(api::SessionConfig{}.seed(10).train_seed(), 10u);
  EXPECT_EQ(api::SessionConfig{}.seed(10).tuning_seed(), 11u);
  EXPECT_EQ(api::SessionConfig{}.seed(10).tuning_seed(99).tuning_seed(),
            99u);
  EXPECT_EQ(api::SessionConfig{}.train_node_id(), 0);
  EXPECT_EQ(api::SessionConfig{}.tuning_node_id(), 1);
}

TEST(ApiSession, ModelLifecycle) {
  api::Session session(tiny_config());
  EXPECT_FALSE(session.has_model());
  EXPECT_THROW(static_cast<void>(session.model()), Error);
  EXPECT_THROW(session.use_model(model::EnergyModel{}), Error);

  session.use_model(tiny_model());
  ASSERT_TRUE(session.has_model());
  // train_model() is idempotent once a model exists: same object back.
  const model::EnergyModel* first = &session.train_model();
  EXPECT_EQ(first, &session.train_model());
  EXPECT_EQ(first, &session.model());
}

TEST(ApiSession, StoreConfigurationErrorsThrow) {
  EXPECT_THROW(api::Session(api::SessionConfig{}.cache("/tmp/x", "sideways")),
               Error);
  // A non-off mode without a cache dir is the same CLI error the drivers
  // always rejected.
  EXPECT_THROW(api::Session(api::SessionConfig{}.cache("", "rw")), Error);
}

TEST(ApiSession, UnknownBenchmarkThrows) {
  api::Session session(tiny_config());
  session.use_model(tiny_model());
  EXPECT_THROW(session.run_dta("NoSuchBenchmark"), Error);
  EXPECT_THROW(session.run_dta_campaign(std::vector<std::string>{"Nope"}),
               Error);
}

TEST(Cli, StrictIntRejectsGarbageAndRespectsBounds) {
  int value = 5;
  EXPECT_FALSE(cli::parse_strict_int("--epochs", "ten", 1, value));
  EXPECT_FALSE(cli::parse_strict_int("--epochs", "3x", 1, value));
  EXPECT_FALSE(cli::parse_strict_int("--epochs", "", 1, value));
  EXPECT_FALSE(cli::parse_strict_int("--epochs", "0", 1, value));
  EXPECT_FALSE(cli::parse_strict_int("--jobs", "-2", 0, value));
  EXPECT_EQ(value, 5);  // failures never touch the output

  EXPECT_TRUE(cli::parse_strict_int("--epochs", "12", 1, value));
  EXPECT_EQ(value, 12);

  std::uint64_t seed = 0;
  EXPECT_TRUE(cli::parse_strict_int("--seed", "18446744073709551615",
                                    std::uint64_t{0}, seed));
  EXPECT_EQ(seed, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(cli::parse_strict_int("--seed", "18446744073709551616",
                                     std::uint64_t{0}, seed));
}

}  // namespace
}  // namespace ecotune
