#include <gtest/gtest.h>

#include "hwsim/perf_model.hpp"

namespace ecotune::hwsim {
namespace {

KernelTraits compute_kernel() {
  KernelTraits k;
  k.total_instructions = 1e10;
  k.ipc_peak = 2.0;
  k.dram_bytes = 1e8;
  k.uncore_cycles = 5e7;
  k.parallel_fraction = 0.995;
  k.contention = 0.003;
  k.overlap = 0.8;
  return k;
}

KernelTraits memory_kernel() {
  KernelTraits k;
  k.total_instructions = 5e9;
  k.ipc_peak = 1.4;
  k.dram_bytes = 1.5e10;
  k.uncore_cycles = 2e9;
  k.parallel_fraction = 0.99;
  k.contention = 0.01;
  k.overlap = 0.9;
  return k;
}

TEST(PerfModel, SpeedupIsMonotoneForParallelKernel) {
  const PerfModel m;
  const auto k = compute_kernel();
  double prev = 0.0;
  for (int t : {1, 2, 4, 8, 12, 16, 20, 24}) {
    const double s = m.speedup(k, t);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(m.speedup(k, 1), 1.0);
}

TEST(PerfModel, SpeedupSaturatesWithHeavyContention) {
  const PerfModel m;
  KernelTraits k = compute_kernel();
  k.contention = 0.03;
  EXPECT_GT(m.speedup(k, 16), m.speedup(k, 24));
}

TEST(PerfModel, SpeedupRejectsBadThreadCount) {
  const PerfModel m;
  EXPECT_THROW((void)m.speedup(compute_kernel(), 0), PreconditionError);
}

TEST(PerfModel, BandwidthIncreasesWithUncoreFreq) {
  const PerfModel m;
  double prev = 0.0;
  for (int mhz = 1300; mhz <= 3000; mhz += 100) {
    const double bw = m.bandwidth(UncoreFreq::mhz(mhz), 24);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(PerfModel, BandwidthPeaksAtMaxUncoreAndAllThreads) {
  const PerfModel m;
  const double peak = m.bandwidth(UncoreFreq::mhz(3000), 24);
  EXPECT_NEAR(peak, m.params().peak_bandwidth, 1e-3 * peak);
  EXPECT_LT(m.bandwidth(UncoreFreq::mhz(3000), 4), peak);
}

TEST(PerfModel, ComputeKernelScalesWithCoreFreq) {
  const PerfModel m;
  const auto k = compute_kernel();
  const auto slow = m.evaluate(k, 24, CoreFreq::mhz(1200),
                               UncoreFreq::mhz(3000));
  const auto fast = m.evaluate(k, 24, CoreFreq::mhz(2400),
                               UncoreFreq::mhz(3000));
  // Compute-bound: doubling the clock should nearly halve the runtime.
  const double ratio = slow.time / fast.time;
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.05);
}

TEST(PerfModel, MemoryKernelInsensitiveToCoreFreq) {
  const PerfModel m;
  const auto k = memory_kernel();
  const auto slow = m.evaluate(k, 24, CoreFreq::mhz(1500),
                               UncoreFreq::mhz(3000));
  const auto fast = m.evaluate(k, 24, CoreFreq::mhz(2500),
                               UncoreFreq::mhz(3000));
  EXPECT_LT(slow.time / fast.time, 1.25);
}

TEST(PerfModel, MemoryKernelSpeedsUpWithUncoreFreq) {
  const PerfModel m;
  const auto k = memory_kernel();
  const auto slow = m.evaluate(k, 24, CoreFreq::mhz(2500),
                               UncoreFreq::mhz(1300));
  const auto fast = m.evaluate(k, 24, CoreFreq::mhz(2500),
                               UncoreFreq::mhz(3000));
  EXPECT_GT(slow.time / fast.time, 1.2);
}

TEST(PerfModel, TimeDecomposesIntoComponents) {
  const PerfModel m;
  const auto k = compute_kernel();
  const auto r = m.evaluate(k, 24, CoreFreq::mhz(2000),
                            UncoreFreq::mhz(2000));
  // Total lies between the overlapped max and the fully serialized sum.
  const double serial = r.compute_time.value() + r.memory_time.value() +
                        r.uncore_time.value();
  const double overlapped =
      std::max(r.compute_time.value(),
               r.memory_time.value() + r.uncore_time.value());
  EXPECT_GE(r.time.value() + 1e-12, overlapped + r.sync_time.value());
  EXPECT_LE(r.time.value(), serial + r.sync_time.value() + 1e-12);
}

TEST(PerfModel, StallCyclesConsistentWithCycleAccounting) {
  const PerfModel m;
  const auto k = compute_kernel();
  const auto r = m.evaluate(k, 24, CoreFreq::mhz(2000),
                            UncoreFreq::mhz(2000));
  EXPECT_NEAR(r.total_cycles, r.work_cycles + r.stall_cycles, 1.0);
  EXPECT_GE(r.stall_cycles, 0.0);
}

TEST(PerfModel, RejectsUnsetFrequencies) {
  const PerfModel m;
  EXPECT_THROW((void)m.evaluate(compute_kernel(), 24, CoreFreq{},
                                UncoreFreq::mhz(2000)),
               PreconditionError);
}

// Property sweep: time strictly decreases in core frequency for a
// compute-bound kernel at every thread count.
class PerfMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PerfMonotonicity, TimeMonotoneInCoreFreq) {
  const PerfModel m;
  const auto k = compute_kernel();
  const int threads = GetParam();
  double prev = 1e300;
  for (int mhz = 1200; mhz <= 2500; mhz += 100) {
    const auto r =
        m.evaluate(k, threads, CoreFreq::mhz(mhz), UncoreFreq::mhz(2000));
    EXPECT_LT(r.time.value(), prev);
    prev = r.time.value();
  }
}

TEST_P(PerfMonotonicity, TimeMonotoneInUncoreFreqForMemoryKernel) {
  const PerfModel m;
  const auto k = memory_kernel();
  const int threads = GetParam();
  double prev = 1e300;
  for (int mhz = 1300; mhz <= 3000; mhz += 100) {
    const auto r =
        m.evaluate(k, threads, CoreFreq::mhz(2000), UncoreFreq::mhz(mhz));
    EXPECT_LT(r.time.value(), prev);
    prev = r.time.value();
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PerfMonotonicity,
                         ::testing::Values(1, 12, 16, 20, 24));

}  // namespace
}  // namespace ecotune::hwsim
