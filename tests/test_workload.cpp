#include <gtest/gtest.h>

#include <algorithm>

#include "common/config.hpp"
#include "hwsim/node.hpp"
#include "workload/suite.hpp"

namespace ecotune::workload {
namespace {

TEST(BenchmarkSuite, HasAllNineteenPaperBenchmarks) {
  const auto names = BenchmarkSuite::names();
  EXPECT_EQ(names.size(), 19u);
  for (const char* expected :
       {"CG", "DC", "EP", "FT", "IS", "MG", "BT", "BT-MZ", "SP-MZ",
        "Amg2013", "Lulesh", "miniFE", "XSBench", "Kripke", "Mcb", "CoMD",
        "miniMD", "Blasbench", "BEM4I"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(BenchmarkSuite, LookupByNameWorksAndThrowsOnUnknown) {
  EXPECT_EQ(BenchmarkSuite::by_name("Lulesh").suite(), "CORAL");
  EXPECT_THROW((void)BenchmarkSuite::by_name("NotABenchmark"), ConfigError);
}

TEST(BenchmarkSuite, EvaluationSetMatchesPaper) {
  const auto eval = BenchmarkSuite::evaluation_names();
  EXPECT_EQ(eval, (std::vector<std::string>{"Lulesh", "Amg2013", "miniMD",
                                            "BEM4I", "Mcb"}));
  EXPECT_EQ(BenchmarkSuite::training_set().size(), 14u);
  // Training and evaluation sets are disjoint.
  for (const auto& b : BenchmarkSuite::training_set())
    EXPECT_EQ(std::find(eval.begin(), eval.end(), b.name()), eval.end());
}

TEST(BenchmarkSuite, PaperRegionNamesPresent) {
  const auto& lulesh = BenchmarkSuite::by_name("Lulesh");
  for (const char* r :
       {"IntegrateStressForElems", "CalcFBHourglassForceForElems",
        "CalcKinematicsForElems", "CalcQForElems",
        "ApplyMaterialPropertiesForElems"}) {
    EXPECT_NE(lulesh.find_region(r), nullptr) << r;
  }
  const auto& mcb = BenchmarkSuite::by_name("Mcb");
  for (const char* r : {"setupDT", "advPhoton", "omp parallel:423",
                        "omp parallel:501", "omp parallel:642"}) {
    EXPECT_NE(mcb.find_region(r), nullptr) << r;
  }
  EXPECT_EQ(lulesh.find_region("nope"), nullptr);
}

TEST(BenchmarkSuite, ProgrammingModelsMatchPaperTableTwo) {
  EXPECT_EQ(BenchmarkSuite::by_name("CG").model(), ProgrammingModel::kOpenMp);
  EXPECT_EQ(BenchmarkSuite::by_name("BT-MZ").model(),
            ProgrammingModel::kHybrid);
  EXPECT_EQ(BenchmarkSuite::by_name("Kripke").model(),
            ProgrammingModel::kMpi);
  EXPECT_EQ(BenchmarkSuite::by_name("CoMD").model(), ProgrammingModel::kMpi);
  EXPECT_EQ(to_string(ProgrammingModel::kHybrid), "hybrid");
}

TEST(Benchmark, WithIterationsCopiesEverythingElse) {
  const auto& lulesh = BenchmarkSuite::by_name("Lulesh");
  const auto shortened = lulesh.with_iterations(2);
  EXPECT_EQ(shortened.phase_iterations(), 2);
  EXPECT_EQ(shortened.regions().size(), lulesh.regions().size());
  EXPECT_EQ(shortened.name(), lulesh.name());
}

TEST(Benchmark, PhaseTraitsAggregateConsistently) {
  const auto& lulesh = BenchmarkSuite::by_name("Lulesh");
  const auto agg = lulesh.phase_traits();
  EXPECT_DOUBLE_EQ(agg.total_instructions,
                   lulesh.instructions_per_iteration());
  double dram = 0.0;
  for (const auto& r : lulesh.regions())
    dram += r.traits.dram_bytes * r.calls_per_iteration;
  EXPECT_DOUBLE_EQ(agg.dram_bytes, dram);
  // Weighted fractions stay inside the min/max envelope of the regions.
  double lo = 1.0, hi = 0.0;
  for (const auto& r : lulesh.regions()) {
    lo = std::min(lo, r.traits.load_fraction);
    hi = std::max(hi, r.traits.load_fraction);
  }
  EXPECT_GE(agg.load_fraction, lo);
  EXPECT_LE(agg.load_fraction, hi);
}

TEST(Benchmark, ConstructorValidates) {
  Region r{"r", hwsim::KernelTraits{}, 1};
  EXPECT_THROW(Benchmark("x", "s", ProgrammingModel::kOpenMp, {}, 1),
               PreconditionError);
  EXPECT_THROW(Benchmark("x", "s", ProgrammingModel::kOpenMp, {r}, 0),
               PreconditionError);
  EXPECT_THROW(Benchmark("x", "s", ProgrammingModel::kOpenMp, {r}, 1, 0.9),
               PreconditionError);
}

TEST(BenchmarkSuite, EvaluationBenchmarksHaveSignificantAndTinyRegions) {
  // The five evaluation benchmarks need sub-threshold regions so that
  // filtering and significance detection have something to reject.
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  for (const auto& name : BenchmarkSuite::evaluation_names()) {
    const auto& bench = BenchmarkSuite::by_name(name);
    int significant = 0;
    for (const auto& r : bench.regions()) {
      const auto run = node.run_kernel(r.traits, 24);
      if (run.time.value() >= 0.1) ++significant;
    }
    EXPECT_GE(significant, 3) << name;
    EXPECT_LT(significant, static_cast<int>(bench.regions().size()) + 1)
        << name;
  }
}

// Paper Table V shape: ground-truth optima separate compute-bound from
// memory-bound evaluation benchmarks.
TEST(BenchmarkSuite, GroundTruthOptimaReproducePaperShape) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(7));
  node.set_jitter(0.0);
  const auto& spec = node.spec();

  auto best_config = [&](const Benchmark& b) {
    double best_e = 1e300;
    SystemConfig best;
    for (int t : {12, 16, 20, 24}) {
      for (auto cf : spec.core_grid.values()) {
        node.set_all_core_freqs(cf);
        for (auto ucf : spec.uncore_grid.values()) {
          node.set_all_uncore_freqs(ucf);
          double e = 0.0;
          for (const auto& r : b.regions())
            e += node.run_kernel(r.traits, t).node_energy.value();
          if (e < best_e) {
            best_e = e;
            best = SystemConfig{t, cf, ucf};
          }
        }
      }
    }
    return best;
  };

  const auto lulesh = best_config(BenchmarkSuite::by_name("Lulesh"));
  const auto mcb = best_config(BenchmarkSuite::by_name("Mcb"));
  const auto amg = best_config(BenchmarkSuite::by_name("Amg2013"));

  // Compute-bound Lulesh: high CF, low-mid UCF (paper: 2.4|1.7, 24 thr).
  EXPECT_GE(lulesh.core.as_mhz(), 2300);
  EXPECT_LE(lulesh.uncore.as_mhz(), 2000);
  EXPECT_EQ(lulesh.threads, 24);
  // Memory-bound Mcb: low CF, high UCF, 20 threads (paper: 1.6|2.5, 20).
  EXPECT_LE(mcb.core.as_mhz(), 2000);
  EXPECT_GE(mcb.uncore.as_mhz(), 2300);
  EXPECT_EQ(mcb.threads, 20);
  // Amg2013 prefers 16 threads (paper Table V).
  EXPECT_EQ(amg.threads, 16);
}

}  // namespace
}  // namespace ecotune::workload
