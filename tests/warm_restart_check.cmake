# Warm-restart equivalence check for the measurement store.
#
# Runs DRIVER twice against a shared --cache-dir: a cold run at --jobs 1
# that populates the store, then a warm run at --jobs 4 that must answer
# every measurement from it. Fails when
#   - either run fails,
#   - the two stdouts are not byte-identical, or
#   - the warm run's store summary reports any miss (i.e. it simulated a
#     scenario the cold run had already measured).
#
# Usage:
#   cmake -DDRIVER=<exe> [-DDRIVER_ARGS=<args>] -DWORK_DIR=<dir>
#         -P warm_restart_check.cmake

if(NOT DEFINED DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "warm_restart_check: DRIVER and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
separate_arguments(ARGS_LIST UNIX_COMMAND "${DRIVER_ARGS}")

foreach(phase cold warm)
  if(phase STREQUAL "cold")
    set(jobs 1)
  else()
    set(jobs 4)
  endif()
  execute_process(
    COMMAND "${DRIVER}" ${ARGS_LIST} --jobs ${jobs}
            --cache-dir "${WORK_DIR}/cache"
    OUTPUT_FILE "${WORK_DIR}/${phase}.out"
    ERROR_FILE "${WORK_DIR}/${phase}.err"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "warm_restart_check: ${phase} run of ${DRIVER} failed (rc=${rc}); "
      "see ${WORK_DIR}/${phase}.err")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/cold.out" "${WORK_DIR}/warm.out"
  RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
    "warm_restart_check: warm stdout differs from cold stdout "
    "(${WORK_DIR}/cold.out vs ${WORK_DIR}/warm.out)")
endif()

file(READ "${WORK_DIR}/warm.err" warm_err)
if(NOT warm_err MATCHES "\\[measurement-store\\] hits=[0-9]+ misses=0 ")
  message(FATAL_ERROR
    "warm_restart_check: warm run was not fully answered from the store:\n"
    "${warm_err}")
endif()

message(STATUS "warm_restart_check: byte-identical, zero warm misses")
