#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

namespace ecotune::core {
namespace {

/// One trained model shared by the evaluation tests.
class EvaluationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    node_ = new hwsim::NodeSimulator(hwsim::haswell_ep_spec(), 0, Rng(3));
    node_->set_jitter(0.001);
    model::AcquisitionOptions opts;
    opts.phase_iterations = 2;
    model::DataAcquisition acq(*node_, opts);
    trained_ = new model::EnergyModel();
    trained_->train(acq.acquire(workload::BenchmarkSuite::training_set()),
                    10);
  }
  static void TearDownTestSuite() {
    delete trained_;
    delete node_;
    trained_ = nullptr;
    node_ = nullptr;
  }

  static SavingsOptions fast_options() {
    SavingsOptions opts;
    opts.repeats = 2;
    opts.static_search.thread_counts = {16, 24};
    opts.static_search.cf_stride = 2;
    opts.static_search.ucf_stride = 2;
    return opts;
  }

  static hwsim::NodeSimulator* node_;
  static model::EnergyModel* trained_;
};

hwsim::NodeSimulator* EvaluationTest::node_ = nullptr;
model::EnergyModel* EvaluationTest::trained_ = nullptr;

TEST_F(EvaluationTest, RowIsInternallyConsistent) {
  SavingsEvaluator evaluator(*node_, *trained_, fast_options());
  const auto row = evaluator.evaluate(
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6));

  EXPECT_EQ(row.benchmark, "Lulesh");
  // Time decomposition: total dynamic delta = config effect + overhead.
  EXPECT_NEAR(row.dynamic_time_pct,
              row.perf_reduction_config_pct + row.overhead_pct, 0.75);
  // Overhead is a pure cost.
  EXPECT_LT(row.overhead_pct, 0.0);
  // Savings magnitudes are sane percentages.
  for (double v : {row.static_job_energy_pct, row.static_cpu_energy_pct,
                   row.dynamic_job_energy_pct, row.dynamic_cpu_energy_pct}) {
    EXPECT_GT(v, -50.0);
    EXPECT_LT(v, 60.0);
  }
  // DTA details are attached.
  EXPECT_FALSE(row.dta.region_best.empty());
  EXPECT_GT(row.dynamic_switches, 0);
}

TEST_F(EvaluationTest, StaticConfigComesFromSearch) {
  SavingsEvaluator evaluator(*node_, *trained_, fast_options());
  const auto row = evaluator.evaluate(
      workload::BenchmarkSuite::by_name("miniMD").with_iterations(6));
  // The static search explores {16,24} threads at strided frequencies;
  // the returned config must be on the searched lattice.
  EXPECT_TRUE(row.static_config.threads == 16 ||
              row.static_config.threads == 24);
  EXPECT_EQ((row.static_config.core.as_mhz() - 1200) % 200, 0);
  EXPECT_EQ((row.static_config.uncore.as_mhz() - 1300) % 200, 0);
}

TEST_F(EvaluationTest, ObjectiveIsForwardedToThePlugin) {
  SavingsOptions opts = fast_options();
  opts.plugin.config.objective = "edp";
  SavingsEvaluator evaluator(*node_, *trained_, opts);
  const auto row = evaluator.evaluate(
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(6));

  SavingsOptions energy_opts = fast_options();
  SavingsEvaluator energy_eval(*node_, *trained_, energy_opts);
  const auto energy_row = energy_eval.evaluate(
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(6));

  // EDP tuning protects run time relative to pure-energy tuning.
  EXPECT_GE(row.dynamic_time_pct, energy_row.dynamic_time_pct - 1.0);
}

TEST_F(EvaluationTest, ZeroMeasurementFailsLoudlyInsteadOfNaN) {
  SavingsEvaluator evaluator(*node_, *trained_, fast_options());
  // A zero-iteration run measures zero time and energy; savings relative to
  // it are undefined and must throw instead of propagating NaN/Inf.
  EXPECT_THROW((void)evaluator.evaluate(
                   workload::BenchmarkSuite::by_name("Lulesh")
                       .with_iterations(0)),
               PreconditionError);
}

TEST_F(EvaluationTest, JobCountDoesNotChangeRows) {
  SavingsOptions opts = fast_options();
  opts.repeats = 1;
  std::vector<workload::Benchmark> apps{
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6),
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(6)};

  opts.jobs = 1;
  SavingsEvaluator serial_eval(*node_, *trained_, opts);
  const auto serial = serial_eval.evaluate_all(apps);
  opts.jobs = 4;
  SavingsEvaluator wide_eval(*node_, *trained_, opts);
  const auto wide = wide_eval.evaluate_all(apps);

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(wide.size(), 2u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].benchmark, wide[i].benchmark);
    EXPECT_EQ(serial[i].static_config, wide[i].static_config);
    // Bitwise-identical percentages: rows are noise-keyed by benchmark,
    // not by worker or completion order.
    EXPECT_EQ(serial[i].static_job_energy_pct, wide[i].static_job_energy_pct);
    EXPECT_EQ(serial[i].static_cpu_energy_pct, wide[i].static_cpu_energy_pct);
    EXPECT_EQ(serial[i].dynamic_job_energy_pct,
              wide[i].dynamic_job_energy_pct);
    EXPECT_EQ(serial[i].dynamic_cpu_energy_pct,
              wide[i].dynamic_cpu_energy_pct);
    EXPECT_EQ(serial[i].dynamic_time_pct, wide[i].dynamic_time_pct);
    EXPECT_EQ(serial[i].overhead_pct, wide[i].overhead_pct);
    EXPECT_EQ(serial[i].dynamic_switches, wide[i].dynamic_switches);
  }
}

TEST_F(EvaluationTest, MoreRepeatsReduceJitterInReportedSavings) {
  SavingsOptions one = fast_options();
  one.repeats = 1;
  SavingsOptions many = fast_options();
  many.repeats = 6;

  const auto app =
      workload::BenchmarkSuite::by_name("BEM4I").with_iterations(5);
  // Evaluate twice per setting; the spread of the averaged estimate must
  // not explode (weak property: both within a plausible band).
  SavingsEvaluator e1(*node_, *trained_, one);
  SavingsEvaluator e2(*node_, *trained_, many);
  const auto r1 = e1.evaluate(app);
  const auto r2 = e2.evaluate(app);
  EXPECT_NEAR(r1.static_cpu_energy_pct, r2.static_cpu_energy_pct, 5.0);
}

}  // namespace
}  // namespace ecotune::core
