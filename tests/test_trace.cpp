#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "instr/scorep_runtime.hpp"
#include "pmc/event_set.hpp"
#include "trace/otf2.hpp"
#include "trace/post_processor.hpp"
#include "trace/trace_listener.hpp"
#include "workload/suite.hpp"

namespace ecotune::trace {
namespace {

using hwsim::PmuEvent;

TEST(Otf2Archive, DefinitionsInternAndLookup) {
  Otf2Archive a;
  const auto r1 = a.define_region("phase");
  const auto r2 = a.define_region("kernel");
  EXPECT_EQ(a.define_region("phase"), r1);  // interned
  EXPECT_NE(r1, r2);
  EXPECT_EQ(a.region_name(r1), "phase");
  EXPECT_EQ(a.region_id("kernel"), r2);
  EXPECT_TRUE(a.has_region("phase"));
  EXPECT_FALSE(a.has_region("nope"));
  EXPECT_THROW((void)a.region_id("nope"), PreconditionError);

  const auto m = a.define_metric("energy");
  EXPECT_EQ(a.metric_name(m), "energy");
  EXPECT_EQ(a.metric_id("energy"), m);
}

TEST(Otf2Archive, EnforcesChronologicalOrder) {
  Otf2Archive a;
  const auto r = a.define_region("r");
  a.enter(Seconds(1.0), r);
  a.exit(Seconds(2.0), r);
  EXPECT_THROW(a.enter(Seconds(1.5), r), PreconditionError);
}

TEST(Otf2Archive, RejectsUnknownIds) {
  Otf2Archive a;
  EXPECT_THROW(a.enter(Seconds(0.0), 0), PreconditionError);
  EXPECT_THROW(a.metric(Seconds(0.0), 0, 1.0), PreconditionError);
}

TEST(Otf2Archive, BinaryRoundTrip) {
  Otf2Archive a;
  const auto r = a.define_region("omp parallel:423");
  const auto m = a.define_metric("hdeem/BLADE/E");
  a.enter(Seconds(0.5), r);
  a.metric(Seconds(0.5), m, 123.456);
  a.exit(Seconds(1.25), r);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_trace_test.bin")
          .string();
  a.save(path);
  const Otf2Archive b = Otf2Archive::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(b.records().size(), 3u);
  EXPECT_EQ(b.region_name(b.records()[0].id), "omp parallel:423");
  EXPECT_EQ(b.records()[1].type, RecordType::kMetric);
  EXPECT_DOUBLE_EQ(b.records()[1].value, 123.456);
  EXPECT_DOUBLE_EQ(b.records()[2].timestamp, 1.25);
}

TEST(Otf2Archive, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_garbage.bin")
          .string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a trace";
  }
  EXPECT_THROW(Otf2Archive::load(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(Otf2Archive::load("/nonexistent/path/x.bin"), Error);
}

class TracedRunTest : public ::testing::Test {
 protected:
  TracedRunTest()
      : node_(hwsim::haswell_ep_spec(), 0, Rng(1)),
        app_(workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3)) {
    node_.set_jitter(0.0);
  }

  Otf2Archive run_traced(pmc::EventSet events) {
    Otf2Archive archive;
    TraceListener listener(archive, std::move(events),
                           pmc::CounterSampler(Rng(2), 0.0));
    instr::ExecutionContext ctx(node_);
    instr::ScorepRuntime runtime(
        app_, instr::InstrumentationFilter::instrument_all());
    runtime.add_listener(&listener);
    runtime.execute(ctx);
    return archive;
  }

  hwsim::NodeSimulator node_;
  workload::Benchmark app_;
};

TEST_F(TracedRunTest, ProducesBalancedChronologicalRecords) {
  const auto archive = run_traced(pmc::EventSet{});
  int depth = 0;
  double last_t = 0.0;
  for (const auto& r : archive.records()) {
    EXPECT_GE(r.timestamp, last_t);
    last_t = r.timestamp;
    if (r.type == RecordType::kEnter) ++depth;
    if (r.type == RecordType::kExit) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TracedRunTest, PostProcessorExtractsPhaseInstances) {
  const auto archive = run_traced(
      pmc::EventSet({PmuEvent::kTOT_INS, PmuEvent::kLD_INS}));
  const Otf2PostProcessor post(archive,
                               std::string(instr::kPhaseRegionName));
  ASSERT_EQ(post.phase_instances().size(), 3u);
  for (const auto& inst : post.phase_instances()) {
    EXPECT_GT(inst.duration().value(), 0.0);
    EXPECT_GT(inst.energy.value(), 0.0);
    // Each phase iteration executes the same work.
    ASSERT_TRUE(inst.counters.count("PAPI_TOT_INS"));
    EXPECT_NEAR(inst.counters.at("PAPI_TOT_INS"),
                app_.instructions_per_iteration(), 1e-3);
  }
}

TEST_F(TracedRunTest, WholeRunEnergyMatchesSumOfPhases) {
  const auto archive = run_traced(pmc::EventSet{});
  const Otf2PostProcessor post(archive,
                               std::string(instr::kPhaseRegionName));
  double phase_sum = 0.0;
  for (const auto& inst : post.phase_instances())
    phase_sum += inst.energy.value();
  EXPECT_NEAR(post.total_energy().value(), phase_sum,
              1e-6 * phase_sum + 1e-9);
  EXPECT_GT(post.total_time().value(), 0.0);
}

TEST_F(TracedRunTest, MeanCounterRatesAreTimeNormalized) {
  const auto archive = run_traced(pmc::EventSet({PmuEvent::kTOT_INS}));
  const Otf2PostProcessor post(archive,
                               std::string(instr::kPhaseRegionName));
  const auto rates = post.mean_counter_rates();
  ASSERT_TRUE(rates.count("PAPI_TOT_INS"));
  double total_t = 0.0;
  for (const auto& inst : post.phase_instances())
    total_t += inst.duration().value();
  EXPECT_NEAR(rates.at("PAPI_TOT_INS"),
              3.0 * app_.instructions_per_iteration() / total_t, 1.0);
}

TEST_F(TracedRunTest, RegionStatsCoverAllInstrumentedRegions) {
  const auto archive = run_traced(pmc::EventSet{});
  const Otf2PostProcessor post(archive,
                               std::string(instr::kPhaseRegionName));
  // 7 app regions + phase.
  EXPECT_EQ(post.region_stats().size(), app_.regions().size() + 1);
  for (const auto& rs : post.region_stats()) {
    EXPECT_EQ(rs.count, 3) << rs.name;
    EXPECT_GT(rs.total_time.value(), 0.0);
  }
}

TEST(Otf2PostProcessor, EmptyArchiveYieldsZeroes) {
  Otf2Archive a;
  const Otf2PostProcessor post(a, "PHASE");
  EXPECT_DOUBLE_EQ(post.total_energy().value(), 0.0);
  EXPECT_TRUE(post.phase_instances().empty());
  EXPECT_THROW(post.mean_counter_rates(), PreconditionError);
}

}  // namespace
}  // namespace ecotune::trace
