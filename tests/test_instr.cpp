#include <gtest/gtest.h>

#include "instr/execution_context.hpp"
#include "instr/filter.hpp"
#include "instr/pcp.hpp"
#include "instr/profile.hpp"
#include "instr/scorep_runtime.hpp"
#include "workload/suite.hpp"

namespace ecotune::instr {
namespace {

hwsim::NodeSimulator make_node() {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  return node;
}

TEST(ExecutionContext, AppliesFullConfigAndTracksOverhead) {
  auto node = make_node();
  ExecutionContext ctx(node);
  const SystemConfig target{16, CoreFreq::mhz(1800), UncoreFreq::mhz(2200)};
  const Seconds overhead = ctx.apply(target);
  EXPECT_EQ(ctx.current(), target);
  EXPECT_GT(overhead.value(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.total_switch_overhead().value(), overhead.value());
  EXPECT_EQ(ctx.switch_count(), 3);  // threads + core + uncore
  // Re-applying the same config is free.
  EXPECT_DOUBLE_EQ(ctx.apply(target).value(), 0.0);
}

TEST(ExecutionContext, RejectsInvalidThreadCounts) {
  auto node = make_node();
  ExecutionContext ctx(node);
  EXPECT_THROW(ctx.set_omp_threads(0), PreconditionError);
  EXPECT_THROW(ctx.set_omp_threads(25), PreconditionError);
}

TEST(Pcp, PluginsControlTheirParameters) {
  auto node = make_node();
  ExecutionContext ctx(node);
  auto pcps = default_pcps();
  ASSERT_EQ(pcps.size(), 3u);
  for (const auto& p : pcps) {
    if (p->name() == "OpenMPTP") {
      p->set(ctx, 16);
      EXPECT_EQ(p->get(ctx), 16);
    } else if (p->name() == "cpu_freq") {
      p->set(ctx, 1800);
      EXPECT_EQ(p->get(ctx), 1800);
    } else if (p->name() == "uncore_freq") {
      p->set(ctx, 2200);
      EXPECT_EQ(p->get(ctx), 2200);
    }
  }
  EXPECT_EQ(ctx.current(),
            (SystemConfig{16, CoreFreq::mhz(1800), UncoreFreq::mhz(2200)}));
}

TEST(Filter, InstrumentAllAndNone) {
  const auto all = InstrumentationFilter::instrument_all();
  EXPECT_TRUE(all.is_instrumented("anything"));
  const auto none = InstrumentationFilter::instrument_none();
  EXPECT_FALSE(none.is_instrumented("anything"));
}

TEST(Filter, ExcludeAndFilterFileRoundTrip) {
  InstrumentationFilter f;
  f.exclude("tiny_region");
  f.exclude("omp parallel:423");
  EXPECT_FALSE(f.is_instrumented("tiny_region"));
  EXPECT_TRUE(f.is_instrumented("big_region"));

  const std::string text = f.to_filter_file();
  EXPECT_NE(text.find("EXCLUDE tiny_region"), std::string::npos);
  const auto parsed = InstrumentationFilter::from_filter_file(text);
  EXPECT_FALSE(parsed.is_instrumented("tiny_region"));
  EXPECT_FALSE(parsed.is_instrumented("omp parallel:423"));
  EXPECT_TRUE(parsed.is_instrumented("big_region"));
}

TEST(Profile, AggregatesSamples) {
  CallTreeProfile profile;
  RegionExit e;
  e.region = "r1";
  e.type = RegionType::kFunction;
  e.enter_time = Seconds(0.0);
  e.exit_time = Seconds(0.2);
  e.node_energy = Joules(50.0);
  profile.add_sample(e);
  e.enter_time = Seconds(0.3);
  e.exit_time = Seconds(0.7);
  profile.add_sample(e);

  const auto& s = profile.stats("r1");
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.total_time.value(), 0.6);
  EXPECT_DOUBLE_EQ(s.mean_time().value(), 0.3);
  EXPECT_DOUBLE_EQ(s.min_time.value(), 0.2);
  EXPECT_DOUBLE_EQ(s.max_time.value(), 0.4);
  EXPECT_TRUE(profile.contains("r1"));
  EXPECT_FALSE(profile.contains("r2"));
  EXPECT_THROW((void)profile.stats("r2"), PreconditionError);
}

TEST(ScorepRuntime, ExecutesAllIterationsAndRegions) {
  auto node = make_node();
  const auto app = workload::BenchmarkSuite::by_name("Lulesh")
                       .with_iterations(3);
  ExecutionContext ctx(node);
  ScorepOptions opts;
  opts.profiling = true;
  ScorepRuntime runtime(app, InstrumentationFilter::instrument_all(), opts);
  const auto result = runtime.execute(ctx);

  ASSERT_TRUE(result.profile.has_value());
  EXPECT_EQ(result.profile->phase_count(), 3);
  for (const auto& r : app.regions())
    EXPECT_EQ(result.profile->stats(r.name).count, 3) << r.name;
  EXPECT_GT(result.wall_time.value(), 0.0);
  EXPECT_GT(result.node_energy.value(), result.cpu_energy.value());
}

TEST(ScorepRuntime, InstrumentationAddsMeasurableOverhead) {
  const auto app = workload::BenchmarkSuite::by_name("Mcb")
                       .with_iterations(2);
  auto node_a = make_node();
  ExecutionContext ctx_a(node_a);
  ScorepRuntime instrumented(app, InstrumentationFilter::instrument_all());
  const auto with = instrumented.execute(ctx_a);

  auto node_b = make_node();
  const auto without = run_uninstrumented(
      app, node_b, SystemConfig{24, CoreFreq::mhz(2500),
                                UncoreFreq::mhz(3000)});

  EXPECT_GT(with.instrumentation_events, 0);
  EXPECT_GT(with.instrumentation_overhead.value(), 0.0);
  EXPECT_GT(with.wall_time.value(), without.wall_time.value());
  EXPECT_EQ(without.instrumentation_events, 0);
  EXPECT_DOUBLE_EQ(without.instrumentation_overhead.value(), 0.0);
}

TEST(ScorepRuntime, FilteredRegionsProduceNoEvents) {
  auto node = make_node();
  const auto& app = workload::BenchmarkSuite::by_name("Lulesh");
  const auto shortened = app.with_iterations(2);

  InstrumentationFilter filter;
  for (const auto& r : shortened.regions()) filter.exclude(r.name);
  // Only the phase region remains instrumented.
  ExecutionContext ctx(node);
  ScorepOptions opts;
  opts.profiling = true;
  ScorepRuntime runtime(shortened, filter, opts);
  const auto result = runtime.execute(ctx);
  ASSERT_TRUE(result.profile.has_value());
  EXPECT_EQ(result.profile->all().size(), 1u);  // just PHASE
  EXPECT_EQ(result.profile->phase_count(), 2);
}

TEST(ScorepRuntime, ListenersObserveConfigSwitchesAtPhase) {
  auto node = make_node();
  const auto app = workload::BenchmarkSuite::by_name("miniMD")
                       .with_iterations(4);

  // A listener that alternates the core frequency every phase iteration.
  class Alternator final : public RegionListener {
   public:
    explicit Alternator(ExecutionContext& ctx) : ctx_(ctx) {}
    void on_enter(const RegionEnter& e) override {
      if (e.type != RegionType::kPhase) return;
      const int mhz = e.iteration % 2 == 0 ? 1200 : 2500;
      ctx_.adapt().set_all_core_freqs(CoreFreq::mhz(mhz));
    }
    void on_exit(const RegionExit& e) override {
      if (e.type == RegionType::kPhase) phase_times.push_back(e.duration());
    }
    std::vector<Seconds> phase_times;

   private:
    ExecutionContext& ctx_;
  };

  ExecutionContext ctx(node);
  Alternator alternator(ctx);
  ScorepRuntime runtime(app, InstrumentationFilter::instrument_all());
  runtime.add_listener(&alternator);
  runtime.execute(ctx);

  ASSERT_EQ(alternator.phase_times.size(), 4u);
  // Even iterations ran at 1.2 GHz and must be slower.
  EXPECT_GT(alternator.phase_times[0].value(),
            alternator.phase_times[1].value() * 1.3);
  EXPECT_GT(alternator.phase_times[2].value(),
            alternator.phase_times[3].value() * 1.3);
}

TEST(AutoFilter, ExcludesFineGranularRegionsOnly) {
  auto node = make_node();
  const auto app = workload::BenchmarkSuite::by_name("Lulesh")
                       .with_iterations(2);
  ExecutionContext ctx(node);
  ScorepOptions opts;
  opts.profiling = true;
  ScorepRuntime runtime(app, InstrumentationFilter::instrument_all(), opts);
  const auto result = runtime.execute(ctx);

  const auto filtered = scorep_autofilter(*result.profile, Seconds(1e-3));
  // The two tiny helper regions fall below 1 ms.
  EXPECT_EQ(filtered.excluded.size(), 2u);
  for (const auto& name : filtered.excluded)
    EXPECT_FALSE(filtered.filter.is_instrumented(name));
  EXPECT_TRUE(filtered.filter.is_instrumented("IntegrateStressForElems"));
  EXPECT_TRUE(
      filtered.filter.is_instrumented(std::string(kPhaseRegionName)));
}

}  // namespace
}  // namespace ecotune::instr
