// End-to-end integration tests: the full paper pipeline from data
// acquisition through DTA to the RRL production run, on the simulated
// cluster.
#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "model/dataset.hpp"
#include "readex/rrl.hpp"
#include "stats/crossval.hpp"
#include "stats/metrics.hpp"
#include "workload/suite.hpp"

namespace ecotune {
namespace {

/// Shared fixture: acquire a modest training set and train the model once.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new hwsim::Cluster(hwsim::haswell_ep_spec(), 0xC0FFEE);
    auto& node = cluster_->node(0);
    node.set_jitter(0.001);

    model::AcquisitionOptions opts;
    opts.thread_counts = {16, 24};
    opts.cf_stride = 2;
    opts.ucf_stride = 2;
    opts.phase_iterations = 2;
    model::DataAcquisition acq(node, opts);
    std::vector<workload::Benchmark> training;
    for (const char* n : {"CG", "EP", "FT", "MG", "BT", "miniFE", "XSBench",
                          "Kripke", "CoMD", "Blasbench"})
      training.push_back(workload::BenchmarkSuite::by_name(n));
    dataset_ = new model::EnergyDataset(acq.acquire(training));

    energy_model_ = new model::EnergyModel();
    energy_model_->train(*dataset_, 10);
  }
  static void TearDownTestSuite() {
    delete energy_model_;
    delete dataset_;
    delete cluster_;
    energy_model_ = nullptr;
    dataset_ = nullptr;
    cluster_ = nullptr;
  }

  static hwsim::Cluster* cluster_;
  static model::EnergyDataset* dataset_;
  static model::EnergyModel* energy_model_;
};

hwsim::Cluster* IntegrationTest::cluster_ = nullptr;
model::EnergyDataset* IntegrationTest::dataset_ = nullptr;
model::EnergyModel* IntegrationTest::energy_model_ = nullptr;

TEST_F(IntegrationTest, ModelFitsHeldInTrainingData) {
  const auto pred = energy_model_->predict_all(*dataset_);
  EXPECT_LT(stats::mape(dataset_->labels(), pred), 8.0);
}

TEST_F(IntegrationTest, LoocvOverTrainingBenchmarksStaysAccurate) {
  // A reduced version of the paper's Fig. 5 experiment.
  const auto groups = dataset_->groups();
  const auto splits = stats::leave_one_group_out(groups);
  const auto labels = stats::distinct_groups(groups);
  double worst = 0.0;
  for (std::size_t f = 0; f < splits.size(); ++f) {
    model::EnergyModel fold_model;
    fold_model.train(dataset_->subset(splits[f].train), 5);
    const auto test = dataset_->subset(splits[f].test);
    const double err =
        stats::mape(test.labels(), fold_model.predict_all(test));
    worst = std::max(worst, err);
    EXPECT_LT(err, 32.0) << labels[f];
  }
  // At least one fold should be clearly better than the worst.
  EXPECT_GT(worst, 0.0);
}

TEST_F(IntegrationTest, FullPipelineProducesSavingsForLulesh) {
  auto& node = cluster_->node(0);
  core::SavingsOptions opts;
  opts.repeats = 3;
  opts.static_search.thread_counts = {16, 20, 24};
  opts.static_search.cf_stride = 2;
  opts.static_search.ucf_stride = 2;
  core::SavingsEvaluator evaluator(node, *energy_model_, opts);
  const auto row = evaluator.evaluate(
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(8));

  // Energy savings exist for both tuning styles...
  EXPECT_GT(row.static_cpu_energy_pct, 0.0);
  EXPECT_GT(row.dynamic_cpu_energy_pct, 0.0);
  EXPECT_GT(row.dynamic_job_energy_pct, 0.0);
  // ...CPU savings exceed job savings (node baseline dilutes the latter)...
  EXPECT_GT(row.static_cpu_energy_pct, row.static_job_energy_pct);
  EXPECT_GT(row.dynamic_cpu_energy_pct, row.dynamic_job_energy_pct);
  // ...and dynamic tuning pays with run time (paper Table VI).
  EXPECT_LT(row.dynamic_time_pct, 1.0);
  EXPECT_LT(row.overhead_pct, 0.0);
  EXPECT_GE(row.overhead_pct, -15.0);
  // Decomposition adds up: time delta = config effect + overhead.
  EXPECT_NEAR(row.dynamic_time_pct,
              row.perf_reduction_config_pct + row.overhead_pct, 0.5);
  // The static optimum matches the calibrated ground truth shape.
  EXPECT_EQ(row.static_config.threads, 24);
  EXPECT_GE(row.static_config.core.as_mhz(), 2100);
  EXPECT_LE(row.static_config.uncore.as_mhz(), 2200);
  // DTA bookkeeping made it into the row.
  EXPECT_EQ(row.dta.dyn_report.significant.size(), 5u);
  EXPECT_GT(row.dynamic_switches, 0);
}

TEST_F(IntegrationTest, TuningModelSurvivesSerializationIntoRrlRun) {
  auto& node = cluster_->node(0);
  core::DvfsUfsPlugin plugin(*energy_model_);
  const auto app =
      workload::BenchmarkSuite::by_name("BEM4I").with_iterations(8);
  const auto dta = plugin.run_dta(app, node);

  // Serialize the tuning model to JSON and reload (the RRL input path).
  const auto reloaded = readex::TuningModel::from_json(
      Json::parse(dta.tuning_model.to_json().dump()));
  EXPECT_EQ(reloaded.region_count(), dta.tuning_model.region_count());

  auto filter = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app.regions())
    if (!dta.dyn_report.is_significant(r.name)) filter.exclude(r.name);

  const SystemConfig default_config{24, CoreFreq::mhz(2500),
                                    UncoreFreq::mhz(3000)};
  const auto rat =
      readex::run_with_rrl(app, node, reloaded, filter, default_config);
  EXPECT_GT(rat.lookups, 0);
  EXPECT_GT(rat.run.node_energy.value(), 0.0);
}

TEST_F(IntegrationTest, DynamicBeatsStaticOnRegionHeterogeneousApp) {
  // Amg2013 has strong thread-scaling heterogeneity; region-level tuning
  // should recover more CPU energy than the single static configuration.
  auto& node = cluster_->node(1);
  node.set_jitter(0.001);
  core::SavingsOptions opts;
  opts.repeats = 3;
  opts.static_search.cf_stride = 2;
  opts.static_search.ucf_stride = 2;
  core::SavingsEvaluator evaluator(node, *energy_model_, opts);
  const auto row = evaluator.evaluate(
      workload::BenchmarkSuite::by_name("Amg2013").with_iterations(8));
  EXPECT_GT(row.dynamic_cpu_energy_pct, 0.0);
  EXPECT_GT(row.static_cpu_energy_pct, 0.0);
}

TEST_F(IntegrationTest, NodeVariabilityCancelsUnderNormalization) {
  // Fig. 2b/3b property: normalized energies agree across nodes far better
  // than raw energies.
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(2);
  std::vector<double> raw, norm;
  for (int id = 2; id < 6; ++id) {
    auto& node = cluster_->node(id);
    node.set_jitter(0.0);
    const auto at = [&](int cf_mhz, int ucf_mhz) {
      return instr::run_uninstrumented(
                 app, node,
                 SystemConfig{24, CoreFreq::mhz(cf_mhz),
                              UncoreFreq::mhz(ucf_mhz)})
          .node_energy.value();
    };
    const double e_hi = at(2400, 1500);
    const double e_cal = at(2000, 1500);
    raw.push_back(e_hi);
    norm.push_back(e_hi / e_cal);
  }
  auto spread = [](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return (*hi - *lo) / *lo;
  };
  EXPECT_LT(spread(norm), spread(raw) * 0.5);
}

}  // namespace
}  // namespace ecotune
