#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "model/dataset.hpp"
#include "model/dataset_io.hpp"
#include "model/energy_model.hpp"
#include "model/features.hpp"
#include "model/regression_model.hpp"
#include "stats/crossval.hpp"
#include "stats/metrics.hpp"
#include "workload/suite.hpp"

namespace ecotune::model {
namespace {

AcquisitionOptions fast_options() {
  AcquisitionOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 3;
  opts.ucf_stride = 3;
  opts.phase_iterations = 2;
  return opts;
}

TEST(Features, PaperSelectionIsSevenCounters) {
  const auto& events = paper_feature_events();
  EXPECT_EQ(events.size(), 7u);
  const auto names = feature_names(events);
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "PAPI_BR_NTK");
  EXPECT_EQ(names[7], "core_freq_ghz");
  EXPECT_EQ(names[8], "uncore_freq_ghz");
}

TEST(Features, BuildFeaturesOrdersAndAppendsFrequencies) {
  std::map<std::string, double> rates;
  for (auto e : paper_feature_events())
    rates[std::string(hwsim::pmu_event_name(e))] = 42.0;
  const auto f = build_features(rates, paper_feature_events(),
                                CoreFreq::mhz(2100), UncoreFreq::mhz(1700));
  ASSERT_EQ(f.size(), 9u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(f[i], 42.0);
  EXPECT_DOUBLE_EQ(f[7], 2.1);
  EXPECT_DOUBLE_EQ(f[8], 1.7);
}

TEST(Features, BuildFeaturesThrowsOnMissingCounter) {
  std::map<std::string, double> rates;
  EXPECT_THROW(build_features(rates, paper_feature_events(),
                              CoreFreq::mhz(2000), UncoreFreq::mhz(1500)),
               PreconditionError);
}

class AcquisitionTest : public ::testing::Test {
 protected:
  AcquisitionTest() : node_(hwsim::haswell_ep_spec(), 0, Rng(1)) {
    node_.set_jitter(0.001);
  }
  hwsim::NodeSimulator node_;
};

TEST_F(AcquisitionTest, CounterRatesCoverRequestedEvents) {
  DataAcquisition acq(node_, fast_options());
  const auto rates = acq.collect_counter_rates(
      workload::BenchmarkSuite::by_name("Lulesh"), 24,
      paper_feature_events());
  EXPECT_EQ(rates.size(), 7u);
  for (auto e : paper_feature_events()) {
    const std::string name(hwsim::pmu_event_name(e));
    ASSERT_TRUE(rates.count(name)) << name;
    EXPECT_GT(rates.at(name), 0.0) << name;
  }
  // Multiplexing: 7 counters at 4 per run = 2 application runs.
  EXPECT_EQ(acq.runs_performed(), 2);
}

TEST_F(AcquisitionTest, DatasetHasGridStructureAndCalibratedLabels) {
  DataAcquisition acq(node_, fast_options());
  const auto ds =
      acq.acquire({workload::BenchmarkSuite::by_name("Lulesh")});
  const std::size_t n_cf = (14 + 2) / 3;   // ceil(14/3)
  const std::size_t n_ucf = (18 + 2) / 3;  // ceil(18/3)
  EXPECT_EQ(ds.samples.size(), n_cf * n_ucf);
  EXPECT_EQ(ds.feature_names.size(), 9u);

  // The sample at the calibration frequencies has Enorm ~ 1.
  for (const auto& s : ds.samples) {
    EXPECT_GT(s.normalized_energy, 0.3);
    EXPECT_LT(s.normalized_energy, 3.0);
    EXPECT_NEAR(s.normalized_power * s.normalized_time, s.normalized_energy,
                1e-9);
    if (s.cf == CoreFreq::mhz(2000) && s.ucf == UncoreFreq::mhz(1500)) {
      EXPECT_NEAR(s.normalized_energy, 1.0, 0.05);
    }
  }
}

TEST_F(AcquisitionTest, DatasetSubsetOperations) {
  DataAcquisition acq(node_, fast_options());
  const auto ds = acq.acquire({workload::BenchmarkSuite::by_name("Lulesh"),
                               workload::BenchmarkSuite::by_name("Mcb")});
  const auto lulesh = ds.subset_benchmark("Lulesh");
  const auto mcb = ds.subset_benchmark("Mcb");
  EXPECT_EQ(lulesh.samples.size() + mcb.samples.size(), ds.samples.size());
  for (const auto& s : lulesh.samples) EXPECT_EQ(s.benchmark, "Lulesh");

  const auto sub = ds.subset({0, 1, 2});
  EXPECT_EQ(sub.samples.size(), 3u);
  EXPECT_THROW(ds.subset({ds.samples.size()}), PreconditionError);

  const auto groups = ds.groups();
  EXPECT_EQ(std::count(groups.begin(), groups.end(), "Lulesh"),
            static_cast<long>(lulesh.samples.size()));
}

TEST_F(AcquisitionTest, MemoryBoundLabelsShapeDiffersFromComputeBound) {
  DataAcquisition acq(node_, fast_options());
  const auto ds = acq.acquire({workload::BenchmarkSuite::by_name("miniMD"),
                               workload::BenchmarkSuite::by_name("Mcb")});
  // For compute-bound miniMD, the lowest core frequency at fixed uncore is
  // worse (higher Enorm) than the highest; for memory-bound Mcb the energy
  // at max CF is worse relative to its own best than miniMD's.
  auto enorm = [&](const std::string& b, int cf, int ucf) {
    for (const auto& s : ds.samples) {
      if (s.benchmark == b && s.cf == CoreFreq::mhz(cf) &&
          s.ucf == UncoreFreq::mhz(ucf))
        return s.normalized_energy;
    }
    ADD_FAILURE() << "sample not found";
    return 0.0;
  };
  // miniMD: Enorm(1.2 GHz) >> Enorm(2.4 GHz) at mid uncore (compute bound).
  EXPECT_GT(enorm("miniMD", 1200, 2200), enorm("miniMD", 2400, 2200));
  // Mcb: raising uncore at fixed CF reduces energy (memory bound).
  EXPECT_GT(enorm("Mcb", 1800, 1300), enorm("Mcb", 1800, 2800));
}

TEST_F(AcquisitionTest, RegionCounterRatesCoverSignificantRegions) {
  DataAcquisition acq(node_, fast_options());
  const auto& app = workload::BenchmarkSuite::by_name("Lulesh");
  const auto rates =
      acq.collect_region_counter_rates(app, 24, paper_feature_events());
  // Every region of the app appears (instrumentation covers all of them).
  EXPECT_EQ(rates.size(), app.regions().size());
  for (const auto& [region, counters] : rates) {
    EXPECT_EQ(counters.size(), 7u) << region;
    for (const auto& [name, rate] : counters)
      EXPECT_GT(rate, 0.0) << region << '/' << name;
  }
  // Rates differ across regions (they are per-region, not phase copies).
  const auto& a = rates.at("IntegrateStressForElems");
  const auto& b = rates.at("ApplyMaterialPropertiesForElems");
  EXPECT_NE(a.at("PAPI_LD_INS"), b.at("PAPI_LD_INS"));
}

TEST_F(AcquisitionTest, SurveyProducesAllPresetRates) {
  AcquisitionOptions opts = fast_options();
  DataAcquisition acq(node_, opts);
  const auto survey = acq.survey_counters(
      {workload::BenchmarkSuite::by_name("Lulesh"),
       workload::BenchmarkSuite::by_name("Mcb")});
  EXPECT_EQ(survey.rates.rows(), 2u);
  EXPECT_EQ(survey.rates.cols(), 56u);
  EXPECT_EQ(survey.benchmark.size(), 2u);
  for (double p : survey.mean_node_power) {
    EXPECT_GT(p, 100.0);
    EXPECT_LT(p, 500.0);
  }
}

class EnergyModelTest : public ::testing::Test {
 protected:
  EnergyModelTest() : node_(hwsim::haswell_ep_spec(), 0, Rng(1)) {
    node_.set_jitter(0.001);
    AcquisitionOptions opts;
    opts.thread_counts = {24};
    opts.cf_stride = 2;
    opts.ucf_stride = 2;
    opts.phase_iterations = 2;
    DataAcquisition acq(node_, opts);
    dataset_ = acq.acquire({workload::BenchmarkSuite::by_name("Lulesh"),
                            workload::BenchmarkSuite::by_name("Mcb"),
                            workload::BenchmarkSuite::by_name("miniMD"),
                            workload::BenchmarkSuite::by_name("MG"),
                            workload::BenchmarkSuite::by_name("BT"),
                            workload::BenchmarkSuite::by_name("CG")});
  }
  hwsim::NodeSimulator node_;
  EnergyDataset dataset_;
};

TEST_F(EnergyModelTest, FitsTrainingDataWell) {
  EnergyModel model;
  model.train(dataset_, 30);
  const auto pred = model.predict_all(dataset_);
  const auto truth = dataset_.labels();
  EXPECT_LT(stats::mape(truth, pred), 6.0);
}

TEST_F(EnergyModelTest, GeneralizesAcrossBenchmarks) {
  // Train on three benchmarks, test on the held-out one (one LOOCV step).
  EnergyDataset train, test;
  train.feature_names = dataset_.feature_names;
  test.feature_names = dataset_.feature_names;
  for (const auto& s : dataset_.samples) {
    (s.benchmark == "CG" ? test : train).samples.push_back(s);
  }
  EnergyModel model;
  model.train(train, 20);
  const auto pred = model.predict_all(test);
  // Thin training data (one thread count, strided grid, five benchmarks)
  // generalizes coarsely; the full-scale accuracy check lives in the
  // integration tests and bench/fig5_loocv_mape.
  EXPECT_LT(stats::mape(test.labels(), pred), 35.0);
}

TEST_F(EnergyModelTest, RecommendationIsGridArgmin) {
  EnergyModel model;
  model.train(dataset_, 20);
  AcquisitionOptions opts;
  opts.phase_iterations = 2;
  DataAcquisition acq(node_, opts);
  const auto rates = acq.collect_counter_rates(
      workload::BenchmarkSuite::by_name("Lulesh"), 24,
      paper_feature_events());

  const auto rec = model.recommend(rates, node_.spec());
  EXPECT_TRUE(node_.spec().core_grid.contains(rec.cf));
  EXPECT_TRUE(node_.spec().uncore_grid.contains(rec.ucf));
  // The recommendation matches the minimum of the predicted surface.
  const auto surface = model.predict_surface(rates, node_.spec());
  double min_v = 1e300;
  for (const auto& row : surface)
    for (double v : row) min_v = std::min(min_v, v);
  EXPECT_DOUBLE_EQ(rec.predicted_normalized_energy, min_v);
}

TEST_F(EnergyModelTest, SerializationRoundTripPreservesPredictions) {
  EnergyModel model;
  model.train(dataset_, 10);
  const EnergyModel restored =
      EnergyModel::from_json(Json::parse(model.to_json().dump()));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(dataset_.samples[i].features),
                     model.predict(dataset_.samples[i].features));
  }
}

TEST_F(EnergyModelTest, PredictBatchMatchesScalarBitwise) {
  // The whole-dataset batched path (one scaling pass, layer sweeps over the
  // full batch, ordered ensemble mean) must equal per-sample prediction
  // exactly, not approximately.
  EnergyModel model;
  model.train(dataset_, 5);
  const auto batch = model.predict_batch(dataset_.feature_matrix());
  ASSERT_EQ(batch.size(), dataset_.samples.size());
  const std::size_t check = std::min<std::size_t>(batch.size(), 100);
  for (std::size_t i = 0; i < check; ++i) {
    EXPECT_EQ(batch[i], model.predict(dataset_.samples[i].features))
        << "sample " << i;
  }
}

TEST_F(EnergyModelTest, RecommendManyMatchesIndividualRecommends) {
  EnergyModel model;
  model.train(dataset_, 10);
  AcquisitionOptions opts;
  opts.phase_iterations = 2;
  DataAcquisition acq(node_, opts);
  std::vector<std::map<std::string, double>> rate_sets;
  for (const char* name : {"Lulesh", "Mcb", "miniMD"}) {
    rate_sets.push_back(acq.collect_counter_rates(
        workload::BenchmarkSuite::by_name(name), 24,
        paper_feature_events()));
  }
  const auto many = model.recommend_many(rate_sets, node_.spec());
  ASSERT_EQ(many.size(), rate_sets.size());
  for (std::size_t k = 0; k < rate_sets.size(); ++k) {
    const auto one = model.recommend(rate_sets[k], node_.spec());
    EXPECT_EQ(many[k].cf, one.cf) << k;
    EXPECT_EQ(many[k].ucf, one.ucf) << k;
    EXPECT_EQ(many[k].predicted_normalized_energy,
              one.predicted_normalized_energy)
        << k;
  }
  EXPECT_TRUE(model.recommend_many({}, node_.spec()).empty());
}

TEST_F(EnergyModelTest, ParallelCandidateTrainingIsJobsInvariant) {
  // The candidate pool reduces in attempt order, so the trained ensemble
  // (weights, moments, member selection) is bitwise identical for any job
  // count — the serialized form is the strictest witness.
  EnergyModelConfig serial;
  serial.jobs = 1;
  EnergyModelConfig parallel;
  parallel.jobs = 4;
  EnergyModel m1(serial), m4(parallel);
  m1.train(dataset_, 5);
  m4.train(dataset_, 5);
  EXPECT_EQ(m1.to_json().dump(), m4.to_json().dump());
}

TEST_F(EnergyModelTest, UntrainedModelThrows) {
  EnergyModel model;
  EXPECT_THROW((void)model.predict(std::vector<double>(9, 0.0)),
               PreconditionError);
  EXPECT_THROW((void)model.to_json(), PreconditionError);
}

TEST_F(EnergyModelTest, TrainIsIdempotentAcrossFolds) {
  EnergyModel model;
  model.train(dataset_, 5);
  const double p1 = model.predict(dataset_.samples[0].features);
  model.train(dataset_, 5);  // retrain from scratch with same data
  EXPECT_DOUBLE_EQ(model.predict(dataset_.samples[0].features), p1);
}

TEST_F(EnergyModelTest, RegressionBaselineIsWorseThanNetwork) {
  // The paper's comparison setup: k-fold CV with random indexing over the
  // pooled samples (so both estimators interpolate rather than extrapolate
  // to unseen benchmarks); paper averages: NN 5.20 vs regression 7.54.
  Rng rng(0xCF02);
  const auto folds = stats::kfold(dataset_.samples.size(), 5, rng);
  double net_sum = 0.0, reg_sum = 0.0;
  for (const auto& fold : folds) {
    const auto train = dataset_.subset(fold.train);
    const auto test = dataset_.subset(fold.test);
    EnergyModel net;
    net.train(train, 10);
    RegressionEnergyModel reg;
    reg.train(train);
    net_sum += stats::mape(test.labels(), net.predict_all(test));
    reg_sum += stats::mape(test.labels(), reg.predict_all(test));
  }
  const double net_mape = net_sum / folds.size();
  const double reg_mape = reg_sum / folds.size();
  EXPECT_LT(net_mape, reg_mape);
  EXPECT_LT(net_mape, 10.0);
}

TEST_F(AcquisitionTest, DatasetCsvRoundTrip) {
  DataAcquisition acq(node_, fast_options());
  const auto ds = acq.acquire({workload::BenchmarkSuite::by_name("Lulesh"),
                               workload::BenchmarkSuite::by_name("Mcb")});
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_ds_test.csv")
          .string();
  save_dataset_csv(ds, path);
  const auto loaded = load_dataset_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.samples.size(), ds.samples.size());
  EXPECT_EQ(loaded.feature_names, ds.feature_names);
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    EXPECT_EQ(loaded.samples[i].benchmark, ds.samples[i].benchmark);
    EXPECT_EQ(loaded.samples[i].threads, ds.samples[i].threads);
    EXPECT_EQ(loaded.samples[i].cf, ds.samples[i].cf);
    EXPECT_EQ(loaded.samples[i].ucf, ds.samples[i].ucf);
    EXPECT_DOUBLE_EQ(loaded.samples[i].normalized_energy,
                     ds.samples[i].normalized_energy);
    for (std::size_t f = 0; f < ds.samples[i].features.size(); ++f)
      EXPECT_DOUBLE_EQ(loaded.samples[i].features[f],
                       ds.samples[i].features[f]);
  }
}

TEST(DatasetIo, RejectsMalformedFiles) {
  EXPECT_THROW((void)load_dataset_csv("/nonexistent/file.csv"), Error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_bad.csv").string();
  {
    std::ofstream os(path);
    os << "not,a,dataset\n1,2,3\n";
  }
  EXPECT_THROW((void)load_dataset_csv(path), Error);
  std::remove(path.c_str());
}

TEST(DatasetIo, AcceptsCrlfLineEndings) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_crlf.csv").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "benchmark,threads,cf_mhz,ucf_mhz,f1,f2,f3,f4,"
          "normalized_energy,normalized_power,normalized_time\r\n"
       << "Lulesh,24,2500,3000,1.5,2.5,3.5,4.5,0.9,1.1,0.8\r\n";
  }
  const auto ds = load_dataset_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(ds.samples.size(), 1u);
  EXPECT_EQ(ds.samples[0].benchmark, "Lulesh");
  EXPECT_EQ(ds.samples[0].threads, 24);
  EXPECT_EQ(ds.feature_names,
            (std::vector<std::string>{"f1", "f2", "f3", "f4"}));
  EXPECT_DOUBLE_EQ(ds.samples[0].normalized_time, 0.8);
}

TEST(DatasetIo, MalformedCellReportsFileRowAndColumn) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_badcell.csv")
          .string();
  {
    std::ofstream os(path);
    os << "benchmark,threads,cf_mhz,ucf_mhz,f1,f2,f3,f4,"
          "normalized_energy,normalized_power,normalized_time\n"
       << "Lulesh,24,2500,3000,1.5,2.5,3.5,4.5,0.9,1.1,0.8\n"
       << "Lulesh,24,2500,3000,1.5,oops,3.5,4.5,0.9,1.1,0.8\n";
  }
  try {
    (void)load_dataset_csv(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3"), std::string::npos) << what;      // row
    EXPECT_NE(what.find("'f2'"), std::string::npos) << what;    // column
    EXPECT_NE(what.find("'oops'"), std::string::npos) << what;  // cell
  }
  std::remove(path.c_str());
}

TEST(RegressionEnergyModel, PredictsProductOfLinearModels) {
  EnergyDataset ds;
  ds.feature_names = {"x", "cf", "ucf"};
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    EnergySample s;
    s.benchmark = "synthetic";
    const double x = rng.uniform(0, 1);
    s.features = {x, rng.uniform(1.2, 2.5), rng.uniform(1.3, 3.0)};
    s.normalized_power = 0.5 + 0.3 * s.features[1];
    s.normalized_time = 2.0 - 0.4 * s.features[1];
    s.normalized_energy = s.normalized_power * s.normalized_time;
    ds.samples.push_back(std::move(s));
  }
  RegressionEnergyModel reg;
  reg.train(ds);
  const auto pred = reg.predict_all(ds);
  EXPECT_LT(stats::mape(ds.labels(), pred), 1.0);
  EXPECT_TRUE(reg.trained());
}

}  // namespace
}  // namespace ecotune::model
