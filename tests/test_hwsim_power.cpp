#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hwsim/node.hpp"
#include "hwsim/power_model.hpp"

namespace ecotune::hwsim {
namespace {

const CpuSpec kSpec = haswell_ep_spec();
const NodeVariability kNominal{};  // all factors 1.0 / 0.0

KernelTraits busy_kernel() {
  KernelTraits k;
  k.activity = 1.0;
  return k;
}

TEST(PowerModel, VoltageIsAffineInFrequency) {
  const PowerModel m;
  const double v1 = m.core_voltage(CoreFreq::mhz(1200));
  const double v2 = m.core_voltage(CoreFreq::mhz(2500));
  EXPECT_GT(v2, v1);
  EXPECT_NEAR(m.core_voltage(CoreFreq::mhz(1850)),
              (v1 + v2) / 2.0, 1e-9);
}

TEST(PowerModel, FullLoadNodePowerInHaswellRange) {
  const PowerModel m;
  const auto p = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                            CoreFreq::mhz(2500), UncoreFreq::mhz(3000),
                            40e9);
  // A loaded 2-socket Haswell node draws a few hundred watts.
  EXPECT_GT(p.node().value(), 250.0);
  EXPECT_LT(p.node().value(), 450.0);
  EXPECT_GT(p.cpu().value(), 150.0);
  EXPECT_LT(p.cpu().value(), p.node().value());
}

TEST(PowerModel, PowerMonotoneInCoreFrequency) {
  const PowerModel m;
  double prev = 0.0;
  for (int mhz = 1200; mhz <= 2500; mhz += 100) {
    const auto p = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                              CoreFreq::mhz(mhz), UncoreFreq::mhz(2000),
                              20e9);
    EXPECT_GT(p.node().value(), prev);
    prev = p.node().value();
  }
}

TEST(PowerModel, PowerMonotoneInUncoreFrequency) {
  const PowerModel m;
  double prev = 0.0;
  for (int mhz = 1300; mhz <= 3000; mhz += 100) {
    const auto p = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                              CoreFreq::mhz(2000), UncoreFreq::mhz(mhz),
                              20e9);
    EXPECT_GT(p.uncore.value(), prev);
    prev = p.uncore.value();
  }
}

TEST(PowerModel, PowerIncreasesWithActiveThreads) {
  const PowerModel m;
  const auto p12 = m.evaluate(kSpec, kNominal, busy_kernel(), 12,
                              CoreFreq::mhz(2500), UncoreFreq::mhz(3000),
                              20e9);
  const auto p24 = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                              CoreFreq::mhz(2500), UncoreFreq::mhz(3000),
                              20e9);
  EXPECT_GT(p24.core_dynamic.value(), p12.core_dynamic.value());
  // Static parts do not depend on the thread count.
  EXPECT_DOUBLE_EQ(p24.core_static.value(), p12.core_static.value());
  EXPECT_DOUBLE_EQ(p24.uncore.value(), p12.uncore.value());
}

TEST(PowerModel, DramPowerScalesWithBandwidth) {
  const PowerModel m;
  const auto idle = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                               CoreFreq::mhz(2000), UncoreFreq::mhz(2000),
                               0.0);
  const auto loaded = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                                 CoreFreq::mhz(2000), UncoreFreq::mhz(2000),
                                 80e9);
  EXPECT_NEAR(loaded.dram.value() - idle.dram.value(),
              m.params().dram_per_gbs * 80.0, 1e-9);
}

TEST(PowerModel, IdleIsCheaperThanLoaded) {
  const PowerModel m;
  const auto idle = m.idle(kSpec, kNominal, CoreFreq::mhz(2000),
                           UncoreFreq::mhz(2000));
  const auto loaded = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                                 CoreFreq::mhz(2000), UncoreFreq::mhz(2000),
                                 20e9);
  EXPECT_LT(idle.node().value(), loaded.node().value());
  EXPECT_GT(idle.node().value(), m.params().node_base);
}

TEST(PowerModel, VariabilityScalesStaticAndDynamicParts) {
  const PowerModel m;
  NodeVariability hot;
  hot.leakage_factor = 1.1;
  hot.dynamic_factor = 1.05;
  hot.base_offset_w = 5.0;
  const auto nom = m.evaluate(kSpec, kNominal, busy_kernel(), 24,
                              CoreFreq::mhz(2000), UncoreFreq::mhz(2000),
                              20e9);
  const auto var = m.evaluate(kSpec, hot, busy_kernel(), 24,
                              CoreFreq::mhz(2000), UncoreFreq::mhz(2000),
                              20e9);
  EXPECT_NEAR(var.core_static.value(), nom.core_static.value() * 1.1, 1e-9);
  EXPECT_NEAR(var.core_dynamic.value(), nom.core_dynamic.value() * 1.05,
              1e-9);
  EXPECT_NEAR(var.node_base.value(), nom.node_base.value() + 5.0, 1e-9);
}

TEST(PowerModel, DrawnVariabilityIsDeterministicPerNode) {
  const Rng rng(123);
  const auto a = draw_node_variability(rng, 3);
  const auto b = draw_node_variability(rng, 3);
  const auto c = draw_node_variability(rng, 4);
  EXPECT_DOUBLE_EQ(a.leakage_factor, b.leakage_factor);
  EXPECT_DOUBLE_EQ(a.base_offset_w, b.base_offset_w);
  EXPECT_NE(a.leakage_factor, c.leakage_factor);
}

TEST(PowerModel, DrawnVariabilityWithinClampedBounds) {
  const Rng rng(99);
  for (int id = 0; id < 50; ++id) {
    const auto v = draw_node_variability(rng, id);
    EXPECT_GE(v.leakage_factor, 0.85);
    EXPECT_LE(v.leakage_factor, 1.15);
    EXPECT_GE(v.dynamic_factor, 0.94);
    EXPECT_LE(v.dynamic_factor, 1.06);
    EXPECT_GE(v.base_offset_w, -10.0);
    EXPECT_LE(v.base_offset_w, 10.0);
  }
}

TEST(PowerModel, RejectsTooManyThreads) {
  const PowerModel m;
  EXPECT_THROW((void)m.evaluate(kSpec, kNominal, busy_kernel(), 25,
                                CoreFreq::mhz(2000),
                                UncoreFreq::mhz(2000), 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace ecotune::hwsim
