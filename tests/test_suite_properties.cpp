// Property sweeps across the whole 19-benchmark suite: every benchmark must
// satisfy the structural invariants the pipeline relies on, not just the
// five evaluation ones.
#include <gtest/gtest.h>

#include "energymon/rapl.hpp"
#include "energymon/sacct.hpp"
#include "instr/scorep_runtime.hpp"
#include "readex/dyn_detect.hpp"
#include "workload/suite.hpp"

namespace ecotune {
namespace {

class SuiteProperty : public ::testing::TestWithParam<std::string> {
 protected:
  SuiteProperty()
      : app_(workload::BenchmarkSuite::by_name(GetParam())),
        node_(hwsim::haswell_ep_spec(), 0, Rng(11)) {
    node_.set_jitter(0.0);
  }
  const workload::Benchmark& app_;
  hwsim::NodeSimulator node_;
};

TEST_P(SuiteProperty, TraitsAreWithinPhysicalBounds) {
  for (const auto& r : app_.regions()) {
    const auto& t = r.traits;
    EXPECT_GT(t.total_instructions, 0.0) << r.name;
    EXPECT_GT(t.ipc_peak, 0.1) << r.name;
    EXPECT_LE(t.ipc_peak, 4.0) << r.name;
    EXPECT_LE(t.load_fraction + t.store_fraction + t.branch_fraction, 1.0)
        << r.name;
    EXPECT_GE(t.parallel_fraction, 0.0) << r.name;
    EXPECT_LE(t.parallel_fraction, 1.0) << r.name;
    EXPECT_GE(t.overlap, 0.0) << r.name;
    EXPECT_LE(t.overlap, 1.0) << r.name;
    EXPECT_GT(t.activity, 0.1) << r.name;
    EXPECT_LT(t.activity, 1.5) << r.name;
  }
}

TEST_P(SuiteProperty, HasAtLeastOneSignificantRegionAtDefault) {
  instr::ExecutionContext ctx(node_);
  instr::ScorepOptions opts;
  opts.profiling = true;
  instr::ScorepRuntime runtime(
      app_.with_iterations(2),
      instr::InstrumentationFilter::instrument_all(), opts);
  const auto run = runtime.execute(ctx);
  const auto report = readex::readex_dyn_detect(*run.profile);
  EXPECT_GE(report.significant.size(), 1u);
  // The phase must be dominated by significant regions (tunable share).
  double weight = 0.0;
  for (const auto& s : report.significant) weight += s.weight;
  EXPECT_GT(weight, 0.6);
}

TEST_P(SuiteProperty, EnergyAccountingIsConservative) {
  // Node energy observed by independent listeners must agree with the
  // per-kernel ground truth to numerical precision.
  energymon::Sacct sacct(node_);
  energymon::Rapl rapl(node_);
  sacct.job_start(app_.name());
  double kernel_node_energy = 0.0;
  for (const auto& r : app_.regions()) {
    const auto run = node_.run_kernel(r.traits, 24);
    kernel_node_energy += run.node_energy.value();
  }
  const auto rec = sacct.job_end();
  EXPECT_NEAR(rec.consumed_energy.value(), kernel_node_energy,
              1e-9 * kernel_node_energy + 1e-9);
  EXPECT_GT(rapl.exact_total().value(), 0.0);
  EXPECT_LT(rapl.exact_total().value(), rec.consumed_energy.value());
}

TEST_P(SuiteProperty, EnergySurfaceIsBoundedAndNonDegenerate) {
  // Over a coarse frequency lattice, the normalized energy stays within a
  // plausible band and actually varies (a flat surface would make tuning
  // meaningless, an unbounded one signals a model bug).
  const auto traits = app_.phase_traits();
  node_.set_all_core_freqs(CoreFreq::mhz(2000));
  node_.set_all_uncore_freqs(UncoreFreq::mhz(1500));
  const double e_cal = node_.run_kernel(traits, 24).node_energy.value();

  double lo = 1e300, hi = 0.0;
  for (int cf : {1200, 1800, 2500}) {
    node_.set_all_core_freqs(CoreFreq::mhz(cf));
    for (int ucf : {1300, 2100, 3000}) {
      node_.set_all_uncore_freqs(UncoreFreq::mhz(ucf));
      const double e =
          node_.run_kernel(traits, 24).node_energy.value() / e_cal;
      lo = std::min(lo, e);
      hi = std::max(hi, e);
      EXPECT_GT(e, 0.4) << cf << '|' << ucf;
      EXPECT_LT(e, 2.5) << cf << '|' << ucf;
    }
  }
  EXPECT_GT(hi / lo, 1.02);  // at least 2% dynamic range
}

TEST_P(SuiteProperty, PhaseTimeScalesWithIterations) {
  const auto one = instr::run_uninstrumented(
      app_.with_iterations(1), node_,
      SystemConfig{24, CoreFreq::mhz(2000), UncoreFreq::mhz(2000)});
  const auto three = instr::run_uninstrumented(
      app_.with_iterations(3), node_,
      SystemConfig{24, CoreFreq::mhz(2000), UncoreFreq::mhz(2000)});
  EXPECT_NEAR(three.wall_time / one.wall_time, 3.0, 0.02);
  EXPECT_NEAR(three.node_energy / one.node_energy, 3.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProperty,
    ::testing::ValuesIn(workload::BenchmarkSuite::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace ecotune
