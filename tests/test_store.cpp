#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "baseline/exhaustive_tuner.hpp"
#include "baseline/static_tuner.hpp"
#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/logging.hpp"
#include "core/evaluation.hpp"
#include "model/dataset.hpp"
#include "ptf/experiments_engine.hpp"
#include "store/measurement_store.hpp"
#include "store/serdes.hpp"
#include "workload/suite.hpp"

namespace ecotune {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("ecotune_store_" + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file() const {
    return (fs::path(path_) / "measurements.jsonl").string();
  }

 private:
  std::string path_;
};

hwsim::NodeSimulator test_node(int node_id = 0, std::uint64_t seed = 42) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), node_id, Rng(seed));
  node.set_jitter(0.002);
  return node;
}

// --- Fingerprint sensitivity ---------------------------------------------

TEST(Fingerprint, ChangingAnyComponentChangesTheDigest) {
  const SystemConfig config{24, CoreFreq::mhz(2500), UncoreFreq::mhz(3000)};
  auto digest = [&](const SystemConfig& c, std::string_view region,
                    std::uint64_t seed, std::uint64_t node_digest) {
    Fingerprint fp;
    fp.add("config", c).add("region", region).add("seed", seed);
    fp.add_digest("node", node_digest);
    return fp.digest();
  };
  const std::uint64_t base = digest(config, "region_a", 7, 99);

  SystemConfig threads = config;
  threads.threads = 20;
  SystemConfig cf = config;
  cf.core = CoreFreq::mhz(2400);
  SystemConfig ucf = config;
  ucf.uncore = UncoreFreq::mhz(2900);

  EXPECT_NE(digest(threads, "region_a", 7, 99), base);
  EXPECT_NE(digest(cf, "region_a", 7, 99), base);
  EXPECT_NE(digest(ucf, "region_a", 7, 99), base);
  EXPECT_NE(digest(config, "region_b", 7, 99), base);
  EXPECT_NE(digest(config, "region_a", 8, 99), base);
  EXPECT_NE(digest(config, "region_a", 7, 100), base);
  // And stability: same inputs, same digest.
  EXPECT_EQ(digest(config, "region_a", 7, 99), base);
}

TEST(Fingerprint, NodeStateFingerprintTracksStateAndSpec) {
  const auto a = test_node(0, 42).state_fingerprint();
  EXPECT_EQ(test_node(0, 42).state_fingerprint(), a);

  EXPECT_NE(test_node(1, 42).state_fingerprint(), a);  // node id
  EXPECT_NE(test_node(0, 43).state_fingerprint(), a);  // cluster seed

  auto jitter = test_node(0, 42);
  jitter.set_jitter(0.01);
  EXPECT_NE(jitter.state_fingerprint(), a);

  auto advanced = test_node(0, 42);
  advanced.idle(Seconds(1.0));
  EXPECT_NE(advanced.state_fingerprint(), a);  // simulated clock

  auto freqs = test_node(0, 42);
  freqs.set_all_core_freqs(CoreFreq::mhz(1800));
  EXPECT_NE(freqs.state_fingerprint(), a);

  auto spec = hwsim::haswell_ep_spec();
  spec.default_core = CoreFreq::mhz(2400);
  hwsim::NodeSimulator other_spec(spec, 0, Rng(42));
  other_spec.set_jitter(0.002);
  EXPECT_NE(other_spec.state_fingerprint(), a);
}

TEST(Fingerprint, BenchmarkDigestTracksWorkloadDefinition) {
  const auto& lulesh = workload::BenchmarkSuite::by_name("Lulesh");
  EXPECT_EQ(lulesh.fingerprint_digest(),
            workload::BenchmarkSuite::by_name("Lulesh").fingerprint_digest());
  EXPECT_NE(lulesh.fingerprint_digest(),
            workload::BenchmarkSuite::by_name("Mcb").fingerprint_digest());
  EXPECT_NE(lulesh.fingerprint_digest(),
            lulesh.with_iterations(3).fingerprint_digest());
}

// --- Store basics ---------------------------------------------------------

TEST(MeasurementStore, RoundTripsAndPersistsAcrossSessions) {
  TempDir dir("roundtrip");
  const store::MeasurementKey key{"task/a", 0x1234};
  Json payload = Json::object();
  payload["value"] = 0.1 + 0.2;  // not exactly representable as text naively

  {
    store::MeasurementStore s(dir.path(), store::StoreMode::kReadWrite);
    EXPECT_FALSE(s.lookup(key).has_value());
    s.insert(key, payload);
    const auto hit = s.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->at("value").as_number(), 0.1 + 0.2);  // bit-exact
    EXPECT_EQ(s.stats().hits, 1);
    EXPECT_EQ(s.stats().misses, 1);
    EXPECT_EQ(s.stats().writes, 1);
  }
  // A second session loads the appended file.
  store::MeasurementStore warm(dir.path(), store::StoreMode::kReadOnly);
  EXPECT_EQ(warm.size(), 1u);
  const auto hit = warm.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("value").as_number(), 0.1 + 0.2);
}

TEST(MeasurementStore, FingerprintMismatchInvalidatesTheStaleEntry) {
  TempDir dir("invalidate");
  store::MeasurementStore s(dir.path(), store::StoreMode::kReadWrite);
  s.insert({"task/a", 1}, Json(1.0));
  // Same task, different context: must not answer, must drop the entry.
  EXPECT_FALSE(s.lookup({"task/a", 2}).has_value());
  EXPECT_EQ(s.stats().invalidated, 1);
  EXPECT_EQ(s.size(), 0u);
  // Even the original fingerprint now misses (entry is gone)...
  EXPECT_FALSE(s.lookup({"task/a", 1}).has_value());
  // ...until re-inserted under the new context.
  s.insert({"task/a", 2}, Json(2.0));
  ASSERT_TRUE(s.lookup({"task/a", 2}).has_value());
}

TEST(MeasurementStore, ReadOnlyModeNeverWrites) {
  TempDir dir("readonly");
  {
    store::MeasurementStore rw(dir.path(), store::StoreMode::kReadWrite);
    rw.insert({"task/a", 1}, Json(1.0));
  }
  const auto bytes_before = fs::file_size(dir.file());
  const auto mtime_before = fs::last_write_time(dir.file());

  store::MeasurementStore ro(dir.path(), store::StoreMode::kReadOnly);
  ASSERT_TRUE(ro.lookup({"task/a", 1}).has_value());
  ro.insert({"task/b", 2}, Json(2.0));  // dropped
  EXPECT_FALSE(ro.lookup({"task/b", 2}).has_value());
  EXPECT_EQ(ro.stats().writes, 0);
  EXPECT_EQ(fs::file_size(dir.file()), bytes_before);
  EXPECT_EQ(fs::last_write_time(dir.file()), mtime_before);
}

TEST(MeasurementStore, ReadOnlyRequiresNothingOnDisk) {
  TempDir dir("ro_empty");
  // ro against a missing directory: valid, everything misses.
  store::MeasurementStore ro(dir.path(), store::StoreMode::kReadOnly);
  EXPECT_FALSE(ro.lookup({"task/a", 1}).has_value());
  EXPECT_FALSE(fs::exists(dir.path()));
}

TEST(MeasurementStore, OffModeIsInert) {
  TempDir dir("off");
  store::MeasurementStore off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.lookup({"task/a", 1}).has_value());
  off.insert({"task/a", 1}, Json(1.0));
  EXPECT_FALSE(off.lookup({"task/a", 1}).has_value());
  EXPECT_EQ(off.stats().hits, 0);
  EXPECT_EQ(off.stats().misses, 0);
  EXPECT_FALSE(fs::exists(dir.path()));
}

TEST(MeasurementStore, RejectsCorruptEntriesLoudly) {
  TempDir dir("corrupt");
  fs::create_directories(dir.path());
  {
    store::MeasurementStore rw(dir.path(), store::StoreMode::kReadWrite);
    rw.insert({"task/good", 7}, Json(3.5));
  }
  {
    std::ofstream os(dir.file(), std::ios::app);
    os << "this is not json\n"
       << "{\"task\":\"task/nofp\",\"payload\":1}\n"
       << "{\"task\":\"task/badfp\",\"fp\":\"zz\",\"payload\":1}\n";
  }
  std::ostringstream log_sink;
  log::set_sink(&log_sink);
  store::MeasurementStore warm(dir.path(), store::StoreMode::kReadOnly);
  log::set_sink(nullptr);

  EXPECT_EQ(warm.stats().rejected, 3);
  EXPECT_EQ(warm.size(), 1u);
  ASSERT_TRUE(warm.lookup({"task/good", 7}).has_value());
  EXPECT_FALSE(warm.lookup({"task/nofp", 1}).has_value());
  EXPECT_NE(log_sink.str().find("rejecting corrupt cache entry"),
            std::string::npos);
}

TEST(MeasurementStore, ParsesModesStrictly) {
  EXPECT_EQ(store::parse_store_mode("rw"), store::StoreMode::kReadWrite);
  EXPECT_EQ(store::parse_store_mode("ro"), store::StoreMode::kReadOnly);
  EXPECT_EQ(store::parse_store_mode("off"), store::StoreMode::kOff);
  EXPECT_THROW((void)store::parse_store_mode("RW"), Error);
  EXPECT_THROW((void)store::parse_store_mode(""), Error);
}

TEST(MeasurementStore, ResolvesCliModeDefaults) {
  EXPECT_EQ(store::resolve_store_mode("", ""), store::StoreMode::kOff);
  EXPECT_EQ(store::resolve_store_mode("", "/tmp/d"),
            store::StoreMode::kReadWrite);
  EXPECT_EQ(store::resolve_store_mode("ro", "/tmp/d"),
            store::StoreMode::kReadOnly);
  EXPECT_EQ(store::resolve_store_mode("off", ""), store::StoreMode::kOff);
  // A non-off mode without a cache dir is a user error.
  EXPECT_THROW((void)store::resolve_store_mode("rw", ""), Error);
  EXPECT_THROW((void)store::resolve_store_mode("sideways", "/tmp/d"), Error);
}

TEST(MeasurementStore, ScopesIsolateDriversSharingOneDirectory) {
  TempDir dir("scopes");
  const store::MeasurementKey key{"task/a", 1};
  {
    store::MeasurementStore a;
    a.open(dir.path(), store::StoreMode::kReadWrite, "driver_a");
    a.insert(key, Json(1.0));
    // Same task id under another scope: no hit, and crucially no
    // invalidation ping-pong between the two namespaces.
    store::MeasurementStore b;
    b.open(dir.path(), store::StoreMode::kReadWrite, "driver_b");
    EXPECT_FALSE(b.lookup(key).has_value());
    b.insert({key.task, 2}, Json(2.0));
    EXPECT_EQ(b.stats().invalidated, 0);
  }
  store::MeasurementStore a2;
  a2.open(dir.path(), store::StoreMode::kReadOnly, "driver_a");
  const auto hit = a2.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->as_number(), 1.0);
  EXPECT_EQ(a2.stats().invalidated, 0);
}

// --- Cold vs warm equivalence, consumer by consumer -----------------------
//
// The contract under test: a warm rerun answers every task from the store
// (zero fresh simulations) and returns bit-identical values, at any job
// count on either side.

TEST(WarmRestart, StaticTunerReplaysBitIdentically) {
  TempDir dir("static");
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");
  baseline::StaticTunerOptions opts;
  opts.thread_counts = {16, 24};
  opts.cf_stride = 4;
  opts.ucf_stride = 4;

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.jobs = 1;
  opts.store = &cold_store;
  baseline::StaticTuner cold_tuner(cold_node, opts);
  const auto cold = cold_tuner.tune(app);
  EXPECT_EQ(cold_store.stats().hits, 0);
  EXPECT_GT(cold_store.stats().writes, 0);

  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadOnly);
  auto warm_node = test_node();
  opts.jobs = 4;  // cache entries are jobs-invariant
  opts.store = &warm_store;
  baseline::StaticTuner warm_tuner(warm_node, opts);
  const auto warm = warm_tuner.tune(app);
  EXPECT_EQ(warm_store.stats().misses, 0);
  EXPECT_EQ(warm_store.stats().hits,
            static_cast<long>(warm.evaluated.size()));

  EXPECT_EQ(warm.best, cold.best);
  EXPECT_EQ(warm.runs, cold.runs);
  EXPECT_EQ(warm.search_time.value(), cold.search_time.value());
  ASSERT_EQ(warm.evaluated.size(), cold.evaluated.size());
  for (std::size_t i = 0; i < cold.evaluated.size(); ++i) {
    EXPECT_EQ(warm.evaluated[i].config, cold.evaluated[i].config);
    EXPECT_EQ(warm.evaluated[i].node_energy.value(),
              cold.evaluated[i].node_energy.value());
    EXPECT_EQ(warm.evaluated[i].cpu_energy.value(),
              cold.evaluated[i].cpu_energy.value());
    EXPECT_EQ(warm.evaluated[i].time.value(),
              cold.evaluated[i].time.value());
  }
}

TEST(WarmRestart, UndecodablePayloadFallsBackToSimulation) {
  TempDir dir("schema_drift");
  const auto app = workload::BenchmarkSuite::by_name("Lulesh");
  baseline::StaticTunerOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 5;
  opts.ucf_stride = 5;
  opts.jobs = 1;

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.store = &cold_store;
  baseline::StaticTuner cold_tuner(cold_node, opts);
  const auto cold = cold_tuner.tune(app);

  // Simulate a payload-schema drift: task and fingerprint still match, but
  // the payload no longer decodes. The consumer must log, re-simulate, and
  // return values identical to the cold run -- never crash the worker.
  {
    std::ifstream is(dir.file());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    std::string::size_type pos = 0;
    while ((pos = text.find("node_energy", pos)) != std::string::npos)
      text.replace(pos, 11, "nodeXenergy");
    std::ofstream os(dir.file(), std::ios::trunc);
    os << text;
  }

  std::ostringstream log_sink;
  log::set_sink(&log_sink);
  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto warm_node = test_node();
  opts.store = &warm_store;
  baseline::StaticTuner warm_tuner(warm_node, opts);
  const auto warm = warm_tuner.tune(app);
  log::set_sink(nullptr);

  EXPECT_NE(log_sink.str().find("undecodable cache payload"),
            std::string::npos);
  EXPECT_EQ(warm.best, cold.best);
  ASSERT_EQ(warm.evaluated.size(), cold.evaluated.size());
  for (std::size_t i = 0; i < cold.evaluated.size(); ++i) {
    EXPECT_EQ(warm.evaluated[i].node_energy.value(),
              cold.evaluated[i].node_energy.value());
    EXPECT_EQ(warm.evaluated[i].time.value(),
              cold.evaluated[i].time.value());
  }
}

TEST(WarmRestart, ExhaustiveTunerReplaysBitIdentically) {
  TempDir dir("exhaustive");
  const auto app =
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(4);
  baseline::ExhaustiveTunerOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 5;
  opts.ucf_stride = 5;

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.jobs = 2;
  opts.store = &cold_store;
  baseline::ExhaustiveTuner cold_tuner(cold_node, opts);
  const auto cold = cold_tuner.tune(app);

  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto warm_node = test_node();
  opts.jobs = 1;
  opts.store = &warm_store;
  baseline::ExhaustiveTuner warm_tuner(warm_node, opts);
  const auto warm = warm_tuner.tune(app);

  EXPECT_EQ(warm_store.stats().misses, 0);
  EXPECT_EQ(warm_store.stats().writes, 0);
  EXPECT_GT(warm_store.stats().hits, 0);
  EXPECT_EQ(warm.app_best, cold.app_best);
  EXPECT_EQ(warm.region_best, cold.region_best);
  EXPECT_EQ(warm.runs, cold.runs);
  EXPECT_EQ(warm.search_time.value(), cold.search_time.value());
  EXPECT_EQ(warm.formula_time.value(), cold.formula_time.value());
}

TEST(WarmRestart, ExperimentsEngineReplaysBitIdentically) {
  TempDir dir("engine");
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(5);
  const SystemConfig base{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
  std::vector<ptf::Scenario> scenarios;
  scenarios.push_back(ptf::config_to_scenario(
      0, SystemConfig{24, CoreFreq::mhz(2500), UncoreFreq::mhz(3000)}));
  scenarios.push_back(ptf::config_to_scenario(
      1, SystemConfig{16, CoreFreq::mhz(1800), UncoreFreq::mhz(2200)}));
  scenarios.push_back(ptf::config_to_scenario(
      2, SystemConfig{20, CoreFreq::mhz(1200), UncoreFreq::mhz(1300)}));

  ptf::EngineOptions opts;
  opts.iterations_per_scenario = 2;

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.jobs = 1;
  opts.store = &cold_store;
  ptf::ExperimentsEngine cold_engine(
      cold_node, app, instr::InstrumentationFilter::instrument_all(), opts);
  const auto cold = cold_engine.run(scenarios, base);

  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto warm_node = test_node();
  opts.jobs = 3;
  opts.store = &warm_store;
  ptf::ExperimentsEngine warm_engine(
      warm_node, app, instr::InstrumentationFilter::instrument_all(), opts);
  const auto warm = warm_engine.run(scenarios, base);

  EXPECT_EQ(warm_store.stats().misses, 0);
  EXPECT_GT(warm_store.stats().hits, 0);
  EXPECT_EQ(warm_engine.app_runs(), cold_engine.app_runs());
  EXPECT_EQ(warm_engine.experiment_time().value(),
            cold_engine.experiment_time().value());
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].scenario.id, cold[i].scenario.id);
    EXPECT_EQ(warm[i].config, cold[i].config);
    EXPECT_EQ(warm[i].phase.node_energy.value(),
              cold[i].phase.node_energy.value());
    EXPECT_EQ(warm[i].phase.cpu_energy.value(),
              cold[i].phase.cpu_energy.value());
    EXPECT_EQ(warm[i].phase.time.value(), cold[i].phase.time.value());
    EXPECT_EQ(warm[i].phase.count, cold[i].phase.count);
    ASSERT_EQ(warm[i].regions.size(), cold[i].regions.size());
    for (const auto& [region, m] : cold[i].regions) {
      const auto& w = warm[i].regions.at(region);
      EXPECT_EQ(w.node_energy.value(), m.node_energy.value());
      EXPECT_EQ(w.cpu_energy.value(), m.cpu_energy.value());
      EXPECT_EQ(w.time.value(), m.time.value());
      EXPECT_EQ(w.count, m.count);
    }
  }
}

TEST(WarmRestart, DataAcquisitionReplaysBitIdentically) {
  TempDir dir("acquire");
  model::AcquisitionOptions opts;
  opts.thread_counts = {24};
  opts.cf_stride = 4;
  opts.ucf_stride = 4;
  opts.phase_iterations = 2;
  const std::vector<workload::Benchmark> benchmarks{
      workload::BenchmarkSuite::by_name("Lulesh"),
      workload::BenchmarkSuite::by_name("Mcb")};

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.jobs = 2;
  opts.store = &cold_store;
  model::DataAcquisition cold_acq(cold_node, opts);
  const auto cold = cold_acq.acquire(benchmarks);
  EXPECT_EQ(cold_store.stats().writes, 2);  // one entry per benchmark sweep

  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto warm_node = test_node();
  opts.jobs = 1;
  opts.store = &warm_store;
  model::DataAcquisition warm_acq(warm_node, opts);
  const auto warm = warm_acq.acquire(benchmarks);

  EXPECT_EQ(warm_store.stats().hits, 2);
  EXPECT_EQ(warm_store.stats().misses, 0);
  EXPECT_EQ(warm_acq.runs_performed(), cold_acq.runs_performed());
  EXPECT_EQ(warm.feature_names, cold.feature_names);
  ASSERT_EQ(warm.samples.size(), cold.samples.size());
  for (std::size_t i = 0; i < cold.samples.size(); ++i) {
    EXPECT_EQ(warm.samples[i].benchmark, cold.samples[i].benchmark);
    EXPECT_EQ(warm.samples[i].threads, cold.samples[i].threads);
    EXPECT_EQ(warm.samples[i].cf, cold.samples[i].cf);
    EXPECT_EQ(warm.samples[i].ucf, cold.samples[i].ucf);
    EXPECT_EQ(warm.samples[i].features, cold.samples[i].features);
    EXPECT_EQ(warm.samples[i].normalized_energy,
              cold.samples[i].normalized_energy);
    EXPECT_EQ(warm.samples[i].normalized_power,
              cold.samples[i].normalized_power);
    EXPECT_EQ(warm.samples[i].normalized_time,
              cold.samples[i].normalized_time);
  }
}

TEST(WarmRestart, SavingsEvaluatorReplaysRowsBitIdentically) {
  TempDir dir("savings");
  // Small trained model: strided acquisition over two benchmarks.
  auto train_node = test_node(0, 7);
  model::AcquisitionOptions acq_opts;
  acq_opts.thread_counts = {16, 24};
  acq_opts.cf_stride = 3;
  acq_opts.ucf_stride = 3;
  acq_opts.phase_iterations = 2;
  model::DataAcquisition acq(train_node, acq_opts);
  model::EnergyModel trained;
  trained.train(acq.acquire({workload::BenchmarkSuite::by_name("Lulesh"),
                             workload::BenchmarkSuite::by_name("Mcb")}),
                5);

  core::SavingsOptions opts;
  opts.repeats = 2;
  opts.static_search.thread_counts = {16, 24};
  opts.static_search.cf_stride = 3;
  opts.static_search.ucf_stride = 3;
  const std::vector<workload::Benchmark> apps{
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6)};

  store::MeasurementStore cold_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto cold_node = test_node();
  opts.jobs = 1;
  opts.store = &cold_store;
  core::SavingsEvaluator cold_eval(cold_node, trained, opts);
  const auto cold = cold_eval.evaluate_all(apps);

  store::MeasurementStore warm_store(dir.path(),
                                     store::StoreMode::kReadWrite);
  auto warm_node = test_node();
  opts.jobs = 2;
  opts.store = &warm_store;
  core::SavingsEvaluator warm_eval(warm_node, trained, opts);
  const auto warm = warm_eval.evaluate_all(apps);

  // The whole row replays from one store entry: no inner lookups, no
  // fresh simulation.
  EXPECT_EQ(warm_store.stats().misses, 0);
  EXPECT_EQ(warm_store.stats().hits, 1);
  ASSERT_EQ(warm.size(), cold.size());
  const auto& c = cold[0];
  const auto& w = warm[0];
  EXPECT_EQ(w.benchmark, c.benchmark);
  EXPECT_EQ(w.static_config, c.static_config);
  EXPECT_EQ(w.static_job_energy_pct, c.static_job_energy_pct);
  EXPECT_EQ(w.static_cpu_energy_pct, c.static_cpu_energy_pct);
  EXPECT_EQ(w.static_time_pct, c.static_time_pct);
  EXPECT_EQ(w.dynamic_job_energy_pct, c.dynamic_job_energy_pct);
  EXPECT_EQ(w.dynamic_cpu_energy_pct, c.dynamic_cpu_energy_pct);
  EXPECT_EQ(w.dynamic_time_pct, c.dynamic_time_pct);
  EXPECT_EQ(w.perf_reduction_config_pct, c.perf_reduction_config_pct);
  EXPECT_EQ(w.overhead_pct, c.overhead_pct);
  EXPECT_EQ(w.dynamic_switches, c.dynamic_switches);
  EXPECT_EQ(w.dta.phase_best, c.dta.phase_best);
  EXPECT_EQ(w.dta.region_best, c.dta.region_best);
  EXPECT_EQ(w.dta.tuning_time.value(), c.dta.tuning_time.value());
  EXPECT_EQ(w.dta.app_runs, c.dta.app_runs);
  EXPECT_EQ(w.dta.tuning_model.to_json().dump(-1),
            c.dta.tuning_model.to_json().dump(-1));
}

// --- Serialization round trips --------------------------------------------

TEST(Serdes, MeasurementAndConfigRoundTripBitExactly) {
  ptf::Measurement m;
  m.node_energy = Joules(1234.567890123456789);
  m.cpu_energy = Joules(0.1 + 0.2);
  m.time = Seconds(1e-9 / 3.0);
  m.count = 42;
  // Through text: the payload survives a dump/parse cycle, as on disk.
  const Json reparsed = Json::parse(ptf::to_json(m).dump(-1));
  const auto back = ptf::measurement_from_json(reparsed);
  EXPECT_EQ(back.node_energy.value(), m.node_energy.value());
  EXPECT_EQ(back.cpu_energy.value(), m.cpu_energy.value());
  EXPECT_EQ(back.time.value(), m.time.value());
  EXPECT_EQ(back.count, m.count);

  const SystemConfig c{20, CoreFreq::mhz(1700), UncoreFreq::mhz(2600)};
  EXPECT_EQ(store::config_from_json(Json::parse(store::to_json(c).dump(-1))),
            c);
}

}  // namespace
}  // namespace ecotune
