# Jobs-invariance check: a driver's stdout must be byte-identical for any
# --jobs value (the determinism contract of the parallel sweep engine, the
# parallel model training and the parallel cross-validation loops).
#
# Runs DRIVER at --jobs 1 and --jobs JOBS_HIGH (default 3) with no
# measurement store and compares the stdouts byte for byte.
#
# Usage:
#   cmake -DDRIVER=<exe> [-DDRIVER_ARGS=<args>] [-DJOBS_HIGH=<n>]
#         -DWORK_DIR=<dir> -P jobs_invariance_check.cmake

if(NOT DEFINED DRIVER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "jobs_invariance_check: DRIVER and WORK_DIR are required")
endif()
if(NOT DEFINED JOBS_HIGH)
  set(JOBS_HIGH 3)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
separate_arguments(ARGS_LIST UNIX_COMMAND "${DRIVER_ARGS}")

foreach(jobs 1 ${JOBS_HIGH})
  execute_process(
    COMMAND "${DRIVER}" ${ARGS_LIST} --jobs ${jobs}
    OUTPUT_FILE "${WORK_DIR}/jobs${jobs}.out"
    ERROR_FILE "${WORK_DIR}/jobs${jobs}.err"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "jobs_invariance_check: --jobs ${jobs} run of ${DRIVER} failed "
      "(rc=${rc}); see ${WORK_DIR}/jobs${jobs}.err")
  endif()
endforeach()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/jobs1.out" "${WORK_DIR}/jobs${JOBS_HIGH}.out"
  RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
    "jobs_invariance_check: stdout differs between --jobs 1 and "
    "--jobs ${JOBS_HIGH} (${WORK_DIR}/jobs1.out vs "
    "${WORK_DIR}/jobs${JOBS_HIGH}.out)")
endif()

message(STATUS
  "jobs_invariance_check: byte-identical for --jobs 1 and ${JOBS_HIGH}")
