#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"

namespace ecotune {
namespace {

TEST(Json, TypePredicates) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.14).is_number());
  EXPECT_TRUE(Json(7).is_number());
  EXPECT_TRUE(Json("hello").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());
}

TEST(Json, AccessorsThrowOnWrongType) {
  const Json j("text");
  EXPECT_THROW((void)j.as_number(), Error);
  EXPECT_THROW((void)j.as_bool(), Error);
  EXPECT_THROW((void)j.as_array(), Error);
  EXPECT_THROW((void)j.as_object(), Error);
  EXPECT_EQ(j.as_string(), "text");
}

TEST(Json, ObjectBuildAndAccess) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = "two";
  j["c"]["nested"] = true;  // auto-creates object
  EXPECT_EQ(j.at("a").as_int(), 1);
  EXPECT_EQ(j.at("b").as_string(), "two");
  EXPECT_TRUE(j.at("c").at("nested").as_bool());
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zzz"));
  EXPECT_THROW((void)j.at("zzz"), Error);
}

TEST(Json, ArrayPushBack) {
  Json j;
  j.push_back(1);
  j.push_back("x");
  ASSERT_TRUE(j.is_array());
  ASSERT_EQ(j.as_array().size(), 2u);
  EXPECT_EQ(j.as_array()[1].as_string(), "x");
}

TEST(Json, RoundTripThroughText) {
  Json j = Json::object();
  j["name"] = "Lulesh";
  j["threads"] = 24;
  j["ratio"] = 0.125;
  j["flag"] = false;
  j["nothing"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  j["list"] = std::move(arr);

  const Json parsed = Json::parse(j.dump(2));
  EXPECT_EQ(parsed, j);
  const Json compact = Json::parse(j.dump(-1));
  EXPECT_EQ(compact, j);
}

TEST(Json, ParsesEscapes) {
  const Json j = Json::parse(R"({"s": "a\"b\\c\ndA"})");
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\ndA");
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json j(std::string("line\nbreak\ttab\"quote"));
  const std::string out = j.dump(-1);
  EXPECT_EQ(Json::parse(out).as_string(), j.as_string());
}

TEST(Json, ParsesNumbersIncludingExponents) {
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5").as_number(), -2.5);
  EXPECT_DOUBLE_EQ(Json::parse("3.25e-2").as_number(), 0.0325);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").as_array().size(), 0u);
  EXPECT_EQ(Json::parse("{}").as_object().size(), 0u);
  EXPECT_EQ(Json::array().dump(-1), "[]");
  EXPECT_EQ(Json::object().dump(-1), "{}");
}

TEST(Json, DeterministicKeyOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  const std::string out = j.dump(-1);
  EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

}  // namespace
}  // namespace ecotune
