#include <gtest/gtest.h>

#include "energymon/hdeem.hpp"
#include "energymon/rapl.hpp"
#include "energymon/sacct.hpp"
#include "hwsim/node.hpp"

namespace ecotune::energymon {
namespace {

hwsim::KernelTraits kernel(double gi = 5.0) {
  hwsim::KernelTraits k;
  k.total_instructions = gi * 1e9;
  return k;
}

class EnergymonTest : public ::testing::Test {
 protected:
  EnergymonTest() : node_(hwsim::haswell_ep_spec(), 0, Rng(1)) {
    node_.set_jitter(0.0);
  }
  hwsim::NodeSimulator node_;
};

TEST_F(EnergymonTest, HdeemMeasuresLongRegionAccurately) {
  Hdeem::Params p;
  p.relative_noise = 0.0;
  Hdeem hdeem(node_, p);
  hdeem.start();
  const auto run = node_.run_kernel(kernel(20.0), 24);  // several 100 ms
  const Joules measured = hdeem.stop();
  // Start delay (~5 ms) and sample quantization cost a small fraction.
  EXPECT_LT(measured.value(), run.node_energy.value());
  EXPECT_NEAR(measured.value() / run.node_energy.value(), 1.0, 0.05);
}

TEST_F(EnergymonTest, HdeemMissesSubDelayRegions) {
  Hdeem::Params p;
  p.relative_noise = 0.0;
  Hdeem hdeem(node_, p);
  hdeem.start();
  node_.idle(Seconds(0.002));  // shorter than the 5 ms start delay
  const Joules measured = hdeem.stop();
  // This is exactly why the paper requires significant regions > 100 ms.
  EXPECT_LT(measured.value(), 0.2);
}

TEST_F(EnergymonTest, HdeemTotalEnergyIsExactIntegral) {
  Hdeem hdeem(node_);
  const auto r1 = node_.run_kernel(kernel(), 24);
  node_.idle(Seconds(0.1));
  const auto r2 = node_.run_kernel(kernel(), 12);
  const double idle_e = node_.idle_power().node().value() * 0.1;
  EXPECT_NEAR(hdeem.total_energy().value(),
              r1.node_energy.value() + r2.node_energy.value() + idle_e,
              1e-6);
  EXPECT_GT(hdeem.total_time().value(), 0.1);
}

TEST_F(EnergymonTest, HdeemRejectsUnbalancedStartStop) {
  Hdeem hdeem(node_);
  EXPECT_THROW((void)hdeem.stop(), PreconditionError);
  hdeem.start();
  EXPECT_THROW(hdeem.start(), PreconditionError);
  (void)hdeem.stop();
}

TEST_F(EnergymonTest, HdeemDetachesOnDestruction) {
  {
    Hdeem hdeem(node_);
  }
  // Must not crash: the destructed monitor no longer listens.
  node_.run_kernel(kernel(), 24);
}

TEST_F(EnergymonTest, RaplCounterTracksCpuEnergy) {
  Rapl rapl(node_);
  MeasureRapl tool(rapl);
  tool.start();
  const auto run = node_.run_kernel(kernel(20.0), 24);
  const Joules measured = tool.stop();
  // Quantized to 1 ms PCU updates; relative error small for long regions.
  EXPECT_NEAR(measured.value() / run.cpu_energy.value(), 1.0, 0.01);
}

TEST_F(EnergymonTest, RaplReadIsQuantizedToUpdatePeriod) {
  Rapl rapl(node_);
  const auto before = rapl.read_counter();
  node_.idle(Seconds(0.4e-3));  // less than one update period
  EXPECT_EQ(rapl.read_counter(), before);
  node_.idle(Seconds(1e-3));
  EXPECT_GT(rapl.read_counter(), before);
}

TEST_F(EnergymonTest, RaplDeltaHandlesWraparound) {
  Rapl rapl(node_);
  const std::uint64_t before = 0xFFFFFF00ULL;
  const std::uint64_t after = 0x00000100ULL;
  const Joules d = rapl.delta_energy(before, after);
  EXPECT_NEAR(d.value(), (0x100ULL + 0x100ULL) * 15.3e-6, 1e-9);
}

TEST_F(EnergymonTest, SacctRecordsJobEnergyAndTime) {
  Sacct sacct(node_);
  sacct.job_start("lulesh-default");
  const auto run = node_.run_kernel(kernel(10.0), 24);
  const JobRecord rec = sacct.job_end();
  EXPECT_EQ(rec.job_name, "lulesh-default");
  EXPECT_EQ(rec.node_id, 0);
  EXPECT_DOUBLE_EQ(rec.elapsed.value(), run.time.value());
  EXPECT_NEAR(rec.consumed_energy.value(), run.node_energy.value(), 1e-9);
}

TEST_F(EnergymonTest, SacctQueryReturnsMostRecent) {
  Sacct sacct(node_);
  sacct.job_start("job");
  node_.run_kernel(kernel(), 24);
  sacct.job_end();
  sacct.job_start("job");
  node_.run_kernel(kernel(), 12);
  const auto second = sacct.job_end();
  const auto q = sacct.query("job");
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->consumed_energy.value(),
                   second.consumed_energy.value());
  EXPECT_FALSE(sacct.query("nope").has_value());
  EXPECT_EQ(sacct.records().size(), 2u);
}

TEST_F(EnergymonTest, SacctRejectsNestedJobs) {
  Sacct sacct(node_);
  sacct.job_start("a");
  EXPECT_THROW(sacct.job_start("b"), PreconditionError);
  sacct.job_end();
  EXPECT_THROW(sacct.job_end(), PreconditionError);
}

}  // namespace
}  // namespace ecotune::energymon
