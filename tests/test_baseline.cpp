#include <gtest/gtest.h>

#include "baseline/exhaustive_tuner.hpp"
#include "baseline/static_tuner.hpp"
#include "workload/suite.hpp"

namespace ecotune::baseline {
namespace {

StaticTunerOptions coarse_static() {
  StaticTunerOptions opts;
  opts.thread_counts = {16, 24};
  opts.cf_stride = 3;
  opts.ucf_stride = 3;
  opts.phase_iterations = 1;
  return opts;
}

ExhaustiveTunerOptions coarse_exhaustive() {
  ExhaustiveTunerOptions opts;
  opts.thread_counts = {16, 24};
  opts.cf_stride = 3;
  opts.ucf_stride = 3;
  return opts;
}

TEST(StaticTuner, FindsComputeBoundOptimumForLulesh) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  StaticTuner tuner(node, coarse_static());
  const auto result =
      tuner.tune(workload::BenchmarkSuite::by_name("Lulesh"));
  EXPECT_EQ(result.best.threads, 24);
  EXPECT_GE(result.best.core.as_mhz(), 2100);
  EXPECT_LE(result.best.uncore.as_mhz(), 2200);
  EXPECT_EQ(result.runs, 2 * 5 * 6);  // threads x ceil(14/3) x ceil(18/3)
  EXPECT_EQ(result.evaluated.size(), static_cast<std::size_t>(result.runs));
  EXPECT_GT(result.search_time.value(), 0.0);
}

TEST(StaticTuner, BestPointIsMinimumOfEvaluated) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  StaticTuner tuner(node, coarse_static());
  const auto result = tuner.tune(workload::BenchmarkSuite::by_name("Mcb"));
  for (const auto& p : result.evaluated) {
    EXPECT_LE(result.best_point.node_energy.value(),
              p.node_energy.value() + 1e-9);
  }
}

TEST(StaticTuner, ObjectiveChangesTheWinner) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  StaticTuner tuner(node, coarse_static());
  const auto& app = workload::BenchmarkSuite::by_name("Mcb");
  const auto energy_best = tuner.tune(app, ptf::EnergyObjective{});
  const auto time_best = tuner.tune(app, ptf::TimeObjective{});
  // Time-optimal Mcb wants max bandwidth; energy-optimal wants less.
  EXPECT_GE(time_best.best.uncore.as_mhz(), energy_best.best.uncore.as_mhz());
  EXPECT_GE(time_best.best.core.as_mhz(), energy_best.best.core.as_mhz());
}

TEST(ExhaustiveTuner, FindsPerRegionOptima) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  ExhaustiveTuner tuner(node, coarse_exhaustive());
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(1);
  const auto result = tuner.tune(app);

  EXPECT_EQ(result.region_best.size(), app.regions().size());
  EXPECT_EQ(result.runs, 2 * 5 * 6);
  // Paper formula cost is n regions times larger than one sweep.
  EXPECT_DOUBLE_EQ(result.formula_runs,
                   static_cast<double>(result.runs) *
                       static_cast<double>(app.regions().size()));
  EXPECT_GT(result.formula_time.value(), result.search_time.value());
  // App-level best mirrors the compute-bound character.
  EXPECT_GE(result.app_best.core.as_mhz(), 2100);
}

TEST(ExhaustiveTuner, RegionOptimaAreAtLeastAsGoodAsAppOptimum) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(2));
  node.set_jitter(0.0);
  ExhaustiveTunerOptions opts = coarse_exhaustive();
  ExhaustiveTuner tuner(node, opts);
  const auto app =
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(1);
  const auto result = tuner.tune(app);

  // Verify region-best really beats (or ties) the app-best config for each
  // region, using a fresh noise-free evaluation.
  for (const auto& [name, best_cfg] : result.region_best) {
    const auto* region = app.find_region(name);
    ASSERT_NE(region, nullptr);
    node.set_all_core_freqs(best_cfg.core);
    node.set_all_uncore_freqs(best_cfg.uncore);
    const double e_best =
        node.run_kernel(region->traits, best_cfg.threads).node_energy.value();
    node.set_all_core_freqs(result.app_best.core);
    node.set_all_uncore_freqs(result.app_best.uncore);
    const double e_app =
        node.run_kernel(region->traits, result.app_best.threads)
            .node_energy.value();
    EXPECT_LE(e_best, e_app * 1.001) << name;
  }
}

TEST(StaticTuner, JobCountDoesNotChangeResults) {
  // Jitter stays ON: the per-config RNG keying is what's under test.
  auto tune_with_jobs = [](int jobs) {
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(7));
    StaticTunerOptions opts = coarse_static();
    opts.jobs = jobs;
    StaticTuner tuner(node, opts);
    return tuner.tune(workload::BenchmarkSuite::by_name("Lulesh"));
  };
  const auto serial = tune_with_jobs(1);
  const auto wide = tune_with_jobs(8);
  EXPECT_EQ(serial.best, wide.best);
  EXPECT_EQ(serial.runs, wide.runs);
  EXPECT_EQ(serial.search_time.value(), wide.search_time.value());  // bitwise
  ASSERT_EQ(serial.evaluated.size(), wide.evaluated.size());
  for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
    EXPECT_EQ(serial.evaluated[i].config, wide.evaluated[i].config);
    EXPECT_EQ(serial.evaluated[i].node_energy.value(),
              wide.evaluated[i].node_energy.value());
    EXPECT_EQ(serial.evaluated[i].cpu_energy.value(),
              wide.evaluated[i].cpu_energy.value());
    EXPECT_EQ(serial.evaluated[i].time.value(),
              wide.evaluated[i].time.value());
  }
}

TEST(ExhaustiveTuner, JobCountDoesNotChangeResults) {
  auto tune_with_jobs = [](int jobs) {
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(8));
    ExhaustiveTunerOptions opts = coarse_exhaustive();
    opts.jobs = jobs;
    ExhaustiveTuner tuner(node, opts);
    return tuner.tune(
        workload::BenchmarkSuite::by_name("Mcb").with_iterations(1));
  };
  const auto serial = tune_with_jobs(1);
  const auto wide = tune_with_jobs(8);
  EXPECT_EQ(serial.app_best, wide.app_best);
  EXPECT_EQ(serial.runs, wide.runs);
  EXPECT_EQ(serial.search_time.value(), wide.search_time.value());
  EXPECT_EQ(serial.formula_time.value(), wide.formula_time.value());
  ASSERT_EQ(serial.region_best.size(), wide.region_best.size());
  for (const auto& [region, cfg] : serial.region_best)
    EXPECT_EQ(cfg, wide.region_best.at(region)) << region;
}

TEST(TuningTimeComparison, ModelBasedIsOrdersOfMagnitudeCheaper) {
  // Paper Sec. V-C: ours is (k + 1 + 9) experiments vs n*k*l*m runs.
  const int n_regions = 5;
  const int k = 4;    // thread settings
  const int l = 14;   // core frequencies
  const int m = 18;   // uncore frequencies
  const double exhaustive = static_cast<double>(n_regions) * k * l * m;
  const double ours = k + 1 + 9;
  EXPECT_GT(exhaustive / ours, 300.0);
}

}  // namespace
}  // namespace ecotune::baseline
