#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "nn/mlp.hpp"
#include "stats/metrics.hpp"

namespace ecotune::nn {
namespace {

TEST(Mlp, PaperArchitectureShape) {
  Rng rng(1);
  const Mlp net(MlpConfig{}, rng);
  EXPECT_EQ(net.input_size(), 9u);
  EXPECT_EQ(net.output_size(), 1u);
  // 9*5+5 + 5*5+5 + 5*1+1 = 50 + 30 + 6 = 86 parameters.
  EXPECT_EQ(net.parameter_count(), 86u);
}

TEST(Mlp, HeInitializationStatistics) {
  MlpConfig cfg;
  cfg.layer_sizes = {100, 200};
  cfg.relu_output = false;
  Rng rng(2);
  const Mlp net(cfg, rng);
  // Serialize to inspect weights: stddev should be ~sqrt(2/100) = 0.1414.
  const Json j = net.to_json();
  const auto& w = j.at("layers").as_array()[0].at("w").as_array();
  double sum = 0.0, sq = 0.0;
  int n = 0;
  for (const auto& row : w) {
    for (const auto& v : row.as_array()) {
      sum += v.as_number();
      sq += v.as_number() * v.as_number();
      ++n;
    }
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(sd, std::sqrt(2.0 / 100.0), 0.01);
  // Biases start at zero.
  for (const auto& b : j.at("layers").as_array()[0].at("b").as_array())
    EXPECT_DOUBLE_EQ(b.as_number(), 0.0);
}

TEST(Mlp, ReluOutputIsNonNegative) {
  Rng rng(3);
  const Mlp net(MlpConfig{}, rng);
  Rng probe(4);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(9);
    for (auto& v : x) v = probe.normal(0, 2);
    EXPECT_GE(net.predict(x), 0.0);
  }
}

TEST(Mlp, ValidatesInputSizes) {
  Rng rng(5);
  Mlp net(MlpConfig{}, rng);
  EXPECT_THROW((void)net.predict({1.0, 2.0}), PreconditionError);
  EXPECT_THROW(net.train_sample({1.0}, {1.0}), PreconditionError);
}

TEST(Mlp, LearnsLinearFunction) {
  MlpConfig cfg;
  cfg.layer_sizes = {2, 8, 1};
  Rng rng(6);
  Mlp net(cfg, rng);

  Rng data_rng(7);
  stats::Matrix x(256, 2);
  std::vector<double> y(256);
  for (std::size_t i = 0; i < 256; ++i) {
    x(i, 0) = data_rng.uniform(0, 1);
    x(i, 1) = data_rng.uniform(0, 1);
    y[i] = 0.5 + 0.3 * x(i, 0) + 0.2 * x(i, 1);
  }
  Rng shuffle(8);
  double first_loss = net.train_epoch(x, y, shuffle);
  double last_loss = first_loss;
  for (int e = 0; e < 200; ++e) last_loss = net.train_epoch(x, y, shuffle);
  EXPECT_LT(last_loss, first_loss * 0.05);
  EXPECT_NEAR(net.predict({0.5, 0.5}), 0.75, 0.05);
}

TEST(Mlp, LearnsNonlinearEnergyShapedSurface) {
  // A paper-like target: U-shaped normalized energy in "frequency".
  MlpConfig cfg;
  cfg.layer_sizes = {1, 8, 8, 1};
  cfg.learning_rate = 3e-3;
  Rng rng(9);
  Mlp net(cfg, rng);

  stats::Matrix x(141, 1);
  std::vector<double> y(141);
  for (int i = 0; i <= 140; ++i) {
    const double f = 1.2 + i * 0.01;  // 1.2 .. 2.6 "GHz"
    x(static_cast<std::size_t>(i), 0) = (f - 1.9) / 0.4;  // standardized-ish
    y[static_cast<std::size_t>(i)] = 0.8 + 0.5 * (f - 1.9) * (f - 1.9);
  }
  Rng shuffle(10);
  for (int e = 0; e < 400; ++e) net.train_epoch(x, y, shuffle);

  std::vector<double> pred, truth;
  for (std::size_t i = 0; i < 141; ++i) {
    pred.push_back(net.predict(x.row(i)));
    truth.push_back(y[i]);
  }
  EXPECT_LT(stats::mape(truth, pred), 3.0);
  // The learned surface must preserve the argmin location approximately.
  std::size_t best = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] < pred[best]) best = i;
  EXPECT_NEAR(1.2 + static_cast<double>(best) * 0.01, 1.9, 0.15);
}

TEST(Mlp, TrainSampleReturnsDecreasingLossOnRepeat) {
  MlpConfig cfg;
  cfg.layer_sizes = {2, 4, 1};
  cfg.relu_output = false;  // a ReLU output can die on a single sample
  Rng rng(11);
  Mlp net(cfg, rng);
  const std::vector<double> x{0.3, 0.6};
  const std::vector<double> y{1.5};
  const double l0 = net.train_sample(x, y);
  double l = l0;
  for (int i = 0; i < 300; ++i) l = net.train_sample(x, y);
  EXPECT_LT(l, l0 * 0.01);
}

TEST(Mlp, SerializationRoundTripPreservesPredictions) {
  Rng rng(12);
  Mlp net(MlpConfig{}, rng);
  // Train briefly so weights are not just the init.
  stats::Matrix x(32, 9);
  std::vector<double> y(32);
  Rng d(13);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 9; ++j) x(i, j) = d.normal(0, 1);
    y[i] = 1.0 + 0.1 * x(i, 0);
  }
  Rng shuffle(14);
  net.train_epoch(x, y, shuffle);

  const Mlp restored = Mlp::from_json(Json::parse(net.to_json().dump()));
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(restored.predict(x.row(i)), net.predict(x.row(i)));
}

TEST(Mlp, DeterministicTrainingForSameSeeds) {
  auto make_trained = [] {
    Rng rng(15);
    Mlp net(MlpConfig{}, rng);
    stats::Matrix x(16, 9);
    std::vector<double> y(16);
    Rng d(16);
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t j = 0; j < 9; ++j) x(i, j) = d.normal(0, 1);
      y[i] = d.uniform(0.5, 1.5);
    }
    Rng shuffle(17);
    for (int e = 0; e < 5; ++e) net.train_epoch(x, y, shuffle);
    return net.predict(std::vector<double>(9, 0.1));
  };
  EXPECT_DOUBLE_EQ(make_trained(), make_trained());
}

TEST(Mlp, RejectsDegenerateConfig) {
  MlpConfig cfg;
  cfg.layer_sizes = {9};
  Rng rng(18);
  EXPECT_THROW(Mlp(cfg, rng), PreconditionError);
}

TEST(Mlp, ForwardBatchMatchesScalarBitwise) {
  // On the scalar reference path the batched forward must be
  // indistinguishable from per-point forwards: exact equality (EXPECT_EQ
  // on doubles), across shapes and activation configurations. The fused
  // AVX2 engine is deliberately not bit-identical to predict() — its
  // equivalence (ULP bounds, determinism) is pinned in
  // test_simd_kernels.cpp.
  const simd::ScopedLevel force_scalar(simd::Level::kScalar);
  const std::vector<std::vector<std::size_t>> shapes{
      {9, 5, 5, 1}, {4, 8, 1}, {2, 3, 3, 3, 1}};
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (bool relu_out : {true, false}) {
      MlpConfig cfg;
      cfg.layer_sizes = shapes[s];
      cfg.relu_output = relu_out;
      Rng rng(100 + 10 * s + (relu_out ? 1 : 0));
      const Mlp net(cfg, rng);
      Rng data(200 + s);
      stats::Matrix x(64, shapes[s].front());
      for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
          x(r, c) = data.normal(0.0, 2.0);
      Workspace ws;
      std::vector<double> batch(x.rows());
      net.forward_batch(x, std::span<double>(batch), ws);
      for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(batch[r], net.predict(x.row(r)))
            << "shape " << s << " relu_out " << relu_out << " row " << r;
      }
    }
  }
}

/// Shared scenario for the golden-loss-sequence tests below.
void run_golden_sequence(const double (&golden)[6]) {
  const std::size_t n = 2048;
  Rng data_rng(0xDA7A);
  stats::Matrix x(n, 9);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 9; ++j) x(i, j) = data_rng.normal(0.0, 1.0);
    y[i] = data_rng.uniform(0.5, 1.5);
  }
  Rng rng(0x60D1);
  Mlp net(MlpConfig{}, rng);
  Rng shuffle(0x60D2);
  for (int e = 0; e < 6; ++e) {
    EXPECT_EQ(net.train_epoch(x, y, shuffle), golden[e]) << "epoch " << e;
  }
}

TEST(Mlp, TrainEpochGoldenLossSequence) {
  // Golden values captured from the pre-workspace (PR-3) implementation:
  // on the scalar reference path every later refactor must reproduce the
  // training trajectory bit for bit (same shuffles, same per-dot-product
  // operation order).
  const simd::ScopedLevel force_scalar(simd::Level::kScalar);
  const double golden[6] = {
      0.59483072942753357,  0.10501934169583924, 0.091494347610431057,
      0.087954805496645874, 0.08665858603551152, 0.085485810282438013};
  run_golden_sequence(golden);
}

TEST(Mlp, TrainEpochGoldenLossSequenceAvx2Engine) {
  // The fused AVX2 engine trains with FMA contraction, so its trajectory
  // differs from the scalar goldens in the last ulps — but it must be
  // exactly reproducible on any FMA machine. These values were captured
  // from the engine itself when it landed; a mismatch means the engine's
  // fixed rounding sequence changed (reordered accumulation, a dropped
  // fuse, ...), which would also break warm-restart byte-identity.
  if (!simd::supported(simd::Level::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  const simd::ScopedLevel force_avx2(simd::Level::kAvx2);
  const double golden[6] = {
      0.59483072942753346,  0.10501934169583925, 0.09149434761043107,
      0.08795480549664586,  0.086658586035511534, 0.085485810282437971};
  run_golden_sequence(golden);
}

TEST(Mlp, AdamStateSurvivesSerializationRoundTrip) {
  // A restored network must resume training exactly where the original
  // left off: optimizer moments, timestep and hyper-parameters all travel
  // through JSON (they used to be dropped, silently resetting ADAM).
  MlpConfig cfg;
  cfg.layer_sizes = {4, 6, 1};
  cfg.beta1 = 0.85;  // non-defaults must round-trip too
  cfg.epsilon = 1e-7;
  Rng rng(31);
  Mlp net(cfg, rng);
  stats::Matrix x(64, 4);
  std::vector<double> y(64);
  Rng d(32);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = d.normal(0.0, 1.0);
    y[i] = d.uniform(0.0, 2.0);
  }
  Rng shuffle(33);
  for (int e = 0; e < 3; ++e) net.train_epoch(x, y, shuffle);

  Mlp restored = Mlp::from_json(Json::parse(net.to_json().dump()));
  EXPECT_EQ(restored.config().beta1, cfg.beta1);
  EXPECT_EQ(restored.config().epsilon, cfg.epsilon);
  Rng sa(34), sb(34);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(net.train_epoch(x, y, sa), restored.train_epoch(x, y, sb))
        << "diverged at continued epoch " << e;
  }
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(restored.predict(x.row(i)), net.predict(x.row(i)));
}

TEST(Mlp, LoadsLegacyJsonWithoutOptimizerState) {
  // Files written before the optimizer state was serialized carry only
  // weights/biases; they must load with default ADAM hyper-parameters and
  // cold moments.
  Rng rng(41);
  Mlp net(MlpConfig{}, rng);
  const Json full = net.to_json();
  Json legacy = Json::object();
  legacy["layer_sizes"] = full.at("layer_sizes");
  legacy["relu_output"] = full.at("relu_output");
  legacy["learning_rate"] = full.at("learning_rate");
  Json layers = Json::array();
  for (const auto& lj : full.at("layers").as_array()) {
    Json l = Json::object();
    l["w"] = lj.at("w");
    l["b"] = lj.at("b");
    l["relu"] = lj.at("relu");
    layers.push_back(std::move(l));
  }
  legacy["layers"] = std::move(layers);

  Mlp restored = Mlp::from_json(legacy);
  EXPECT_EQ(restored.config().beta1, MlpConfig{}.beta1);
  EXPECT_EQ(restored.config().beta2, MlpConfig{}.beta2);
  EXPECT_EQ(restored.config().epsilon, MlpConfig{}.epsilon);
  Rng probe(42);
  for (int i = 0; i < 16; ++i) {
    std::vector<double> p(9);
    for (auto& v : p) v = probe.normal(0.0, 1.0);
    EXPECT_EQ(restored.predict(p), net.predict(p));
  }
  // And it still trains (cold optimizer, but functional).
  EXPECT_GE(restored.train_sample(std::vector<double>(9, 0.2), {1.0}), 0.0);
}

TEST(Mlp, WorkspaceRebindsAcrossNetworkShapes) {
  // One caller-owned workspace serving networks of different geometry must
  // regrow transparently and stay correct.
  MlpConfig small;
  small.layer_sizes = {2, 3, 1};
  MlpConfig big;
  big.layer_sizes = {9, 5, 5, 1};
  Rng r1(51), r2(52);
  const Mlp a(small, r1);
  const Mlp b(big, r2);
  Workspace ws;
  const std::vector<double> xa{0.4, -0.7};
  const std::vector<double> xb(9, 0.3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(a.predict(std::span<const double>(xa), ws), a.predict(xa));
    EXPECT_EQ(b.predict(std::span<const double>(xb), ws), b.predict(xb));
  }
}

}  // namespace
}  // namespace ecotune::nn
