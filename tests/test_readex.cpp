#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "instr/scorep_runtime.hpp"
#include "readex/dyn_detect.hpp"
#include "readex/rrl.hpp"
#include "readex/tuning_model.hpp"
#include "workload/suite.hpp"

namespace ecotune::readex {
namespace {

instr::CallTreeProfile profile_app(hwsim::NodeSimulator& node,
                                   const workload::Benchmark& app) {
  instr::ExecutionContext ctx(node);
  instr::ScorepOptions opts;
  opts.profiling = true;
  instr::ScorepRuntime runtime(
      app, instr::InstrumentationFilter::instrument_all(), opts);
  auto result = runtime.execute(ctx);
  return std::move(*result.profile);
}

TEST(DynDetect, DetectsPaperSignificantRegionsForLulesh) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3);
  const auto profile = profile_app(node, app);
  const auto report = readex_dyn_detect(profile);

  EXPECT_EQ(report.significant.size(), 5u);
  for (const char* r :
       {"IntegrateStressForElems", "CalcFBHourglassForceForElems",
        "CalcKinematicsForElems", "CalcQForElems",
        "ApplyMaterialPropertiesForElems"}) {
    EXPECT_TRUE(report.is_significant(r)) << r;
  }
  EXPECT_FALSE(report.is_significant("TimeIncrement"));
  EXPECT_FALSE(report.is_significant("CalcCourantConstraint"));
  // All significant regions respect the threshold.
  for (const auto& s : report.significant)
    EXPECT_GE(s.mean_time.value(), report.threshold.value());
}

TEST(DynDetect, McbHasFiveSignificantRegions) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(3);
  const auto report = readex_dyn_detect(profile_app(node, app));
  EXPECT_EQ(report.significant.size(), 5u);
  EXPECT_TRUE(report.is_significant("omp parallel:423"));
}

TEST(DynDetect, ThresholdControlsSelection) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(2);
  const auto profile = profile_app(node, app);
  const auto strict = readex_dyn_detect(profile, Seconds(10.0));
  EXPECT_TRUE(strict.significant.empty());
  const auto lax = readex_dyn_detect(profile, Seconds(1e-6));
  EXPECT_EQ(lax.significant.size(), app.regions().size());
}

TEST(DynDetect, ReportsWeightsAndDynamism) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(3);
  const auto report = readex_dyn_detect(profile_app(node, app));
  double total_weight = 0.0;
  for (const auto& s : report.significant) {
    EXPECT_GT(s.weight, 0.0);
    total_weight += s.weight;
  }
  EXPECT_LE(total_weight, 1.0 + 1e-9);
  EXPECT_GT(total_weight, 0.8);  // significant regions dominate the phase
  EXPECT_GT(report.inter_region_dynamism, 0.5);  // balanced regions
  const Json cfg = report.to_config_file();
  EXPECT_EQ(cfg.at("phase_region").as_string(), "PHASE");
  EXPECT_EQ(cfg.at("significant_regions").as_array().size(), 5u);
}

TEST(TuningModel, GroupsEqualConfigsIntoScenarios) {
  TuningModel model;
  const SystemConfig a{24, CoreFreq::mhz(2500), UncoreFreq::mhz(2000)};
  const SystemConfig b{20, CoreFreq::mhz(1600), UncoreFreq::mhz(2300)};
  model.add_region("r1", a);
  model.add_region("r2", a);
  model.add_region("r3", b);
  EXPECT_EQ(model.scenarios().size(), 2u);
  EXPECT_EQ(model.region_count(), 3u);
  EXPECT_EQ(model.scenario_id("r1"), model.scenario_id("r2"));
  EXPECT_NE(model.scenario_id("r1"), model.scenario_id("r3"));
  EXPECT_EQ(model.scenario_id("unknown"), -1);
  ASSERT_TRUE(model.lookup("r3").has_value());
  EXPECT_EQ(*model.lookup("r3"), b);
  EXPECT_FALSE(model.lookup("unknown").has_value());
  EXPECT_THROW(model.add_region("r1", b), PreconditionError);
}

TEST(TuningModel, JsonAndFileRoundTrip) {
  TuningModel model;
  model.add_region("alpha", {24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700)});
  model.add_region("beta", {16, CoreFreq::mhz(2500), UncoreFreq::mhz(2300)});
  const TuningModel parsed =
      TuningModel::from_json(Json::parse(model.to_json().dump()));
  EXPECT_EQ(parsed.region_count(), 2u);
  EXPECT_EQ(*parsed.lookup("alpha"),
            (SystemConfig{24, CoreFreq::mhz(2400), UncoreFreq::mhz(1700)}));

  const std::string path =
      (std::filesystem::temp_directory_path() / "ecotune_tm_test.json")
          .string();
  model.save(path);
  const TuningModel loaded = TuningModel::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.region_count(), 2u);
  EXPECT_EQ(*loaded.lookup("beta"),
            (SystemConfig{16, CoreFreq::mhz(2500), UncoreFreq::mhz(2300)}));
}

class RrlTest : public ::testing::Test {
 protected:
  RrlTest()
      : node_(hwsim::haswell_ep_spec(), 0, Rng(1)),
        app_(workload::BenchmarkSuite::by_name("Lulesh").with_iterations(4)) {
    node_.set_jitter(0.0);
    // Model: two regions pinned to different configurations.
    model_.add_region("IntegrateStressForElems",
                      {24, CoreFreq::mhz(2500), UncoreFreq::mhz(2000)});
    model_.add_region("CalcKinematicsForElems",
                      {24, CoreFreq::mhz(2400), UncoreFreq::mhz(2000)});
  }

  instr::InstrumentationFilter significant_only() const {
    auto f = instr::InstrumentationFilter::instrument_all();
    for (const auto& r : app_.regions()) {
      if (!model_.lookup(r.name)) f.exclude(r.name);
    }
    return f;
  }

  hwsim::NodeSimulator node_;
  workload::Benchmark app_;
  TuningModel model_;
  const SystemConfig default_config_{24, CoreFreq::mhz(2500),
                                     UncoreFreq::mhz(3000)};
};

TEST_F(RrlTest, SwitchesOnModelRegionsOnly) {
  const auto result =
      run_with_rrl(app_, node_, model_, significant_only(), default_config_);
  // Per iteration: switch into IntegrateStress config, then into
  // CalcKinematics config; other regions keep the last configuration.
  EXPECT_EQ(result.lookups, 2 * app_.phase_iterations());
  EXPECT_EQ(result.switches, 2 * app_.phase_iterations());
  EXPECT_GT(result.switch_overhead.value(), 0.0);
  EXPECT_GT(result.run.node_energy.value(), 0.0);
}

TEST_F(RrlTest, NoSwitchWhenConfigAlreadyActive) {
  TuningModel single;
  single.add_region("IntegrateStressForElems", default_config_);
  auto filter = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app_.regions())
    if (r.name != "IntegrateStressForElems") filter.exclude(r.name);
  const auto result =
      run_with_rrl(app_, node_, single, filter, default_config_);
  EXPECT_EQ(result.switches, 0);
  EXPECT_DOUBLE_EQ(result.switch_overhead.value(), 0.0);
  EXPECT_EQ(result.lookups, app_.phase_iterations());
}

TEST_F(RrlTest, DynamicRunSavesEnergyVersusDefault) {
  // Tuned configs lower the uncore clock for the two compute-bound regions;
  // RRL should therefore consume measurably less node energy than the
  // uninstrumented default run even after paying instrumentation overhead.
  hwsim::NodeSimulator ref_node(hwsim::haswell_ep_spec(), 0, Rng(1));
  ref_node.set_jitter(0.0);
  const auto reference =
      instr::run_uninstrumented(app_, ref_node, default_config_);

  TuningModel model;
  for (const auto& r : {"IntegrateStressForElems",
                        "CalcFBHourglassForceForElems",
                        "CalcKinematicsForElems", "CalcQForElems",
                        "ApplyMaterialPropertiesForElems"}) {
    model.add_region(r, {24, CoreFreq::mhz(2500), UncoreFreq::mhz(1700)});
  }
  auto filter = instr::InstrumentationFilter::instrument_all();
  for (const auto& r : app_.regions())
    if (!model.lookup(r.name)) filter.exclude(r.name);

  const auto rat = run_with_rrl(app_, node_, model, filter, default_config_);
  EXPECT_LT(rat.run.node_energy.value(),
            reference.node_energy.value() * 0.99);
}

}  // namespace
}  // namespace ecotune::readex
