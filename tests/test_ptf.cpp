#include <gtest/gtest.h>

#include <algorithm>

#include "hwsim/node.hpp"
#include "ptf/experiments_engine.hpp"
#include "ptf/objectives.hpp"
#include "ptf/search_space.hpp"
#include "ptf/tuning_parameter.hpp"
#include "workload/suite.hpp"

namespace ecotune::ptf {
namespace {

TEST(TuningParameter, OmpThreadsRange) {
  const auto p = omp_threads_parameter(12, 24, 4);
  EXPECT_EQ(p.name, "OpenMPTP");
  EXPECT_EQ(p.values, (std::vector<int>{12, 16, 20, 24}));
  EXPECT_THROW(omp_threads_parameter(12, 8, 4), PreconditionError);
}

TEST(TuningParameter, FrequencyParameters) {
  const auto cf = core_freq_parameter(
      {CoreFreq::mhz(2400), CoreFreq::mhz(2500)});
  EXPECT_EQ(cf.name, "cpu_freq");
  EXPECT_EQ(cf.values, (std::vector<int>{2400, 2500}));
  EXPECT_THROW(uncore_freq_parameter({}), PreconditionError);
}

TEST(Scenario, ConfigConversionRoundTrip) {
  const SystemConfig base{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
  Scenario s = config_to_scenario(7, SystemConfig{16, CoreFreq::mhz(1800),
                                                  UncoreFreq::mhz(2200)});
  EXPECT_EQ(s.id, 7);
  const SystemConfig c = scenario_to_config(s, base);
  EXPECT_EQ(c.threads, 16);
  EXPECT_EQ(c.core, CoreFreq::mhz(1800));
  EXPECT_EQ(c.uncore, UncoreFreq::mhz(2200));

  // Partial scenario falls back to the base.
  Scenario partial;
  partial.values["cpu_freq"] = 1200;
  const SystemConfig pc = scenario_to_config(partial, base);
  EXPECT_EQ(pc.threads, 24);
  EXPECT_EQ(pc.core, CoreFreq::mhz(1200));
  EXPECT_EQ(pc.uncore, UncoreFreq::mhz(1500));
  EXPECT_THROW((void)partial.at("OpenMPTP"), PreconditionError);
}

TEST(SearchSpace, ExhaustiveCartesianProduct) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  space.add_parameter(core_freq_parameter(
      {CoreFreq::mhz(2400), CoreFreq::mhz(2500)}));
  EXPECT_EQ(space.size(), 8u);
  const auto scenarios = space.exhaustive();
  ASSERT_EQ(scenarios.size(), 8u);
  // Ids are unique and sequential.
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_EQ(scenarios[i].id, static_cast<int>(i));
  // All combinations distinct.
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    for (std::size_t j = i + 1; j < scenarios.size(); ++j)
      EXPECT_NE(scenarios[i].values, scenarios[j].values);
}

TEST(SearchSpace, EmptyAndDegenerate) {
  SearchSpace space;
  EXPECT_EQ(space.size(), 0u);
  EXPECT_TRUE(space.exhaustive().empty());
  auto cursor = space.cursor();
  EXPECT_EQ(cursor.remaining(), 0u);
  EXPECT_FALSE(cursor.next().has_value());
  TuningParameter p;
  p.name = "x";
  EXPECT_THROW(space.add_parameter(p), PreconditionError);
}

TEST(SearchSpace, CursorMatchesExhaustiveElementForElement) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  space.add_parameter(core_freq_parameter(
      {CoreFreq::mhz(2300), CoreFreq::mhz(2400), CoreFreq::mhz(2500)}));
  space.add_parameter(
      uncore_freq_parameter({UncoreFreq::mhz(1300), UncoreFreq::mhz(1400)}));

  const auto all = space.exhaustive();
  ASSERT_EQ(all.size(), space.size());
  auto cursor = space.cursor();
  EXPECT_EQ(cursor.remaining(), all.size());
  for (const auto& expected : all) {
    const auto got = cursor.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->id, expected.id);
    EXPECT_EQ(got->values, expected.values);
  }
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_EQ(cursor.remaining(), 0u);

  // Random access and the lazy visitor agree with the materialized product.
  std::size_t visited = 0;
  space.for_each_scenario([&](const Scenario& s) {
    ASSERT_LT(visited, all.size());
    EXPECT_EQ(s.values, all[visited].values);
    ++visited;
  });
  EXPECT_EQ(visited, all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(space.scenario_at(i).id, all[i].id);
    EXPECT_EQ(space.scenario_at(i).values, all[i].values);
  }
  EXPECT_THROW((void)space.scenario_at(all.size()), PreconditionError);
}

TEST(SearchSpace, SizeThrowsOnOverflowInsteadOfWrapping) {
  SearchSpace space;
  TuningParameter p;
  p.values.assign(std::size_t{1} << 16, 0);  // 2^16 values per parameter
  for (const char* name : {"p0", "p1", "p2", "p3"}) {
    p.name = name;
    space.add_parameter(p);
  }
  // 2^64 scenarios: one past what 64 bits hold.
  EXPECT_THROW((void)space.size(), PreconditionError);
  EXPECT_THROW((void)space.exhaustive(), PreconditionError);
}

TEST(SearchSpace, LazyCursorHandlesSpacesTooLargeToMaterialize) {
  // ~69 billion scenarios: exhaustive() would need > 1 TB, the cursor and
  // scenario_at() stream it fine.
  SearchSpace space;
  TuningParameter p;
  p.values.resize(4096);
  for (std::size_t i = 0; i < p.values.size(); ++i)
    p.values[i] = static_cast<int>(i);
  for (const char* name : {"p0", "p1", "p2"}) {
    p.name = name;
    space.add_parameter(p);
  }
  EXPECT_EQ(space.size(), std::uint64_t{4096} * 4096 * 4096);
  auto cursor = space.cursor();
  const auto first = cursor.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 0);
  // Scenario ids past INT_MAX survive (64-bit id).
  const std::uint64_t far = std::uint64_t{3'000'000'000};
  const Scenario s = space.scenario_at(far);
  EXPECT_EQ(s.id, static_cast<std::int64_t>(far));
  EXPECT_EQ(s.values.at("p0"), static_cast<int>(far % 4096));
  EXPECT_EQ(s.values.at("p1"), static_cast<int>((far / 4096) % 4096));
  EXPECT_EQ(s.values.at("p2"), static_cast<int>(far / 4096 / 4096));
}

TEST(Objectives, EvaluateAndOrdering) {
  Measurement cheap;
  cheap.node_energy = Joules(100);
  cheap.cpu_energy = Joules(70);
  cheap.time = Seconds(2.0);
  Measurement fast;
  fast.node_energy = Joules(120);
  fast.cpu_energy = Joules(90);
  fast.time = Seconds(1.0);

  EXPECT_LT(EnergyObjective{}.evaluate(cheap),
            EnergyObjective{}.evaluate(fast));
  EXPECT_LT(TimeObjective{}.evaluate(fast), TimeObjective{}.evaluate(cheap));
  EXPECT_DOUBLE_EQ(EdpObjective{}.evaluate(cheap), 200.0);
  EXPECT_DOUBLE_EQ(Ed2pObjective{}.evaluate(cheap), 400.0);
  // EDP prefers the fast run here, energy the cheap one: the classic trade.
  EXPECT_LT(EdpObjective{}.evaluate(fast), EdpObjective{}.evaluate(cheap));
  EXPECT_GT(TcoObjective{}.evaluate(cheap), 0.0);
  EXPECT_DOUBLE_EQ(CpuEnergyObjective{}.evaluate(cheap), 70.0);
}

TEST(Objectives, FactoryByName) {
  for (const char* name :
       {"energy", "cpu_energy", "time", "edp", "ed2p", "tco"}) {
    const auto obj = make_objective(name);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->name(), name);
  }
  EXPECT_THROW(make_objective("nope"), ConfigError);
}

TEST(Objectives, PowerCapPenalizesOnlyAboveTheCap) {
  const PowerCapObjective cap(100.0);  // 100 W cap
  Measurement under;                   // 50 W mean power
  under.node_energy = Joules(100);
  under.time = Seconds(2.0);
  Measurement at_cap;  // exactly 100 W
  at_cap.node_energy = Joules(200);
  at_cap.time = Seconds(2.0);
  Measurement over;  // 150 W
  over.node_energy = Joules(300);
  over.time = Seconds(2.0);

  // At or under the cap the score degenerates to plain time.
  EXPECT_DOUBLE_EQ(cap.evaluate(under), 2.0);
  EXPECT_DOUBLE_EQ(cap.evaluate(at_cap), 2.0);
  // 50% excess at weight 10: 2.0 + 10 * 0.5 * 2.0 = 12.0.
  EXPECT_DOUBLE_EQ(cap.evaluate(over), 12.0);
}

TEST(Objectives, PowerCapPenaltyIsMonotoneInExcessPower) {
  const PowerCapObjective cap(100.0);
  double previous = 0.0;
  for (int watts = 100; watts <= 400; watts += 50) {
    Measurement m;  // fixed 1 s runtime, rising mean power
    m.time = Seconds(1.0);
    m.node_energy = Joules(watts);
    const double score = cap.evaluate(m);
    EXPECT_GT(score, previous - 1e-12) << watts;
    if (watts > 100) {
      EXPECT_GT(score, previous) << watts;
    }
    previous = score;
  }
}

TEST(Objectives, PowerCapZeroTimeMeasurementScoresZero) {
  // Mean power is undefined without runtime; the score must not divide by
  // zero or produce NaN/inf.
  const PowerCapObjective cap(100.0);
  Measurement zero;
  zero.node_energy = Joules(500);
  zero.time = Seconds(0.0);
  EXPECT_DOUBLE_EQ(cap.evaluate(zero), 0.0);
}

TEST(Objectives, EnergyBudgetPenalizesOverBudgetEvenAtZeroTime) {
  const EnergyBudgetObjective budget(1000.0);
  Measurement under;
  under.node_energy = Joules(800);
  under.time = Seconds(3.0);
  EXPECT_DOUBLE_EQ(budget.evaluate(under), 3.0);

  // The penalty is additive, not time-scaled: an over-budget measurement
  // stays penalized as its time approaches zero.
  Measurement over_fast;
  over_fast.node_energy = Joules(1500);
  over_fast.time = Seconds(0.0);
  EXPECT_DOUBLE_EQ(over_fast.time.value() +
                       10.0 * (1500.0 - 1000.0) / 1000.0,
                   budget.evaluate(over_fast));
  EXPECT_GT(budget.evaluate(over_fast), 0.0);
}

TEST(Objectives, EnergyBudgetPenaltyIsMonotoneInExcessEnergy) {
  const EnergyBudgetObjective budget(1000.0);
  double previous = -1.0;
  for (int joules = 1000; joules <= 4000; joules += 500) {
    Measurement m;
    m.time = Seconds(1.0);
    m.node_energy = Joules(joules);
    const double score = budget.evaluate(m);
    if (joules > 1000) {
      EXPECT_GT(score, previous) << joules;
    }
    previous = score;
  }
}

TEST(Objectives, CapFamilyFactoryAndParameterizedNamesRoundTrip) {
  // Base spellings construct the defaults and keep a reconstructible name.
  for (const char* name : {"power_cap", "energy_budget"}) {
    const auto obj = make_objective(name);
    ASSERT_NE(obj, nullptr);
    const auto again = make_objective(obj->name());
    EXPECT_EQ(again->name(), obj->name());
  }
  // Parameterized spellings round-trip through name() exactly.
  const auto capped = make_objective("power_cap:250");
  EXPECT_EQ(capped->name(), "power_cap:250");
  EXPECT_EQ(make_objective(capped->name())->name(), "power_cap:250");
  const auto budgeted = make_objective("energy_budget:5000");
  EXPECT_EQ(budgeted->name(), "energy_budget:5000");

  // Malformed or non-positive parameters are configuration errors.
  EXPECT_THROW(make_objective("power_cap:"), ConfigError);
  EXPECT_THROW(make_objective("power_cap:zero"), ConfigError);
  EXPECT_THROW(make_objective("power_cap:-5"), ConfigError);
  EXPECT_THROW(make_objective("energy_budget:0"), ConfigError);
  EXPECT_THROW(make_objective("watt_cap:100"), ConfigError);
}

TEST(Objectives, NamesListIsSortedAndFactoryComplete) {
  const auto& names = objective_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    const auto obj = make_objective(name);
    ASSERT_NE(obj, nullptr);
  }
  EXPECT_NE(objective_names_joined().find("power_cap"), std::string::npos);
  EXPECT_NE(objective_names_joined().find("energy_budget"),
            std::string::npos);
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : node_(hwsim::haswell_ep_spec(), 0, Rng(1)),
        app_(workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6)) {
    node_.set_jitter(0.0);
  }
  hwsim::NodeSimulator node_;
  workload::Benchmark app_;
  const SystemConfig base_{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
};

TEST_F(EngineTest, OneScenarioPerPhaseIteration) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);
  ASSERT_EQ(results.size(), 4u);
  // 4 scenarios fit into one 6-iteration application run.
  EXPECT_EQ(engine.app_runs(), 1);
  for (const auto& r : results) {
    EXPECT_EQ(r.phase.count, 1);
    EXPECT_GT(r.phase.node_energy.value(), 0.0);
    EXPECT_FALSE(r.regions.empty());
  }
}

TEST_F(EngineTest, SchedulesMultipleRunsWhenScenariosExceedIterations) {
  SearchSpace space;
  space.add_parameter(core_freq_parameter(node_.spec().core_grid.values()));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);
  EXPECT_EQ(results.size(), 14u);
  EXPECT_EQ(engine.app_runs(), 3);  // ceil(14 / 6)
  EXPECT_GT(engine.experiment_time().value(), 0.0);
}

TEST_F(EngineTest, MeasurementsReflectConfiguration) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(config_to_scenario(
      0, SystemConfig{24, CoreFreq::mhz(1200), UncoreFreq::mhz(1500)}));
  scenarios.push_back(config_to_scenario(
      1, SystemConfig{24, CoreFreq::mhz(2500), UncoreFreq::mhz(1500)}));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(scenarios, base_);
  // Lulesh is compute-bound: 1.2 GHz must be much slower than 2.5 GHz.
  EXPECT_GT(results[0].phase.time.value(),
            results[1].phase.time.value() * 1.5);
}

TEST_F(EngineTest, BestSelectorsUseObjective) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);

  const EnergyObjective energy;
  const auto& best = ExperimentsEngine::best_phase(results, energy);
  for (const auto& r : results)
    EXPECT_LE(energy.evaluate(best.phase), energy.evaluate(r.phase));

  const auto per_region = ExperimentsEngine::best_per_region(results, energy);
  EXPECT_EQ(per_region.size(), app_.regions().size());
  for (const auto& [region, sr] : per_region) {
    for (const auto& r : results) {
      EXPECT_LE(energy.evaluate(sr->regions.at(region)),
                energy.evaluate(r.regions.at(region)))
          << region;
    }
  }
}

TEST_F(EngineTest, JobCountDoesNotChangeResults) {
  // Default jitter and measurement noise stay ON so the per-chunk RNG
  // keying is actually exercised; 8 scenarios over 6-iteration runs = 2
  // concurrent chunks.
  auto run_with_jobs = [](int jobs) {
    hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(5));
    const auto app =
        workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6);
    SearchSpace space;
    space.add_parameter(omp_threads_parameter(12, 24, 4));
    space.add_parameter(
        core_freq_parameter({CoreFreq::mhz(1600), CoreFreq::mhz(2500)}));
    EngineOptions opts;
    opts.jobs = jobs;
    ExperimentsEngine engine(node, app,
                             instr::InstrumentationFilter::instrument_all(),
                             opts);
    return engine.run(space.exhaustive(),
                      SystemConfig{24, CoreFreq::mhz(2000),
                                   UncoreFreq::mhz(1500)});
  };
  const auto serial = run_with_jobs(1);
  const auto wide = run_with_jobs(8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario.id, wide[i].scenario.id);
    // Bitwise-equal measurements, not just approximately equal.
    EXPECT_EQ(serial[i].phase.node_energy.value(),
              wide[i].phase.node_energy.value());
    EXPECT_EQ(serial[i].phase.cpu_energy.value(),
              wide[i].phase.cpu_energy.value());
    EXPECT_EQ(serial[i].phase.time.value(), wide[i].phase.time.value());
    ASSERT_EQ(serial[i].regions.size(), wide[i].regions.size());
    for (const auto& [region, m] : serial[i].regions) {
      const auto& w = wide[i].regions.at(region);
      EXPECT_EQ(m.node_energy.value(), w.node_energy.value()) << region;
      EXPECT_EQ(m.time.value(), w.time.value()) << region;
      EXPECT_EQ(m.count, w.count) << region;
    }
  }
}

TEST(ScenarioSchedulerTest, ResetsActiveScenarioOutsideSchedule) {
  hwsim::NodeSimulator node(hwsim::haswell_ep_spec(), 0, Rng(1));
  node.set_jitter(0.0);
  instr::ExecutionContext ctx(node);
  const SystemConfig cfg{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
  ScenarioScheduler::Schedule schedule;
  schedule.emplace_back(0, cfg);  // only iteration 0 is scheduled

  std::map<std::int64_t, ScenarioResult> buckets;
  ScenarioResult seed;
  seed.scenario.id = 0;
  seed.config = cfg;
  buckets.emplace(0, seed);
  Rng rng(1);
  ScenarioScheduler scheduler(ctx, schedule, buckets, rng, 0.0);

  auto phase_enter = [&](int iteration) {
    instr::RegionEnter e;
    e.region = "PHASE";
    e.type = instr::RegionType::kPhase;
    e.iteration = iteration;
    scheduler.on_enter(e);
  };
  auto region_exit = [&](int iteration) {
    instr::RegionExit e;
    e.region = "work";
    e.type = instr::RegionType::kFunction;
    e.iteration = iteration;
    e.enter_time = Seconds(0);
    e.exit_time = Seconds(1);
    e.node_energy = Joules(10);
    e.cpu_energy = Joules(5);
    scheduler.on_exit(e);
  };

  phase_enter(0);
  region_exit(0);
  ASSERT_EQ(buckets.at(0).regions.at("work").count, 1);

  // Regression: an iteration past the schedule must deactivate measurement;
  // previously its measurements were silently attributed to scenario 0.
  phase_enter(1);
  region_exit(1);
  EXPECT_EQ(buckets.at(0).regions.at("work").count, 1);
  EXPECT_DOUBLE_EQ(buckets.at(0).regions.at("work").node_energy.value(),
                   10.0);

  // Re-entering a scheduled iteration resumes bucketing.
  phase_enter(0);
  region_exit(0);
  EXPECT_EQ(buckets.at(0).regions.at("work").count, 2);
}

TEST_F(EngineTest, AveragesOverRepeatedIterations) {
  std::vector<Scenario> scenarios{config_to_scenario(
      0, SystemConfig{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)})};
  EngineOptions opts;
  opts.iterations_per_scenario = 3;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(scenarios, base_);
  EXPECT_EQ(results[0].phase.count, 3);
}

}  // namespace
}  // namespace ecotune::ptf
