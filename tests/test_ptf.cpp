#include <gtest/gtest.h>

#include "hwsim/node.hpp"
#include "ptf/experiments_engine.hpp"
#include "ptf/objectives.hpp"
#include "ptf/search_space.hpp"
#include "ptf/tuning_parameter.hpp"
#include "workload/suite.hpp"

namespace ecotune::ptf {
namespace {

TEST(TuningParameter, OmpThreadsRange) {
  const auto p = omp_threads_parameter(12, 24, 4);
  EXPECT_EQ(p.name, "OpenMPTP");
  EXPECT_EQ(p.values, (std::vector<int>{12, 16, 20, 24}));
  EXPECT_THROW(omp_threads_parameter(12, 8, 4), PreconditionError);
}

TEST(TuningParameter, FrequencyParameters) {
  const auto cf = core_freq_parameter(
      {CoreFreq::mhz(2400), CoreFreq::mhz(2500)});
  EXPECT_EQ(cf.name, "cpu_freq");
  EXPECT_EQ(cf.values, (std::vector<int>{2400, 2500}));
  EXPECT_THROW(uncore_freq_parameter({}), PreconditionError);
}

TEST(Scenario, ConfigConversionRoundTrip) {
  const SystemConfig base{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
  Scenario s = config_to_scenario(7, SystemConfig{16, CoreFreq::mhz(1800),
                                                  UncoreFreq::mhz(2200)});
  EXPECT_EQ(s.id, 7);
  const SystemConfig c = scenario_to_config(s, base);
  EXPECT_EQ(c.threads, 16);
  EXPECT_EQ(c.core, CoreFreq::mhz(1800));
  EXPECT_EQ(c.uncore, UncoreFreq::mhz(2200));

  // Partial scenario falls back to the base.
  Scenario partial;
  partial.values["cpu_freq"] = 1200;
  const SystemConfig pc = scenario_to_config(partial, base);
  EXPECT_EQ(pc.threads, 24);
  EXPECT_EQ(pc.core, CoreFreq::mhz(1200));
  EXPECT_EQ(pc.uncore, UncoreFreq::mhz(1500));
  EXPECT_THROW((void)partial.at("OpenMPTP"), PreconditionError);
}

TEST(SearchSpace, ExhaustiveCartesianProduct) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  space.add_parameter(core_freq_parameter(
      {CoreFreq::mhz(2400), CoreFreq::mhz(2500)}));
  EXPECT_EQ(space.size(), 8u);
  const auto scenarios = space.exhaustive();
  ASSERT_EQ(scenarios.size(), 8u);
  // Ids are unique and sequential.
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_EQ(scenarios[i].id, static_cast<int>(i));
  // All combinations distinct.
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    for (std::size_t j = i + 1; j < scenarios.size(); ++j)
      EXPECT_NE(scenarios[i].values, scenarios[j].values);
}

TEST(SearchSpace, EmptyAndDegenerate) {
  SearchSpace space;
  EXPECT_EQ(space.size(), 0u);
  EXPECT_TRUE(space.exhaustive().empty());
  TuningParameter p;
  p.name = "x";
  EXPECT_THROW(space.add_parameter(p), PreconditionError);
}

TEST(Objectives, EvaluateAndOrdering) {
  Measurement cheap;
  cheap.node_energy = Joules(100);
  cheap.cpu_energy = Joules(70);
  cheap.time = Seconds(2.0);
  Measurement fast;
  fast.node_energy = Joules(120);
  fast.cpu_energy = Joules(90);
  fast.time = Seconds(1.0);

  EXPECT_LT(EnergyObjective{}.evaluate(cheap),
            EnergyObjective{}.evaluate(fast));
  EXPECT_LT(TimeObjective{}.evaluate(fast), TimeObjective{}.evaluate(cheap));
  EXPECT_DOUBLE_EQ(EdpObjective{}.evaluate(cheap), 200.0);
  EXPECT_DOUBLE_EQ(Ed2pObjective{}.evaluate(cheap), 400.0);
  // EDP prefers the fast run here, energy the cheap one: the classic trade.
  EXPECT_LT(EdpObjective{}.evaluate(fast), EdpObjective{}.evaluate(cheap));
  EXPECT_GT(TcoObjective{}.evaluate(cheap), 0.0);
  EXPECT_DOUBLE_EQ(CpuEnergyObjective{}.evaluate(cheap), 70.0);
}

TEST(Objectives, FactoryByName) {
  for (const char* name :
       {"energy", "cpu_energy", "time", "edp", "ed2p", "tco"}) {
    const auto obj = make_objective(name);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->name(), name);
  }
  EXPECT_THROW(make_objective("nope"), ConfigError);
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : node_(hwsim::haswell_ep_spec(), 0, Rng(1)),
        app_(workload::BenchmarkSuite::by_name("Lulesh").with_iterations(6)) {
    node_.set_jitter(0.0);
  }
  hwsim::NodeSimulator node_;
  workload::Benchmark app_;
  const SystemConfig base_{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)};
};

TEST_F(EngineTest, OneScenarioPerPhaseIteration) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);
  ASSERT_EQ(results.size(), 4u);
  // 4 scenarios fit into one 6-iteration application run.
  EXPECT_EQ(engine.app_runs(), 1);
  for (const auto& r : results) {
    EXPECT_EQ(r.phase.count, 1);
    EXPECT_GT(r.phase.node_energy.value(), 0.0);
    EXPECT_FALSE(r.regions.empty());
  }
}

TEST_F(EngineTest, SchedulesMultipleRunsWhenScenariosExceedIterations) {
  SearchSpace space;
  space.add_parameter(core_freq_parameter(node_.spec().core_grid.values()));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);
  EXPECT_EQ(results.size(), 14u);
  EXPECT_EQ(engine.app_runs(), 3);  // ceil(14 / 6)
  EXPECT_GT(engine.experiment_time().value(), 0.0);
}

TEST_F(EngineTest, MeasurementsReflectConfiguration) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(config_to_scenario(
      0, SystemConfig{24, CoreFreq::mhz(1200), UncoreFreq::mhz(1500)}));
  scenarios.push_back(config_to_scenario(
      1, SystemConfig{24, CoreFreq::mhz(2500), UncoreFreq::mhz(1500)}));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(scenarios, base_);
  // Lulesh is compute-bound: 1.2 GHz must be much slower than 2.5 GHz.
  EXPECT_GT(results[0].phase.time.value(),
            results[1].phase.time.value() * 1.5);
}

TEST_F(EngineTest, BestSelectorsUseObjective) {
  SearchSpace space;
  space.add_parameter(omp_threads_parameter(12, 24, 4));
  EngineOptions opts;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(space.exhaustive(), base_);

  const EnergyObjective energy;
  const auto& best = ExperimentsEngine::best_phase(results, energy);
  for (const auto& r : results)
    EXPECT_LE(energy.evaluate(best.phase), energy.evaluate(r.phase));

  const auto per_region = ExperimentsEngine::best_per_region(results, energy);
  EXPECT_EQ(per_region.size(), app_.regions().size());
  for (const auto& [region, sr] : per_region) {
    for (const auto& r : results) {
      EXPECT_LE(energy.evaluate(sr->regions.at(region)),
                energy.evaluate(r.regions.at(region)))
          << region;
    }
  }
}

TEST_F(EngineTest, AveragesOverRepeatedIterations) {
  std::vector<Scenario> scenarios{config_to_scenario(
      0, SystemConfig{24, CoreFreq::mhz(2000), UncoreFreq::mhz(1500)})};
  EngineOptions opts;
  opts.iterations_per_scenario = 3;
  opts.measurement_noise = 0.0;
  ExperimentsEngine engine(node_, app_,
                           instr::InstrumentationFilter::instrument_all(),
                           opts);
  const auto results = engine.run(scenarios, base_);
  EXPECT_EQ(results[0].phase.count, 3);
}

}  // namespace
}  // namespace ecotune::ptf
