#include <gtest/gtest.h>

#include "core/dvfs_ufs_plugin.hpp"
#include "model/dataset.hpp"
#include "workload/suite.hpp"

namespace ecotune::core {
namespace {

/// Trains a small-but-adequate energy model once for all plugin tests.
class PluginTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    node_ = new hwsim::NodeSimulator(hwsim::haswell_ep_spec(), 0, Rng(1));
    node_->set_jitter(0.001);
    // Paper-faithful training: the 14 training benchmarks over the full
    // frequency grid at all four thread counts, 10 epochs (Sec. V-B).
    model::AcquisitionOptions opts;
    opts.phase_iterations = 2;
    model::DataAcquisition acq(*node_, opts);
    const auto ds = acq.acquire(workload::BenchmarkSuite::training_set());
    trained_ = new model::EnergyModel();
    trained_->train(ds, 10);
  }
  static void TearDownTestSuite() {
    delete trained_;
    delete node_;
    trained_ = nullptr;
    node_ = nullptr;
  }

  static hwsim::NodeSimulator* node_;
  static model::EnergyModel* trained_;
};

hwsim::NodeSimulator* PluginTest::node_ = nullptr;
model::EnergyModel* PluginTest::trained_ = nullptr;

TEST_F(PluginTest, ConfigFileRoundTrip) {
  PluginConfig c;
  c.omp_lower = 8;
  c.omp_step = 8;
  c.neighborhood_radius = 2;
  c.objective = "edp";
  const PluginConfig parsed =
      PluginConfig::from_json(Json::parse(c.to_json().dump()));
  EXPECT_EQ(parsed.omp_lower, 8);
  EXPECT_EQ(parsed.omp_step, 8);
  EXPECT_EQ(parsed.neighborhood_radius, 2);
  EXPECT_EQ(parsed.objective, "edp");
  EXPECT_DOUBLE_EQ(parsed.significance_threshold.value(), 0.1);
}

TEST_F(PluginTest, RejectsUntrainedModel) {
  model::EnergyModel untrained;
  EXPECT_THROW(DvfsUfsPlugin plugin(untrained), PreconditionError);
}

TEST_F(PluginTest, FullDtaOnLulesh) {
  DvfsUfsPlugin plugin(*trained_);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(10);
  const DtaResult result = plugin.run_dta(app, *node_);

  // Pre-processing found the paper's five significant regions and filtered
  // the two helpers.
  EXPECT_EQ(result.dyn_report.significant.size(), 5u);
  EXPECT_EQ(result.autofilter.excluded.size(), 2u);

  // Step 1: exhaustive threads 12..24 step 4 -> k = 4 scenarios; Lulesh
  // scales, so the phase optimum is 24 threads.
  EXPECT_EQ(result.thread_scenarios, 4);
  EXPECT_EQ(result.phase_threads, 24);

  // Analysis: 7 counters at 4 per run -> 2 runs.
  EXPECT_EQ(result.analysis_runs, 2);

  // Step 2: 3x3 neighborhood around the recommendation (interior point).
  EXPECT_GE(result.frequency_scenarios, 4);
  EXPECT_LE(result.frequency_scenarios, 9);

  // Recommendation in the compute-bound half: CF above the grid midpoint,
  // UCF below the default 3.0 GHz (exact cells vary with training noise).
  EXPECT_GE(result.recommendation.cf.as_mhz(), 2000);
  EXPECT_LE(result.recommendation.ucf.as_mhz(), 2400);

  // Region bests live inside the verified neighborhood.
  for (const auto& [region, cfg] : result.region_best) {
    EXPECT_LE(std::abs(cfg.core.as_mhz() -
                       result.recommendation.cf.as_mhz()),
              100)
        << region;
    EXPECT_LE(std::abs(cfg.uncore.as_mhz() -
                       result.recommendation.ucf.as_mhz()),
              100)
        << region;
  }

  // Tuning model covers exactly the significant regions.
  EXPECT_EQ(result.tuning_model.region_count(), 5u);
  EXPECT_GE(result.tuning_model.scenarios().size(), 1u);
  EXPECT_LE(result.tuning_model.scenarios().size(), 5u);
  for (const auto& sig : result.dyn_report.significant)
    EXPECT_TRUE(result.tuning_model.lookup(sig.name).has_value())
        << sig.name;

  // Cost accounting is filled in.
  EXPECT_GT(result.tuning_time.value(), 0.0);
  EXPECT_GT(result.app_runs, 0);
}

TEST_F(PluginTest, McbRecommendationIsMemoryBoundCorner) {
  DvfsUfsPlugin plugin(*trained_);
  const auto app =
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(10);
  const DtaResult result = plugin.run_dta(app, *node_);
  // Memory-bound: low CF, high UCF (paper Fig. 7 / Table IV).
  EXPECT_LE(result.recommendation.cf.as_mhz(), 2000);
  EXPECT_GE(result.recommendation.ucf.as_mhz(), 2200);
  EXPECT_EQ(result.dyn_report.significant.size(), 5u);
  // Mcb's phase optimum is 20 threads (paper Fig. 7).
  EXPECT_EQ(result.phase_threads, 20);
}

TEST_F(PluginTest, PerRegionThreadsComeFromStepOne) {
  DvfsUfsPlugin plugin(*trained_);
  const auto app =
      workload::BenchmarkSuite::by_name("Amg2013").with_iterations(10);
  const DtaResult result = plugin.run_dta(app, *node_);
  EXPECT_EQ(result.phase_threads, 16);  // paper Table V
  for (const auto& [region, cfg] : result.region_best) {
    auto it = result.region_threads.find(region);
    ASSERT_NE(it, result.region_threads.end()) << region;
    EXPECT_EQ(cfg.threads, it->second) << region;
  }
}

TEST_F(PluginTest, EdpObjectiveShiftsTowardFasterConfigs) {
  DvfsUfsPlugin::Options energy_opts;
  DvfsUfsPlugin energy_plugin(*trained_, energy_opts);
  const auto app =
      workload::BenchmarkSuite::by_name("Mcb").with_iterations(10);
  const auto energy_result = energy_plugin.run_dta(app, *node_);

  DvfsUfsPlugin::Options edp_opts;
  edp_opts.config.objective = "edp";
  DvfsUfsPlugin edp_plugin(*trained_, edp_opts);
  const auto edp_result = edp_plugin.run_dta(app, *node_);

  // EDP penalizes slowdown, so the phase-best core frequency under EDP is
  // at least as high as under pure energy.
  EXPECT_GE(edp_result.phase_best.core.as_mhz(),
            energy_result.phase_best.core.as_mhz());
}

TEST_F(PluginTest, NeighborhoodRadiusControlsScenarioCount) {
  DvfsUfsPlugin::Options opts;
  opts.config.neighborhood_radius = 0;
  DvfsUfsPlugin plugin(*trained_, opts);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(8);
  const auto result = plugin.run_dta(app, *node_);
  EXPECT_EQ(result.frequency_scenarios, 1);
  // With radius 0 every region inherits the recommendation directly.
  for (const auto& [region, cfg] : result.region_best) {
    EXPECT_EQ(cfg.core, result.recommendation.cf) << region;
    EXPECT_EQ(cfg.uncore, result.recommendation.ucf) << region;
  }
}

TEST_F(PluginTest, PerRegionPredictionFillsRecommendations) {
  DvfsUfsPlugin::Options opts;
  opts.config.per_region_prediction = true;
  DvfsUfsPlugin plugin(*trained_, opts);
  const auto app =
      workload::BenchmarkSuite::by_name("Lulesh").with_iterations(10);
  const DtaResult result = plugin.run_dta(app, *node_);

  // One recommendation per significant region.
  EXPECT_EQ(result.region_recommendations.size(), 5u);
  // Analysis doubles: phase counters (2 runs) + per-region counters (2).
  EXPECT_EQ(result.analysis_runs, 4);
  // The union space is at least as large as one neighborhood.
  EXPECT_GE(result.frequency_scenarios, 4);
  // Every region's best configuration lies inside its own recommendation's
  // neighborhood.
  const auto& spec = node_->spec();
  for (const auto& [region, cfg] : result.region_best) {
    const auto& rec = result.region_recommendations.at(region);
    EXPECT_LE(std::abs(cfg.core.as_mhz() - rec.cf.as_mhz()),
              spec.core_grid.step_mhz())
        << region;
    EXPECT_LE(std::abs(cfg.uncore.as_mhz() - rec.ucf.as_mhz()),
              spec.uncore_grid.step_mhz())
        << region;
  }
  EXPECT_EQ(result.tuning_model.region_count(), 5u);
}

TEST_F(PluginTest, PerRegionModeSeparatesHeterogeneousRegions) {
  // An application mixing a compute kernel with a bandwidth-bound sweep:
  // per-region prediction should hand the two regions distinct frequency
  // recommendations (the phase-level mode by construction cannot).
  hwsim::KernelTraits compute;
  compute.total_instructions = 20e9;
  compute.ipc_peak = 2.4;
  compute.fp_fraction = 0.45;
  compute.vector_fraction = 0.5;
  compute.dram_bytes = 0.1 * compute.total_instructions;
  compute.uncore_cycles = 0.08 * compute.total_instructions;
  compute.parallel_fraction = 0.997;
  compute.contention = 0.002;
  compute.activity = 1.0;

  hwsim::KernelTraits stream;
  stream.total_instructions = 8e9;
  stream.ipc_peak = 1.3;
  stream.load_fraction = 0.4;
  stream.l1d_miss_rate = 0.13;
  stream.dram_bytes = 3.2 * stream.total_instructions;
  stream.uncore_cycles = 0.6 * stream.total_instructions;
  stream.parallel_fraction = 0.99;
  stream.contention = 0.008;
  stream.overlap = 0.9;
  stream.activity = 0.62;

  const workload::Benchmark app(
      "two-phase-app", "test", workload::ProgrammingModel::kHybrid,
      {workload::Region{"dense_kernel", compute, 1},
       workload::Region{"stream_sweep", stream, 1}},
      10, 0.01);

  DvfsUfsPlugin::Options opts;
  opts.config.per_region_prediction = true;
  DvfsUfsPlugin plugin(*trained_, opts);
  const DtaResult result = plugin.run_dta(app, *node_);

  ASSERT_EQ(result.region_recommendations.size(), 2u);
  const auto& dense = result.region_recommendations.at("dense_kernel");
  const auto& sweep = result.region_recommendations.at("stream_sweep");
  // The compute kernel wants a higher core clock than the sweep, and the
  // sweep wants at least as much uncore as the kernel.
  EXPECT_GT(dense.cf.as_mhz(), sweep.cf.as_mhz());
  EXPECT_GE(sweep.ucf.as_mhz(), dense.ucf.as_mhz());
}

}  // namespace
}  // namespace ecotune::core
