#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ecotune {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng base(7);
  Rng f1 = base.fork("node-0");
  Rng f2 = base.fork("node-0");
  Rng f3 = base.fork("node-1");
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(f1(), f3());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a("node-0"), fnv1a("node-0"));
  EXPECT_NE(fnv1a("node-0"), fnv1a("node-1"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng r(1);
  const auto v = r();
  EXPECT_GE(v, Rng::min());
  EXPECT_LE(v, Rng::max());
}

}  // namespace
}  // namespace ecotune
